//! Umbrella crate for the Jigsaw NuFFT reproduction.
//!
//! Re-exports every workspace crate under one roof so downstream users can
//! depend on a single `jigsaw` crate. See the README for a tour.

pub use jigsaw_core as core;
pub use jigsaw_fft as fft;
pub use jigsaw_fixed as fixed;
pub use jigsaw_gpu as gpu;
pub use jigsaw_num as num;
pub use jigsaw_sim as sim;
pub use jigsaw_telemetry as telemetry;
