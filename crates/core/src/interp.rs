//! Forward interpolation ("re-gridding") — the forward NuFFT's third step.
//!
//! The adjoint's gridding *scatters* sample values onto the grid; the
//! forward transform *gathers*: each non-uniform output value is the
//! kernel-weighted sum of the `W^d` grid points in its window (Fig. 1:
//! forward = pre-apodization → FFT → regridding).
//!
//! Gathering is embarrassingly parallel across samples (pure reads of the
//! grid), which is why the paper focuses its hardware on the adjoint
//! direction; we provide serial and sample-parallel engines with the same
//! shared decomposition so forward/adjoint stay numerically consistent.

use crate::config::GridParams;
use crate::decomp::Decomposer;
use crate::gridding::{sample_windows, worker_threads, DimWindow, MAX_W};
use crate::lut::KernelLut;
use crate::{Error, Result};
use jigsaw_num::{Complex, Float};

/// Gather one sample's value from the grid.
#[inline]
fn gather_sample<T: Float, const D: usize>(
    dec: &Decomposer,
    lut: &KernelLut,
    grid: &[Complex<T>],
    g: usize,
    w: usize,
    coord: &[f64; D],
) -> Complex<T> {
    let (wins, _) = sample_windows(dec, lut, coord);
    gather_from_windows(grid, g, w, &wins)
}

/// Gather one sample's value from the grid given *precomputed* per-dim
/// windows (see [`crate::nufft::PlannedTrajectory`]): the kernel-weighted
/// sum of the `W^d` window points, accumulated in exactly the order the
/// on-the-fly path uses, so planned and unplanned gathers are bitwise
/// identical.
#[inline]
pub fn gather_from_windows<T: Float, const D: usize>(
    grid: &[Complex<T>],
    g: usize,
    w: usize,
    wins: &[DimWindow; D],
) -> Complex<T> {
    match D {
        2 => {
            let mut acc = Complex::<T>::zeroed();
            for jy in 0..w {
                let row = wins[0].idx[jy] as usize * g;
                let wy = wins[0].weight[jy];
                let mut rowacc = Complex::<T>::zeroed();
                for jx in 0..w {
                    rowacc +=
                        grid[row + wins[1].idx[jx] as usize].scale(T::from_f64(wins[1].weight[jx]));
                }
                acc += rowacc.scale(T::from_f64(wy));
            }
            acc
        }
        3 => {
            let mut acc = Complex::<T>::zeroed();
            for jz in 0..w {
                let plane = wins[0].idx[jz] as usize * g * g;
                let wz = wins[0].weight[jz];
                for jy in 0..w {
                    let row = plane + wins[1].idx[jy] as usize * g;
                    let wyz = wz * wins[1].weight[jy];
                    for jx in 0..w {
                        acc += grid[row + wins[2].idx[jx] as usize]
                            .scale(T::from_f64(wyz * wins[2].weight[jx]));
                    }
                }
            }
            acc
        }
        _ => {
            let mut acc = Complex::<T>::zeroed();
            let mut j = [0usize; D];
            loop {
                let mut idx = 0usize;
                let mut wt = 1.0;
                for d in 0..D {
                    idx = idx * g + wins[d].idx[j[d]] as usize;
                    wt *= wins[d].weight[j[d]];
                }
                acc += grid[idx].scale(T::from_f64(wt));
                let mut d = D;
                let mut done = false;
                loop {
                    if d == 0 {
                        done = true;
                        break;
                    }
                    d -= 1;
                    j[d] += 1;
                    if j[d] < w {
                        break;
                    }
                    j[d] = 0;
                }
                if done {
                    return acc;
                }
            }
        }
    }
}

/// Interpolate the oversampled grid at non-uniform coordinates
/// (oversampled-grid units). `out[i]` receives the gathered value for
/// `coords[i]` (overwritten, not accumulated).
pub fn interpolate<T: Float, const D: usize>(
    p: &GridParams,
    lut: &KernelLut,
    grid: &[Complex<T>],
    coords: &[[f64; D]],
    out: &mut [Complex<T>],
    threads: Option<usize>,
) -> Result<()> {
    if coords.len() != out.len() {
        return Err(Error::Data(format!(
            "coordinate count {} != output count {}",
            coords.len(),
            out.len()
        )));
    }
    if grid.len() != p.grid.pow(D as u32) {
        return Err(Error::Data("grid buffer size mismatch".into()));
    }
    if p.width > MAX_W {
        return Err(Error::Config(format!("window width > {MAX_W}")));
    }
    for (i, c) in coords.iter().enumerate() {
        if c.iter().any(|x| !x.is_finite()) {
            return Err(Error::Data(format!("non-finite coordinate at sample {i}")));
        }
    }
    let dec = Decomposer::new(p);
    let nthreads = worker_threads(threads).min(out.len().max(1)).max(1);
    if nthreads == 1 {
        for (o, c) in out.iter_mut().zip(coords) {
            *o = gather_sample(&dec, lut, grid, p.grid, p.width, c);
        }
    } else {
        let chunk = out.len().div_ceil(nthreads);
        let dec = &dec;
        std::thread::scope(|s| {
            for (tid, o_chunk) in out.chunks_mut(chunk).enumerate() {
                let c_chunk = &coords[tid * chunk..(tid * chunk + o_chunk.len())];
                s.spawn(move || {
                    for (o, c) in o_chunk.iter_mut().zip(c_chunk) {
                        *o = gather_sample(dec, lut, grid, p.grid, p.width, c);
                    }
                });
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::testutil::*;
    use crate::gridding::{Gridder, SerialGridder};
    use jigsaw_num::C64;

    #[test]
    fn gather_from_impulse_grid_returns_kernel_weight() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let mut grid = vec![C64::zeroed(); 64 * 64];
        grid[20 * 64 + 30] = C64::one();
        let mut out = vec![C64::zeroed(); 1];
        interpolate(&p, &lut, &grid, &[[20.0, 30.0]], &mut out, Some(1)).unwrap();
        // Sample exactly on the impulse: weight = peak² = 1.
        assert!((out[0].re - 1.0).abs() < 1e-12);
        // Half a grid unit away in x: weight = φ(0.5)·φ(0).
        let k = p.kernel;
        interpolate(&p, &lut, &grid, &[[20.5, 30.0]], &mut out, Some(1)).unwrap();
        assert!((out[0].re - k.eval(0.5, 6)).abs() < 1e-9);
    }

    #[test]
    fn adjoint_identity_holds() {
        // ⟨grid(c), g⟩ == ⟨c, interp(g)⟩ — gridding and interpolation are
        // exact adjoints because they share weights and windows.
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(120, 64.0, 42);
        let (_, gvals) = sample_batch::<2>(64 * 64, 64.0, 43);
        let g: Vec<C64> = gvals;
        // A c = gridded samples.
        let mut ac = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut ac);
        // Aᴴ g = interpolated grid.
        let mut ahg = vec![C64::zeroed(); coords.len()];
        interpolate(&p, &lut, &g, &coords, &mut ahg, Some(1)).unwrap();
        let lhs: C64 = ac.iter().zip(&g).map(|(a, b)| *a * b.conj()).sum();
        let rhs: C64 = values.iter().zip(&ahg).map(|(a, b)| *a * b.conj()).sum();
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn parallel_matches_serial_gather() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (gcoords, gvals) = sample_batch::<2>(64 * 64, 64.0, 50);
        let _ = gcoords;
        let grid: Vec<C64> = gvals;
        let (coords, _) = sample_batch::<2>(333, 64.0, 51);
        let mut a = vec![C64::zeroed(); 333];
        let mut b = vec![C64::zeroed(); 333];
        interpolate(&p, &lut, &grid, &coords, &mut a, Some(1)).unwrap();
        interpolate(&p, &lut, &grid, &coords, &mut b, Some(5)).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn gather_3d_wraps() {
        let mut p = small_params();
        p.grid = 16;
        let lut = KernelLut::from_params(&p);
        let mut grid = vec![C64::zeroed(); 16 * 16 * 16];
        grid[0] = C64::one(); // impulse at the origin corner
        let mut out = vec![C64::zeroed(); 1];
        // Sample just across the wrap: at (15.6, 0.2, 15.9).
        interpolate(&p, &lut, &grid, &[[15.6, 0.2, 15.9]], &mut out, Some(1)).unwrap();
        assert!(out[0].re > 0.0, "wrapped gather must see the impulse");
    }

    #[test]
    fn rejects_bad_input() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let grid = vec![C64::zeroed(); 64 * 64];
        let mut out = vec![C64::zeroed(); 2];
        assert!(interpolate(&p, &lut, &grid, &[[0.0, 0.0]], &mut out, None).is_err());
        let mut out1 = vec![C64::zeroed(); 1];
        assert!(interpolate(&p, &lut, &grid, &[[f64::INFINITY, 0.0]], &mut out1, None).is_err());
        let small = vec![C64::zeroed(); 10];
        assert!(interpolate(&p, &lut, &small, &[[0.0, 0.0]], &mut out1, None).is_err());
    }
}
