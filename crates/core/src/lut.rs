//! Precomputed interpolation-weight look-up table.
//!
//! "By constraining the kernel granularity, offline precomputation and
//! storage of the discrete kernel weights in a look-up table (LUT) is
//! possible […] reducing the amount of online computation required for
//! each interpolation operation" (§II-B). The paper identifies LUT-based
//! weights (vs Impatient's on-the-fly evaluation) as one of the reasons
//! Slice-and-Dice wins on GPU — the `ablation_lut` bench quantifies it.
//!
//! The table stores `W·L/2 + 1` weights per dimension, exploiting window
//! symmetry; an unfolded index `t ∈ [0, W·L]` (offset `δ = t/L − W/2`)
//! folds to `min(t, WL − t)`.

use crate::config::GridParams;
use crate::kernel::KernelKind;
use std::sync::Arc;

/// A folded, per-dimension kernel weight table in `f64`.
///
/// The hardware simulator quantizes these weights to its 16-bit format;
/// the software engines use them directly, so every engine interpolates
/// with bit-identical weights.
///
/// The weight storage is reference-counted, so `Clone` is `O(1)` — the
/// pooled execution paths clone the table into `'static` worker jobs on
/// every dispatch.
#[derive(Debug, Clone)]
pub struct KernelLut {
    w: usize,
    l: usize,
    weights: Arc<[f64]>,
}

impl KernelLut {
    /// Build the table for a (resolved) kernel, window width `w`, and
    /// table oversampling factor `l`.
    pub fn build(kernel: &KernelKind, w: usize, l: usize) -> Self {
        let wl = w * l;
        let weights = (0..=wl / 2)
            .map(|s| kernel.eval(s as f64 / l as f64 - w as f64 / 2.0, w))
            .collect();
        Self { w, l, weights }
    }

    /// Build from grid parameters.
    pub fn from_params(p: &GridParams) -> Self {
        Self::build(&p.kernel, p.width, p.table_oversampling)
    }

    /// Number of stored weights (`WL/2 + 1`).
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the table is empty (never true for valid configs).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Window width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Table oversampling factor.
    pub fn table_oversampling(&self) -> usize {
        self.l
    }

    /// The raw folded table (index `s` holds the weight at offset
    /// `|δ| = W/2 − s/L`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Look up by *unfolded* index `t ∈ [0, WL]`.
    #[inline(always)]
    pub fn lookup(&self, t: u32) -> f64 {
        let wl = (self.w * self.l) as u32;
        debug_assert!(t <= wl, "unfolded index {t} out of range (WL = {wl})");
        let folded = t.min(wl - t) as usize;
        self.weights[folded]
    }

    /// Nearest-entry lookup for a real offset `δ ∈ [−W/2, W/2]` — used by
    /// code that hasn't pre-quantized coordinates (e.g. the forward
    /// interpolator's reference path).
    #[inline]
    pub fn eval_offset(&self, delta: f64) -> f64 {
        let t = ((delta + self.w as f64 / 2.0) * self.l as f64).round();
        let wl = (self.w * self.l) as f64;
        if !(0.0..=wl).contains(&t) {
            return 0.0;
        }
        self.lookup(t as u32)
    }

    /// Linearly-interpolated lookup for a real offset `δ ∈ [−W/2, W/2]` —
    /// the table mode software NuFFT libraries (MIRT, NFFT) default to:
    /// interpolating between adjacent entries turns the `O(1/L)` nearest-
    /// entry error into `O(1/L²)`, removing the coordinate-quantization
    /// floor without growing the table. (The JIGSAW hardware uses nearest
    /// lookup; this mode exists for the software baselines and ablations.)
    #[inline]
    pub fn eval_offset_lerp(&self, delta: f64) -> f64 {
        let wl = (self.w * self.l) as f64;
        let t = (delta + self.w as f64 / 2.0) * self.l as f64;
        if !(0.0..=wl).contains(&t) {
            return 0.0;
        }
        let t0 = t.floor();
        let frac = t - t0;
        let a = self.lookup(t0 as u32);
        let b = self.lookup(((t0 as u32) + 1).min(wl as u32));
        a + frac * (b - a)
    }

    /// Maximum absolute quantization error of the table vs the continuous
    /// kernel, probed at `probes` points — used by accuracy ablations.
    pub fn quantization_error(&self, kernel: &KernelKind, probes: usize) -> f64 {
        let half = self.w as f64 / 2.0;
        (0..probes)
            .map(|i| {
                let d = -half + (i as f64 + 0.5) / probes as f64 * self.w as f64;
                (self.eval_offset(d) - kernel.eval(d, self.w)).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> KernelKind {
        KernelKind::Auto.resolve(6, 2.0)
    }

    #[test]
    fn table_size_matches_paper() {
        // W = 8, L = 64 → 256 weights + center (§IV Weight Lookup).
        let lut = KernelLut::build(&KernelKind::Auto.resolve(8, 2.0), 8, 64);
        assert_eq!(lut.len(), 257);
    }

    #[test]
    fn center_is_peak() {
        let lut = KernelLut::build(&kb(), 6, 32);
        let wl = 6 * 32;
        assert_eq!(lut.lookup(wl as u32 / 2), 1.0);
        for t in 0..=wl as u32 {
            assert!(lut.lookup(t) <= 1.0);
        }
    }

    #[test]
    fn folded_lookup_is_symmetric() {
        let lut = KernelLut::build(&kb(), 6, 32);
        let wl = 6 * 32;
        for t in 0..=wl as u32 {
            assert_eq!(lut.lookup(t), lut.lookup(wl as u32 - t));
        }
    }

    #[test]
    fn lookup_matches_kernel_eval() {
        let k = kb();
        let lut = KernelLut::build(&k, 6, 32);
        for t in 0..=(6 * 32) as u32 {
            let delta = t as f64 / 32.0 - 3.0;
            assert!((lut.lookup(t) - k.eval(delta, 6)).abs() < 1e-15);
        }
    }

    #[test]
    fn eval_offset_rounds_to_nearest() {
        let k = kb();
        let lut = KernelLut::build(&k, 6, 32);
        // δ = 0.51/32 above an entry rounds to the next entry.
        let d0 = -1.0;
        let exact = lut.eval_offset(d0);
        assert_eq!(exact, k.eval(-1.0, 6));
        assert_eq!(lut.eval_offset(d0 + 0.4 / 32.0), exact);
        assert_eq!(lut.eval_offset(4.0), 0.0);
        assert_eq!(lut.eval_offset(-3.4), 0.0);
    }

    #[test]
    fn lerp_lookup_converges_quadratically() {
        let k = kb();
        let probe = |l: usize| -> f64 {
            let lut = KernelLut::build(&k, 6, l);
            (0..4000)
                .map(|i| {
                    let d = -3.0 + (i as f64 + 0.5) / 4000.0 * 6.0;
                    (lut.eval_offset_lerp(d) - k.eval(d, 6)).abs()
                })
                .fold(0.0, f64::max)
        };
        let e16 = probe(16);
        let e64 = probe(64);
        // Quadratic convergence: 4× finer table → ~16× smaller error.
        assert!(e64 < e16 / 10.0, "e16={e16} e64={e64}");
        // And far better than nearest lookup at the same L.
        let lut16 = KernelLut::build(&k, 6, 16);
        let nearest16 = lut16.quantization_error(&k, 4000);
        assert!(e16 < nearest16 / 3.0, "lerp {e16} vs nearest {nearest16}");
    }

    #[test]
    fn lerp_lookup_exact_at_entries_and_zero_outside() {
        let k = kb();
        let lut = KernelLut::build(&k, 6, 32);
        for s in 0..=96u32 {
            let d = s as f64 / 32.0 - 3.0;
            assert!((lut.eval_offset_lerp(d) - k.eval(d, 6)).abs() < 1e-14);
        }
        assert_eq!(lut.eval_offset_lerp(3.5), 0.0);
        assert_eq!(lut.eval_offset_lerp(-4.0), 0.0);
    }

    #[test]
    fn quantization_error_shrinks_with_l() {
        let k = kb();
        let e8 = KernelLut::build(&k, 6, 8).quantization_error(&k, 4000);
        let e64 = KernelLut::build(&k, 6, 64).quantization_error(&k, 4000);
        let e512 = KernelLut::build(&k, 6, 512).quantization_error(&k, 4000);
        assert!(e64 < e8 / 4.0, "e8={e8} e64={e64}");
        assert!(e512 < e64 / 4.0, "e64={e64} e512={e512}");
    }

    #[test]
    fn from_params_consistent() {
        let p = GridParams {
            grid: 64,
            width: 6,
            table_oversampling: 32,
            tile: 8,
            kernel: kb(),
        };
        let a = KernelLut::from_params(&p);
        let b = KernelLut::build(&kb(), 6, 32);
        assert_eq!(a.weights(), b.weights());
    }
}
