//! Persistent worker-pool execution engine.
//!
//! The paper's Slice-and-Dice design gives each hardware pipeline a fixed
//! *column* — the same relative position in every tile — and streams every
//! sample past all pipelines. The original software realization of that
//! model (`std::thread::scope` in each gridder) paid two per-invocation
//! costs the hardware never sees:
//!
//! 1. **Thread churn** — a spawn/join cycle per gridding call (tens of
//!    microseconds per worker), paid again for every coil of a multi-coil
//!    MRI reconstruction.
//! 2. **Allocation churn** — every worker's private accumulator columns
//!    (the "dice"), bin tiles, and partial grids were freshly allocated
//!    and faulted in on each call.
//!
//! This module provides the persistent alternative, in the spirit of
//! cuFINUFFT/FINUFFT *plans* that reuse execution resources across many
//! transforms:
//!
//! * [`WorkerPool`] — long-lived workers parked on channels. Job `j` of a
//!   dispatch always runs on worker `j % size`, so the mapping from dice
//!   columns to workers is stable across calls (the software analogue of
//!   a pipeline's fixed column assignment).
//! * [`ScratchArena`] — one arena per worker slot holding type-erased,
//!   reusable buffers. A worker's accumulator column slab is allocated on
//!   first use and then cycles: worker fills it, the caller merges it into
//!   the output grid and *returns it to the same worker's arena*.
//! * [`ExecBackend`] — selects pooled vs legacy scoped-spawn execution in
//!   every parallel gridder, so the two strategies stay directly
//!   comparable (see the `pooled_vs_scoped` bench).
//!
//! Everything here is safe Rust: jobs are `'static` closures capturing
//! `Arc`-shared immutable inputs, results travel back over channels, and
//! a latch (mutex + condvar) provides the join point. Determinism is
//! preserved because job partitioning depends only on the *requested*
//! thread count, never on pool size or scheduling order, and the caller
//! merges results in job order.

use jigsaw_telemetry as telemetry;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Execution strategy for the parallel gridding engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Dispatch into the persistent [`WorkerPool`] (default): workers and
    /// their scratch arenas live across calls.
    #[default]
    Pooled,
    /// Legacy behavior: spawn scoped threads and allocate scratch on every
    /// call. Kept for A/B benchmarking and as a fallback.
    Scoped,
}

/// A boxed job: runs on one worker with access to that worker's arena.
type Job = Box<dyn FnOnce(&mut ScratchArena) + Send>;

/// Per-worker-slot arena of reusable, type-erased buffers.
///
/// Buffers are keyed by `(key, element type)`; each slot holds a small
/// stack so two jobs multiplexed onto the same worker can both find a
/// buffer. The arena is owned by the pool (not the worker thread) so the
/// *caller* can return merged-out slabs to the worker that produced them.
#[derive(Default)]
pub struct ScratchArena {
    slots: HashMap<(u64, std::any::TypeId), Vec<Box<dyn Any + Send>>>,
    bytes: usize,
}

impl ScratchArena {
    /// Take a `Vec<T>` of exactly `len` elements, all equal to `fill`.
    /// Reuses a previously [`Self::give_vec`]-returned buffer when one is
    /// available (clearing it), else allocates.
    pub fn take_vec<T: Clone + Send + 'static>(&mut self, key: u64, len: usize, fill: T) -> Vec<T> {
        let slot = (key, std::any::TypeId::of::<Vec<T>>());
        if let Some(stack) = self.slots.get_mut(&slot) {
            if let Some(boxed) = stack.pop() {
                if let Ok(mut v) = boxed.downcast::<Vec<T>>() {
                    self.bytes = self
                        .bytes
                        .saturating_sub(v.capacity() * std::mem::size_of::<T>());
                    v.clear();
                    v.resize(len, fill);
                    return *v;
                }
            }
        }
        vec![fill; len]
    }

    /// Return a buffer for future reuse under `key`.
    pub fn give_vec<T: Send + 'static>(&mut self, key: u64, v: Vec<T>) {
        let slot = (key, std::any::TypeId::of::<Vec<T>>());
        self.bytes += v.capacity() * std::mem::size_of::<T>();
        self.slots.entry(slot).or_default().push(Box::new(v));
    }

    /// Approximate resident bytes currently parked in this arena.
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }

    /// Drop every cached buffer.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.bytes = 0;
    }
}

/// Completion latch for one dispatch.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

#[derive(Default)]
struct LatchState {
    remaining: usize,
    panicked: bool,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(LatchState {
                remaining: count,
                panicked: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn count_down(&self, panicked: bool) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.remaining -= 1;
        st.panicked |= panicked;
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.remaining > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.panicked
    }
}

struct WorkerHandle {
    tx: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// A persistent pool of worker threads with per-worker scratch arenas.
///
/// See the [module docs](self) for the design. The pool is cheap to share
/// (`Arc` internally via [`WorkerPool::global`]) and safe to use from
/// multiple dispatching threads concurrently: jobs from concurrent
/// dispatches interleave per worker but each dispatch observes only its
/// own latch and channels.
pub struct WorkerPool {
    workers: Vec<WorkerHandle>,
    arenas: Arc<Vec<Mutex<ScratchArena>>>,
    dispatches: AtomicU64,
    /// Per-worker cumulative busy time (nanoseconds spent inside jobs,
    /// including arena lock acquisition). Always on — two relaxed atomic
    /// adds per *job*, not per sample — so imbalance is observable even
    /// with telemetry disabled.
    busy_ns: Arc<Vec<AtomicU64>>,
    /// Per-worker job counts (same lifetime as `busy_ns`).
    job_counts: Arc<Vec<AtomicU64>>,
    /// Cached telemetry histogram handles (wired to the global registry;
    /// recording is gated on `telemetry::enabled()`).
    wait_hist: Arc<telemetry::Histogram>,
    run_hist: Arc<telemetry::Histogram>,
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let arenas: Arc<Vec<Mutex<ScratchArena>>> = Arc::new(
            (0..threads)
                .map(|_| Mutex::new(ScratchArena::default()))
                .collect(),
        );
        let busy_ns: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let job_counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let workers = (0..threads)
            .map(|wid| {
                let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
                let arenas = Arc::clone(&arenas);
                let handle = std::thread::Builder::new()
                    .name(format!("jigsaw-worker-{wid}"))
                    .spawn(move || {
                        // Register this worker's trace lane up front so the
                        // chrome-trace export shows named per-worker lanes.
                        telemetry::set_thread_lane(&format!("jigsaw-worker-{wid}"));
                        while let Ok(job) = rx.recv() {
                            let mut arena = arenas[wid].lock().unwrap_or_else(|e| e.into_inner());
                            job(&mut arena);
                        }
                    })
                    .expect("failed to spawn pool worker");
                WorkerHandle {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        Self {
            workers,
            arenas,
            dispatches: AtomicU64::new(0),
            busy_ns,
            job_counts,
            wait_hist: telemetry::global().histogram("engine.job_wait_ns"),
            run_hist: telemetry::global().histogram("engine.job_run_ns"),
        }
    }

    /// The process-wide shared pool, sized by available parallelism on
    /// first use. All gridders and batched NuFFT paths default to it.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::new(n)
        })
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Number of dispatches served since creation (instrumentation).
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Cumulative nanoseconds each worker has spent running jobs since
    /// pool creation, indexed by worker slot. The spread between the
    /// busiest and idlest worker is the pool's load imbalance — always
    /// collected, independent of the telemetry kill switch.
    pub fn worker_busy_ns(&self) -> Vec<u64> {
        self.busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of jobs each worker has completed since pool creation.
    pub fn worker_job_counts(&self) -> Vec<u64> {
        self.job_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Worker slot that job `j` of an `njobs`-way dispatch runs on.
    #[inline]
    pub fn worker_for(&self, job: usize) -> usize {
        job % self.workers.len()
    }

    /// Run `njobs` invocations of `f(job_index, arena)` across the pool
    /// and block until all complete. Job `j` runs on worker `j % size`;
    /// jobs beyond the pool size queue behind earlier jobs on the same
    /// worker. Panics (after all jobs finish) if any job panicked.
    pub fn run<F>(&self, njobs: usize, f: F)
    where
        F: Fn(usize, &mut ScratchArena) + Send + Sync + 'static,
    {
        if njobs == 0 {
            return;
        }
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        let _dispatch_span = telemetry::span!("engine.dispatch", {
            njobs: njobs,
            workers: self.workers.len(),
        });
        telemetry::record_counter("engine.dispatches", 1);
        telemetry::record_counter("engine.jobs", njobs as u64);
        let latch = Latch::new(njobs);
        let f = Arc::new(f);
        let nworkers = self.workers.len();
        for j in 0..njobs {
            let latch = Arc::clone(&latch);
            let f = Arc::clone(&f);
            let wait_hist = Arc::clone(&self.wait_hist);
            let run_hist = Arc::clone(&self.run_hist);
            let busy_ns = Arc::clone(&self.busy_ns);
            let job_counts = Arc::clone(&self.job_counts);
            let enqueued_ns = telemetry::now_ns();
            let job: Job = Box::new(move |arena| {
                let collect = telemetry::enabled();
                let t0 = Instant::now();
                let started_ns = telemetry::now_ns();
                let mut span = telemetry::span!("engine.job", { job: j });
                if collect {
                    let wait = started_ns.saturating_sub(enqueued_ns);
                    wait_hist.record(wait);
                    span.arg("wait_ns", wait);
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    f(j, arena);
                }));
                drop(span);
                if collect {
                    run_hist.record(telemetry::now_ns().saturating_sub(started_ns));
                }
                // Always-on utilization accounting (telemetry-independent);
                // must land *before* the latch so callers observing the
                // counters after `run` returns see every job.
                let wid = j % nworkers;
                busy_ns[wid].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                job_counts[wid].fetch_add(1, Ordering::Relaxed);
                latch.count_down(result.is_err());
                if let Err(e) = result {
                    // Preserve the worker; surface the panic on the caller.
                    drop(e);
                }
            });
            self.workers[self.worker_for(j)]
                .tx
                .send(job)
                .expect("pool worker hung up");
        }
        let panicked = latch.wait();
        if telemetry::enabled() {
            telemetry::record_gauge(
                "engine.scratch_resident_bytes",
                self.resident_scratch_bytes() as f64,
            );
        }
        if panicked {
            panic!("a worker-pool job panicked (see stderr for the worker's panic message)");
        }
    }

    /// Give a buffer back to the arena of the worker that ran `job`, so
    /// the next dispatch's job on that slot reuses it.
    pub fn restore<T: Send + 'static>(&self, job: usize, key: u64, buf: Vec<T>) {
        let w = self.worker_for(job);
        self.arenas[w]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .give_vec(key, buf);
    }

    /// Total bytes parked across all arenas (instrumentation).
    pub fn resident_scratch_bytes(&self) -> usize {
        self.arenas
            .iter()
            .map(|a| a.lock().unwrap_or_else(|e| e.into_inner()).resident_bytes())
            .sum()
    }

    /// Drop all cached scratch buffers in every arena.
    pub fn clear_scratch(&self) {
        for a in self.arenas.iter() {
            a.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close channels, then join.
        for w in &mut self.workers {
            // Replacing the sender with a dummy drops the original.
            let (dummy, _) = channel();
            let tx = std::mem::replace(&mut w.tx, dummy);
            drop(tx);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Scratch-buffer keys used by the gridding engines (documented here so
/// key collisions stay impossible by inspection).
pub mod keys {
    /// Slice-and-Dice per-worker accumulator columns.
    pub const DICE_COLUMNS: u64 = 0x01;
    /// Binned gridder per-worker tile block.
    pub const BIN_TILES: u64 = 0x02;
    /// Block-reduce per-worker partial grid.
    pub const PARTIAL_GRID: u64 = 0x03;
    /// Naive output-parallel per-worker output chunk.
    pub const NAIVE_CHUNK: u64 = 0x04;
    /// Batched-NuFFT per-coil oversampled grid.
    pub const COIL_GRID: u64 = 0x05;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_jobs_once() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.run(10, move |_, _| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(pool.dispatches(), 1);
    }

    #[test]
    fn job_to_worker_mapping_is_stable() {
        let pool = WorkerPool::new(4);
        for j in 0..16 {
            assert_eq!(pool.worker_for(j), j % 4);
        }
    }

    #[test]
    fn results_travel_via_channels() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        pool.run(6, move |j, _| {
            tx.send((j, j * j)).unwrap();
        });
        let mut got: Vec<(usize, usize)> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..6).map(|j| (j, j * j)).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_buffers_are_reused_across_dispatches() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        pool.run(1, move |_, arena| {
            let v = arena.take_vec::<u64>(9, 128, 0);
            tx2.send(v.as_ptr() as usize).unwrap();
            arena.give_vec(9, v);
        });
        let first_ptr = rx.recv().unwrap();
        pool.run(1, move |_, arena| {
            let v = arena.take_vec::<u64>(9, 64, 0);
            tx.send(v.as_ptr() as usize).unwrap();
            arena.give_vec(9, v);
        });
        let second_ptr = rx.recv().unwrap();
        assert_eq!(first_ptr, second_ptr, "buffer must be recycled");
        assert!(pool.resident_scratch_bytes() >= 128 * 8);
        pool.clear_scratch();
        assert_eq!(pool.resident_scratch_bytes(), 0);
    }

    #[test]
    fn take_vec_zeroes_recycled_buffers() {
        let mut arena = ScratchArena::default();
        let mut v = arena.take_vec::<f64>(1, 4, 0.0);
        v.iter_mut().for_each(|x| *x = 7.0);
        arena.give_vec(1, v);
        let v2 = arena.take_vec::<f64>(1, 8, 0.0);
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(v2.len(), 8);
    }

    #[test]
    fn restore_reaches_the_producing_worker() {
        let pool = WorkerPool::new(2);
        // Job 3 runs on worker 1; restore(3, ..) must land in arena 1 so a
        // second dispatch's job 1 (also worker 1) can reuse it.
        let (tx, rx) = channel();
        let txa = tx.clone();
        pool.run(4, move |j, arena| {
            if j == 3 {
                let v = arena.take_vec::<u32>(5, 32, 0);
                txa.send(v).unwrap();
            }
        });
        let buf = rx.recv().unwrap();
        let ptr = buf.as_ptr() as usize;
        pool.restore(3, 5, buf);
        let (tx2, rx2) = channel();
        pool.run(2, move |j, arena| {
            if j == 1 {
                let v = arena.take_vec::<u32>(5, 32, 0);
                tx2.send(v.as_ptr() as usize).unwrap();
            }
        });
        assert_eq!(rx2.recv().unwrap(), ptr);
    }

    #[test]
    fn panicking_job_propagates_without_poisoning_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let p = Arc::clone(&pool);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            p.run(3, |j, _| {
                if j == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still works.
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.run(4, move |_, _| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
        assert!(WorkerPool::global().size() >= 1);
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let pool = WorkerPool::new(2);
        pool.run(0, |_, _| panic!("must not run"));
    }

    #[test]
    fn worker_busy_counters_accumulate() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.worker_busy_ns(), vec![0, 0]);
        assert_eq!(pool.worker_job_counts(), vec![0, 0]);
        pool.run(4, |_, _| {
            // Enough work that the per-job Instant delta is nonzero.
            std::hint::black_box((0..200_000u64).map(|x| x.wrapping_mul(x)).sum::<u64>());
        });
        let busy = pool.worker_busy_ns();
        let counts = pool.worker_job_counts();
        assert_eq!(busy.len(), 2);
        // Jobs 0..4 round-robin onto 2 workers: two each.
        assert_eq!(counts, vec![2, 2]);
        assert!(busy.iter().sum::<u64>() > 0, "busy time must accumulate");
    }

    #[test]
    fn dispatch_records_job_histograms_when_enabled() {
        let pool = WorkerPool::new(2);
        telemetry::set_enabled(true);
        let before = pool.run_hist.count();
        pool.run(6, |_, _| {});
        // The histograms are global ("engine.job_run_ns"), so concurrent
        // tests may also record: assert at least this dispatch's jobs.
        assert!(pool.run_hist.count() - before >= 6);
        assert!(pool.wait_hist.count() >= 6);
    }
}
