//! Persistent worker-pool execution engine.
//!
//! The paper's Slice-and-Dice design gives each hardware pipeline a fixed
//! *column* — the same relative position in every tile — and streams every
//! sample past all pipelines. The original software realization of that
//! model (`std::thread::scope` in each gridder) paid two per-invocation
//! costs the hardware never sees:
//!
//! 1. **Thread churn** — a spawn/join cycle per gridding call (tens of
//!    microseconds per worker), paid again for every coil of a multi-coil
//!    MRI reconstruction.
//! 2. **Allocation churn** — every worker's private accumulator columns
//!    (the "dice"), bin tiles, and partial grids were freshly allocated
//!    and faulted in on each call.
//!
//! This module provides the persistent alternative, in the spirit of
//! cuFINUFFT/FINUFFT *plans* that reuse execution resources across many
//! transforms:
//!
//! * [`WorkerPool`] — long-lived workers parked on channels. Job `j` of a
//!   dispatch always runs on worker `j % size`, so the mapping from dice
//!   columns to workers is stable across calls (the software analogue of
//!   a pipeline's fixed column assignment).
//! * [`ScratchArena`] — one arena per worker slot holding type-erased,
//!   reusable buffers. A worker's accumulator column slab is allocated on
//!   first use and then cycles: worker fills it, the caller merges it into
//!   the output grid and *returns it to the same worker's arena*.
//! * [`ExecBackend`] — selects pooled vs legacy scoped-spawn execution in
//!   every parallel gridder, so the two strategies stay directly
//!   comparable (see the `pooled_vs_scoped` bench).
//!
//! Everything here is safe Rust: jobs are `'static` closures capturing
//! `Arc`-shared immutable inputs, results travel back over channels, and
//! a latch (mutex + condvar) provides the join point. Determinism is
//! preserved because job partitioning depends only on the *requested*
//! thread count, never on pool size or scheduling order, and the caller
//! merges results in job order.

use jigsaw_telemetry as telemetry;
use jigsaw_testkit::{cancel, faultpoint};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Execution strategy for the parallel gridding engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Dispatch into the persistent [`WorkerPool`] (default): workers and
    /// their scratch arenas live across calls.
    #[default]
    Pooled,
    /// Legacy behavior: spawn scoped threads and allocate scratch on every
    /// call. Kept for A/B benchmarking and as a fallback.
    Scoped,
}

// ---------------------------------------------------------------------------
// Serial-fallback policy (graceful degradation kill switch)
// ---------------------------------------------------------------------------

/// 0 = uninitialized, 1 = fallback on, 2 = fallback off.
static FALLBACK_STATE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Whether a contained pooled-job failure triggers an automatic serial
/// retry (bitwise-identical output, counted in the `engine.fallbacks`
/// telemetry metric) instead of surfacing `Error::Execution`. Defaults to
/// on; disable with `JIGSAW_FALLBACK=0` or [`set_serial_fallback`]. Same
/// kill-switch pattern as the telemetry crate: one relaxed load + branch.
#[inline]
pub fn serial_fallback_enabled() -> bool {
    match FALLBACK_STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_fallback_from_env(),
    }
}

#[cold]
fn init_fallback_from_env() -> bool {
    let on = telemetry::env_enables(std::env::var("JIGSAW_FALLBACK").ok().as_deref());
    let want = if on { 1 } else { 2 };
    let _ = FALLBACK_STATE.compare_exchange(0, want, Ordering::Relaxed, Ordering::Relaxed);
    FALLBACK_STATE.load(Ordering::Relaxed) == 1
}

/// Force the serial-fallback policy on or off, overriding the
/// environment.
pub fn set_serial_fallback(on: bool) {
    FALLBACK_STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Record one serial-fallback decision: bumps the `engine.fallbacks`
/// counter and logs a `FallbackTaken` flight-recorder event carrying the
/// current request id, so a degraded request is attributable after the
/// fact. `detail` names the path that fell back (e.g. a gridder or the
/// batched adjoint).
pub fn note_serial_fallback(detail: &str) {
    telemetry::record_counter("engine.fallbacks", 1);
    telemetry::flight::record(
        telemetry::FlightKind::FallbackTaken,
        telemetry::current_request_id(),
        0,
        detail,
    );
}

/// A contained worker-pool job failure: the job panicked, the panic was
/// caught on the worker (which survives, with its poisoned arena buffers
/// discarded), and the payload was captured here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed job within the dispatch.
    pub job: usize,
    /// Worker slot the job ran on.
    pub worker: usize,
    /// The captured panic payload, rendered as a string.
    pub message: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} panicked on worker {}: {}",
            self.job, self.worker, self.message
        )
    }
}

impl std::error::Error for JobFailure {}

impl From<JobFailure> for crate::Error {
    fn from(f: JobFailure) -> Self {
        crate::Error::Execution(f.to_string())
    }
}

/// A boxed job: runs on one worker with access to that worker's arena.
type Job = Box<dyn FnOnce(&mut ScratchArena) + Send>;

/// One type-erased buffer plus its payload byte count, as stored in a
/// [`ScratchArena`] slot stack.
type ErasedBuf = (Box<dyn Any + Send>, usize);

/// Per-worker-slot arena of reusable, type-erased buffers.
///
/// Buffers are keyed by `(key, element type)`; each slot holds a small
/// stack so two jobs multiplexed onto the same worker can both find a
/// buffer. The arena is owned by the pool (not the worker thread) so the
/// *caller* can return merged-out slabs to the worker that produced them.
#[derive(Default)]
pub struct ScratchArena {
    /// Buffer stacks keyed by `(key, element type)`; each entry carries its
    /// payload byte count so type-erased take/give (the
    /// [`jigsaw_fft::exec::BufferArena`] impl) can keep `bytes` exact
    /// without downcasting.
    slots: HashMap<(u64, std::any::TypeId), Vec<ErasedBuf>>,
    bytes: usize,
}

impl ScratchArena {
    /// Take a `Vec<T>` of exactly `len` elements, all equal to `fill`.
    /// Reuses a previously [`Self::give_vec`]-returned buffer when one is
    /// available (clearing it), else allocates.
    pub fn take_vec<T: Clone + Send + 'static>(&mut self, key: u64, len: usize, fill: T) -> Vec<T> {
        let slot = (key, std::any::TypeId::of::<Vec<T>>());
        if let Some(stack) = self.slots.get_mut(&slot) {
            if let Some((boxed, bytes)) = stack.pop() {
                if let Ok(mut v) = boxed.downcast::<Vec<T>>() {
                    self.bytes = self.bytes.saturating_sub(bytes);
                    v.clear();
                    v.resize(len, fill);
                    return *v;
                }
            }
        }
        vec![fill; len]
    }

    /// Return a buffer for future reuse under `key`.
    pub fn give_vec<T: Send + 'static>(&mut self, key: u64, v: Vec<T>) {
        let slot = (key, std::any::TypeId::of::<Vec<T>>());
        let bytes = v.capacity() * std::mem::size_of::<T>();
        self.bytes += bytes;
        self.slots
            .entry(slot)
            .or_default()
            .push((Box::new(v), bytes));
    }

    /// Approximate resident bytes currently parked in this arena.
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }

    /// Drop every cached buffer.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.bytes = 0;
    }
}

/// Type-erased recycling interface used by `jigsaw-fft`'s panel jobs.
///
/// `jigsaw-fft` sits *below* this crate in the dependency DAG, so it
/// defines the [`jigsaw_fft::exec::BufferArena`] trait and this crate's
/// arena implements it. FFT panel scratch thereby cycles through the same
/// per-worker arenas as gridding scratch, keyed under
/// [`keys::FFT_PANEL`].
impl jigsaw_fft::exec::BufferArena for ScratchArena {
    fn take_any(&mut self, key: u64, ty: std::any::TypeId) -> Option<Box<dyn Any + Send>> {
        let (buf, bytes) = self.slots.get_mut(&(key, ty))?.pop()?;
        self.bytes = self.bytes.saturating_sub(bytes);
        Some(buf)
    }

    fn give_any(&mut self, key: u64, ty: std::any::TypeId, buf: Box<dyn Any + Send>, bytes: usize) {
        self.bytes += bytes;
        self.slots.entry((key, ty)).or_default().push((buf, bytes));
    }
}

thread_local! {
    /// True on pool worker threads; set once at worker startup. Used to
    /// detect *nested* dispatch — an [`jigsaw_fft::exec::Executor`] call
    /// made from inside a worker job (e.g. the per-coil FFT inside a
    /// pooled multi-coil batch). Dispatching back into the pool from a
    /// worker can deadlock (the nested job may map onto the very worker
    /// that is blocked waiting on it), so nested work runs inline instead.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Arena backing inline (nested) job execution on a worker thread.
    /// Thread-local so recycled panel buffers stay warm across the many
    /// FFT calls a single worker makes during one batch.
    static NESTED_ARENA: std::cell::RefCell<ScratchArena> =
        std::cell::RefCell::new(ScratchArena::default());
}

/// True when the current thread is a [`WorkerPool`] worker.
pub fn on_worker_thread() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Completion latch for one dispatch.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

#[derive(Default)]
struct LatchState {
    remaining: usize,
    /// First contained job failure of the dispatch (first to count down
    /// wins; later failures are dropped — one diagnostic is enough).
    failure: Option<JobFailure>,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(LatchState {
                remaining: count,
                failure: None,
            }),
            cv: Condvar::new(),
        })
    }

    fn count_down(&self, failure: Option<JobFailure>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.remaining -= 1;
        if st.failure.is_none() {
            st.failure = failure;
        }
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Option<JobFailure> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.remaining > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.failure.take()
    }
}

struct WorkerHandle {
    tx: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// A persistent pool of worker threads with per-worker scratch arenas.
///
/// See the [module docs](self) for the design. The pool is cheap to share
/// (`Arc` internally via [`WorkerPool::global`]) and safe to use from
/// multiple dispatching threads concurrently: jobs from concurrent
/// dispatches interleave per worker but each dispatch observes only its
/// own latch and channels.
pub struct WorkerPool {
    workers: Vec<WorkerHandle>,
    arenas: Arc<Vec<Mutex<ScratchArena>>>,
    dispatches: AtomicU64,
    /// Per-worker cumulative busy time (nanoseconds spent inside jobs,
    /// including arena lock acquisition). Always on — two relaxed atomic
    /// adds per *job*, not per sample — so imbalance is observable even
    /// with telemetry disabled.
    busy_ns: Arc<Vec<AtomicU64>>,
    /// Per-worker job counts (same lifetime as `busy_ns`).
    job_counts: Arc<Vec<AtomicU64>>,
    /// Cached telemetry histogram handles (wired to the global registry;
    /// recording is gated on `telemetry::enabled()`).
    wait_hist: Arc<telemetry::Histogram>,
    run_hist: Arc<telemetry::Histogram>,
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let arenas: Arc<Vec<Mutex<ScratchArena>>> = Arc::new(
            (0..threads)
                .map(|_| Mutex::new(ScratchArena::default()))
                .collect(),
        );
        let busy_ns: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let job_counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let workers = (0..threads)
            .map(|wid| {
                let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
                let arenas = Arc::clone(&arenas);
                let handle = std::thread::Builder::new()
                    .name(format!("jigsaw-worker-{wid}"))
                    .spawn(move || {
                        // Register this worker's trace lane up front so the
                        // chrome-trace export shows named per-worker lanes.
                        telemetry::set_thread_lane(&format!("jigsaw-worker-{wid}"));
                        // Mark the thread so nested Executor dispatches from
                        // inside jobs run inline instead of deadlocking.
                        IN_WORKER.with(|f| f.set(true));
                        while let Ok(job) = rx.recv() {
                            let mut arena = arenas[wid].lock().unwrap_or_else(|e| e.into_inner());
                            job(&mut arena);
                        }
                    })
                    .unwrap_or_else(|e| panic!("failed to spawn pool worker: {e}"));
                WorkerHandle {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        Self {
            workers,
            arenas,
            dispatches: AtomicU64::new(0),
            busy_ns,
            job_counts,
            wait_hist: telemetry::global().histogram("engine.job_wait_ns"),
            run_hist: telemetry::global().histogram("engine.job_run_ns"),
        }
    }

    /// The process-wide shared pool, sized by available parallelism on
    /// first use. All gridders and batched NuFFT paths default to it.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::new(n)
        })
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Number of dispatches served since creation (instrumentation).
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Cumulative nanoseconds each worker has spent running jobs since
    /// pool creation, indexed by worker slot. The spread between the
    /// busiest and idlest worker is the pool's load imbalance — always
    /// collected, independent of the telemetry kill switch.
    pub fn worker_busy_ns(&self) -> Vec<u64> {
        self.busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of jobs each worker has completed since pool creation.
    pub fn worker_job_counts(&self) -> Vec<u64> {
        self.job_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Worker slot that job `j` of an `njobs`-way dispatch runs on.
    #[inline]
    pub fn worker_for(&self, job: usize) -> usize {
        job % self.workers.len()
    }

    /// Run `njobs` invocations of `f(job_index, arena)` across the pool
    /// and block until all complete. Job `j` runs on worker `j % size`;
    /// jobs beyond the pool size queue behind earlier jobs on the same
    /// worker. Panics (after all jobs finish) if any job panicked; use
    /// [`Self::try_run`] to receive the contained failure instead.
    pub fn run<F>(&self, njobs: usize, f: F)
    where
        F: Fn(usize, &mut ScratchArena) + Send + Sync + 'static,
    {
        if let Err(failure) = self.try_run(njobs, f) {
            panic!("a worker-pool job panicked ({failure})");
        }
    }

    /// Like [`Self::run`], but a panicking job is *contained*: the panic
    /// is caught on the worker, the worker survives and its (potentially
    /// half-written) arena buffers are discarded rather than recycled,
    /// and after every job of the dispatch has finished the first failure
    /// is returned as a [`JobFailure`]. The pool stays fully usable.
    pub fn try_run<F>(&self, njobs: usize, f: F) -> Result<(), JobFailure>
    where
        F: Fn(usize, &mut ScratchArena) + Send + Sync + 'static,
    {
        if njobs == 0 {
            return Ok(());
        }
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        let _dispatch_span = telemetry::span!("engine.dispatch", {
            njobs: njobs,
            workers: self.workers.len(),
        });
        telemetry::record_counter("engine.dispatches", 1);
        telemetry::record_counter("engine.jobs", njobs as u64);
        let latch = Latch::new(njobs);
        let f = Arc::new(f);
        let nworkers = self.workers.len();
        // Captured on the dispatching thread so spans opened on worker
        // threads inherit the dispatcher's request id, and so cancellation
        // checkpoints inside the jobs poll the dispatcher's budget flag.
        let request_id = telemetry::current_request_id();
        let cancel_flag = cancel::current();
        for j in 0..njobs {
            let job_latch = Arc::clone(&latch);
            let f = Arc::clone(&f);
            let wait_hist = Arc::clone(&self.wait_hist);
            let run_hist = Arc::clone(&self.run_hist);
            let busy_ns = Arc::clone(&self.busy_ns);
            let job_counts = Arc::clone(&self.job_counts);
            let enqueued_ns = telemetry::now_ns();
            let cancel_flag = cancel_flag.clone();
            let job: Job = Box::new(move |arena| {
                let _trace = telemetry::RequestScope::enter(request_id);
                let _cancel = cancel::CancelScope::enter(cancel_flag.clone());
                let collect = telemetry::enabled();
                let t0 = Instant::now();
                let started_ns = telemetry::now_ns();
                let mut span = telemetry::span!("engine.job", { job: j });
                if collect {
                    let wait = started_ns.saturating_sub(enqueued_ns);
                    wait_hist.record(wait);
                    span.arg("wait_ns", wait);
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    faultpoint!(crate::fault::ENGINE_DISPATCH);
                    f(j, arena);
                }));
                drop(span);
                if collect {
                    run_hist.record(telemetry::now_ns().saturating_sub(started_ns));
                }
                // Always-on utilization accounting (telemetry-independent);
                // must land *before* the latch so callers observing the
                // counters after `run` returns see every job.
                let wid = j % nworkers;
                busy_ns[wid].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                job_counts[wid].fetch_add(1, Ordering::Relaxed);
                let failure = result.err().map(|payload| {
                    // The job unwound mid-write: any buffer it parked in (or
                    // left inside) this arena may be in an inconsistent
                    // state. Discard them all; the slot refills lazily.
                    arena.clear();
                    telemetry::record_counter("engine.job_panics", 1);
                    JobFailure {
                        job: j,
                        worker: wid,
                        message: jigsaw_fft::exec::panic_message(&*payload),
                    }
                });
                job_latch.count_down(failure);
            });
            if let Err(send_err) = self.workers[self.worker_for(j)].tx.send(job) {
                // The worker thread is gone (it cannot panic — jobs are
                // contained — so this means the pool is shutting down).
                // Account the undelivered job so the latch still resolves.
                drop(send_err);
                latch.count_down(Some(JobFailure {
                    job: j,
                    worker: self.worker_for(j),
                    message: "pool worker exited; job not delivered".to_string(),
                }));
            }
        }
        let failure = latch.wait();
        if telemetry::enabled() {
            telemetry::record_gauge(
                "engine.scratch_resident_bytes",
                self.resident_scratch_bytes() as f64,
            );
        }
        match failure {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    /// Give a buffer back to the arena of the worker that ran `job`, so
    /// the next dispatch's job on that slot reuses it.
    pub fn restore<T: Send + 'static>(&self, job: usize, key: u64, buf: Vec<T>) {
        let w = self.worker_for(job);
        self.arenas[w]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .give_vec(key, buf);
    }

    /// Total bytes parked across all arenas (instrumentation).
    pub fn resident_scratch_bytes(&self) -> usize {
        self.arenas
            .iter()
            .map(|a| a.lock().unwrap_or_else(|e| e.into_inner()).resident_bytes())
            .sum()
    }

    /// Drop all cached scratch buffers in every arena.
    pub fn clear_scratch(&self) {
        for a in self.arenas.iter() {
            a.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

/// The persistent pool as an FFT panel-job executor.
///
/// This is the bridge that lets a *single* uniform FFT parallelize across
/// the same workers that grid samples: `FftNd::process_with(pool, ..)`
/// partitions each axis pass into panel jobs and runs them here. Three
/// properties matter:
///
/// * **Determinism** — the panel partition is computed by the FFT from the
///   grid shape alone; this executor only decides *where* each job runs,
///   never what it computes, so output is bitwise identical to serial.
/// * **Scratch affinity** — job `j` always runs on worker `j % size`, and
///   [`Executor::restore`](jigsaw_fft::exec::Executor::restore) returns
///   merged-out panel buffers to that worker's arena, so panel scratch is
///   allocated once and stays warm across every FFT of a reconstruction.
/// * **Nested-dispatch safety** — when `execute` is called *from a worker
///   thread* (a pooled batch job running its per-coil FFT), jobs run
///   inline on a thread-local arena. [`Executor::concurrency`] also
///   reports `1` there, so `FftNd` skips parallel orchestration entirely
///   and takes its serial blocked path — same numbers, no boxing.
impl jigsaw_fft::exec::Executor for WorkerPool {
    fn execute(&self, jobs: Vec<jigsaw_fft::exec::Job>) -> Result<(), jigsaw_fft::exec::ExecError> {
        if jobs.is_empty() {
            return Ok(());
        }
        if on_worker_thread() {
            return NESTED_ARENA.with(|a| {
                let mut arena = a.borrow_mut();
                for (j, job) in jobs.into_iter().enumerate() {
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&mut *arena)));
                    if let Err(payload) = result {
                        // Same containment as the pooled path: the nested
                        // arena may hold half-written buffers — discard.
                        arena.clear();
                        return Err(jigsaw_fft::exec::ExecError {
                            job: j,
                            worker: None,
                            message: jigsaw_fft::exec::panic_message(&*payload),
                        });
                    }
                }
                Ok(())
            });
        }
        let njobs = jobs.len();
        // `WorkerPool::run` takes a shared `Fn`; park each owned FnOnce job
        // in a mutex slot and let dispatch `j` claim slot `j`.
        let slots: Arc<Vec<Mutex<Option<jigsaw_fft::exec::Job>>>> =
            Arc::new(jobs.into_iter().map(|j| Mutex::new(Some(j))).collect());
        self.try_run(njobs, move |j, arena| {
            let job = slots[j].lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(job) = job {
                job(arena);
            }
        })
        .map_err(|f| jigsaw_fft::exec::ExecError {
            job: f.job,
            worker: Some(f.worker),
            message: f.message,
        })
    }

    fn concurrency(&self) -> usize {
        if on_worker_thread() {
            1
        } else {
            // Cap at physical parallelism: a pool oversized for the machine
            // (say 8 workers on a 1-CPU container) can still *run* jobs,
            // but reporting the full pool size would push `FftNd` into
            // parallel orchestration whose snapshot/boxing overhead cannot
            // be amortized by threads that never run simultaneously.
            // Reporting the effective concurrency lets callers take the
            // serial blocked path when that is the faster plan — results
            // are bitwise identical either way.
            let hw = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            self.size().min(hw)
        }
    }

    fn restore(
        &self,
        job: usize,
        key: u64,
        ty: std::any::TypeId,
        buf: Box<dyn Any + Send>,
        bytes: usize,
    ) {
        use jigsaw_fft::exec::BufferArena;
        self.arenas[self.worker_for(job)]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .give_any(key, ty, buf, bytes);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close channels, then join.
        for w in &mut self.workers {
            // Replacing the sender with a dummy drops the original.
            let (dummy, _) = channel();
            let tx = std::mem::replace(&mut w.tx, dummy);
            drop(tx);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Scratch-buffer keys used by the gridding engines (documented here so
/// key collisions stay impossible by inspection).
pub mod keys {
    /// Slice-and-Dice per-worker accumulator columns.
    pub const DICE_COLUMNS: u64 = 0x01;
    /// Binned gridder per-worker tile block.
    pub const BIN_TILES: u64 = 0x02;
    /// Block-reduce per-worker partial grid.
    pub const PARTIAL_GRID: u64 = 0x03;
    /// Naive output-parallel per-worker output chunk.
    pub const NAIVE_CHUNK: u64 = 0x04;
    /// Batched-NuFFT per-coil oversampled grid.
    pub const COIL_GRID: u64 = 0x05;
    /// N-D FFT panel scratch (defined by `jigsaw-fft`, which owns the
    /// executor trait; re-exported here so the key space stays auditable
    /// in one place).
    pub const FFT_PANEL: u64 = jigsaw_fft::exec::PANEL_KEY;
    /// Apodization / extraction line scratch for the parallel embed and
    /// extract passes around the uniform FFT.
    pub const APOD_LINES: u64 = 0x07;
    /// Bluestein convolution scratch inside N-D FFT panel jobs (defined by
    /// `jigsaw-fft`; re-exported like [`FFT_PANEL`]).
    pub const FFT_WORK: u64 = jigsaw_fft::exec::WORK_KEY;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_jobs_once() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.run(10, move |_, _| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(pool.dispatches(), 1);
    }

    #[test]
    fn job_to_worker_mapping_is_stable() {
        let pool = WorkerPool::new(4);
        for j in 0..16 {
            assert_eq!(pool.worker_for(j), j % 4);
        }
    }

    #[test]
    fn results_travel_via_channels() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        pool.run(6, move |j, _| {
            tx.send((j, j * j)).unwrap();
        });
        let mut got: Vec<(usize, usize)> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..6).map(|j| (j, j * j)).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_buffers_are_reused_across_dispatches() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        pool.run(1, move |_, arena| {
            let v = arena.take_vec::<u64>(9, 128, 0);
            tx2.send(v.as_ptr() as usize).unwrap();
            arena.give_vec(9, v);
        });
        let first_ptr = rx.recv().unwrap();
        pool.run(1, move |_, arena| {
            let v = arena.take_vec::<u64>(9, 64, 0);
            tx.send(v.as_ptr() as usize).unwrap();
            arena.give_vec(9, v);
        });
        let second_ptr = rx.recv().unwrap();
        assert_eq!(first_ptr, second_ptr, "buffer must be recycled");
        assert!(pool.resident_scratch_bytes() >= 128 * 8);
        pool.clear_scratch();
        assert_eq!(pool.resident_scratch_bytes(), 0);
    }

    #[test]
    fn take_vec_zeroes_recycled_buffers() {
        let mut arena = ScratchArena::default();
        let mut v = arena.take_vec::<f64>(1, 4, 0.0);
        v.iter_mut().for_each(|x| *x = 7.0);
        arena.give_vec(1, v);
        let v2 = arena.take_vec::<f64>(1, 8, 0.0);
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(v2.len(), 8);
    }

    #[test]
    fn restore_reaches_the_producing_worker() {
        let pool = WorkerPool::new(2);
        // Job 3 runs on worker 1; restore(3, ..) must land in arena 1 so a
        // second dispatch's job 1 (also worker 1) can reuse it.
        let (tx, rx) = channel();
        let txa = tx.clone();
        pool.run(4, move |j, arena| {
            if j == 3 {
                let v = arena.take_vec::<u32>(5, 32, 0);
                txa.send(v).unwrap();
            }
        });
        let buf = rx.recv().unwrap();
        let ptr = buf.as_ptr() as usize;
        pool.restore(3, 5, buf);
        let (tx2, rx2) = channel();
        pool.run(2, move |j, arena| {
            if j == 1 {
                let v = arena.take_vec::<u32>(5, 32, 0);
                tx2.send(v.as_ptr() as usize).unwrap();
            }
        });
        assert_eq!(rx2.recv().unwrap(), ptr);
    }

    #[test]
    fn panicking_job_propagates_without_poisoning_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let p = Arc::clone(&pool);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            p.run(3, |j, _| {
                if j == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still works.
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.run(4, move |_, _| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn try_run_reports_job_worker_and_payload() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run(4, |j, _| {
                if j == 3 {
                    panic!("kaboom {j}");
                }
            })
            .expect_err("job 3 must fail");
        assert_eq!(err.job, 3);
        assert_eq!(err.worker, 3 % 2);
        assert_eq!(err.message, "kaboom 3");
        assert!(err.to_string().contains("job 3 panicked on worker 1"));
        // The same pool completes a clean dispatch afterwards.
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.try_run(6, move |_, _| {
            c.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn panicking_job_discards_poisoned_scratch() {
        let pool = WorkerPool::new(1);
        // Park a buffer cleanly so the worker's arena holds resident bytes.
        pool.try_run(1, |_, arena| {
            let v = arena.take_vec::<u64>(11, 256, 0);
            arena.give_vec(11, v);
        })
        .unwrap();
        assert!(pool.resident_scratch_bytes() >= 256 * 8);
        // A job that panics mid-write on the same worker must clear that
        // worker's arena: the parked buffer may be half-mutated.
        let err = pool.try_run(1, |_, arena| {
            let mut v = arena.take_vec::<u64>(11, 256, 0);
            v[0] = 1; // simulate a partial write
            arena.give_vec(11, v);
            panic!("mid-write");
        });
        assert!(err.is_err());
        assert_eq!(
            pool.resident_scratch_bytes(),
            0,
            "poisoned arena buffers must be discarded"
        );
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
        assert!(WorkerPool::global().size() >= 1);
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let pool = WorkerPool::new(2);
        pool.run(0, |_, _| panic!("must not run"));
    }

    #[test]
    fn worker_busy_counters_accumulate() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.worker_busy_ns(), vec![0, 0]);
        assert_eq!(pool.worker_job_counts(), vec![0, 0]);
        pool.run(4, |_, _| {
            // Enough work that the per-job Instant delta is nonzero.
            std::hint::black_box((0..200_000u64).map(|x| x.wrapping_mul(x)).sum::<u64>());
        });
        let busy = pool.worker_busy_ns();
        let counts = pool.worker_job_counts();
        assert_eq!(busy.len(), 2);
        // Jobs 0..4 round-robin onto 2 workers: two each.
        assert_eq!(counts, vec![2, 2]);
        assert!(busy.iter().sum::<u64>() > 0, "busy time must accumulate");
    }

    #[test]
    fn fft_panel_key_matches_fft_crate() {
        assert_eq!(keys::FFT_PANEL, 0x06);
        // All keys distinct by inspection; assert anyway.
        let all = [
            keys::DICE_COLUMNS,
            keys::BIN_TILES,
            keys::PARTIAL_GRID,
            keys::NAIVE_CHUNK,
            keys::COIL_GRID,
            keys::FFT_PANEL,
            keys::APOD_LINES,
            keys::FFT_WORK,
        ];
        assert_eq!(keys::FFT_WORK, 0x08);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn pool_executes_fft_jobs_with_recycling() {
        use jigsaw_fft::exec::{give_vec, restore_vec, take_vec, Executor, Job as FftJob};
        let pool = WorkerPool::new(2);
        // Reported concurrency is the pool size capped at the machine's
        // physical parallelism (this may be 1 in a constrained container).
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(Executor::concurrency(&pool), 2.min(hw));
        let (tx, rx) = channel();
        let jobs: Vec<FftJob> = (0..4)
            .map(|j| {
                let tx = tx.clone();
                let job: FftJob = Box::new(move |arena| {
                    let mut v = take_vec::<u64>(arena, keys::FFT_PANEL, 8, 0);
                    v[0] = j as u64;
                    tx.send((j, v)).unwrap();
                });
                job
            })
            .collect();
        drop(tx);
        pool.execute(jobs).unwrap();
        let mut got: Vec<(usize, Vec<u64>)> = rx.iter().collect();
        got.sort_by_key(|(j, _)| *j);
        assert_eq!(got.len(), 4);
        // Jobs 1 and 3 both ran on worker 1; their buffers stack in its
        // arena (job 3's restored last, so popped first).
        let worker1_ptrs: Vec<usize> = [1usize, 3]
            .iter()
            .map(|&j| got[j].1.as_ptr() as usize)
            .collect();
        for (j, v) in got {
            assert_eq!(v[0], j as u64);
            restore_vec(&pool, j, keys::FFT_PANEL, v);
        }
        // A fresh dispatch's job 1 (worker 1) reuses a worker-1 panel.
        let (tx2, rx2) = channel();
        let job: FftJob = Box::new(move |arena| {
            let v = take_vec::<u64>(arena, keys::FFT_PANEL, 8, 0);
            tx2.send(v.as_ptr() as usize).unwrap();
            give_vec(arena, keys::FFT_PANEL, v);
        });
        let noop: FftJob = Box::new(|_| {});
        pool.execute(vec![noop, job]).unwrap();
        let reused = rx2.recv().unwrap();
        assert!(
            worker1_ptrs.contains(&reused),
            "panel buffer must be recycled from worker 1's arena"
        );
    }

    #[test]
    fn nested_execute_from_worker_runs_inline() {
        use jigsaw_fft::exec::{Executor, Job as FftJob};
        // A 1-worker pool: if the nested dispatch re-entered the queue it
        // would deadlock (the only worker is busy waiting on it).
        let pool = Arc::new(WorkerPool::new(1));
        let p = Arc::clone(&pool);
        let (tx, rx) = channel();
        pool.run(1, move |_, _| {
            assert!(on_worker_thread());
            // Inner dispatch must report serial concurrency and run inline.
            assert_eq!(Executor::concurrency(&*p), 1);
            let tx2 = tx.clone();
            let inner: FftJob = Box::new(move |_| tx2.send(42u32).unwrap());
            p.execute(vec![inner]).unwrap();
            tx.send(7).unwrap();
        });
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, vec![42, 7], "nested job must complete before outer");
        assert!(!on_worker_thread());
    }

    #[test]
    fn scratch_arena_type_erased_take_give_roundtrip() {
        use jigsaw_fft::exec::BufferArena;
        let mut arena = ScratchArena::default();
        let v = vec![1.5f32; 64];
        let ptr = v.as_ptr() as usize;
        let bytes = v.capacity() * std::mem::size_of::<f32>();
        arena.give_any(11, std::any::TypeId::of::<Vec<f32>>(), Box::new(v), bytes);
        assert_eq!(arena.resident_bytes(), bytes);
        let back = arena
            .take_any(11, std::any::TypeId::of::<Vec<f32>>())
            .expect("buffer present");
        let back = back.downcast::<Vec<f32>>().unwrap();
        assert_eq!(back.as_ptr() as usize, ptr);
        assert_eq!(arena.resident_bytes(), 0);
        assert!(arena
            .take_any(11, std::any::TypeId::of::<Vec<f32>>())
            .is_none());
        // Typed and erased paths share the same slots/byte ledger.
        arena.give_vec(12, vec![0u8; 16]);
        assert!(arena
            .take_any(12, std::any::TypeId::of::<Vec<u8>>())
            .is_some());
        assert_eq!(arena.resident_bytes(), 0);
    }

    #[test]
    fn dispatch_records_job_histograms_when_enabled() {
        let pool = WorkerPool::new(2);
        telemetry::set_enabled(true);
        let before = pool.run_hist.count();
        pool.run(6, |_, _| {});
        // The histograms are global ("engine.job_run_ns"), so concurrent
        // tests may also record: assert at least this dispatch's jobs.
        assert!(pool.run_hist.count() - before >= 6);
        assert!(pool.wait_hist.count() >= 6);
    }
}
