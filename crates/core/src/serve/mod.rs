//! The `jigsaw serve` serving layer: a plan-cached reconstruction
//! daemon.
//!
//! Every one-shot CLI invocation pays the full planning cost —
//! [`crate::nufft::NufftPlan::plan_trajectory`]'s per-sample window
//! decomposition plus FFT/apodization setup — even though production
//! MRI workloads replay the same trajectories continuously (one per
//! pulse sequence). This module amortizes that cost across a process
//! lifetime:
//!
//! * [`protocol`] — a std-only, length-prefixed binary frame protocol
//!   over any byte stream (Unix socket or stdin/stdout).
//! * [`cache`] — a bounded LRU [`cache::PlanCache`] keyed by the full
//!   trajectory *contents* and grid/kernel geometry.
//! * [`engine`] — [`engine::ServeEngine`], the per-job execution seam:
//!   validation, `RunBudget` admission control, cache lookup, the
//!   planned batched adjoint on the shared worker pool, and
//!   `catch_unwind` panic containment (a panicking job becomes an error
//!   frame; the daemon survives).
//! * [`daemon`] — transports, the two-priority job queue, and the
//!   executor threads ([`daemon::serve_unix`] / [`daemon::serve_stdio`]).
//! * [`client`] — a blocking [`client::ServeClient`] for CLI client
//!   mode and the black-box tests.
//! * [`snapshot`] — the versioned, checksummed on-disk snapshot format
//!   that carries the plan cache across process lifetimes (see
//!   [`cache::PlanCache::save_snapshot`] /
//!   [`cache::PlanCache::load_snapshot`]).
//!
//! Serving v1 fixes the numeric type to `f64` and the dimensionality to
//! 2-D (the paper's primary configuration); the frame grammar reserves
//! a version byte for future widening.
//!
//! Telemetry: `serve.cache.{hit,miss,evict}` counters,
//! `serve.queue_depth` / `serve.queued_bytes` gauges, `serve.jobs` /
//! `serve.job_errors` / `serve.shed.{depth,bytes,expired,draining}` /
//! `serve.replies_dropped` / `serve.watchdog.{cancels,panics}` /
//! `serve.snapshot.{loaded,skipped,saves,save_failures,load_failures,panics}`
//! counters, and `serve.job_latency_ns` / `serve.queue_wait_ns`
//! histograms. Fault sites: [`crate::fault::SERVE_JOB`],
//! [`crate::fault::SERVE_CACHE`], [`crate::fault::SERVE_SHED`],
//! [`crate::fault::SERVE_SNAPSHOT`], and
//! [`crate::fault::SERVE_WATCHDOG`].
//!
//! Overload resilience: admission is bounded
//! ([`ServeOptions::max_queue_depth`] / `max_queued_bytes`), refused
//! jobs get an [`protocol::OverloadFrame`] with a `retry_after_ms`
//! hint, expired jobs are swept before planning, and a watchdog thread
//! cancels blown or stuck budgets so the gridding/FFT hot loops bail at
//! their next cooperative checkpoint (see [`crate::budget`]).
//!
//! Durable lifecycle: [`ServeOptions::snapshot_path`] enables
//! load-on-start (a corrupt or stale snapshot degrades to a cold start,
//! never a crash), periodic background snapshotting, and
//! snapshot-on-drain. The `Drain` frame (kind 10) — surfaced as
//! `jigsaw request --drain` and as SIGTERM on the Unix-socket server —
//! stops admission (late submits get `Overloaded{reason=draining}`),
//! finishes queued jobs, snapshots, and exits 0; the existing
//! `Shutdown` (kind 6) remains the hard stop.
//!
//! Live introspection: [`stats`] defines the versioned
//! [`stats::StatsSnapshot`] answered over the wire by the
//! `StatsRequest`/`StatsReply` frame pair (kinds 7/8) — registry
//! metrics, plan-cache state, queue depth, per-worker utilization,
//! last-60s latency windows, and the flight-recorder tail — collected
//! without ever taking the plan-cache build lock or blocking the job
//! queue.

pub mod cache;
pub mod client;
pub mod daemon;
pub mod engine;
pub mod protocol;
pub mod snapshot;
pub mod stats;

pub use cache::{
    plan_key, toeplitz_key, trajectory_hash, weights_hash, CachedPlan, PlanCache, PlanKey,
};
pub use client::{RetryPolicy, ServeClient};
pub use daemon::{serve_stdio, serve_stream, serve_unix, ServeOptions, DAEMON_ID_BIT};
pub use engine::ServeEngine;
pub use protocol::{
    ErrorCategory, ErrorFrame, Frame, JobRequest, JobResult, OverloadFrame, Priority,
    ProtocolError, ShedReason,
};
pub use snapshot::{
    decode_snapshot, encode_snapshot, write_atomic, DecodeOutcome, SnapshotEntry, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use stats::{CacheStats, StatsSnapshot, WindowStats, WorkerStats, STATS_VERSION};
