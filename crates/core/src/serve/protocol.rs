//! The `jigsaw serve` wire protocol: length-prefixed binary frames.
//!
//! The daemon speaks a std-only, little-endian framing over any byte
//! stream (a local Unix socket, or stdin/stdout in `--stdio` mode). Every
//! frame is:
//!
//! ```text
//! magic "JGSW" (4) · version u8 · kind u8 · payload_len u32 · payload
//! ```
//!
//! Payload layouts (all integers little-endian, all floats IEEE-754
//! `f64` bit patterns):
//!
//! | kind | frame      | payload                                          |
//! |------|------------|--------------------------------------------------|
//! | 1    | `Submit`   | tag u64 · priority u8 · 0 u8 · n u32 · budget_ms u32 · m u32 · m×(kx,ky) f64 · m×(re,im) f64 |
//! | 2    | `Result`   | tag u64 · cache_hit u8 · 0 u8 · n u32 · n²×(re,im) f64 |
//! | 3    | `Error`    | tag u64 · category u8 · 0 u8 · msg_len u32 · msg UTF-8 |
//! | 4    | `Ping`     | (empty)                                          |
//! | 5    | `Pong`     | (empty)                                          |
//! | 6    | `Shutdown` | (empty)                                          |
//! | 7    | `StatsRequest` | (empty)                                      |
//! | 8    | `StatsReply`   | versioned [`StatsSnapshot`] (layout below)   |
//! | 9    | `Overloaded`   | tag u64 · reason u8 · 0 u8 · retry_after_ms u32 · msg_len u32 · msg UTF-8 |
//! | 10   | `Drain`    | (empty)                                          |
//!
//! The `StatsReply` payload (strings are `u32` length + UTF-8 bytes;
//! histograms are `count u64 · sum u64 · nb u32 · nb×(lo u64 · hi u64 ·
//! c u64)`):
//!
//! ```text
//! stats_version u32 · uptime_ns u64 · queue_depth u32 · queue_high u32
//! · cache (hits u64 · misses u64 · evictions u64 · len u32 · capacity u32)
//! · nw u32 · nw×(busy_ns u64 · jobs u64)
//! · nwin u32 · nwin×(name str · window_ns u64 · hist)
//! · nc u32 · nc×(name str · value u64)
//! · ng u32 · ng×(name str · value f64)
//! · nh u32 · nh×(name str · hist)
//! · nf u32 · nf×(ts_ns u64 · kind u8 · request_id u64 · tag u64 · detail str)
//! ```
//!
//! A frame that violates the grammar (bad magic, unknown version or
//! kind, length out of bounds, payload shorter than its own counts
//! claim) decodes to [`ProtocolError::Malformed`]; the daemon answers
//! with an error frame of category [`ErrorCategory::Protocol`] and
//! closes the connection, since the stream position is no longer
//! trustworthy. Semantic problems inside a well-formed `Submit` (bad
//! `n`, non-finite coordinates, exhausted budget) come back as tagged
//! error frames on a connection that stays open.

use super::stats::{CacheStats, StatsSnapshot, WindowStats, WorkerStats};
use crate::Error;
use jigsaw_num::C64;
use jigsaw_telemetry::{FlightEvent, FlightKind, HistogramSnapshot};
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"JGSW";

/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;

/// Upper bound on a frame payload (bytes). Chosen so an `n = 2048`
/// result image (`n²·16` bytes) fits with headroom while a corrupt
/// length prefix cannot make the daemon allocate unboundedly.
pub const MAX_PAYLOAD: u32 = 1 << 27;

/// Largest image size the serving protocol accepts (`Result` frames for
/// larger `n` would overflow [`MAX_PAYLOAD`]).
pub const MAX_N: u32 = 2048;

/// Job priority class. High-priority jobs are dequeued before any
/// normal-priority job, FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Default class.
    Normal,
    /// Dequeued ahead of every queued [`Priority::Normal`] job.
    High,
}

impl Priority {
    /// Wire encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            Priority::Normal => 0,
            Priority::High => 1,
        }
    }

    /// Decode the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(Priority::Normal),
            1 => Some(Priority::High),
            _ => None,
        }
    }
}

/// Failure category carried by an error frame. Mirrors the CLI exit-code
/// taxonomy (2 config · 3 data · 4 execution · 5 budget) plus a
/// serving-only `Protocol` category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCategory {
    /// A configuration parameter is outside its supported range.
    Config,
    /// Sample data malformed (non-finite coordinate, length mismatch).
    Data,
    /// A contained execution failure (the job panicked; daemon survives).
    Execution,
    /// The job's `RunBudget` was exhausted before a usable result.
    Budget,
    /// The client's bytes violated the frame grammar.
    Protocol,
    /// The daemon refused the job under load (see [`OverloadFrame`] —
    /// dedicated frame kind 9 carries the structured refusal; this
    /// category exists so clients and the CLI can classify it).
    Overloaded,
}

impl ErrorCategory {
    /// Wire encoding (matches the CLI exit code where one exists).
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCategory::Config => 2,
            ErrorCategory::Data => 3,
            ErrorCategory::Execution => 4,
            ErrorCategory::Budget => 5,
            ErrorCategory::Protocol => 6,
            ErrorCategory::Overloaded => 7,
        }
    }

    /// Decode the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            2 => Some(ErrorCategory::Config),
            3 => Some(ErrorCategory::Data),
            4 => Some(ErrorCategory::Execution),
            5 => Some(ErrorCategory::Budget),
            6 => Some(ErrorCategory::Protocol),
            7 => Some(ErrorCategory::Overloaded),
            _ => None,
        }
    }

    /// Classify a core error.
    pub fn from_error(e: &Error) -> Self {
        match e {
            Error::Config(_) => ErrorCategory::Config,
            Error::Data(_) => ErrorCategory::Data,
            Error::Execution(_) => ErrorCategory::Execution,
            Error::Budget(_) => ErrorCategory::Budget,
        }
    }
}

/// A reconstruction job submitted by a client: adjoint NuFFT of `m`
/// non-uniform samples onto an `n × n` image (f64, 2-D — the serving
/// layer fixes the scalar type and dimensionality at v1).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen correlation tag, echoed in the response.
    pub tag: u64,
    /// Queue priority class.
    pub priority: Priority,
    /// Image size per dimension (`N`).
    pub n: u32,
    /// Per-job wall-clock budget in milliseconds (0 = daemon default).
    pub budget_ms: u32,
    /// Non-uniform sample coordinates in cycles.
    pub coords: Vec<[f64; 2]>,
    /// Complex sample values, one per coordinate.
    pub values: Vec<C64>,
}

impl JobRequest {
    /// Rough resident cost of holding this job queued: the sample
    /// arrays (32 bytes per sample) plus the `n²` complex image (16
    /// bytes per pixel) an executor will allocate to answer it. Used by
    /// the daemon's `max_queued_bytes` admission ledger.
    pub fn approx_bytes(&self) -> usize {
        32 * self.coords.len().max(self.values.len())
            + 16 * (self.n as usize).saturating_mul(self.n as usize)
    }
}

/// A completed job: the reconstructed `n × n` image, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The request's correlation tag.
    pub tag: u64,
    /// Whether the plan came from the cache (true) or was built cold.
    pub cache_hit: bool,
    /// Image size per dimension.
    pub n: u32,
    /// Row-major `n²` complex image.
    pub image: Vec<C64>,
}

/// Why an overloaded daemon refused a job without running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue already held `max_queue_depth` normal-priority jobs.
    QueueDepth,
    /// Admitting the job would push queued sample bytes past
    /// `max_queued_bytes`.
    QueueBytes,
    /// The job's deadline had already expired before an executor could
    /// start it (swept from the queue or refused at `pop`).
    DeadlineExpired,
    /// The daemon is draining (graceful shutdown in progress): already
    /// accepted jobs still finish, new submits are refused. Retry
    /// against the restarted daemon.
    Draining,
}

impl ShedReason {
    /// Wire encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            ShedReason::QueueDepth => 1,
            ShedReason::QueueBytes => 2,
            ShedReason::DeadlineExpired => 3,
            ShedReason::Draining => 4,
        }
    }

    /// Decode the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(ShedReason::QueueDepth),
            2 => Some(ShedReason::QueueBytes),
            3 => Some(ShedReason::DeadlineExpired),
            4 => Some(ShedReason::Draining),
            _ => None,
        }
    }

    /// Short lowercase label for counters and dumps.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueDepth => "depth",
            ShedReason::QueueBytes => "bytes",
            ShedReason::DeadlineExpired => "expired",
            ShedReason::Draining => "draining",
        }
    }
}

/// Daemon → client: the job was refused without running because the
/// daemon is overloaded (bounded queue full, or the deadline already
/// expired in queue). `retry_after_ms` is the daemon's estimate of when
/// capacity will free up; a well-behaved client backs off at least that
/// long before resubmitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverloadFrame {
    /// The request's correlation tag.
    pub tag: u64,
    /// Why the job was shed.
    pub reason: ShedReason,
    /// Suggested client back-off before resubmitting, in milliseconds.
    pub retry_after_ms: u32,
    /// One-line human-readable message.
    pub message: String,
}

/// A structured failure report for one job (or, with `tag = 0` and
/// category [`ErrorCategory::Protocol`], for an unparseable frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The request's correlation tag (0 when no request was decoded).
    pub tag: u64,
    /// Failure category.
    pub category: ErrorCategory,
    /// One-line human-readable message.
    pub message: String,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → daemon: run a job.
    Submit(JobRequest),
    /// Daemon → client: job completed.
    Result(JobResult),
    /// Daemon → client: job or frame failed.
    Error(ErrorFrame),
    /// Liveness probe (client → daemon).
    Ping,
    /// Liveness answer, and the acknowledgement of `Shutdown`.
    Pong,
    /// Client → daemon: drain queued jobs, then exit cleanly.
    Shutdown,
    /// Client → daemon: send a live introspection snapshot. Answered on
    /// the connection's reader thread, never queued behind jobs.
    StatsRequest,
    /// Daemon → client: the introspection snapshot (boxed — it is an
    /// order of magnitude larger than every other variant).
    StatsReply(Box<StatsSnapshot>),
    /// Daemon → client: job refused under load; retry after the hint.
    Overloaded(OverloadFrame),
    /// Client → daemon: graceful drain. Acknowledged with [`Frame::Pong`];
    /// the daemon stops admitting (late submits get
    /// [`Frame::Overloaded`] with [`ShedReason::Draining`]), finishes
    /// every already-accepted job, snapshots its plan cache when
    /// configured, and exits 0. Distinct from the hard [`Frame::Shutdown`].
    Drain,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Submit(_) => 1,
            Frame::Result(_) => 2,
            Frame::Error(_) => 3,
            Frame::Ping => 4,
            Frame::Pong => 5,
            Frame::Shutdown => 6,
            Frame::StatsRequest => 7,
            Frame::StatsReply(_) => 8,
            Frame::Overloaded(_) => 9,
            Frame::Drain => 10,
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The stream ended cleanly at a frame boundary.
    Eof,
    /// An I/O failure (including EOF mid-frame).
    Io(String),
    /// The bytes violate the frame grammar. The stream position is no
    /// longer trustworthy; the connection should be closed.
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Eof => write!(f, "end of stream"),
            ProtocolError::Io(m) => write!(f, "i/o error: {m}"),
            ProtocolError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn push_hist(buf: &mut Vec<u8>, h: &HistogramSnapshot) {
    push_u64(buf, h.count);
    push_u64(buf, h.sum);
    push_u32(buf, h.buckets.len() as u32);
    for &(lo, hi, c) in &h.buckets {
        push_u64(buf, lo);
        push_u64(buf, hi);
        push_u64(buf, c);
    }
}

fn push_stats(buf: &mut Vec<u8>, s: &StatsSnapshot) {
    push_u32(buf, s.stats_version);
    push_u64(buf, s.uptime_ns);
    push_u32(buf, s.queue_depth);
    push_u32(buf, s.queue_high);
    push_u64(buf, s.cache.hits);
    push_u64(buf, s.cache.misses);
    push_u64(buf, s.cache.evictions);
    push_u32(buf, s.cache.len);
    push_u32(buf, s.cache.capacity);
    push_u32(buf, s.workers.len() as u32);
    for w in &s.workers {
        push_u64(buf, w.busy_ns);
        push_u64(buf, w.jobs);
    }
    push_u32(buf, s.windows.len() as u32);
    for w in &s.windows {
        push_str(buf, &w.name);
        push_u64(buf, w.window_ns);
        push_hist(buf, &w.hist);
    }
    push_u32(buf, s.counters.len() as u32);
    for (n, v) in &s.counters {
        push_str(buf, n);
        push_u64(buf, *v);
    }
    push_u32(buf, s.gauges.len() as u32);
    for (n, v) in &s.gauges {
        push_str(buf, n);
        push_f64(buf, *v);
    }
    push_u32(buf, s.histograms.len() as u32);
    for (n, h) in &s.histograms {
        push_str(buf, n);
        push_hist(buf, h);
    }
    push_u32(buf, s.flight.len() as u32);
    for e in &s.flight {
        push_u64(buf, e.ts_ns);
        buf.push(e.kind.as_u8());
        push_u64(buf, e.request_id);
        push_u64(buf, e.tag);
        push_str(buf, &e.detail);
    }
}

/// Serialize a frame (header + payload) into a fresh byte vector.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Submit(req) => {
            push_u64(&mut payload, req.tag);
            payload.push(req.priority.as_u8());
            payload.push(0);
            push_u32(&mut payload, req.n);
            push_u32(&mut payload, req.budget_ms);
            push_u32(&mut payload, req.coords.len() as u32);
            for c in &req.coords {
                push_f64(&mut payload, c[0]);
                push_f64(&mut payload, c[1]);
            }
            for v in &req.values {
                push_f64(&mut payload, v.re);
                push_f64(&mut payload, v.im);
            }
        }
        Frame::Result(res) => {
            push_u64(&mut payload, res.tag);
            payload.push(u8::from(res.cache_hit));
            payload.push(0);
            push_u32(&mut payload, res.n);
            for z in &res.image {
                push_f64(&mut payload, z.re);
                push_f64(&mut payload, z.im);
            }
        }
        Frame::Error(err) => {
            push_u64(&mut payload, err.tag);
            payload.push(err.category.as_u8());
            payload.push(0);
            push_u32(&mut payload, err.message.len() as u32);
            payload.extend_from_slice(err.message.as_bytes());
        }
        Frame::StatsReply(s) => push_stats(&mut payload, s),
        Frame::Overloaded(o) => {
            push_u64(&mut payload, o.tag);
            payload.push(o.reason.as_u8());
            payload.push(0);
            push_u32(&mut payload, o.retry_after_ms);
            push_u32(&mut payload, o.message.len() as u32);
            payload.extend_from_slice(o.message.as_bytes());
        }
        Frame::Ping | Frame::Pong | Frame::Shutdown | Frame::StatsRequest | Frame::Drain => {}
    }
    let mut out = Vec::with_capacity(10 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.kind());
    push_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Write one frame and flush.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                ProtocolError::Malformed(format!(
                    "payload truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }

    /// A length-prefixed UTF-8 string, capped at [`MAX_STATS_STR`].
    fn str_field(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        if len > MAX_STATS_STR {
            return Err(ProtocolError::Malformed(format!(
                "string field of {len} bytes exceeds maximum {MAX_STATS_STR}"
            )));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| ProtocolError::Malformed("string field is not UTF-8".into()))
    }

    /// A list count that must be payable by the remaining bytes at
    /// `min_item_bytes` each — rejects counts that would force a huge
    /// allocation before the bounds check catches the truncation.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_item_bytes) > remaining {
            return Err(ProtocolError::Malformed(format!(
                "list of {n} items cannot fit in {remaining} remaining payload bytes"
            )));
        }
        Ok(n)
    }
}

/// Cap on any single string inside a `StatsReply` payload.
const MAX_STATS_STR: usize = 1 << 12;

fn decode_hist(c: &mut Cursor<'_>) -> Result<HistogramSnapshot, ProtocolError> {
    let count = c.u64()?;
    let sum = c.u64()?;
    let nb = c.count(24)?;
    let mut buckets = Vec::with_capacity(nb);
    let mut total = 0u64;
    for _ in 0..nb {
        let (lo, hi, n) = (c.u64()?, c.u64()?, c.u64()?);
        if lo >= hi {
            return Err(ProtocolError::Malformed(format!(
                "histogram bucket with lo {lo} ≥ hi {hi}"
            )));
        }
        total = total.saturating_add(n);
        buckets.push((lo, hi, n));
    }
    if total > count {
        return Err(ProtocolError::Malformed(format!(
            "histogram buckets hold {total} samples but count claims {count}"
        )));
    }
    Ok(HistogramSnapshot {
        count,
        sum,
        buckets,
    })
}

fn decode_stats(c: &mut Cursor<'_>) -> Result<StatsSnapshot, ProtocolError> {
    let stats_version = c.u32()?;
    let uptime_ns = c.u64()?;
    let queue_depth = c.u32()?;
    let queue_high = c.u32()?;
    let cache = CacheStats {
        hits: c.u64()?,
        misses: c.u64()?,
        evictions: c.u64()?,
        len: c.u32()?,
        capacity: c.u32()?,
    };
    let nw = c.count(16)?;
    let mut workers = Vec::with_capacity(nw);
    for _ in 0..nw {
        workers.push(WorkerStats {
            busy_ns: c.u64()?,
            jobs: c.u64()?,
        });
    }
    let nwin = c.count(32)?;
    let mut windows = Vec::with_capacity(nwin);
    for _ in 0..nwin {
        windows.push(WindowStats {
            name: c.str_field()?,
            window_ns: c.u64()?,
            hist: decode_hist(c)?,
        });
    }
    let nc = c.count(12)?;
    let mut counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        counters.push((c.str_field()?, c.u64()?));
    }
    let ng = c.count(12)?;
    let mut gauges = Vec::with_capacity(ng);
    for _ in 0..ng {
        gauges.push((c.str_field()?, c.f64()?));
    }
    let nh = c.count(24)?;
    let mut histograms = Vec::with_capacity(nh);
    for _ in 0..nh {
        histograms.push((c.str_field()?, decode_hist(c)?));
    }
    let nf = c.count(29)?;
    let mut flight = Vec::with_capacity(nf);
    for _ in 0..nf {
        let ts_ns = c.u64()?;
        let kb = c.u8()?;
        let kind = FlightKind::from_u8(kb)
            .ok_or_else(|| ProtocolError::Malformed(format!("bad flight event kind {kb}")))?;
        flight.push(FlightEvent {
            ts_ns,
            kind,
            request_id: c.u64()?,
            tag: c.u64()?,
            detail: c.str_field()?,
        });
    }
    Ok(StatsSnapshot {
        stats_version,
        uptime_ns,
        queue_depth,
        queue_high,
        cache,
        workers,
        windows,
        counters,
        gauges,
        histograms,
        flight,
    })
}

/// Read one frame. [`ProtocolError::Eof`] means the stream ended cleanly
/// *between* frames; EOF inside a frame is [`ProtocolError::Io`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtocolError> {
    // Probe one byte so a clean close between frames is distinguishable
    // from a mid-frame truncation.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(ProtocolError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let mut header = [0u8; 10];
    header[0] = first[0];
    r.read_exact(&mut header[1..])?;
    if header[..4] != MAGIC {
        return Err(ProtocolError::Malformed(format!(
            "bad magic {:02x?}",
            &header[..4]
        )));
    }
    if header[4] != VERSION {
        return Err(ProtocolError::Malformed(format!(
            "unsupported protocol version {}",
            header[4]
        )));
    }
    let kind = header[5];
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Malformed(format!(
            "payload length {len} exceeds maximum {MAX_PAYLOAD}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(kind, &payload)
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, ProtocolError> {
    let mut c = Cursor::new(payload);
    match kind {
        1 => {
            let tag = c.u64()?;
            let pr = c.u8()?;
            let priority = Priority::from_u8(pr)
                .ok_or_else(|| ProtocolError::Malformed(format!("bad priority byte {pr}")))?;
            let _reserved = c.u8()?;
            let n = c.u32()?;
            let budget_ms = c.u32()?;
            let m = c.u32()? as usize;
            // Two f64 per coordinate plus two per value: 32 bytes/sample.
            let expected = 22 + 32 * m as u64;
            if payload.len() as u64 != expected {
                return Err(ProtocolError::Malformed(format!(
                    "submit frame with m = {m} must carry {expected} payload bytes, got {}",
                    payload.len()
                )));
            }
            let mut coords = Vec::with_capacity(m);
            for _ in 0..m {
                coords.push([c.f64()?, c.f64()?]);
            }
            let mut values = Vec::with_capacity(m);
            for _ in 0..m {
                values.push(C64::new(c.f64()?, c.f64()?));
            }
            c.finish()?;
            Ok(Frame::Submit(JobRequest {
                tag,
                priority,
                n,
                budget_ms,
                coords,
                values,
            }))
        }
        2 => {
            let tag = c.u64()?;
            let cache_hit = c.u8()? != 0;
            let _reserved = c.u8()?;
            let n = c.u32()?;
            let pixels = (n as u64) * (n as u64);
            let expected = 14 + 16 * pixels;
            if payload.len() as u64 != expected {
                return Err(ProtocolError::Malformed(format!(
                    "result frame with n = {n} must carry {expected} payload bytes, got {}",
                    payload.len()
                )));
            }
            let mut image = Vec::with_capacity(pixels as usize);
            for _ in 0..pixels {
                image.push(C64::new(c.f64()?, c.f64()?));
            }
            c.finish()?;
            Ok(Frame::Result(JobResult {
                tag,
                cache_hit,
                n,
                image,
            }))
        }
        3 => {
            let tag = c.u64()?;
            let cat = c.u8()?;
            let category = ErrorCategory::from_u8(cat)
                .ok_or_else(|| ProtocolError::Malformed(format!("bad error category {cat}")))?;
            let _reserved = c.u8()?;
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let message = String::from_utf8(bytes.to_vec())
                .map_err(|_| ProtocolError::Malformed("error message is not UTF-8".into()))?;
            c.finish()?;
            Ok(Frame::Error(ErrorFrame {
                tag,
                category,
                message,
            }))
        }
        4..=7 | 10 => {
            c.finish()?;
            Ok(match kind {
                4 => Frame::Ping,
                5 => Frame::Pong,
                6 => Frame::Shutdown,
                7 => Frame::StatsRequest,
                _ => Frame::Drain,
            })
        }
        8 => {
            let stats = decode_stats(&mut c)?;
            c.finish()?;
            Ok(Frame::StatsReply(Box::new(stats)))
        }
        9 => {
            let tag = c.u64()?;
            let rb = c.u8()?;
            let reason = ShedReason::from_u8(rb)
                .ok_or_else(|| ProtocolError::Malformed(format!("bad shed reason {rb}")))?;
            let _reserved = c.u8()?;
            let retry_after_ms = c.u32()?;
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let message = String::from_utf8(bytes.to_vec())
                .map_err(|_| ProtocolError::Malformed("overload message is not UTF-8".into()))?;
            c.finish()?;
            Ok(Frame::Overloaded(OverloadFrame {
                tag,
                reason,
                retry_after_ms,
                message,
            }))
        }
        other => Err(ProtocolError::Malformed(format!(
            "unknown frame kind {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: &Frame) -> Frame {
        let bytes = encode(f);
        let mut r = io::Cursor::new(bytes);
        let back = read_frame(&mut r).expect("decode");
        // The stream must now be exactly at EOF.
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Eof)));
        back
    }

    #[test]
    fn empty_frames_round_trip() {
        for f in [
            Frame::Ping,
            Frame::Pong,
            Frame::Shutdown,
            Frame::StatsRequest,
            Frame::Drain,
        ] {
            assert_eq!(round_trip(&f), f);
        }
    }

    #[test]
    fn submit_round_trips_bitwise() {
        let req = JobRequest {
            tag: 0xDEAD_BEEF,
            priority: Priority::High,
            n: 64,
            budget_ms: 250,
            coords: vec![[0.25, -0.5], [f64::MIN_POSITIVE, 31.0]],
            values: vec![C64::new(1.5, -2.5), C64::new(-0.0, 3.25)],
        };
        match round_trip(&Frame::Submit(req.clone())) {
            Frame::Submit(back) => {
                assert_eq!(back.tag, req.tag);
                assert_eq!(back.priority, req.priority);
                assert_eq!(back.n, req.n);
                assert_eq!(back.budget_ms, req.budget_ms);
                // Bitwise, not approximate: the wire carries bit patterns.
                for (a, b) in back.coords.iter().zip(&req.coords) {
                    assert_eq!(a[0].to_bits(), b[0].to_bits());
                    assert_eq!(a[1].to_bits(), b[1].to_bits());
                }
                for (a, b) in back.values.iter().zip(&req.values) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits());
                    assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn result_and_error_round_trip() {
        let res = Frame::Result(JobResult {
            tag: 7,
            cache_hit: true,
            n: 2,
            image: vec![C64::new(0.0, 1.0); 4],
        });
        assert_eq!(round_trip(&res), res);
        let err = Frame::Error(ErrorFrame {
            tag: 9,
            category: ErrorCategory::Budget,
            message: "deadline blown ×2 µ".into(),
        });
        assert_eq!(round_trip(&err), err);
    }

    #[test]
    fn overloaded_round_trips_retry_hint_bitwise() {
        for reason in [
            ShedReason::QueueDepth,
            ShedReason::QueueBytes,
            ShedReason::DeadlineExpired,
            ShedReason::Draining,
        ] {
            for retry_after_ms in [0u32, 1, 25, 100, 29_999, u32::MAX] {
                let f = Frame::Overloaded(OverloadFrame {
                    tag: 0x8000_0000_0000_0001,
                    reason,
                    retry_after_ms,
                    message: "queue full: 1024 jobs deep µ".into(),
                });
                match round_trip(&f) {
                    Frame::Overloaded(back) => {
                        assert_eq!(back.reason, reason);
                        // Bitwise: the hint must survive the wire exactly.
                        assert_eq!(
                            back.retry_after_ms.to_le_bytes(),
                            retry_after_ms.to_le_bytes()
                        );
                        assert_eq!(Frame::Overloaded(back), f);
                    }
                    other => panic!("wrong frame {other:?}"),
                }
            }
        }
    }

    #[test]
    fn overloaded_truncation_and_bad_reason_never_panic() {
        let bytes = encode(&Frame::Overloaded(OverloadFrame {
            tag: 42,
            reason: ShedReason::QueueBytes,
            retry_after_ms: 250,
            message: "x".repeat(48),
        }));
        // Cut at every byte boundary: clean error, never a panic.
        for cut in 0..bytes.len() {
            let e = read_frame(&mut io::Cursor::new(bytes[..cut].to_vec())).unwrap_err();
            assert!(
                matches!(
                    e,
                    ProtocolError::Io(_) | ProtocolError::Malformed(_) | ProtocolError::Eof
                ),
                "cut at {cut}: {e:?}"
            );
        }
        // An unknown reason byte is Malformed, not a panic: the decoder
        // stays total as new reasons append.
        let mut bad = bytes.clone();
        bad[10 + 8] = 0xEE;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bad)),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn overloaded_fuzz_decode_is_total() {
        let bytes = encode(&Frame::Overloaded(OverloadFrame {
            tag: 7,
            reason: ShedReason::DeadlineExpired,
            retry_after_ms: 1_000,
            message: "deadline expired 12ms before pop".into(),
        }));
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state
        };
        for _ in 0..2_000 {
            let mut mutated = bytes.clone();
            let flips = 1 + (next() % 4) as usize;
            for _ in 0..flips {
                let idx = (next() % mutated.len() as u64) as usize;
                mutated[idx] ^= (next() & 0xFF) as u8;
            }
            let _ = read_frame(&mut io::Cursor::new(mutated));
        }
    }

    #[test]
    fn bad_magic_is_malformed() {
        let mut bytes = encode(&Frame::Ping);
        bytes[0] = b'X';
        let e = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(e, ProtocolError::Malformed(_)), "{e:?}");
    }

    #[test]
    fn bad_version_kind_and_length_are_malformed() {
        let mut v = encode(&Frame::Ping);
        v[4] = 99;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(v)),
            Err(ProtocolError::Malformed(_))
        ));
        let mut k = encode(&Frame::Ping);
        k[5] = 42;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(k)),
            Err(ProtocolError::Malformed(_))
        ));
        let mut l = encode(&Frame::Ping);
        l[6..10].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut io::Cursor::new(l)),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_is_distinguished_from_clean_eof() {
        let bytes = encode(&Frame::Error(ErrorFrame {
            tag: 1,
            category: ErrorCategory::Data,
            message: "x".repeat(64),
        }));
        // Cut mid-frame: an I/O error, not a clean EOF.
        let cut = &bytes[..bytes.len() - 5];
        let e = read_frame(&mut io::Cursor::new(cut.to_vec())).unwrap_err();
        assert!(matches!(e, ProtocolError::Io(_)), "{e:?}");
        // Empty stream: clean EOF.
        assert!(matches!(
            read_frame(&mut io::Cursor::new(Vec::new())),
            Err(ProtocolError::Eof)
        ));
    }

    #[test]
    fn inconsistent_sample_count_is_malformed() {
        let mut bytes = encode(&Frame::Submit(JobRequest {
            tag: 1,
            priority: Priority::Normal,
            n: 8,
            budget_ms: 0,
            coords: vec![[0.0, 0.0]],
            values: vec![C64::new(0.0, 0.0)],
        }));
        // Claim m = 2 without providing the bytes.
        let m_offset = 10 + 8 + 1 + 1 + 4 + 4;
        bytes[m_offset..m_offset + 4].copy_from_slice(&2u32.to_le_bytes());
        let e = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(e, ProtocolError::Malformed(_)), "{e:?}");
    }

    #[test]
    fn stats_frames_round_trip() {
        assert_eq!(round_trip(&Frame::StatsRequest), Frame::StatsRequest);
        let reply = Frame::StatsReply(Box::new(super::super::stats::sample_snapshot()));
        assert_eq!(round_trip(&reply), reply);
        // An empty snapshot (all vecs empty) must also survive the wire.
        let empty = Frame::StatsReply(Box::new(StatsSnapshot {
            stats_version: super::super::stats::STATS_VERSION,
            uptime_ns: 0,
            queue_depth: 0,
            queue_high: 0,
            cache: CacheStats::default(),
            workers: Vec::new(),
            windows: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            flight: Vec::new(),
        }));
        assert_eq!(round_trip(&empty), empty);
    }

    #[test]
    fn stats_reply_truncation_never_panics() {
        let bytes = encode(&Frame::StatsReply(Box::new(
            super::super::stats::sample_snapshot(),
        )));
        // Cutting the frame at every byte boundary must yield a clean
        // error (short header → Io; short payload → Io; inconsistent
        // interior counts → Malformed), never a panic or a bogus Ok.
        for cut in 0..bytes.len() {
            let e = read_frame(&mut io::Cursor::new(bytes[..cut].to_vec())).unwrap_err();
            assert!(
                matches!(
                    e,
                    ProtocolError::Io(_) | ProtocolError::Malformed(_) | ProtocolError::Eof
                ),
                "cut at {cut}: {e:?}"
            );
        }
    }

    #[test]
    fn stats_reply_fuzz_decode_is_total() {
        let bytes = encode(&Frame::StatsReply(Box::new(
            super::super::stats::sample_snapshot(),
        )));
        // Deterministic LCG-driven byte mutations: decode must return
        // Ok or Err, never panic, and never over-allocate (the count
        // guards bound Vec capacities by remaining payload bytes).
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state
        };
        for _ in 0..2_000 {
            let mut mutated = bytes.clone();
            let flips = 1 + (next() % 4) as usize;
            for _ in 0..flips {
                let idx = (next() % mutated.len() as u64) as usize;
                mutated[idx] ^= (next() & 0xFF) as u8;
            }
            let _ = read_frame(&mut io::Cursor::new(mutated));
        }
    }

    #[test]
    fn category_and_priority_codes_are_stable() {
        assert_eq!(ErrorCategory::Config.as_u8(), 2);
        assert_eq!(ErrorCategory::Data.as_u8(), 3);
        assert_eq!(ErrorCategory::Execution.as_u8(), 4);
        assert_eq!(ErrorCategory::Budget.as_u8(), 5);
        assert_eq!(ErrorCategory::Protocol.as_u8(), 6);
        assert_eq!(ErrorCategory::Overloaded.as_u8(), 7);
        for b in [2u8, 3, 4, 5, 6, 7] {
            assert_eq!(ErrorCategory::from_u8(b).map(|c| c.as_u8()), Some(b));
        }
        assert_eq!(ErrorCategory::from_u8(8), None);
        for r in [
            ShedReason::QueueDepth,
            ShedReason::QueueBytes,
            ShedReason::DeadlineExpired,
            ShedReason::Draining,
        ] {
            assert_eq!(ShedReason::from_u8(r.as_u8()), Some(r));
            assert!(!r.label().is_empty());
        }
        assert_eq!(ShedReason::from_u8(0), None);
        assert_eq!(ShedReason::from_u8(5), None);
        assert_eq!(Priority::from_u8(0), Some(Priority::Normal));
        assert_eq!(Priority::from_u8(1), Some(Priority::High));
        assert_eq!(Priority::from_u8(2), None);
        assert_eq!(
            ErrorCategory::from_error(&Error::Budget("x".into())),
            ErrorCategory::Budget
        );
    }
}
