//! The `jigsaw serve` wire protocol: length-prefixed binary frames.
//!
//! The daemon speaks a std-only, little-endian framing over any byte
//! stream (a local Unix socket, or stdin/stdout in `--stdio` mode). Every
//! frame is:
//!
//! ```text
//! magic "JGSW" (4) · version u8 · kind u8 · payload_len u32 · payload
//! ```
//!
//! Payload layouts (all integers little-endian, all floats IEEE-754
//! `f64` bit patterns):
//!
//! | kind | frame      | payload                                          |
//! |------|------------|--------------------------------------------------|
//! | 1    | `Submit`   | tag u64 · priority u8 · 0 u8 · n u32 · budget_ms u32 · m u32 · m×(kx,ky) f64 · m×(re,im) f64 |
//! | 2    | `Result`   | tag u64 · cache_hit u8 · 0 u8 · n u32 · n²×(re,im) f64 |
//! | 3    | `Error`    | tag u64 · category u8 · 0 u8 · msg_len u32 · msg UTF-8 |
//! | 4    | `Ping`     | (empty)                                          |
//! | 5    | `Pong`     | (empty)                                          |
//! | 6    | `Shutdown` | (empty)                                          |
//!
//! A frame that violates the grammar (bad magic, unknown version or
//! kind, length out of bounds, payload shorter than its own counts
//! claim) decodes to [`ProtocolError::Malformed`]; the daemon answers
//! with an error frame of category [`ErrorCategory::Protocol`] and
//! closes the connection, since the stream position is no longer
//! trustworthy. Semantic problems inside a well-formed `Submit` (bad
//! `n`, non-finite coordinates, exhausted budget) come back as tagged
//! error frames on a connection that stays open.

use crate::Error;
use jigsaw_num::C64;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"JGSW";

/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;

/// Upper bound on a frame payload (bytes). Chosen so an `n = 2048`
/// result image (`n²·16` bytes) fits with headroom while a corrupt
/// length prefix cannot make the daemon allocate unboundedly.
pub const MAX_PAYLOAD: u32 = 1 << 27;

/// Largest image size the serving protocol accepts (`Result` frames for
/// larger `n` would overflow [`MAX_PAYLOAD`]).
pub const MAX_N: u32 = 2048;

/// Job priority class. High-priority jobs are dequeued before any
/// normal-priority job, FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Default class.
    Normal,
    /// Dequeued ahead of every queued [`Priority::Normal`] job.
    High,
}

impl Priority {
    /// Wire encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            Priority::Normal => 0,
            Priority::High => 1,
        }
    }

    /// Decode the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(Priority::Normal),
            1 => Some(Priority::High),
            _ => None,
        }
    }
}

/// Failure category carried by an error frame. Mirrors the CLI exit-code
/// taxonomy (2 config · 3 data · 4 execution · 5 budget) plus a
/// serving-only `Protocol` category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCategory {
    /// A configuration parameter is outside its supported range.
    Config,
    /// Sample data malformed (non-finite coordinate, length mismatch).
    Data,
    /// A contained execution failure (the job panicked; daemon survives).
    Execution,
    /// The job's `RunBudget` was exhausted before a usable result.
    Budget,
    /// The client's bytes violated the frame grammar.
    Protocol,
}

impl ErrorCategory {
    /// Wire encoding (matches the CLI exit code where one exists).
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCategory::Config => 2,
            ErrorCategory::Data => 3,
            ErrorCategory::Execution => 4,
            ErrorCategory::Budget => 5,
            ErrorCategory::Protocol => 6,
        }
    }

    /// Decode the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            2 => Some(ErrorCategory::Config),
            3 => Some(ErrorCategory::Data),
            4 => Some(ErrorCategory::Execution),
            5 => Some(ErrorCategory::Budget),
            6 => Some(ErrorCategory::Protocol),
            _ => None,
        }
    }

    /// Classify a core error.
    pub fn from_error(e: &Error) -> Self {
        match e {
            Error::Config(_) => ErrorCategory::Config,
            Error::Data(_) => ErrorCategory::Data,
            Error::Execution(_) => ErrorCategory::Execution,
            Error::Budget(_) => ErrorCategory::Budget,
        }
    }
}

/// A reconstruction job submitted by a client: adjoint NuFFT of `m`
/// non-uniform samples onto an `n × n` image (f64, 2-D — the serving
/// layer fixes the scalar type and dimensionality at v1).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen correlation tag, echoed in the response.
    pub tag: u64,
    /// Queue priority class.
    pub priority: Priority,
    /// Image size per dimension (`N`).
    pub n: u32,
    /// Per-job wall-clock budget in milliseconds (0 = daemon default).
    pub budget_ms: u32,
    /// Non-uniform sample coordinates in cycles.
    pub coords: Vec<[f64; 2]>,
    /// Complex sample values, one per coordinate.
    pub values: Vec<C64>,
}

/// A completed job: the reconstructed `n × n` image, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The request's correlation tag.
    pub tag: u64,
    /// Whether the plan came from the cache (true) or was built cold.
    pub cache_hit: bool,
    /// Image size per dimension.
    pub n: u32,
    /// Row-major `n²` complex image.
    pub image: Vec<C64>,
}

/// A structured failure report for one job (or, with `tag = 0` and
/// category [`ErrorCategory::Protocol`], for an unparseable frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The request's correlation tag (0 when no request was decoded).
    pub tag: u64,
    /// Failure category.
    pub category: ErrorCategory,
    /// One-line human-readable message.
    pub message: String,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → daemon: run a job.
    Submit(JobRequest),
    /// Daemon → client: job completed.
    Result(JobResult),
    /// Daemon → client: job or frame failed.
    Error(ErrorFrame),
    /// Liveness probe (client → daemon).
    Ping,
    /// Liveness answer, and the acknowledgement of `Shutdown`.
    Pong,
    /// Client → daemon: drain queued jobs, then exit cleanly.
    Shutdown,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Submit(_) => 1,
            Frame::Result(_) => 2,
            Frame::Error(_) => 3,
            Frame::Ping => 4,
            Frame::Pong => 5,
            Frame::Shutdown => 6,
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The stream ended cleanly at a frame boundary.
    Eof,
    /// An I/O failure (including EOF mid-frame).
    Io(String),
    /// The bytes violate the frame grammar. The stream position is no
    /// longer trustworthy; the connection should be closed.
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Eof => write!(f, "end of stream"),
            ProtocolError::Io(m) => write!(f, "i/o error: {m}"),
            ProtocolError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Serialize a frame (header + payload) into a fresh byte vector.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Submit(req) => {
            push_u64(&mut payload, req.tag);
            payload.push(req.priority.as_u8());
            payload.push(0);
            push_u32(&mut payload, req.n);
            push_u32(&mut payload, req.budget_ms);
            push_u32(&mut payload, req.coords.len() as u32);
            for c in &req.coords {
                push_f64(&mut payload, c[0]);
                push_f64(&mut payload, c[1]);
            }
            for v in &req.values {
                push_f64(&mut payload, v.re);
                push_f64(&mut payload, v.im);
            }
        }
        Frame::Result(res) => {
            push_u64(&mut payload, res.tag);
            payload.push(u8::from(res.cache_hit));
            payload.push(0);
            push_u32(&mut payload, res.n);
            for z in &res.image {
                push_f64(&mut payload, z.re);
                push_f64(&mut payload, z.im);
            }
        }
        Frame::Error(err) => {
            push_u64(&mut payload, err.tag);
            payload.push(err.category.as_u8());
            payload.push(0);
            push_u32(&mut payload, err.message.len() as u32);
            payload.extend_from_slice(err.message.as_bytes());
        }
        Frame::Ping | Frame::Pong | Frame::Shutdown => {}
    }
    let mut out = Vec::with_capacity(10 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.kind());
    push_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Write one frame and flush.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                ProtocolError::Malformed(format!(
                    "payload truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Read one frame. [`ProtocolError::Eof`] means the stream ended cleanly
/// *between* frames; EOF inside a frame is [`ProtocolError::Io`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtocolError> {
    // Probe one byte so a clean close between frames is distinguishable
    // from a mid-frame truncation.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(ProtocolError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let mut header = [0u8; 10];
    header[0] = first[0];
    r.read_exact(&mut header[1..])?;
    if header[..4] != MAGIC {
        return Err(ProtocolError::Malformed(format!(
            "bad magic {:02x?}",
            &header[..4]
        )));
    }
    if header[4] != VERSION {
        return Err(ProtocolError::Malformed(format!(
            "unsupported protocol version {}",
            header[4]
        )));
    }
    let kind = header[5];
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Malformed(format!(
            "payload length {len} exceeds maximum {MAX_PAYLOAD}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(kind, &payload)
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, ProtocolError> {
    let mut c = Cursor::new(payload);
    match kind {
        1 => {
            let tag = c.u64()?;
            let pr = c.u8()?;
            let priority = Priority::from_u8(pr)
                .ok_or_else(|| ProtocolError::Malformed(format!("bad priority byte {pr}")))?;
            let _reserved = c.u8()?;
            let n = c.u32()?;
            let budget_ms = c.u32()?;
            let m = c.u32()? as usize;
            // Two f64 per coordinate plus two per value: 32 bytes/sample.
            let expected = 22 + 32 * m as u64;
            if payload.len() as u64 != expected {
                return Err(ProtocolError::Malformed(format!(
                    "submit frame with m = {m} must carry {expected} payload bytes, got {}",
                    payload.len()
                )));
            }
            let mut coords = Vec::with_capacity(m);
            for _ in 0..m {
                coords.push([c.f64()?, c.f64()?]);
            }
            let mut values = Vec::with_capacity(m);
            for _ in 0..m {
                values.push(C64::new(c.f64()?, c.f64()?));
            }
            c.finish()?;
            Ok(Frame::Submit(JobRequest {
                tag,
                priority,
                n,
                budget_ms,
                coords,
                values,
            }))
        }
        2 => {
            let tag = c.u64()?;
            let cache_hit = c.u8()? != 0;
            let _reserved = c.u8()?;
            let n = c.u32()?;
            let pixels = (n as u64) * (n as u64);
            let expected = 14 + 16 * pixels;
            if payload.len() as u64 != expected {
                return Err(ProtocolError::Malformed(format!(
                    "result frame with n = {n} must carry {expected} payload bytes, got {}",
                    payload.len()
                )));
            }
            let mut image = Vec::with_capacity(pixels as usize);
            for _ in 0..pixels {
                image.push(C64::new(c.f64()?, c.f64()?));
            }
            c.finish()?;
            Ok(Frame::Result(JobResult {
                tag,
                cache_hit,
                n,
                image,
            }))
        }
        3 => {
            let tag = c.u64()?;
            let cat = c.u8()?;
            let category = ErrorCategory::from_u8(cat)
                .ok_or_else(|| ProtocolError::Malformed(format!("bad error category {cat}")))?;
            let _reserved = c.u8()?;
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let message = String::from_utf8(bytes.to_vec())
                .map_err(|_| ProtocolError::Malformed("error message is not UTF-8".into()))?;
            c.finish()?;
            Ok(Frame::Error(ErrorFrame {
                tag,
                category,
                message,
            }))
        }
        4..=6 => {
            c.finish()?;
            Ok(match kind {
                4 => Frame::Ping,
                5 => Frame::Pong,
                _ => Frame::Shutdown,
            })
        }
        other => Err(ProtocolError::Malformed(format!(
            "unknown frame kind {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: &Frame) -> Frame {
        let bytes = encode(f);
        let mut r = io::Cursor::new(bytes);
        let back = read_frame(&mut r).expect("decode");
        // The stream must now be exactly at EOF.
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Eof)));
        back
    }

    #[test]
    fn empty_frames_round_trip() {
        for f in [Frame::Ping, Frame::Pong, Frame::Shutdown] {
            assert_eq!(round_trip(&f), f);
        }
    }

    #[test]
    fn submit_round_trips_bitwise() {
        let req = JobRequest {
            tag: 0xDEAD_BEEF,
            priority: Priority::High,
            n: 64,
            budget_ms: 250,
            coords: vec![[0.25, -0.5], [f64::MIN_POSITIVE, 31.0]],
            values: vec![C64::new(1.5, -2.5), C64::new(-0.0, 3.25)],
        };
        match round_trip(&Frame::Submit(req.clone())) {
            Frame::Submit(back) => {
                assert_eq!(back.tag, req.tag);
                assert_eq!(back.priority, req.priority);
                assert_eq!(back.n, req.n);
                assert_eq!(back.budget_ms, req.budget_ms);
                // Bitwise, not approximate: the wire carries bit patterns.
                for (a, b) in back.coords.iter().zip(&req.coords) {
                    assert_eq!(a[0].to_bits(), b[0].to_bits());
                    assert_eq!(a[1].to_bits(), b[1].to_bits());
                }
                for (a, b) in back.values.iter().zip(&req.values) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits());
                    assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn result_and_error_round_trip() {
        let res = Frame::Result(JobResult {
            tag: 7,
            cache_hit: true,
            n: 2,
            image: vec![C64::new(0.0, 1.0); 4],
        });
        assert_eq!(round_trip(&res), res);
        let err = Frame::Error(ErrorFrame {
            tag: 9,
            category: ErrorCategory::Budget,
            message: "deadline blown ×2 µ".into(),
        });
        assert_eq!(round_trip(&err), err);
    }

    #[test]
    fn bad_magic_is_malformed() {
        let mut bytes = encode(&Frame::Ping);
        bytes[0] = b'X';
        let e = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(e, ProtocolError::Malformed(_)), "{e:?}");
    }

    #[test]
    fn bad_version_kind_and_length_are_malformed() {
        let mut v = encode(&Frame::Ping);
        v[4] = 99;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(v)),
            Err(ProtocolError::Malformed(_))
        ));
        let mut k = encode(&Frame::Ping);
        k[5] = 42;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(k)),
            Err(ProtocolError::Malformed(_))
        ));
        let mut l = encode(&Frame::Ping);
        l[6..10].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut io::Cursor::new(l)),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_is_distinguished_from_clean_eof() {
        let bytes = encode(&Frame::Error(ErrorFrame {
            tag: 1,
            category: ErrorCategory::Data,
            message: "x".repeat(64),
        }));
        // Cut mid-frame: an I/O error, not a clean EOF.
        let cut = &bytes[..bytes.len() - 5];
        let e = read_frame(&mut io::Cursor::new(cut.to_vec())).unwrap_err();
        assert!(matches!(e, ProtocolError::Io(_)), "{e:?}");
        // Empty stream: clean EOF.
        assert!(matches!(
            read_frame(&mut io::Cursor::new(Vec::new())),
            Err(ProtocolError::Eof)
        ));
    }

    #[test]
    fn inconsistent_sample_count_is_malformed() {
        let mut bytes = encode(&Frame::Submit(JobRequest {
            tag: 1,
            priority: Priority::Normal,
            n: 8,
            budget_ms: 0,
            coords: vec![[0.0, 0.0]],
            values: vec![C64::new(0.0, 0.0)],
        }));
        // Claim m = 2 without providing the bytes.
        let m_offset = 10 + 8 + 1 + 1 + 4 + 4;
        bytes[m_offset..m_offset + 4].copy_from_slice(&2u32.to_le_bytes());
        let e = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(e, ProtocolError::Malformed(_)), "{e:?}");
    }

    #[test]
    fn category_and_priority_codes_are_stable() {
        assert_eq!(ErrorCategory::Config.as_u8(), 2);
        assert_eq!(ErrorCategory::Data.as_u8(), 3);
        assert_eq!(ErrorCategory::Execution.as_u8(), 4);
        assert_eq!(ErrorCategory::Budget.as_u8(), 5);
        assert_eq!(ErrorCategory::Protocol.as_u8(), 6);
        for b in [2u8, 3, 4, 5, 6] {
            assert_eq!(ErrorCategory::from_u8(b).map(|c| c.as_u8()), Some(b));
        }
        assert_eq!(ErrorCategory::from_u8(7), None);
        assert_eq!(Priority::from_u8(0), Some(Priority::Normal));
        assert_eq!(Priority::from_u8(1), Some(Priority::High));
        assert_eq!(Priority::from_u8(2), None);
        assert_eq!(
            ErrorCategory::from_error(&Error::Budget("x".into())),
            ErrorCategory::Budget
        );
    }
}
