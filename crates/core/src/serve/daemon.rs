//! The long-lived `jigsaw serve` daemon: accept loop, two-priority job
//! queue, and executor threads.
//!
//! Transport is either a local Unix socket ([`serve_unix`], one reader
//! thread per connection) or the process's stdin/stdout
//! ([`serve_stdio`], the fallback framing for environments without
//! sockets). Both feed the same [`JobQueue`]; `--jobs` executor threads
//! pop jobs (high priority first, FIFO within a class), run them through
//! the shared [`ServeEngine`], and write the tagged response frame back
//! to the submitting connection.
//!
//! ## Shutdown
//!
//! A `Shutdown` frame is acknowledged with `Pong`, then the queue is
//! *closed*: no new jobs are admitted (late submitters get a
//! protocol-category error frame), executors drain everything already
//! queued, and the accept loop returns so the process can exit 0. A
//! client disconnect (EOF) closes only that connection — except in
//! stdio mode, where stdin EOF is the only possible "client gone"
//! signal and triggers the same clean drain.

use super::engine::ServeEngine;
use super::protocol::{
    read_frame, write_frame, ErrorCategory, ErrorFrame, Frame, JobRequest, ProtocolError,
};
use crate::budget::RunBudget;
use crate::{Error, Result};
use jigsaw_telemetry as telemetry;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon tuning knobs (the `jigsaw serve` flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Number of executor threads multiplexing jobs onto the worker
    /// pool.
    pub executors: usize,
    /// Default per-job wall-clock budget in milliseconds, applied when a
    /// request carries `budget_ms = 0`. Zero means unlimited.
    pub default_budget_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            cache_capacity: 8,
            executors: 2,
            default_budget_ms: 0,
        }
    }
}

/// A writer shared between the connection's reader thread (error
/// frames) and the executors (results) — frames are written whole under
/// the lock, so responses never interleave.
type Reply = Arc<Mutex<Box<dyn Write + Send>>>;

struct Queued {
    req: JobRequest,
    budget: RunBudget,
    reply: Reply,
    enqueued: Instant,
    /// Trace id threaded through every span the job opens (the client's
    /// tag when nonzero, else daemon-assigned).
    request_id: u64,
}

#[derive(Default)]
struct QueueState {
    high: VecDeque<Queued>,
    normal: VecDeque<Queued>,
    closed: bool,
}

impl QueueState {
    fn depth(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

/// Two-priority MPMC job queue with a close latch for clean shutdown.
struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue a job; `Err(job)` if the queue is closed.
    // The large Err variant is the point: a closed queue hands the job
    // back to the caller so its reply channel can carry the refusal.
    #[allow(clippy::result_large_err)]
    fn push(&self, job: Queued) -> std::result::Result<(), Queued> {
        let mut s = self.lock();
        if s.closed {
            return Err(job);
        }
        match job.req.priority {
            super::protocol::Priority::High => s.high.push_back(job),
            super::protocol::Priority::Normal => s.normal.push_back(job),
        }
        telemetry::record_gauge("serve.queue_depth", s.depth() as f64);
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Block until a job is available (high priority first) or the
    /// queue is closed *and* drained (`None`).
    fn pop(&self) -> Option<Queued> {
        let mut s = self.lock();
        loop {
            if let Some(job) = s.high.pop_front().or_else(|| s.normal.pop_front()) {
                telemetry::record_gauge("serve.queue_depth", s.depth() as f64);
                return Some(job);
            }
            if s.closed {
                return None;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stop admitting jobs; wake every waiting executor so the drain
    /// can finish.
    fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

/// State shared by the accept loop, connection readers, and executors.
struct Daemon {
    engine: ServeEngine,
    queue: JobQueue,
    stop: AtomicBool,
    default_budget_ms: u64,
    next_request_id: AtomicU64,
}

impl Daemon {
    fn new(opts: &ServeOptions) -> Arc<Self> {
        Arc::new(Self {
            engine: ServeEngine::new(opts.cache_capacity),
            queue: JobQueue::new(),
            stop: AtomicBool::new(false),
            default_budget_ms: opts.default_budget_ms,
            next_request_id: AtomicU64::new(1),
        })
    }

    /// Trace id for a submission: the client's tag when nonzero (so a
    /// client can correlate its own traces), else the next value of a
    /// daemon-wide counter.
    fn request_id_for(&self, req: &JobRequest) -> u64 {
        if req.tag != 0 {
            req.tag
        } else {
            self.next_request_id.fetch_add(1, Ordering::Relaxed)
        }
    }

    /// Answer a `StatsRequest`: queue depths under the queue's own
    /// brief lock, then the engine's lock-free snapshot. Runs on the
    /// connection's reader thread — never queued behind jobs.
    fn stats(&self) -> super::stats::StatsSnapshot {
        let (depth, high) = {
            let s = self.queue.lock();
            (s.depth() as u32, s.high.len() as u32)
        };
        self.engine.stats_snapshot(depth, high)
    }

    fn budget_for(&self, req: &JobRequest) -> RunBudget {
        let ms = if req.budget_ms > 0 {
            u64::from(req.budget_ms)
        } else {
            self.default_budget_ms
        };
        if ms > 0 {
            RunBudget::with_time_ms(ms)
        } else {
            RunBudget::unlimited()
        }
    }

    fn initiate_shutdown(&self) {
        self.queue.close();
        self.stop.store(true, Ordering::SeqCst);
    }
}

fn send(reply: &Reply, frame: &Frame) {
    let mut w = reply.lock().unwrap_or_else(|e| e.into_inner());
    // A vanished client is not a daemon error; drop the frame.
    let _ = write_frame(&mut **w, frame);
}

/// One executor thread: pop → execute → reply, until closed and drained.
fn run_executor(d: &Daemon) {
    while let Some(job) = d.queue.pop() {
        d.engine
            .note_queue_wait(job.req.priority, job.enqueued.elapsed().as_nanos() as u64);
        let frame = match d
            .engine
            .execute_traced(&job.req, &job.budget, job.request_id)
        {
            Ok(res) => Frame::Result(res),
            Err(err) => Frame::Error(err),
        };
        send(&job.reply, &frame);
    }
}

/// Drive one client connection: parse frames off `reader`, answering on
/// `reply`. Returns when the client disconnects, sends garbage, or
/// requests shutdown. `shutdown_on_eof` makes a clean EOF initiate
/// daemon shutdown (stdio mode).
fn handle_connection<R: Read>(d: &Daemon, mut reader: R, reply: Reply, shutdown_on_eof: bool) {
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::Ping) => send(&reply, &Frame::Pong),
            Ok(Frame::Submit(req)) => {
                let budget = d.budget_for(&req);
                let request_id = d.request_id_for(&req);
                telemetry::flight::record(
                    telemetry::FlightKind::JobAdmitted,
                    request_id,
                    req.tag,
                    &format!("n={} priority={:?}", req.n, req.priority),
                );
                let job = Queued {
                    req,
                    budget,
                    reply: Arc::clone(&reply),
                    enqueued: Instant::now(),
                    request_id,
                };
                if let Err(rejected) = d.queue.push(job) {
                    send(
                        &reply,
                        &Frame::Error(ErrorFrame {
                            tag: rejected.req.tag,
                            category: ErrorCategory::Protocol,
                            message: "daemon is shutting down".into(),
                        }),
                    );
                }
            }
            Ok(Frame::StatsRequest) => {
                // Answered inline on the reader thread: a stats scrape
                // must never queue behind (or block) job execution.
                send(&reply, &Frame::StatsReply(Box::new(d.stats())));
            }
            Ok(Frame::Shutdown) => {
                send(&reply, &Frame::Pong);
                d.initiate_shutdown();
                return;
            }
            Ok(other) => {
                // Result/Error/Pong are daemon→client frames only.
                send(
                    &reply,
                    &Frame::Error(ErrorFrame {
                        tag: 0,
                        category: ErrorCategory::Protocol,
                        message: format!("unexpected client frame {:?}", frame_name(&other)),
                    }),
                );
            }
            Err(ProtocolError::Eof) => {
                if shutdown_on_eof {
                    d.initiate_shutdown();
                }
                return;
            }
            Err(ProtocolError::Malformed(m)) => {
                // The stream position is unreliable after a grammar
                // violation: report and close this connection. The
                // daemon itself keeps serving.
                send(
                    &reply,
                    &Frame::Error(ErrorFrame {
                        tag: 0,
                        category: ErrorCategory::Protocol,
                        message: m,
                    }),
                );
                if shutdown_on_eof {
                    d.initiate_shutdown();
                }
                return;
            }
            Err(ProtocolError::Io(_)) => {
                if shutdown_on_eof {
                    d.initiate_shutdown();
                }
                return;
            }
        }
    }
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Submit(_) => "submit",
        Frame::Result(_) => "result",
        Frame::Error(_) => "error",
        Frame::Ping => "ping",
        Frame::Pong => "pong",
        Frame::Shutdown => "shutdown",
        Frame::StatsRequest => "stats_request",
        Frame::StatsReply(_) => "stats_reply",
    }
}

fn spawn_executors(d: &Arc<Daemon>, n: usize) -> Vec<std::thread::JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let d = Arc::clone(d);
            std::thread::Builder::new()
                .name(format!("jigsaw-serve-{i}"))
                .spawn(move || run_executor(&d))
                .unwrap_or_else(|e| panic!("spawning executor {i}: {e}"))
        })
        .collect()
}

/// Serve on a Unix socket at `path` until a client sends `Shutdown`.
/// A stale socket file at `path` is replaced.
pub fn serve_unix(path: &Path, opts: &ServeOptions) -> Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| Error::Data(format!("binding {}: {e}", path.display())))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| Error::Data(format!("configuring listener: {e}")))?;
    let d = Daemon::new(opts);
    let executors = spawn_executors(&d, opts.executors);

    while !d.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                let reply: Reply = Arc::new(Mutex::new(Box::new(stream)));
                let d2 = Arc::clone(&d);
                // Reader threads are detached: they block in read() on
                // idle clients and die with the process after shutdown.
                let _ = std::thread::Builder::new()
                    .name("jigsaw-serve-conn".into())
                    .spawn(move || handle_connection(&d2, reader, reply, false));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                d.initiate_shutdown();
                for h in executors {
                    let _ = h.join();
                }
                let _ = std::fs::remove_file(path);
                return Err(Error::Data(format!("accept failed: {e}")));
            }
        }
    }
    // Shutdown requested: executors drain the queue, then exit.
    for h in executors {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Serve on stdin/stdout — the socket-free fallback framing. Returns
/// after a `Shutdown` frame or stdin EOF, once queued jobs have
/// drained. All responses go to stdout; diagnostics belong on stderr.
pub fn serve_stdio(opts: &ServeOptions) -> Result<()> {
    let d = Daemon::new(opts);
    let executors = spawn_executors(&d, opts.executors);
    let reply: Reply = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    handle_connection(&d, std::io::stdin(), reply, true);
    d.initiate_shutdown();
    for h in executors {
        let _ = h.join();
    }
    Ok(())
}

/// In-process variant of [`serve_stdio`] over arbitrary reader/writer
/// pairs — the daemon loop without any OS transport, used by tests and
/// available for embedding.
pub fn serve_stream<R: Read, W: Write + Send + 'static>(
    reader: R,
    writer: W,
    opts: &ServeOptions,
) -> Result<()> {
    let d = Daemon::new(opts);
    let executors = spawn_executors(&d, opts.executors);
    let reply: Reply = Arc::new(Mutex::new(Box::new(writer)));
    handle_connection(&d, reader, reply, true);
    d.initiate_shutdown();
    for h in executors {
        let _ = h.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::protocol::{encode, JobResult, Priority};
    use super::*;
    use jigsaw_num::C64;

    fn request(tag: u64, priority: Priority) -> JobRequest {
        let coords = crate::traj::radial_2d(4, 16, true);
        let values = vec![C64::new(1.0, 0.0); coords.len()];
        JobRequest {
            tag,
            priority,
            n: 8,
            budget_ms: 0,
            coords,
            values,
        }
    }

    /// Collects daemon output frames for assertion.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn run_session(frames: &[Frame], opts: &ServeOptions) -> Vec<Frame> {
        let mut input = Vec::new();
        for f in frames {
            input.extend_from_slice(&encode(f));
        }
        let out = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        serve_stream(std::io::Cursor::new(input), out.clone(), opts).expect("serve");
        let bytes = out.0.lock().unwrap().clone();
        let mut r = std::io::Cursor::new(bytes);
        let mut frames = Vec::new();
        while let Ok(f) = read_frame(&mut r) {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn ping_submit_shutdown_session() {
        let req = request(42, Priority::Normal);
        let replies = run_session(
            &[Frame::Ping, Frame::Submit(req), Frame::Shutdown],
            &ServeOptions::default(),
        );
        assert!(replies.contains(&Frame::Pong));
        let result: Vec<&JobResult> = replies
            .iter()
            .filter_map(|f| match f {
                Frame::Result(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].tag, 42);
        assert_eq!(result[0].image.len(), 64);
    }

    #[test]
    fn eof_drains_queued_jobs_before_returning() {
        // No explicit Shutdown: stdin just ends. Every submitted job
        // must still be answered.
        let frames: Vec<Frame> = (0..6)
            .map(|i| Frame::Submit(request(i, Priority::Normal)))
            .collect();
        let replies = run_session(&frames, &ServeOptions::default());
        let mut tags: Vec<u64> = replies
            .iter()
            .filter_map(|f| match f {
                Frame::Result(r) => Some(r.tag),
                _ => None,
            })
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn high_priority_jobs_jump_the_queue() {
        // Single executor: queue order is observable in reply order.
        // The first job may start before the rest are enqueued, but the
        // high-priority job must be answered before the *last* normal
        // one.
        let opts = ServeOptions {
            executors: 1,
            ..Default::default()
        };
        let frames = vec![
            Frame::Submit(request(1, Priority::Normal)),
            Frame::Submit(request(2, Priority::Normal)),
            Frame::Submit(request(3, Priority::Normal)),
            Frame::Submit(request(99, Priority::High)),
            Frame::Shutdown,
        ];
        let replies = run_session(&frames, &opts);
        let tags: Vec<u64> = replies
            .iter()
            .filter_map(|f| match f {
                Frame::Result(r) => Some(r.tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags.len(), 4);
        let hi = tags.iter().position(|&t| t == 99).unwrap();
        let last_normal = tags.iter().position(|&t| t == 3).unwrap();
        assert!(
            hi < last_normal,
            "high-priority job answered at {hi}, after normal job at {last_normal}: {tags:?}"
        );
    }

    #[test]
    fn malformed_bytes_get_protocol_error_frame() {
        let mut input = encode(&Frame::Ping);
        input.extend_from_slice(b"NOPEnonsense-bytes");
        let out = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        serve_stream(
            std::io::Cursor::new(input),
            out.clone(),
            &ServeOptions::default(),
        )
        .expect("serve");
        let bytes = out.0.lock().unwrap().clone();
        let mut r = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Pong);
        match read_frame(&mut r).unwrap() {
            Frame::Error(e) => {
                assert_eq!(e.category, ErrorCategory::Protocol);
                assert_eq!(e.tag, 0);
            }
            other => panic!("expected protocol error frame, got {other:?}"),
        }
    }

    #[test]
    fn budget_zero_default_applies_daemon_default() {
        // default_budget_ms = 1 ns-scale deadline: the job is refused
        // with a budget error frame (tiny deadline, already expired by
        // execution time) — or completes if the machine is fast; both
        // are valid, but the frame must be tagged either way.
        let opts = ServeOptions {
            default_budget_ms: 0,
            ..Default::default()
        };
        let replies = run_session(
            &[Frame::Submit(request(7, Priority::Normal)), Frame::Shutdown],
            &opts,
        );
        assert!(replies.iter().any(|f| matches!(
            f,
            Frame::Result(JobResult { tag: 7, .. }) | Frame::Error(ErrorFrame { tag: 7, .. })
        )));
    }
}
