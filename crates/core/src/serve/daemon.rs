//! The long-lived `jigsaw serve` daemon: accept loop, two-priority job
//! queue, and executor threads.
//!
//! Transport is either a local Unix socket ([`serve_unix`], one reader
//! thread per connection) or the process's stdin/stdout
//! ([`serve_stdio`], the fallback framing for environments without
//! sockets). Both feed the same [`JobQueue`]; `--jobs` executor threads
//! pop jobs (high priority first, FIFO within a class), run them through
//! the shared [`ServeEngine`], and write the tagged response frame back
//! to the submitting connection.
//!
//! ## Overload policy
//!
//! Admission is *bounded*: a normal-priority `Submit` that would push
//! the queue past `max_queue_depth` jobs or `max_queued_bytes` resident
//! sample/result bytes is refused immediately with an `Overloaded`
//! frame (kind 9) carrying a `retry_after_ms` back-off hint, rather
//! than queued behind work it cannot reach in time. High-priority jobs
//! bypass both bounds, so a high job is never shed while normal jobs
//! are being admitted. Jobs whose deadline has already expired are
//! refused at `pop` (before any planning) and swept out of the deep
//! queue by the watchdog thread, which also cancels the budgets of
//! running jobs that blow their deadline or exceed
//! `watchdog_multiple ×` their budget — the gridding/FFT/coil hot
//! loops observe the cancellation at their next chunk checkpoint.
//! Shed counts land in `serve.shed.{depth,bytes,expired}` and the
//! flight recorder (`job_shed`, `watchdog_fired`).
//!
//! ## Shutdown and drain
//!
//! A `Shutdown` frame is acknowledged with `Pong`, then the queue is
//! *closed*: no new jobs are admitted (late submitters get a
//! protocol-category error frame), executors drain everything already
//! queued, and the accept loop returns so the process can exit 0. A
//! client disconnect (EOF) closes only that connection — except in
//! stdio mode, where stdin EOF is the only possible "client gone"
//! signal and triggers the same clean drain.
//!
//! A `Drain` frame (kind 10) is the *graceful* variant: also
//! acknowledged with `Pong` and also closing the queue, but late
//! submitters get a structured `Overloaded` frame with
//! [`ShedReason::Draining`] (a retryable condition — the daemon is
//! being rotated, not broken), and once the queue empties the plan
//! cache is snapshotted to [`ServeOptions::snapshot_path`] so the
//! restarted daemon starts warm. On the Unix-socket transport, SIGTERM
//! initiates the same drain — `kill <pid>` of a supervised daemon is a
//! graceful rotation, not data loss.
//!
//! ## Durable lifecycle
//!
//! With [`ServeOptions::snapshot_path`] set, startup loads the snapshot
//! (entries that fail checksum/version/shape validation are skipped and
//! counted; a torn or garbage file degrades to a cold start with a
//! stderr diagnostic — never a crash), a background thread re-snapshots
//! every [`ServeOptions::snapshot_every_secs`] (panic-contained like
//! the watchdog), and a graceful drain snapshots once the queue is
//! empty. See [`crate::serve::snapshot`] for the format.

use super::engine::ServeEngine;
use super::protocol::{
    read_frame, write_frame, ErrorCategory, ErrorFrame, Frame, JobRequest, OverloadFrame,
    ProtocolError, ShedReason,
};
use crate::budget::RunBudget;
use crate::{Error, Result};
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::faultpoint;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon-assigned request ids live in this reserved namespace (high
/// bit set), so they can never collide with a client-chosen tag — the
/// wire rejects nothing, but the daemon re-assigns any tag that strays
/// into the reserved range.
pub const DAEMON_ID_BIT: u64 = 1 << 63;

/// Watchdog cadence: deadline sweeps and stuck-job checks run at this
/// period, so mid-job deadline enforcement lags the wall clock by at
/// most one tick.
const WATCHDOG_TICK_MS: u64 = 25;

/// Daemon tuning knobs (the `jigsaw serve` flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Number of executor threads multiplexing jobs onto the worker
    /// pool.
    pub executors: usize,
    /// Default per-job wall-clock budget in milliseconds, applied when a
    /// request carries `budget_ms = 0`. Zero means unlimited.
    pub default_budget_ms: u64,
    /// Admission bound: a normal-priority submit is refused with an
    /// `Overloaded` frame once the queue holds this many jobs.
    pub max_queue_depth: usize,
    /// Admission bound: a normal-priority submit is refused once the
    /// queued jobs' approximate resident bytes
    /// ([`JobRequest::approx_bytes`]) would exceed this.
    pub max_queued_bytes: usize,
    /// Stuck-job backstop: the watchdog cancels any budgeted job still
    /// running after `watchdog_multiple ×` its budget (unlimited jobs
    /// are never watchdog-cancelled).
    pub watchdog_multiple: u32,
    /// Plan-cache snapshot file (`--snapshot`). `None` disables the
    /// durable lifecycle entirely. When set: loaded at startup
    /// (degrading to a cold start on any damage), rewritten every
    /// [`Self::snapshot_every_secs`], and rewritten on graceful drain.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Background snapshot period in seconds (`--snapshot-every-secs`);
    /// 0 disables periodic snapshotting (drain-time snapshots still
    /// happen). Ignored without [`Self::snapshot_path`].
    pub snapshot_every_secs: u64,
    /// External drain trigger for [`serve_unix`]: when the flag flips
    /// to `true`, the accept loop initiates a graceful drain exactly as
    /// if a `Drain` frame had arrived. The CLI points this at a static
    /// latched by its SIGTERM handler (`kill <pid>` of a supervised
    /// daemon is a graceful rotation, not data loss); the core crate
    /// itself is `forbid(unsafe_code)` and installs no handlers.
    pub drain_signal: Option<&'static AtomicBool>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            cache_capacity: 8,
            executors: 2,
            default_budget_ms: 0,
            max_queue_depth: 1024,
            max_queued_bytes: 1 << 30,
            watchdog_multiple: 8,
            snapshot_path: None,
            snapshot_every_secs: 0,
            drain_signal: None,
        }
    }
}

/// A writer shared between the connection's reader thread (error
/// frames) and the executors (results) — frames are written whole under
/// the lock, so responses never interleave.
type Reply = Arc<Mutex<Box<dyn Write + Send>>>;

struct Queued {
    req: JobRequest,
    budget: RunBudget,
    reply: Reply,
    enqueued: Instant,
    /// Trace id threaded through every span the job opens (the client's
    /// tag when valid, else daemon-assigned — see [`DAEMON_ID_BIT`]).
    request_id: u64,
    /// Cached [`JobRequest::approx_bytes`], charged to the queue's
    /// byte ledger while the job waits.
    bytes: usize,
    /// Effective budget in milliseconds after the daemon default is
    /// applied (0 = unlimited) — the watchdog's stuck-job reference.
    budget_ms: u64,
}

/// Why [`JobQueue::push`] handed the job back instead of queuing it.
enum Refusal {
    /// The daemon is shutting down.
    Closed,
    /// The queue already holds `max_queue_depth` jobs.
    Depth,
    /// Admitting the job would exceed `max_queued_bytes`.
    Bytes,
}

#[derive(Default)]
struct QueueState {
    high: VecDeque<Queued>,
    normal: VecDeque<Queued>,
    /// Sum of `bytes` across both queues.
    queued_bytes: usize,
    closed: bool,
}

impl QueueState {
    fn depth(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn record_gauges(&self) {
        telemetry::record_gauge("serve.queue_depth", self.depth() as f64);
        telemetry::record_gauge("serve.queued_bytes", self.queued_bytes as f64);
    }
}

/// One [`JobQueue::pop_one`] outcome.
enum Popped {
    /// A live job: run it.
    Job(Queued),
    /// The job's deadline expired while it queued: refuse it without
    /// planning (the caller sheds it with
    /// [`ShedReason::DeadlineExpired`]) and pop again.
    Expired(Queued),
    /// Closed and drained: the executor exits.
    Closed,
}

/// Two-priority MPMC job queue with bounded admission and a close latch
/// for clean shutdown.
struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue a job, bounding normal-priority admission by depth and
    /// bytes; `Err` hands the job back with the refusal reason so the
    /// caller's reply channel can carry it. High-priority jobs bypass
    /// the bounds (only `Closed` can refuse them), so a high job is
    /// never shed while normals are admitted.
    // The large Err variant is the point: a refused job goes back to
    // the caller so its reply channel can carry the refusal.
    #[allow(clippy::result_large_err)]
    fn push(
        &self,
        job: Queued,
        max_depth: usize,
        max_bytes: usize,
    ) -> std::result::Result<(), (Queued, Refusal)> {
        let mut s = self.lock();
        if s.closed {
            return Err((job, Refusal::Closed));
        }
        let high = matches!(job.req.priority, super::protocol::Priority::High);
        if !high {
            if s.depth() >= max_depth {
                return Err((job, Refusal::Depth));
            }
            if s.queued_bytes.saturating_add(job.bytes) > max_bytes {
                return Err((job, Refusal::Bytes));
            }
        }
        s.queued_bytes = s.queued_bytes.saturating_add(job.bytes);
        if high {
            s.high.push_back(job);
        } else {
            s.normal.push_back(job);
        }
        s.record_gauges();
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Block until a job is available (high priority first, FIFO within
    /// a class) or the queue is closed *and* drained. A popped job whose
    /// budget is already exhausted comes back as [`Popped::Expired`] so
    /// the caller can refuse it before any planning happens.
    fn pop_one(&self) -> Popped {
        let mut s = self.lock();
        loop {
            if let Some(job) = s.high.pop_front().or_else(|| s.normal.pop_front()) {
                s.queued_bytes = s.queued_bytes.saturating_sub(job.bytes);
                s.record_gauges();
                return if job.budget.exhausted() {
                    Popped::Expired(job)
                } else {
                    Popped::Job(job)
                };
            }
            if s.closed {
                return Popped::Closed;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Remove every queued job whose budget is already exhausted — the
    /// watchdog's periodic sweep, so a deep-queued expired job gets its
    /// refusal *now* instead of when an executor finally reaches it.
    fn sweep_expired(&self) -> Vec<Queued> {
        let mut out = Vec::new();
        let mut freed = 0usize;
        let mut guard = self.lock();
        let s = &mut *guard;
        for dq in [&mut s.high, &mut s.normal] {
            let mut i = 0;
            while i < dq.len() {
                if dq[i].budget.exhausted() {
                    if let Some(job) = dq.remove(i) {
                        freed += job.bytes;
                        out.push(job);
                    }
                } else {
                    i += 1;
                }
            }
        }
        if !out.is_empty() {
            s.queued_bytes = s.queued_bytes.saturating_sub(freed);
            s.record_gauges();
        }
        out
    }

    /// Stop admitting jobs; wake every waiting executor so the drain
    /// can finish.
    fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

/// A running job, registered by its executor for the watchdog.
struct InFlight {
    budget: RunBudget,
    started: Instant,
    /// Effective budget in milliseconds (0 = unlimited, never
    /// watchdog-cancelled).
    budget_ms: u64,
    tag: u64,
}

/// State shared by the accept loop, connection readers, executors, and
/// the watchdog.
struct Daemon {
    engine: ServeEngine,
    queue: JobQueue,
    stop: AtomicBool,
    /// Set by a `Drain` frame (or SIGTERM on the Unix transport):
    /// refusals while the queue is closed become structured
    /// `Overloaded{draining}` frames instead of shutdown errors, and
    /// the exit path snapshots the plan cache.
    draining: AtomicBool,
    default_budget_ms: u64,
    next_request_id: AtomicU64,
    max_queue_depth: usize,
    max_queued_bytes: usize,
    watchdog_multiple: u32,
    executors: usize,
    snapshot_path: Option<std::path::PathBuf>,
    inflight: Mutex<HashMap<u64, InFlight>>,
}

impl Daemon {
    fn new(opts: &ServeOptions) -> Arc<Self> {
        let engine = ServeEngine::new(opts.cache_capacity);
        if let Some(path) = &opts.snapshot_path {
            load_snapshot_contained(&engine, path);
        }
        Arc::new(Self {
            engine,
            queue: JobQueue::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            default_budget_ms: opts.default_budget_ms,
            next_request_id: AtomicU64::new(1),
            max_queue_depth: opts.max_queue_depth,
            max_queued_bytes: opts.max_queued_bytes,
            watchdog_multiple: opts.watchdog_multiple,
            executors: opts.executors.max(1),
            snapshot_path: opts.snapshot_path.clone(),
            inflight: Mutex::new(HashMap::new()),
        })
    }

    /// Trace id for a submission: the client's tag when it is nonzero
    /// and outside the daemon's reserved namespace (so a client can
    /// correlate its own traces), else a daemon-assigned id with
    /// [`DAEMON_ID_BIT`] set. The namespacing means two clients — one
    /// silent (tag 0) and one whose tags happen to collide with the
    /// counter — can never alias each other's traces.
    fn request_id_for(&self, req: &JobRequest) -> u64 {
        if req.tag != 0 && req.tag & DAEMON_ID_BIT == 0 {
            req.tag
        } else {
            self.next_request_id.fetch_add(1, Ordering::Relaxed) | DAEMON_ID_BIT
        }
    }

    /// Admit or refuse one submission. Refusals reply immediately:
    /// `Overloaded` (with a back-off hint) for queue bounds, a
    /// protocol-category error when shutting down.
    fn admit(&self, job: Queued) {
        let request_id = job.request_id;
        let tag = job.req.tag;
        let detail = format!("n={} priority={:?}", job.req.n, job.req.priority);
        match self
            .queue
            .push(job, self.max_queue_depth, self.max_queued_bytes)
        {
            Ok(()) => {
                telemetry::flight::record(
                    telemetry::FlightKind::JobAdmitted,
                    request_id,
                    tag,
                    &detail,
                );
            }
            Err((job, Refusal::Closed)) => {
                if self.draining.load(Ordering::SeqCst) {
                    // A draining daemon is being rotated, not broken:
                    // the refusal is a structured, retryable overload
                    // frame so well-behaved clients back off and hit
                    // the restarted (warm) daemon.
                    self.shed(job, ShedReason::Draining);
                } else {
                    send(
                        &job.reply,
                        &Frame::Error(ErrorFrame {
                            tag,
                            category: ErrorCategory::Protocol,
                            message: "daemon is shutting down".into(),
                        }),
                        request_id,
                        tag,
                    );
                }
            }
            Err((job, Refusal::Depth)) => self.shed(job, ShedReason::QueueDepth),
            Err((job, Refusal::Bytes)) => self.shed(job, ShedReason::QueueBytes),
        }
    }

    /// Refuse a job with an `Overloaded` frame: count it
    /// (`serve.shed.{depth,bytes,expired}`), flight-record it, and
    /// reply with the back-off hint. The frame build runs under
    /// `catch_unwind` (the `serve.shed` fault point fires inside), so
    /// an injected panic degrades to a plain execution-error frame and
    /// the calling thread — reader or watchdog — survives.
    fn shed(&self, job: Queued, reason: ShedReason) {
        telemetry::record_counter(&format!("serve.shed.{}", reason.label()), 1);
        telemetry::flight::record(
            telemetry::FlightKind::JobShed,
            job.request_id,
            job.req.tag,
            reason.label(),
        );
        let tag = job.req.tag;
        let depth = self.queue.lock().depth() as u32;
        let retry_after_ms = self.engine.estimated_retry_after_ms(depth, self.executors);
        let frame = catch_unwind(AssertUnwindSafe(|| {
            faultpoint!(crate::fault::SERVE_SHED);
            Frame::Overloaded(OverloadFrame {
                tag,
                reason,
                retry_after_ms,
                message: format!(
                    "job {tag} shed ({}): retry in ≥{retry_after_ms} ms",
                    reason.label()
                ),
            })
        }));
        let frame = frame.unwrap_or_else(|_| {
            Frame::Error(ErrorFrame {
                tag,
                category: ErrorCategory::Execution,
                message: "internal panic while shedding job (contained)".into(),
            })
        });
        send(&job.reply, &frame, job.request_id, tag);
    }

    /// Answer a `StatsRequest`: queue depths under the queue's own
    /// brief lock, then the engine's lock-free snapshot. Runs on the
    /// connection's reader thread — never queued behind jobs.
    fn stats(&self) -> super::stats::StatsSnapshot {
        let (depth, high) = {
            let s = self.queue.lock();
            (s.depth() as u32, s.high.len() as u32)
        };
        self.engine.stats_snapshot(depth, high)
    }

    /// The effective per-job budget in milliseconds after the daemon
    /// default is applied (0 = unlimited).
    fn effective_budget_ms(&self, req: &JobRequest) -> u64 {
        if req.budget_ms > 0 {
            u64::from(req.budget_ms)
        } else {
            self.default_budget_ms
        }
    }

    fn budget_for(&self, req: &JobRequest) -> RunBudget {
        let ms = self.effective_budget_ms(req);
        if ms > 0 {
            RunBudget::with_time_ms(ms)
        } else {
            RunBudget::unlimited()
        }
    }

    fn initiate_shutdown(&self) {
        self.queue.close();
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Graceful drain: like [`Self::initiate_shutdown`], but flagged so
    /// late submits get `Overloaded{draining}` and the exit path writes
    /// a plan-cache snapshot once executors finish the queue.
    fn initiate_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Write the plan-cache snapshot if a path is configured. Panic-
    /// contained and failure-counted: a full disk or a poisoned entry
    /// must never take down the daemon (periodic thread) or turn a
    /// graceful drain into a crash.
    fn write_snapshot(&self, why: &str) {
        let Some(path) = &self.snapshot_path else {
            return;
        };
        match catch_unwind(AssertUnwindSafe(|| self.engine.cache().save_snapshot(path))) {
            Ok(Ok(entries)) => {
                // Periodic saves are silent (they would spam stderr at
                // the snapshot cadence); the one-shot drain save is the
                // operator-visible handoff, so it logs.
                if why == "drain" {
                    eprintln!(
                        "jigsaw serve: snapshot (drain): {entries} entr{} -> {}",
                        if entries == 1 { "y" } else { "ies" },
                        path.display()
                    );
                }
            }
            Ok(Err(e)) => {
                telemetry::record_counter("serve.snapshot.save_failures", 1);
                eprintln!(
                    "jigsaw serve: snapshot save ({why}) to {} failed: {e}",
                    path.display()
                );
            }
            Err(_) => {
                telemetry::record_counter("serve.snapshot.panics", 1);
                eprintln!("jigsaw serve: snapshot save ({why}) panicked (contained)");
            }
        }
    }

    /// Exit-path hook shared by every transport: after executors have
    /// drained the queue, a *graceful* drain persists the warm cache.
    fn snapshot_on_drain(&self) {
        if self.draining.load(Ordering::SeqCst) {
            self.write_snapshot("drain");
        }
    }
}

/// Load a snapshot into a fresh engine's plan cache, containing every
/// failure mode: a missing file is a silent first boot, anything else
/// wrong degrades to a cold start with a stderr diagnostic and
/// `serve.snapshot.load_failures` / `serve.snapshot.panics`
/// accounting. The warm path logs its `loaded/skipped` split.
fn load_snapshot_contained(engine: &ServeEngine, path: &Path) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        engine
            .cache()
            .load_snapshot(path, &crate::gridding::SerialGridder)
    }));
    match outcome {
        Ok(Ok((0, 0))) => {}
        Ok(Ok((loaded, skipped))) => {
            eprintln!(
                "jigsaw serve: snapshot {}: loaded {loaded} plan(s), skipped {skipped}",
                path.display()
            );
        }
        Ok(Err(e)) => {
            telemetry::record_counter("serve.snapshot.load_failures", 1);
            eprintln!(
                "jigsaw serve: snapshot {} unusable ({e}); starting cold",
                path.display()
            );
        }
        Err(_) => {
            telemetry::record_counter("serve.snapshot.load_failures", 1);
            telemetry::record_counter("serve.snapshot.panics", 1);
            eprintln!(
                "jigsaw serve: snapshot load from {} panicked (contained); starting cold",
                path.display()
            );
        }
    }
}

/// Write a reply frame. A vanished client is not a daemon error, but it
/// must be *diagnosable*: a failed write bumps `serve.replies_dropped`
/// and flight-records `reply_dropped`, so `jigsaw top` shows where the
/// answers went.
fn send(reply: &Reply, frame: &Frame, request_id: u64, tag: u64) {
    let mut w = reply.lock().unwrap_or_else(|e| e.into_inner());
    if write_frame(&mut **w, frame).is_err() {
        telemetry::record_counter("serve.replies_dropped", 1);
        telemetry::flight::record(
            telemetry::FlightKind::ReplyDropped,
            request_id,
            tag,
            frame_name(frame),
        );
    }
}

/// One executor thread: pop → execute → reply, until closed and
/// drained. Expired jobs are refused without planning; live jobs are
/// registered with the watchdog for the duration of their run.
fn run_executor(d: &Daemon) {
    loop {
        let job = match d.queue.pop_one() {
            Popped::Job(job) => job,
            Popped::Expired(job) => {
                d.shed(job, ShedReason::DeadlineExpired);
                continue;
            }
            Popped::Closed => return,
        };
        d.engine
            .note_queue_wait(job.req.priority, job.enqueued.elapsed().as_nanos() as u64);
        d.inflight.lock().unwrap_or_else(|e| e.into_inner()).insert(
            job.request_id,
            InFlight {
                budget: job.budget.clone(),
                started: Instant::now(),
                budget_ms: job.budget_ms,
                tag: job.req.tag,
            },
        );
        let frame = match d
            .engine
            .execute_traced(&job.req, &job.budget, job.request_id)
        {
            Ok(res) => Frame::Result(res),
            Err(err) => Frame::Error(err),
        };
        d.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job.request_id);
        send(&job.reply, &frame, job.request_id, job.req.tag);
    }
}

/// One watchdog tick: sweep expired jobs out of the queue and cancel
/// the budgets of running jobs that blew their deadline or exceeded
/// `watchdog_multiple ×` their budget. The body runs under
/// `catch_unwind` (the `serve.watchdog` fault point fires inside); a
/// panic is counted in `serve.watchdog.panics` and the thread keeps
/// ticking.
fn watchdog_tick(d: &Daemon) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        faultpoint!(crate::fault::SERVE_WATCHDOG);
        for job in d.queue.sweep_expired() {
            d.shed(job, ShedReason::DeadlineExpired);
        }
        let inflight = d.inflight.lock().unwrap_or_else(|e| e.into_inner());
        for (request_id, f) in inflight.iter() {
            if f.budget.is_cancelled() {
                continue;
            }
            let deadline_blown = f.budget.exhausted();
            let stuck = f.budget_ms > 0
                && f.started.elapsed()
                    >= Duration::from_millis(
                        f.budget_ms.saturating_mul(u64::from(d.watchdog_multiple)),
                    );
            if deadline_blown || stuck {
                f.budget.cancel();
                telemetry::record_counter("serve.watchdog.cancels", 1);
                telemetry::flight::record(
                    telemetry::FlightKind::WatchdogFired,
                    *request_id,
                    f.tag,
                    if stuck {
                        "stuck: exceeded watchdog multiple of budget"
                    } else {
                        "deadline passed mid-job; budget cancelled"
                    },
                );
            }
        }
    }));
    if outcome.is_err() {
        telemetry::record_counter("serve.watchdog.panics", 1);
    }
}

fn spawn_watchdog(d: &Arc<Daemon>) -> std::thread::JoinHandle<()> {
    let d = Arc::clone(d);
    std::thread::Builder::new()
        .name("jigsaw-serve-watchdog".into())
        .spawn(move || {
            while !d.stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(WATCHDOG_TICK_MS));
                watchdog_tick(&d);
            }
        })
        .unwrap_or_else(|e| panic!("spawning watchdog: {e}"))
}

/// Spawn the periodic background snapshotter when both a snapshot path
/// and a nonzero period are configured. The thread sleeps in watchdog-
/// sized ticks so shutdown is never delayed by a long period, and each
/// save is panic-contained inside [`Daemon::write_snapshot`] — a failed
/// or panicking save is counted and the thread keeps its cadence.
fn spawn_snapshotter(d: &Arc<Daemon>, opts: &ServeOptions) -> Option<std::thread::JoinHandle<()>> {
    if d.snapshot_path.is_none() || opts.snapshot_every_secs == 0 {
        return None;
    }
    let period = Duration::from_secs(opts.snapshot_every_secs);
    let d = Arc::clone(d);
    Some(
        std::thread::Builder::new()
            .name("jigsaw-serve-snapshot".into())
            .spawn(move || {
                let mut last = Instant::now();
                while !d.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(WATCHDOG_TICK_MS));
                    if last.elapsed() >= period {
                        d.write_snapshot("periodic");
                        last = Instant::now();
                    }
                }
            })
            .unwrap_or_else(|e| panic!("spawning snapshotter: {e}")),
    )
}

/// Drive one client connection: parse frames off `reader`, answering on
/// `reply`. Returns when the client disconnects, sends garbage, or
/// requests shutdown. `shutdown_on_eof` makes a clean EOF initiate
/// daemon shutdown (stdio mode).
fn handle_connection<R: Read>(d: &Daemon, mut reader: R, reply: Reply, shutdown_on_eof: bool) {
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::Ping) => send(&reply, &Frame::Pong, 0, 0),
            Ok(Frame::Submit(req)) => {
                let budget = d.budget_for(&req);
                let request_id = d.request_id_for(&req);
                let bytes = req.approx_bytes();
                let budget_ms = d.effective_budget_ms(&req);
                d.admit(Queued {
                    req,
                    budget,
                    reply: Arc::clone(&reply),
                    enqueued: Instant::now(),
                    request_id,
                    bytes,
                    budget_ms,
                });
            }
            Ok(Frame::StatsRequest) => {
                // Answered inline on the reader thread: a stats scrape
                // must never queue behind (or block) job execution.
                send(&reply, &Frame::StatsReply(Box::new(d.stats())), 0, 0);
            }
            Ok(Frame::Shutdown) => {
                send(&reply, &Frame::Pong, 0, 0);
                d.initiate_shutdown();
                return;
            }
            Ok(Frame::Drain) => {
                // Ack, stop admitting, but keep *reading*: a client
                // that pipelines submits behind its Drain gets a
                // deterministic Overloaded{draining} refusal for each,
                // not a raced shutdown error or a dead socket.
                send(&reply, &Frame::Pong, 0, 0);
                d.initiate_drain();
            }
            Ok(other) => {
                // Result/Error/Pong/Overloaded are daemon→client frames
                // only.
                send(
                    &reply,
                    &Frame::Error(ErrorFrame {
                        tag: 0,
                        category: ErrorCategory::Protocol,
                        message: format!("unexpected client frame {:?}", frame_name(&other)),
                    }),
                    0,
                    0,
                );
            }
            Err(ProtocolError::Eof) => {
                if shutdown_on_eof {
                    d.initiate_shutdown();
                }
                return;
            }
            Err(ProtocolError::Malformed(m)) => {
                // The stream position is unreliable after a grammar
                // violation: report and close this connection. The
                // daemon itself keeps serving.
                send(
                    &reply,
                    &Frame::Error(ErrorFrame {
                        tag: 0,
                        category: ErrorCategory::Protocol,
                        message: m,
                    }),
                    0,
                    0,
                );
                if shutdown_on_eof {
                    d.initiate_shutdown();
                }
                return;
            }
            Err(ProtocolError::Io(_)) => {
                if shutdown_on_eof {
                    d.initiate_shutdown();
                }
                return;
            }
        }
    }
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Submit(_) => "submit",
        Frame::Result(_) => "result",
        Frame::Error(_) => "error",
        Frame::Ping => "ping",
        Frame::Pong => "pong",
        Frame::Shutdown => "shutdown",
        Frame::StatsRequest => "stats_request",
        Frame::StatsReply(_) => "stats_reply",
        Frame::Overloaded(_) => "overloaded",
        Frame::Drain => "drain",
    }
}

fn spawn_executors(d: &Arc<Daemon>, n: usize) -> Vec<std::thread::JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let d = Arc::clone(d);
            std::thread::Builder::new()
                .name(format!("jigsaw-serve-{i}"))
                .spawn(move || run_executor(&d))
                .unwrap_or_else(|e| panic!("spawning executor {i}: {e}"))
        })
        .collect()
}

/// Serve on a Unix socket at `path` until a client sends `Shutdown` or
/// `Drain`, or [`ServeOptions::drain_signal`] flips (the CLI latches
/// SIGTERM into it, so `kill <pid>` drains gracefully).
/// A stale socket file at `path` is replaced.
pub fn serve_unix(path: &Path, opts: &ServeOptions) -> Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| Error::Data(format!("binding {}: {e}", path.display())))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| Error::Data(format!("configuring listener: {e}")))?;
    let d = Daemon::new(opts);
    let executors = spawn_executors(&d, opts.executors);
    let watchdog = spawn_watchdog(&d);
    let snapshotter = spawn_snapshotter(&d, opts);

    while !d.stop.load(Ordering::SeqCst) {
        if let Some(flag) = opts.drain_signal {
            if flag.swap(false, Ordering::SeqCst) {
                eprintln!("jigsaw serve: drain signal received; draining");
                d.initiate_drain();
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                let reply: Reply = Arc::new(Mutex::new(Box::new(stream)));
                let d2 = Arc::clone(&d);
                // Reader threads are detached: they block in read() on
                // idle clients and die with the process after shutdown.
                let _ = std::thread::Builder::new()
                    .name("jigsaw-serve-conn".into())
                    .spawn(move || handle_connection(&d2, reader, reply, false));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                d.initiate_shutdown();
                for h in executors {
                    let _ = h.join();
                }
                let _ = watchdog.join();
                if let Some(h) = snapshotter {
                    let _ = h.join();
                }
                let _ = std::fs::remove_file(path);
                return Err(Error::Data(format!("accept failed: {e}")));
            }
        }
    }
    // Shutdown or drain requested: executors drain the queue, then
    // exit; a graceful drain snapshots the (final) warm cache.
    for h in executors {
        let _ = h.join();
    }
    let _ = watchdog.join();
    if let Some(h) = snapshotter {
        let _ = h.join();
    }
    d.snapshot_on_drain();
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Serve on stdin/stdout — the socket-free fallback framing. Returns
/// after a `Shutdown` frame or stdin EOF, once queued jobs have
/// drained. All responses go to stdout; diagnostics belong on stderr.
pub fn serve_stdio(opts: &ServeOptions) -> Result<()> {
    let d = Daemon::new(opts);
    let executors = spawn_executors(&d, opts.executors);
    let watchdog = spawn_watchdog(&d);
    let snapshotter = spawn_snapshotter(&d, opts);
    let reply: Reply = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    handle_connection(&d, std::io::stdin(), reply, true);
    d.initiate_shutdown();
    for h in executors {
        let _ = h.join();
    }
    let _ = watchdog.join();
    if let Some(h) = snapshotter {
        let _ = h.join();
    }
    d.snapshot_on_drain();
    Ok(())
}

/// In-process variant of [`serve_stdio`] over arbitrary reader/writer
/// pairs — the daemon loop without any OS transport, used by tests and
/// available for embedding.
pub fn serve_stream<R: Read, W: Write + Send + 'static>(
    reader: R,
    writer: W,
    opts: &ServeOptions,
) -> Result<()> {
    let d = Daemon::new(opts);
    let executors = spawn_executors(&d, opts.executors);
    let watchdog = spawn_watchdog(&d);
    let snapshotter = spawn_snapshotter(&d, opts);
    let reply: Reply = Arc::new(Mutex::new(Box::new(writer)));
    handle_connection(&d, reader, reply, true);
    d.initiate_shutdown();
    for h in executors {
        let _ = h.join();
    }
    let _ = watchdog.join();
    if let Some(h) = snapshotter {
        let _ = h.join();
    }
    d.snapshot_on_drain();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::protocol::{encode, JobResult, Priority};
    use super::*;
    use jigsaw_num::C64;

    fn request(tag: u64, priority: Priority) -> JobRequest {
        let coords = crate::traj::radial_2d(4, 16, true);
        let values = vec![C64::new(1.0, 0.0); coords.len()];
        JobRequest {
            tag,
            priority,
            n: 8,
            budget_ms: 0,
            coords,
            values,
        }
    }

    /// Collects daemon output frames for assertion.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn run_session(frames: &[Frame], opts: &ServeOptions) -> Vec<Frame> {
        let mut input = Vec::new();
        for f in frames {
            input.extend_from_slice(&encode(f));
        }
        let out = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        serve_stream(std::io::Cursor::new(input), out.clone(), opts).expect("serve");
        let bytes = out.0.lock().unwrap().clone();
        let mut r = std::io::Cursor::new(bytes);
        let mut frames = Vec::new();
        while let Ok(f) = read_frame(&mut r) {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn ping_submit_shutdown_session() {
        let req = request(42, Priority::Normal);
        let replies = run_session(
            &[Frame::Ping, Frame::Submit(req), Frame::Shutdown],
            &ServeOptions::default(),
        );
        assert!(replies.contains(&Frame::Pong));
        let result: Vec<&JobResult> = replies
            .iter()
            .filter_map(|f| match f {
                Frame::Result(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].tag, 42);
        assert_eq!(result[0].image.len(), 64);
    }

    #[test]
    fn eof_drains_queued_jobs_before_returning() {
        // No explicit Shutdown: stdin just ends. Every submitted job
        // must still be answered.
        let frames: Vec<Frame> = (0..6)
            .map(|i| Frame::Submit(request(i, Priority::Normal)))
            .collect();
        let replies = run_session(&frames, &ServeOptions::default());
        let mut tags: Vec<u64> = replies
            .iter()
            .filter_map(|f| match f {
                Frame::Result(r) => Some(r.tag),
                _ => None,
            })
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn high_priority_jobs_jump_the_queue() {
        // Single executor: queue order is observable in reply order.
        // The first job may start before the rest are enqueued, but the
        // high-priority job must be answered before the *last* normal
        // one.
        let opts = ServeOptions {
            executors: 1,
            ..Default::default()
        };
        let frames = vec![
            Frame::Submit(request(1, Priority::Normal)),
            Frame::Submit(request(2, Priority::Normal)),
            Frame::Submit(request(3, Priority::Normal)),
            Frame::Submit(request(99, Priority::High)),
            Frame::Shutdown,
        ];
        let replies = run_session(&frames, &opts);
        let tags: Vec<u64> = replies
            .iter()
            .filter_map(|f| match f {
                Frame::Result(r) => Some(r.tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags.len(), 4);
        let hi = tags.iter().position(|&t| t == 99).unwrap();
        let last_normal = tags.iter().position(|&t| t == 3).unwrap();
        assert!(
            hi < last_normal,
            "high-priority job answered at {hi}, after normal job at {last_normal}: {tags:?}"
        );
    }

    #[test]
    fn malformed_bytes_get_protocol_error_frame() {
        let mut input = encode(&Frame::Ping);
        input.extend_from_slice(b"NOPEnonsense-bytes");
        let out = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        serve_stream(
            std::io::Cursor::new(input),
            out.clone(),
            &ServeOptions::default(),
        )
        .expect("serve");
        let bytes = out.0.lock().unwrap().clone();
        let mut r = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Pong);
        match read_frame(&mut r).unwrap() {
            Frame::Error(e) => {
                assert_eq!(e.category, ErrorCategory::Protocol);
                assert_eq!(e.tag, 0);
            }
            other => panic!("expected protocol error frame, got {other:?}"),
        }
    }

    fn queued(tag: u64, priority: Priority, budget: RunBudget, out: &SharedBuf) -> Queued {
        let req = request(tag, priority);
        let bytes = req.approx_bytes();
        Queued {
            req,
            budget,
            reply: Arc::new(Mutex::new(Box::new(out.clone()))),
            enqueued: Instant::now(),
            request_id: tag | DAEMON_ID_BIT,
            bytes,
            budget_ms: 0,
        }
    }

    fn empty_buf() -> SharedBuf {
        SharedBuf(Arc::new(Mutex::new(Vec::new())))
    }

    #[test]
    fn daemon_assigned_request_ids_are_namespaced() {
        let d = Daemon::new(&ServeOptions::default());
        // Tag 0: daemon-assigned, high bit set, distinct per submit.
        let zero = request(0, Priority::Normal);
        let id1 = d.request_id_for(&zero);
        let id2 = d.request_id_for(&zero);
        assert_ne!(id1 & DAEMON_ID_BIT, 0);
        assert_ne!(id2 & DAEMON_ID_BIT, 0);
        assert_ne!(id1, id2);
        // A client tag that strays into the reserved namespace is
        // re-assigned instead of aliasing daemon-assigned ids.
        let strayed = request(DAEMON_ID_BIT | 7, Priority::Normal);
        let id3 = d.request_id_for(&strayed);
        assert_ne!(id3, DAEMON_ID_BIT | 7);
        assert_ne!(id3 & DAEMON_ID_BIT, 0);
        // An ordinary nonzero tag is used verbatim.
        assert_eq!(d.request_id_for(&request(42, Priority::Normal)), 42);
    }

    #[test]
    fn property_bounds_never_shed_high_and_preserve_fifo() {
        jigsaw_testkit::cases!(24, |rng| {
            let q = JobQueue::new();
            let max_depth = rng.usize_range(1, 6);
            let out = empty_buf();
            let mut expect_high = Vec::new();
            let mut expect_normal = Vec::new();
            let n_jobs = rng.usize_range(1, 20);
            for i in 0..n_jobs {
                let tag = i as u64 + 1;
                let high = rng.bool(0.4);
                let pr = if high {
                    Priority::High
                } else {
                    Priority::Normal
                };
                let job = queued(tag, pr, RunBudget::unlimited(), &out);
                match q.push(job, max_depth, usize::MAX) {
                    Ok(()) => {
                        if high {
                            expect_high.push(tag);
                        } else {
                            expect_normal.push(tag);
                        }
                    }
                    Err((job, Refusal::Depth)) => {
                        assert!(
                            !matches!(job.req.priority, Priority::High),
                            "high-priority job {tag} shed by the depth bound"
                        );
                    }
                    Err(_) => panic!("unexpected refusal for job {tag}"),
                }
            }
            // Drain: high first, FIFO within each class, shedding
            // notwithstanding.
            q.close();
            let mut drained = Vec::new();
            loop {
                match q.pop_one() {
                    Popped::Job(j) => drained.push(j.req.tag),
                    Popped::Expired(j) => panic!("unlimited job {} expired", j.req.tag),
                    Popped::Closed => break,
                }
            }
            let mut expected = expect_high;
            expected.extend_from_slice(&expect_normal);
            assert_eq!(drained, expected);
        });
    }

    #[test]
    fn property_byte_ledger_bounds_normal_admission() {
        jigsaw_testkit::cases!(16, |rng| {
            let q = JobQueue::new();
            let out = empty_buf();
            let per_job = request(1, Priority::Normal).approx_bytes();
            let cap_jobs = rng.usize_range(1, 5);
            let max_bytes = per_job * cap_jobs;
            let mut admitted = 0usize;
            for i in 0..8 {
                let job = queued(i + 1, Priority::Normal, RunBudget::unlimited(), &out);
                match q.push(job, usize::MAX, max_bytes) {
                    Ok(()) => admitted += 1,
                    Err((_, Refusal::Bytes)) => {}
                    Err(_) => panic!("unexpected refusal"),
                }
            }
            assert_eq!(
                admitted,
                cap_jobs.min(8),
                "ledger admits exactly the byte budget"
            );
            // High priority bypasses the byte bound even when full.
            let high = queued(99, Priority::High, RunBudget::unlimited(), &out);
            assert!(q.push(high, usize::MAX, max_bytes).is_ok());
        });
    }

    #[test]
    fn expired_jobs_are_swept_and_popped_as_expired() {
        let q = JobQueue::new();
        let out = empty_buf();
        q.push(
            queued(1, Priority::Normal, RunBudget::with_time_ms(0), &out),
            16,
            usize::MAX,
        )
        .unwrap_or_else(|_| panic!("push refused"));
        q.push(
            queued(2, Priority::Normal, RunBudget::unlimited(), &out),
            16,
            usize::MAX,
        )
        .unwrap_or_else(|_| panic!("push refused"));
        // The sweep pulls only the expired job, deep-queue position
        // notwithstanding.
        let swept = q.sweep_expired();
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].req.tag, 1);
        // The live job still pops normally.
        q.close();
        match q.pop_one() {
            Popped::Job(j) => assert_eq!(j.req.tag, 2),
            _ => panic!("live job must pop as Job"),
        }
        assert!(matches!(q.pop_one(), Popped::Closed));
        // pop_one itself also classifies expired jobs.
        let q2 = JobQueue::new();
        q2.push(
            queued(3, Priority::Normal, RunBudget::with_time_ms(0), &out),
            16,
            usize::MAX,
        )
        .unwrap_or_else(|_| panic!("push refused"));
        q2.close();
        assert!(matches!(q2.pop_one(), Popped::Expired(_)));
    }

    #[test]
    fn zero_depth_bound_sheds_normal_but_admits_high() {
        let opts = ServeOptions {
            max_queue_depth: 0,
            executors: 1,
            ..Default::default()
        };
        let replies = run_session(
            &[
                Frame::Submit(request(1, Priority::Normal)),
                Frame::Submit(request(2, Priority::High)),
                Frame::Shutdown,
            ],
            &opts,
        );
        let shed: Vec<&OverloadFrame> = replies
            .iter()
            .filter_map(|f| match f {
                Frame::Overloaded(o) => Some(o),
                _ => None,
            })
            .collect();
        assert_eq!(shed.len(), 1, "normal job shed exactly once: {replies:?}");
        assert_eq!(shed[0].tag, 1);
        assert_eq!(shed[0].reason, ShedReason::QueueDepth);
        assert!(shed[0].retry_after_ms >= 25);
        assert!(replies
            .iter()
            .any(|f| matches!(f, Frame::Result(JobResult { tag: 2, .. }))));
    }

    #[test]
    fn zero_byte_bound_sheds_normal_with_bytes_reason() {
        let opts = ServeOptions {
            max_queued_bytes: 0,
            executors: 1,
            ..Default::default()
        };
        let replies = run_session(
            &[Frame::Submit(request(5, Priority::Normal)), Frame::Shutdown],
            &opts,
        );
        assert!(
            replies.iter().any(|f| matches!(
                f,
                Frame::Overloaded(OverloadFrame {
                    tag: 5,
                    reason: ShedReason::QueueBytes,
                    ..
                })
            )),
            "{replies:?}"
        );
    }

    #[test]
    fn watchdog_cancels_blown_and_stuck_jobs_but_not_unlimited() {
        let d = Daemon::new(&ServeOptions::default());
        let blown = RunBudget::with_time_ms(0);
        let stuck = RunBudget::unlimited();
        let unlimited = RunBudget::unlimited();
        let backdated = Instant::now() - Duration::from_millis(500);
        let mut inflight = d.inflight.lock().unwrap();
        inflight.insert(
            DAEMON_ID_BIT | 1,
            InFlight {
                budget: blown.clone(),
                started: Instant::now(),
                budget_ms: 1,
                tag: 1,
            },
        );
        inflight.insert(
            DAEMON_ID_BIT | 2,
            InFlight {
                budget: stuck.clone(),
                started: backdated,
                budget_ms: 1,
                tag: 2,
            },
        );
        inflight.insert(
            DAEMON_ID_BIT | 3,
            InFlight {
                budget: unlimited.clone(),
                started: backdated,
                budget_ms: 0,
                tag: 3,
            },
        );
        drop(inflight);
        watchdog_tick(&d);
        assert!(blown.is_cancelled(), "deadline-blown job cancelled");
        assert!(
            stuck.is_cancelled(),
            "stuck job cancelled past the multiple"
        );
        assert!(
            !unlimited.is_cancelled(),
            "unlimited jobs are never watchdog-cancelled"
        );
        // A second tick is idempotent: already-cancelled jobs are
        // skipped, not re-fired.
        watchdog_tick(&d);
    }

    /// A client that vanished: every write fails.
    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client gone",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn dropped_replies_are_counted_and_flight_recorded() {
        telemetry::set_enabled(true);
        let counter_value = || {
            telemetry::global()
                .snapshot()
                .counters
                .iter()
                .find(|(n, _)| n == "serve.replies_dropped")
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let before = counter_value();
        let reply: Reply = Arc::new(Mutex::new(Box::new(FailingWriter)));
        send(&reply, &Frame::Pong, DAEMON_ID_BIT | 77, 9);
        assert_eq!(counter_value(), before + 1);
        let tail = telemetry::flight::global().tail(telemetry::flight::FLIGHT_CAPACITY);
        assert!(
            tail.iter()
                .any(|e| e.kind == telemetry::FlightKind::ReplyDropped
                    && e.request_id == DAEMON_ID_BIT | 77),
            "reply_dropped event missing from flight tail"
        );
    }

    #[test]
    fn drain_finishes_accepted_jobs_and_sheds_late_submits() {
        // Deterministic ordering: submits 1 and 2 are admitted before
        // the reader thread processes Drain (same thread, in order);
        // the late submit hits the closed queue and must get a
        // structured Overloaded{draining} refusal, not a shutdown
        // error. EOF then ends the session; executors drain jobs 1+2.
        let replies = run_session(
            &[
                Frame::Submit(request(1, Priority::Normal)),
                Frame::Submit(request(2, Priority::High)),
                Frame::Drain,
                Frame::Submit(request(9, Priority::Normal)),
            ],
            &ServeOptions {
                executors: 1,
                ..Default::default()
            },
        );
        assert!(replies.contains(&Frame::Pong), "drain must be acked");
        let mut result_tags: Vec<u64> = replies
            .iter()
            .filter_map(|f| match f {
                Frame::Result(r) => Some(r.tag),
                _ => None,
            })
            .collect();
        result_tags.sort_unstable();
        assert_eq!(
            result_tags,
            vec![1, 2],
            "every accepted job gets exactly one result: {replies:?}"
        );
        let shed: Vec<&OverloadFrame> = replies
            .iter()
            .filter_map(|f| match f {
                Frame::Overloaded(o) => Some(o),
                _ => None,
            })
            .collect();
        assert_eq!(shed.len(), 1, "{replies:?}");
        assert_eq!(shed[0].tag, 9);
        assert_eq!(shed[0].reason, ShedReason::Draining);
    }

    #[test]
    fn hard_shutdown_still_gets_protocol_error_not_overloaded() {
        // The Drain/Shutdown distinction must be observable: late
        // submits after a hard Shutdown keep the legacy shutdown error
        // (but handle_connection returns on Shutdown, so exercise the
        // admit path directly).
        let d = Daemon::new(&ServeOptions::default());
        d.initiate_shutdown();
        let out = empty_buf();
        d.admit(queued(5, Priority::Normal, RunBudget::unlimited(), &out));
        let bytes = out.0.lock().unwrap().clone();
        match read_frame(&mut std::io::Cursor::new(bytes)).expect("reply") {
            Frame::Error(e) => {
                assert_eq!(e.tag, 5);
                assert_eq!(e.category, ErrorCategory::Protocol);
            }
            other => panic!("expected shutdown error frame, got {other:?}"),
        }
    }

    fn temp_snapshot(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("jigsaw-daemon-{name}-{}.snap", std::process::id()))
    }

    #[test]
    fn drain_snapshots_and_restart_is_warm() {
        let path = temp_snapshot("warm-restart");
        let _ = std::fs::remove_file(&path);
        let opts = ServeOptions {
            executors: 1,
            snapshot_path: Some(path.clone()),
            ..Default::default()
        };
        // First lifetime: warm the cache, drain.
        let replies = run_session(
            &[Frame::Submit(request(1, Priority::Normal)), Frame::Drain],
            &opts,
        );
        assert!(replies.iter().any(|f| matches!(
            f,
            Frame::Result(JobResult {
                tag: 1,
                cache_hit: false,
                ..
            })
        )));
        assert!(path.exists(), "drain must write the snapshot");
        // Second lifetime: same trajectory must be a plan-cache hit on
        // the very first request.
        let replies = run_session(
            &[Frame::Submit(request(2, Priority::Normal)), Frame::Shutdown],
            &opts,
        );
        let hit = replies
            .iter()
            .find_map(|f| match f {
                Frame::Result(r) if r.tag == 2 => Some(r.cache_hit),
                _ => None,
            })
            .expect("post-restart job must produce a result");
        assert!(
            hit,
            "first identical post-restart request must hit the cache"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hard_shutdown_does_not_snapshot() {
        let path = temp_snapshot("no-snap-on-shutdown");
        let _ = std::fs::remove_file(&path);
        let opts = ServeOptions {
            snapshot_path: Some(path.clone()),
            ..Default::default()
        };
        run_session(
            &[Frame::Submit(request(1, Priority::Normal)), Frame::Shutdown],
            &opts,
        );
        assert!(
            !path.exists(),
            "hard shutdown is the no-snapshot path (only drain persists)"
        );
    }

    #[test]
    fn corrupt_snapshot_degrades_to_cold_start() {
        let path = temp_snapshot("corrupt");
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        let opts = ServeOptions {
            snapshot_path: Some(path.clone()),
            ..Default::default()
        };
        // The daemon must come up and serve — cold.
        let replies = run_session(
            &[Frame::Submit(request(3, Priority::Normal)), Frame::Shutdown],
            &opts,
        );
        assert!(
            replies.iter().any(|f| matches!(
                f,
                Frame::Result(JobResult {
                    tag: 3,
                    cache_hit: false,
                    ..
                })
            )),
            "{replies:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_save_failure_is_contained_and_counted() {
        telemetry::set_enabled(true);
        let counter_value = || {
            telemetry::global()
                .snapshot()
                .counters
                .iter()
                .find(|(n, _)| n == "serve.snapshot.save_failures")
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let before = counter_value();
        // A directory as the snapshot target: the rename must fail.
        let opts = ServeOptions {
            snapshot_path: Some(std::env::temp_dir()),
            ..Default::default()
        };
        let d = Daemon::new(&opts);
        d.write_snapshot("test");
        assert_eq!(counter_value(), before + 1);
    }

    #[test]
    fn budget_zero_default_applies_daemon_default() {
        // default_budget_ms = 1 ns-scale deadline: the job is refused
        // with a budget error frame (tiny deadline, already expired by
        // execution time) — or completes if the machine is fast; both
        // are valid, but the frame must be tagged either way.
        let opts = ServeOptions {
            default_budget_ms: 0,
            ..Default::default()
        };
        let replies = run_session(
            &[Frame::Submit(request(7, Priority::Normal)), Frame::Shutdown],
            &opts,
        );
        assert!(replies.iter().any(|f| matches!(
            f,
            Frame::Result(JobResult { tag: 7, .. }) | Frame::Error(ErrorFrame { tag: 7, .. })
        )));
    }
}
