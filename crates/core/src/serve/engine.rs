//! Job execution for the serving daemon: plan-cache seam, budget
//! admission, and per-job panic containment.
//!
//! [`ServeEngine::execute`] is the single choke point every submitted
//! job flows through. It wraps the whole job body in `catch_unwind`, so
//! a panicking job — including one injected at the `serve.job` or
//! `serve.cache` fault points — becomes a structured
//! [`ErrorFrame`] for that client while the engine, the plan cache, and
//! the shared [`WorkerPool`](crate::engine::WorkerPool) all survive for
//! the next job. Neither fault point fires while a lock is held, so an
//! injected panic can never poison the cache.

use super::cache::{CachedPlan, PlanCache};
use super::protocol::{ErrorCategory, ErrorFrame, JobRequest, JobResult, Priority, MAX_N};
use super::stats::{CacheStats, StatsSnapshot, WindowStats, WorkerStats, STATS_VERSION};
use crate::budget::RunBudget;
use crate::config::NufftConfig;
use crate::{Error, Result};
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::faultpoint;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use telemetry::{FlightKind, WindowedHistogram};

/// The daemon's job executor: a plan cache plus the execution policy
/// (validation, budget admission, panic containment). Shared by
/// reference across executor threads.
#[derive(Debug)]
pub struct ServeEngine {
    cache: PlanCache,
    start: Instant,
    latency_window: WindowedHistogram,
    wait_window_normal: WindowedHistogram,
    wait_window_high: WindowedHistogram,
}

impl ServeEngine {
    /// An engine whose plan cache holds at most `cache_capacity` plans.
    pub fn new(cache_capacity: usize) -> Self {
        Self {
            cache: PlanCache::new(cache_capacity),
            start: Instant::now(),
            latency_window: WindowedHistogram::last_60s(),
            wait_window_normal: WindowedHistogram::last_60s(),
            wait_window_high: WindowedHistogram::last_60s(),
        }
    }

    /// The underlying plan cache (counters, capacity, resident keys).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Run one job to completion. Every failure — validation,
    /// budget exhaustion, contained panic — comes back as a tagged
    /// [`ErrorFrame`]; the engine itself never dies.
    ///
    /// Records `serve.jobs`, `serve.job_errors`, and the
    /// `serve.job_latency_ns` histogram. Equivalent to
    /// [`execute_traced`](Self::execute_traced) with the request's tag
    /// as its trace id.
    pub fn execute(
        &self,
        req: &JobRequest,
        budget: &RunBudget,
    ) -> core::result::Result<JobResult, ErrorFrame> {
        self.execute_traced(req, budget, req.tag)
    }

    /// [`execute`](Self::execute) with an explicit request id threaded
    /// through every span opened below this call (the `req` span arg),
    /// so a Chrome trace of the daemon can be filtered to one request
    /// end-to-end. Also feeds the flight recorder: `JobStarted` on
    /// entry, `JobFinished`/`JobFailed` on exit, `FaultFired` when a
    /// contained panic carries an injected-fault payload. A contained
    /// panic additionally dumps the flight-recorder tail to stderr,
    /// naming the request id.
    pub fn execute_traced(
        &self,
        req: &JobRequest,
        budget: &RunBudget,
        request_id: u64,
    ) -> core::result::Result<JobResult, ErrorFrame> {
        let _trace = telemetry::RequestScope::enter(request_id);
        let t0 = Instant::now();
        telemetry::record_counter("serve.jobs", 1);
        telemetry::flight::record(
            FlightKind::JobStarted,
            request_id,
            req.tag,
            &format!("n={} m={}", req.n, req.coords.len()),
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| self.execute_inner(req, budget)));
        let latency_ns = t0.elapsed().as_nanos() as u64;
        let result = match outcome {
            Ok(Ok(res)) => {
                telemetry::flight::record(
                    FlightKind::JobFinished,
                    request_id,
                    req.tag,
                    &format!("cache_hit={} latency_ns={latency_ns}", res.cache_hit),
                );
                Ok(res)
            }
            Ok(Err(e)) => {
                telemetry::flight::record(
                    FlightKind::JobFailed,
                    request_id,
                    req.tag,
                    &e.to_string(),
                );
                Err(ErrorFrame {
                    tag: req.tag,
                    category: ErrorCategory::from_error(&e),
                    message: e.to_string(),
                })
            }
            Err(payload) => {
                if let Some(f) = payload.downcast_ref::<jigsaw_testkit::fault::FaultInjected>() {
                    telemetry::flight::record(FlightKind::FaultFired, request_id, req.tag, f.site);
                }
                let msg = jigsaw_fft::exec::panic_message(&*payload);
                telemetry::flight::record(
                    FlightKind::JobFailed,
                    request_id,
                    req.tag,
                    &format!("panic: {msg}"),
                );
                eprintln!(
                    "[jigsaw-serve] contained panic in job request_id={request_id} tag={}: {msg}",
                    req.tag
                );
                eprintln!("{}", telemetry::flight::dump_tail(32));
                Err(ErrorFrame {
                    tag: req.tag,
                    category: ErrorCategory::Execution,
                    message: format!("job panicked (contained): {msg}"),
                })
            }
        };
        if result.is_err() {
            telemetry::record_counter("serve.job_errors", 1);
        }
        telemetry::record_histogram("serve.job_latency_ns", latency_ns);
        if telemetry::enabled() {
            self.latency_window.record(latency_ns);
        }
        result
    }

    /// Record a job's queue wait: the `serve.queue_wait_ns` registry
    /// histogram plus the per-priority 60-second window.
    pub fn note_queue_wait(&self, priority: Priority, wait_ns: u64) {
        telemetry::record_histogram("serve.queue_wait_ns", wait_ns);
        if telemetry::enabled() {
            match priority {
                Priority::High => self.wait_window_high.record(wait_ns),
                Priority::Normal => self.wait_window_normal.record(wait_ns),
            }
        }
    }

    /// Assemble a [`StatsSnapshot`] without blocking job execution:
    /// registry snapshot (per-series locks), plan-cache atomics,
    /// always-on worker-pool counters, rolling windows, and the
    /// flight-recorder tail. Queue depths are the caller's — the daemon
    /// reads them under its own brief queue lock — so this method never
    /// touches the queue or the plan build path.
    pub fn stats_snapshot(&self, queue_depth: u32, queue_high: u32) -> StatsSnapshot {
        telemetry::sync_dropped_events();
        let reg = telemetry::global().snapshot();
        let pool = crate::engine::WorkerPool::global();
        let workers = pool
            .worker_busy_ns()
            .into_iter()
            .zip(pool.worker_job_counts())
            .map(|(busy_ns, jobs)| WorkerStats { busy_ns, jobs })
            .collect();
        let now = telemetry::now_ns();
        let windows = vec![
            WindowStats {
                name: "serve.job_latency_ns.60s".into(),
                window_ns: self.latency_window.window_ns(),
                hist: self.latency_window.snapshot_at(now),
            },
            WindowStats {
                name: "serve.queue_wait_ns.high.60s".into(),
                window_ns: self.wait_window_high.window_ns(),
                hist: self.wait_window_high.snapshot_at(now),
            },
            WindowStats {
                name: "serve.queue_wait_ns.normal.60s".into(),
                window_ns: self.wait_window_normal.window_ns(),
                hist: self.wait_window_normal.snapshot_at(now),
            },
        ];
        StatsSnapshot {
            stats_version: STATS_VERSION,
            uptime_ns: self.start.elapsed().as_nanos() as u64,
            queue_depth,
            queue_high,
            cache: CacheStats {
                hits: self.cache.hits(),
                misses: self.cache.misses(),
                evictions: self.cache.evictions(),
                len: self.cache.len() as u32,
                capacity: self.cache.capacity() as u32,
            },
            workers,
            windows,
            counters: reg.counters,
            gauges: reg.gauges,
            histograms: reg.histograms,
            flight: telemetry::flight::global().tail(64),
        }
    }

    fn execute_inner(&self, req: &JobRequest, budget: &RunBudget) -> Result<JobResult> {
        let _span = telemetry::span!("serve.job", {
            tag: req.tag as usize,
            n: req.n as usize,
            m: req.coords.len()
        });
        faultpoint!(crate::fault::SERVE_JOB);
        if budget.exhausted() {
            return Err(Error::Budget(format!(
                "job {} budget exhausted before execution",
                req.tag
            )));
        }
        if req.n == 0 || req.n > MAX_N {
            return Err(Error::Config(format!(
                "image size n = {} outside serving range [1, {MAX_N}]",
                req.n
            )));
        }
        if req.coords.is_empty() {
            return Err(Error::Data("job carries no samples".into()));
        }
        if req.coords.len() != req.values.len() {
            return Err(Error::Data(format!(
                "coordinate count {} != value count {}",
                req.coords.len(),
                req.values.len()
            )));
        }
        // Non-finite sample values are rejected here, symmetric with
        // the coordinate check inside planning: a NaN that reached the
        // gridder would silently poison the whole image — and, now that
        // cache entries can be *persisted*, could outlive the process.
        if let Some(i) = req
            .values
            .iter()
            .position(|v| !v.re.is_finite() || !v.im.is_finite())
        {
            return Err(Error::Data(format!("non-finite sample value at index {i}")));
        }
        let cfg = NufftConfig::with_n(req.n as usize);
        let (cached, cache_hit) = self.cache.get_or_build(&cfg, &req.coords)?;
        if budget.exhausted() {
            // Admission control: planning consumed the deadline and no
            // usable result exists — refuse rather than start gridding.
            return Err(Error::Budget(format!(
                "job {} budget exhausted after planning",
                req.tag
            )));
        }
        let image = {
            // Arm the cooperative checkpoints in the gridding / FFT /
            // per-coil hot loops for the duration of the numeric body:
            // if the watchdog cancels this budget, the loops bail at
            // the next chunk boundary and the partial result is
            // discarded here.
            let _scope = budget.enter_scope();
            Self::reconstruct(&cached, req)?
        };
        if budget.is_cancelled() || budget.exhausted() {
            // The deadline passed (or the watchdog fired) after the
            // last checkpoint but before we could reply: a late result
            // is as useless to the client as no result. Discard it so
            // accepted jobs never complete past their deadline by more
            // than one chunk epsilon.
            return Err(Error::Budget(format!(
                "job {} deadline passed during reconstruction; partial result discarded",
                req.tag
            )));
        }
        Ok(JobResult {
            tag: req.tag,
            cache_hit,
            n: req.n,
            image,
        })
    }

    /// The back-off hint carried by an `Overloaded` refusal: estimated
    /// queue drain time — the last-60s median job latency times the
    /// number of queued jobs per executor — clamped to `[25, 30000]` ms.
    /// A cold daemon (empty latency window) suggests a flat 100 ms.
    pub fn estimated_retry_after_ms(&self, queue_depth: u32, executors: usize) -> u32 {
        let hist = self.latency_window.snapshot_at(telemetry::now_ns());
        if hist.count == 0 {
            return 100;
        }
        let p50_ns = hist.quantile_estimate(0.5);
        let waves = (queue_depth as u64)
            .div_ceil(executors.max(1) as u64)
            .max(1);
        let est_ms = (p50_ns * waves as f64 / 1e6).ceil() as u64;
        est_ms.clamp(25, 30_000) as u32
    }

    /// The numeric body: planned batched adjoint on the shared worker
    /// pool. Bitwise identical to a cold `adjoint(coords, values,
    /// &SerialGridder)` run by the planned-path invariant, so a cache
    /// hit and a cache miss produce identical bytes.
    fn reconstruct(cached: &Arc<CachedPlan>, req: &JobRequest) -> Result<Vec<jigsaw_num::C64>> {
        let outs = cached
            .plan
            .adjoint_batch_planned(&cached.traj, &[&req.values])?;
        outs.into_iter()
            .next()
            .map(|o| o.image)
            .ok_or_else(|| Error::Execution("planned adjoint returned no image".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::SerialGridder;
    use crate::traj;
    use crate::NufftPlan;
    use jigsaw_num::C64;
    use jigsaw_testkit::fault;

    fn radial_request(tag: u64, n: u32, seed: u64) -> JobRequest {
        let mut coords = traj::radial_2d(8, 2 * n as usize, true);
        traj::shuffle(&mut coords, seed);
        let values: Vec<C64> = coords
            .iter()
            .enumerate()
            .map(|(i, c)| C64::new(c[0].cos() + i as f64 * 1e-3, c[1].sin()))
            .collect();
        JobRequest {
            tag,
            priority: super::super::protocol::Priority::Normal,
            n,
            budget_ms: 0,
            coords,
            values,
        }
    }

    #[test]
    fn result_matches_cold_serial_run_bitwise() {
        let engine = ServeEngine::new(4);
        let req = radial_request(1, 16, 7);
        let res = engine
            .execute(&req, &RunBudget::unlimited())
            .expect("job succeeds");
        assert!(!res.cache_hit);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(16)).unwrap();
        let cold = plan
            .adjoint(&req.coords, &req.values, &SerialGridder)
            .unwrap();
        assert_eq!(res.image.len(), cold.image.len());
        for (a, b) in res.image.iter().zip(&cold.image) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // Second run: cache hit, still bitwise identical.
        let res2 = engine.execute(&req, &RunBudget::unlimited()).unwrap();
        assert!(res2.cache_hit);
        assert_eq!(res.image, res2.image);
    }

    #[test]
    fn validation_failures_are_tagged_error_frames() {
        let engine = ServeEngine::new(2);
        let budget = RunBudget::unlimited();
        let mut bad_n = radial_request(9, 16, 1);
        bad_n.n = 0;
        let e = engine.execute(&bad_n, &budget).unwrap_err();
        assert_eq!(e.tag, 9);
        assert_eq!(e.category, ErrorCategory::Config);

        let mut mismatch = radial_request(10, 16, 1);
        mismatch.values.pop();
        let e = engine.execute(&mismatch, &budget).unwrap_err();
        assert_eq!(e.tag, 10);
        assert_eq!(e.category, ErrorCategory::Data);

        let mut nan = radial_request(11, 16, 1);
        nan.coords[0][0] = f64::NAN;
        let e = engine.execute(&nan, &budget).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Data);
    }

    #[test]
    fn exhausted_budget_is_refused_before_work() {
        let engine = ServeEngine::new(2);
        let req = radial_request(5, 16, 2);
        let e = engine
            .execute(&req, &RunBudget::with_time_ms(0))
            .unwrap_err();
        assert_eq!(e.tag, 5);
        assert_eq!(e.category, ErrorCategory::Budget);
        // The refused job must not have touched the cache.
        assert_eq!(engine.cache().len(), 0);
    }

    #[test]
    fn watchdog_style_cancellation_stops_a_job_mid_run() {
        let engine = ServeEngine::new(2);
        // A large job (256² grid, thousands of samples) so the numeric
        // body is comfortably longer than the cancellation delay.
        let req = radial_request(41, 256, 5);
        let budget = RunBudget::unlimited();
        let flag = budget.cancel_flag();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            flag.cancel();
        });
        let e = engine.execute(&req, &budget).unwrap_err();
        canceller.join().unwrap();
        assert_eq!(e.tag, 41);
        assert_eq!(e.category, ErrorCategory::Budget);
        // Same engine afterwards: a fresh budget runs the job cleanly —
        // cancellation left no poisoned state behind.
        let small = radial_request(42, 16, 6);
        let res = engine.execute(&small, &RunBudget::unlimited()).unwrap();
        assert_eq!(res.tag, 42);
    }

    #[test]
    fn retry_hint_is_clamped_and_defaults_when_cold() {
        let engine = ServeEngine::new(2);
        // Cold engine: empty latency window → flat default.
        assert_eq!(engine.estimated_retry_after_ms(10, 2), 100);
        // Warm the window with a real job, then check the clamp bounds.
        telemetry::set_enabled(true);
        let req = radial_request(51, 16, 7);
        engine.execute(&req, &RunBudget::unlimited()).unwrap();
        let hint = engine.estimated_retry_after_ms(1, 2);
        assert!((25..=30_000).contains(&hint), "hint {hint} out of clamp");
        // A pathological queue depth still clamps at the ceiling.
        assert_eq!(engine.estimated_retry_after_ms(u32::MAX, 1), 30_000);
    }

    #[test]
    fn injected_job_panic_is_contained_and_engine_survives() {
        let _guard = fault::test_guard();
        let engine = ServeEngine::new(2);
        let req = radial_request(21, 16, 3);
        fault::arm(fault::FaultPlan::once_at(crate::fault::SERVE_JOB));
        let e = engine.execute(&req, &RunBudget::unlimited()).unwrap_err();
        assert_eq!(e.tag, 21);
        assert_eq!(e.category, ErrorCategory::Execution);
        assert!(e.message.contains(crate::fault::SERVE_JOB), "{}", e.message);
        assert_eq!(fault::fires(), 1);
        fault::disarm();
        // Same engine, same request: clean run succeeds.
        let res = engine.execute(&req, &RunBudget::unlimited()).unwrap();
        assert_eq!(res.tag, 21);
    }
}
