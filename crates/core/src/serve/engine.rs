//! Job execution for the serving daemon: plan-cache seam, budget
//! admission, and per-job panic containment.
//!
//! [`ServeEngine::execute`] is the single choke point every submitted
//! job flows through. It wraps the whole job body in `catch_unwind`, so
//! a panicking job — including one injected at the `serve.job` or
//! `serve.cache` fault points — becomes a structured
//! [`ErrorFrame`] for that client while the engine, the plan cache, and
//! the shared [`WorkerPool`](crate::engine::WorkerPool) all survive for
//! the next job. Neither fault point fires while a lock is held, so an
//! injected panic can never poison the cache.

use super::cache::{CachedPlan, PlanCache};
use super::protocol::{ErrorCategory, ErrorFrame, JobRequest, JobResult, MAX_N};
use crate::budget::RunBudget;
use crate::config::NufftConfig;
use crate::{Error, Result};
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::faultpoint;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// The daemon's job executor: a plan cache plus the execution policy
/// (validation, budget admission, panic containment). Shared by
/// reference across executor threads.
#[derive(Debug)]
pub struct ServeEngine {
    cache: PlanCache,
}

impl ServeEngine {
    /// An engine whose plan cache holds at most `cache_capacity` plans.
    pub fn new(cache_capacity: usize) -> Self {
        Self {
            cache: PlanCache::new(cache_capacity),
        }
    }

    /// The underlying plan cache (counters, capacity, resident keys).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Run one job to completion. Every failure — validation,
    /// budget exhaustion, contained panic — comes back as a tagged
    /// [`ErrorFrame`]; the engine itself never dies.
    ///
    /// Records `serve.jobs`, `serve.job_errors`, and the
    /// `serve.job_latency_ns` histogram.
    pub fn execute(
        &self,
        req: &JobRequest,
        budget: &RunBudget,
    ) -> core::result::Result<JobResult, ErrorFrame> {
        let t0 = Instant::now();
        telemetry::record_counter("serve.jobs", 1);
        let outcome = catch_unwind(AssertUnwindSafe(|| self.execute_inner(req, budget)));
        let result = match outcome {
            Ok(Ok(res)) => Ok(res),
            Ok(Err(e)) => Err(ErrorFrame {
                tag: req.tag,
                category: ErrorCategory::from_error(&e),
                message: e.to_string(),
            }),
            Err(payload) => Err(ErrorFrame {
                tag: req.tag,
                category: ErrorCategory::Execution,
                message: format!(
                    "job panicked (contained): {}",
                    jigsaw_fft::exec::panic_message(&*payload)
                ),
            }),
        };
        if result.is_err() {
            telemetry::record_counter("serve.job_errors", 1);
        }
        telemetry::record_histogram("serve.job_latency_ns", t0.elapsed().as_nanos() as u64);
        result
    }

    fn execute_inner(&self, req: &JobRequest, budget: &RunBudget) -> Result<JobResult> {
        let _span = telemetry::span!("serve.job", {
            tag: req.tag as usize,
            n: req.n as usize,
            m: req.coords.len()
        });
        faultpoint!(crate::fault::SERVE_JOB);
        if budget.exhausted() {
            return Err(Error::Budget(format!(
                "job {} budget exhausted before execution",
                req.tag
            )));
        }
        if req.n == 0 || req.n > MAX_N {
            return Err(Error::Config(format!(
                "image size n = {} outside serving range [1, {MAX_N}]",
                req.n
            )));
        }
        if req.coords.is_empty() {
            return Err(Error::Data("job carries no samples".into()));
        }
        if req.coords.len() != req.values.len() {
            return Err(Error::Data(format!(
                "coordinate count {} != value count {}",
                req.coords.len(),
                req.values.len()
            )));
        }
        let cfg = NufftConfig::with_n(req.n as usize);
        let (cached, cache_hit) = self.cache.get_or_build(&cfg, &req.coords)?;
        if budget.exhausted() {
            // Admission control: planning consumed the deadline and no
            // usable result exists — refuse rather than start gridding.
            return Err(Error::Budget(format!(
                "job {} budget exhausted after planning",
                req.tag
            )));
        }
        let image = Self::reconstruct(&cached, req)?;
        Ok(JobResult {
            tag: req.tag,
            cache_hit,
            n: req.n,
            image,
        })
    }

    /// The numeric body: planned batched adjoint on the shared worker
    /// pool. Bitwise identical to a cold `adjoint(coords, values,
    /// &SerialGridder)` run by the planned-path invariant, so a cache
    /// hit and a cache miss produce identical bytes.
    fn reconstruct(cached: &Arc<CachedPlan>, req: &JobRequest) -> Result<Vec<jigsaw_num::C64>> {
        let outs = cached
            .plan
            .adjoint_batch_planned(&cached.traj, &[&req.values])?;
        outs.into_iter()
            .next()
            .map(|o| o.image)
            .ok_or_else(|| Error::Execution("planned adjoint returned no image".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::SerialGridder;
    use crate::traj;
    use crate::NufftPlan;
    use jigsaw_num::C64;
    use jigsaw_testkit::fault;

    fn radial_request(tag: u64, n: u32, seed: u64) -> JobRequest {
        let mut coords = traj::radial_2d(8, 2 * n as usize, true);
        traj::shuffle(&mut coords, seed);
        let values: Vec<C64> = coords
            .iter()
            .enumerate()
            .map(|(i, c)| C64::new(c[0].cos() + i as f64 * 1e-3, c[1].sin()))
            .collect();
        JobRequest {
            tag,
            priority: super::super::protocol::Priority::Normal,
            n,
            budget_ms: 0,
            coords,
            values,
        }
    }

    #[test]
    fn result_matches_cold_serial_run_bitwise() {
        let engine = ServeEngine::new(4);
        let req = radial_request(1, 16, 7);
        let res = engine
            .execute(&req, &RunBudget::unlimited())
            .expect("job succeeds");
        assert!(!res.cache_hit);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(16)).unwrap();
        let cold = plan
            .adjoint(&req.coords, &req.values, &SerialGridder)
            .unwrap();
        assert_eq!(res.image.len(), cold.image.len());
        for (a, b) in res.image.iter().zip(&cold.image) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // Second run: cache hit, still bitwise identical.
        let res2 = engine.execute(&req, &RunBudget::unlimited()).unwrap();
        assert!(res2.cache_hit);
        assert_eq!(res.image, res2.image);
    }

    #[test]
    fn validation_failures_are_tagged_error_frames() {
        let engine = ServeEngine::new(2);
        let budget = RunBudget::unlimited();
        let mut bad_n = radial_request(9, 16, 1);
        bad_n.n = 0;
        let e = engine.execute(&bad_n, &budget).unwrap_err();
        assert_eq!(e.tag, 9);
        assert_eq!(e.category, ErrorCategory::Config);

        let mut mismatch = radial_request(10, 16, 1);
        mismatch.values.pop();
        let e = engine.execute(&mismatch, &budget).unwrap_err();
        assert_eq!(e.tag, 10);
        assert_eq!(e.category, ErrorCategory::Data);

        let mut nan = radial_request(11, 16, 1);
        nan.coords[0][0] = f64::NAN;
        let e = engine.execute(&nan, &budget).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Data);
    }

    #[test]
    fn exhausted_budget_is_refused_before_work() {
        let engine = ServeEngine::new(2);
        let req = radial_request(5, 16, 2);
        let e = engine
            .execute(&req, &RunBudget::with_time_ms(0))
            .unwrap_err();
        assert_eq!(e.tag, 5);
        assert_eq!(e.category, ErrorCategory::Budget);
        // The refused job must not have touched the cache.
        assert_eq!(engine.cache().len(), 0);
    }

    #[test]
    fn injected_job_panic_is_contained_and_engine_survives() {
        let _guard = fault::test_guard();
        let engine = ServeEngine::new(2);
        let req = radial_request(21, 16, 3);
        fault::arm(fault::FaultPlan::once_at(crate::fault::SERVE_JOB));
        let e = engine.execute(&req, &RunBudget::unlimited()).unwrap_err();
        assert_eq!(e.tag, 21);
        assert_eq!(e.category, ErrorCategory::Execution);
        assert!(e.message.contains(crate::fault::SERVE_JOB), "{}", e.message);
        assert_eq!(fault::fires(), 1);
        fault::disarm();
        // Same engine, same request: clean run succeeds.
        let res = engine.execute(&req, &RunBudget::unlimited()).unwrap();
        assert_eq!(res.tag, 21);
    }
}
