//! A small synchronous client for the serve protocol, used by the
//! `jigsaw request` CLI command and the black-box test suite.
//!
//! The overload-aware entry points ([`ServeClient::connect_with_retry`],
//! [`ServeClient::roundtrip_with_retry`]) retry refused work with
//! exponential backoff and deterministic seeded jitter, honoring the
//! daemon's `retry_after_ms` hint: the delay before attempt `k` is
//! `max(backoff_ms · 2^k ± 25 % jitter, retry_after_ms)`. An
//! `Overloaded` frame leaves the connection open — the daemon refused
//! the *job*, not the client — so resubmission reuses the stream.

use super::protocol::{read_frame, write_frame, Frame, JobRequest, ProtocolError};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Retry schedule for overload-aware submits: exponential backoff with
/// deterministic seeded jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = give up immediately on the
    /// first `Overloaded` refusal).
    pub retries: u32,
    /// Base backoff before retry `k`: `backoff_ms · 2^k`, jittered.
    pub backoff_ms: u64,
    /// Jitter seed — the same seed replays the same delays, so soak
    /// runs stay reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            retries: 0,
            backoff_ms: 50,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry `attempt` (0-based), honoring the
    /// daemon's hint: `max(backoff_ms · 2^attempt ± 25 %,
    /// retry_after_ms)`. Pure — the jitter is a SplitMix64 hash of
    /// `(seed, attempt)` — so schedules are reproducible and testable.
    pub fn delay_ms(&self, attempt: u32, retry_after_ms: u32) -> u64 {
        let base = self.backoff_ms.saturating_mul(1u64 << attempt.min(20));
        // SplitMix64 over (seed, attempt): deterministic ±25 % jitter.
        let mut z = self
            .seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let quarter = base / 4;
        let jittered = if quarter == 0 {
            base
        } else {
            base - quarter + (z % (2 * quarter + 1))
        };
        jittered.max(u64::from(retry_after_ms))
    }
}

/// A blocking client over any framed byte stream.
#[derive(Debug)]
pub struct ServeClient<S> {
    stream: S,
}

impl ServeClient<UnixStream> {
    /// Connect to a daemon listening on the Unix socket at `path`.
    pub fn connect(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(UnixStream::connect(path)?))
    }

    /// [`connect`](Self::connect) with retries: a connection refusal
    /// (daemon still binding, restarting, or briefly gone) is retried
    /// on the policy's backoff schedule before giving up with the last
    /// error.
    pub fn connect_with_retry(path: &Path, policy: &RetryPolicy) -> std::io::Result<Self> {
        let mut attempt = 0u32;
        loop {
            match Self::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) if attempt < policy.retries => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt, 0)));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Bound every receive by `timeout` so a dead daemon cannot hang
    /// the client forever.
    pub fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }
}

impl<S: Read + Write> ServeClient<S> {
    /// Wrap an already-connected stream.
    pub fn new(stream: S) -> Self {
        Self { stream }
    }

    /// The underlying stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Send one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ProtocolError> {
        write_frame(&mut self.stream, frame).map_err(ProtocolError::from)
    }

    /// Receive the next frame.
    pub fn recv(&mut self) -> Result<Frame, ProtocolError> {
        read_frame(&mut self.stream)
    }

    /// Liveness probe: `Ping`, expect `Pong`.
    pub fn ping(&mut self) -> Result<(), ProtocolError> {
        self.send(&Frame::Ping)?;
        match self.recv()? {
            Frame::Pong => Ok(()),
            other => Err(ProtocolError::Malformed(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Submit a job without waiting for its result.
    pub fn submit(&mut self, req: &JobRequest) -> Result<(), ProtocolError> {
        self.send(&Frame::Submit(req.clone()))
    }

    /// Submit a job and block for the next response frame (a `Result`,
    /// `Error`, or `Overloaded` frame carrying the request's tag).
    pub fn roundtrip(&mut self, req: &JobRequest) -> Result<Frame, ProtocolError> {
        self.submit(req)?;
        self.recv()
    }

    /// [`roundtrip`](Self::roundtrip), resubmitting on `Overloaded`
    /// refusals: backs off per the policy (never less than the daemon's
    /// `retry_after_ms` hint) and tries again on the same connection.
    /// Returns the final frame — still `Overloaded` if every attempt
    /// was refused, so the caller sees the last refusal's hint.
    pub fn roundtrip_with_retry(
        &mut self,
        req: &JobRequest,
        policy: &RetryPolicy,
    ) -> Result<Frame, ProtocolError> {
        let mut attempt = 0u32;
        loop {
            match self.roundtrip(req)? {
                Frame::Overloaded(o) if attempt < policy.retries => {
                    std::thread::sleep(Duration::from_millis(
                        policy.delay_ms(attempt, o.retry_after_ms),
                    ));
                    attempt += 1;
                }
                frame => return Ok(frame),
            }
        }
    }

    /// Scrape the daemon's live introspection snapshot:
    /// `StatsRequest`, expect `StatsReply`.
    pub fn stats(&mut self) -> Result<Box<super::stats::StatsSnapshot>, ProtocolError> {
        self.send(&Frame::StatsRequest)?;
        match self.recv()? {
            Frame::StatsReply(s) => Ok(s),
            other => Err(ProtocolError::Malformed(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain and exit; waits for the `Pong` ack.
    pub fn shutdown(&mut self) -> Result<(), ProtocolError> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::Pong => Ok(()),
            other => Err(ProtocolError::Malformed(format!(
                "expected shutdown ack, got {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain *gracefully* — finish accepted jobs,
    /// refuse new ones with `Overloaded{draining}`, snapshot its plan
    /// cache, exit 0 — and wait for the `Pong` ack. The connection
    /// stays usable for reading replies to already-submitted jobs.
    pub fn drain(&mut self) -> Result<(), ProtocolError> {
        self.send(&Frame::Drain)?;
        match self.recv()? {
            Frame::Pong => Ok(()),
            other => Err(ProtocolError::Malformed(format!(
                "expected drain ack, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::protocol::{encode, JobResult, OverloadFrame, Priority, ShedReason};
    use super::*;
    use jigsaw_num::C64;

    #[test]
    fn retry_delays_are_deterministic_exponential_and_jittered() {
        let p = RetryPolicy {
            retries: 5,
            backoff_ms: 100,
            seed: 42,
        };
        let a: Vec<u64> = (0..5).map(|k| p.delay_ms(k, 0)).collect();
        let b: Vec<u64> = (0..5).map(|k| p.delay_ms(k, 0)).collect();
        assert_eq!(a, b, "same seed replays the same schedule");
        for (k, &d) in a.iter().enumerate() {
            let base = 100u64 << k;
            assert!(
                (base - base / 4..=base + base / 4).contains(&d),
                "attempt {k}: delay {d} outside ±25% of {base}"
            );
        }
        let reseeded = RetryPolicy { seed: 43, ..p };
        let c: Vec<u64> = (0..5).map(|k| reseeded.delay_ms(k, 0)).collect();
        assert_ne!(a, c, "different seeds jitter differently");
    }

    #[test]
    fn retry_delay_never_undercuts_the_daemon_hint() {
        let p = RetryPolicy {
            retries: 1,
            backoff_ms: 1,
            seed: 7,
        };
        assert!(p.delay_ms(0, 5_000) >= 5_000);
        // Huge attempt numbers must not overflow the shift.
        let _ = p.delay_ms(u32::MAX, 0);
    }

    /// Pre-scripted daemon: reads come from a canned frame sequence,
    /// writes are discarded.
    struct Scripted(std::io::Cursor<Vec<u8>>);

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.0.read(buf)
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn roundtrip_with_retry_resubmits_after_overload() {
        let req = JobRequest {
            tag: 3,
            priority: Priority::Normal,
            n: 4,
            budget_ms: 0,
            coords: vec![[0.0, 0.0]],
            values: vec![C64::new(1.0, 0.0)],
        };
        let mut script = Vec::new();
        script.extend_from_slice(&encode(&Frame::Overloaded(OverloadFrame {
            tag: 3,
            reason: ShedReason::QueueDepth,
            retry_after_ms: 1,
            message: "full".into(),
        })));
        script.extend_from_slice(&encode(&Frame::Result(JobResult {
            tag: 3,
            cache_hit: false,
            n: 1,
            image: vec![C64::new(0.0, 0.0)],
        })));
        let mut client = ServeClient::new(Scripted(std::io::Cursor::new(script)));
        let policy = RetryPolicy {
            retries: 2,
            backoff_ms: 0,
            seed: 1,
        };
        match client.roundtrip_with_retry(&req, &policy).expect("frame") {
            Frame::Result(r) => assert_eq!(r.tag, 3),
            other => panic!("expected result after one retry, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_retries_surface_the_last_refusal() {
        let req = JobRequest {
            tag: 9,
            priority: Priority::Normal,
            n: 4,
            budget_ms: 0,
            coords: vec![[0.0, 0.0]],
            values: vec![C64::new(1.0, 0.0)],
        };
        let refusal = Frame::Overloaded(OverloadFrame {
            tag: 9,
            reason: ShedReason::QueueBytes,
            retry_after_ms: 1,
            message: "full".into(),
        });
        let mut script = Vec::new();
        for _ in 0..3 {
            script.extend_from_slice(&encode(&refusal));
        }
        let mut client = ServeClient::new(Scripted(std::io::Cursor::new(script)));
        let policy = RetryPolicy {
            retries: 2,
            backoff_ms: 0,
            seed: 1,
        };
        match client.roundtrip_with_retry(&req, &policy).expect("frame") {
            Frame::Overloaded(o) => assert_eq!(o.reason, ShedReason::QueueBytes),
            other => panic!("expected final refusal, got {other:?}"),
        }
    }
}
