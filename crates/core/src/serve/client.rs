//! A small synchronous client for the serve protocol, used by the
//! `jigsaw request` CLI command and the black-box test suite.

use super::protocol::{read_frame, write_frame, Frame, JobRequest, ProtocolError};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// A blocking client over any framed byte stream.
#[derive(Debug)]
pub struct ServeClient<S> {
    stream: S,
}

impl ServeClient<UnixStream> {
    /// Connect to a daemon listening on the Unix socket at `path`.
    pub fn connect(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(UnixStream::connect(path)?))
    }

    /// Bound every receive by `timeout` so a dead daemon cannot hang
    /// the client forever.
    pub fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }
}

impl<S: Read + Write> ServeClient<S> {
    /// Wrap an already-connected stream.
    pub fn new(stream: S) -> Self {
        Self { stream }
    }

    /// The underlying stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Send one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ProtocolError> {
        write_frame(&mut self.stream, frame).map_err(ProtocolError::from)
    }

    /// Receive the next frame.
    pub fn recv(&mut self) -> Result<Frame, ProtocolError> {
        read_frame(&mut self.stream)
    }

    /// Liveness probe: `Ping`, expect `Pong`.
    pub fn ping(&mut self) -> Result<(), ProtocolError> {
        self.send(&Frame::Ping)?;
        match self.recv()? {
            Frame::Pong => Ok(()),
            other => Err(ProtocolError::Malformed(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Submit a job without waiting for its result.
    pub fn submit(&mut self, req: &JobRequest) -> Result<(), ProtocolError> {
        self.send(&Frame::Submit(req.clone()))
    }

    /// Submit a job and block for the next response frame (a `Result`
    /// or `Error` frame carrying the request's tag).
    pub fn roundtrip(&mut self, req: &JobRequest) -> Result<Frame, ProtocolError> {
        self.submit(req)?;
        self.recv()
    }

    /// Scrape the daemon's live introspection snapshot:
    /// `StatsRequest`, expect `StatsReply`.
    pub fn stats(&mut self) -> Result<Box<super::stats::StatsSnapshot>, ProtocolError> {
        self.send(&Frame::StatsRequest)?;
        match self.recv()? {
            Frame::StatsReply(s) => Ok(s),
            other => Err(ProtocolError::Malformed(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain and exit; waits for the `Pong` ack.
    pub fn shutdown(&mut self) -> Result<(), ProtocolError> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::Pong => Ok(()),
            other => Err(ProtocolError::Malformed(format!(
                "expected shutdown ack, got {other:?}"
            ))),
        }
    }
}
