//! The live introspection snapshot carried by a `StatsReply` frame.
//!
//! A [`StatsSnapshot`] is everything the daemon knows about itself at
//! one instant: uptime, queue depths, plan-cache counters, per-worker
//! utilization, rolling-window latency histograms, the full telemetry
//! registry, and the flight-recorder tail. Assembly follows the same
//! consistency discipline as `Registry::snapshot` — each component is
//! read under its own short lock (or relaxed atomics), never the plan
//! build path or the job queue's condvar — so scraping a busy daemon
//! never blocks a submission.
//!
//! The snapshot is *versioned* ([`STATS_VERSION`]) and deterministic:
//! every list is name- or time-ordered, so two encodes of the same
//! state are byte-identical. Rendering (table / JSON / Prometheus) also
//! lives here; the wire encoding is in
//! [`protocol`](crate::serve::protocol) next to the other frame
//! layouts.

use jigsaw_telemetry as telemetry;
use telemetry::{FlightEvent, HistogramSnapshot, Snapshot};

/// Version of the stats payload layout. Bump on any field change.
pub const STATS_VERSION: u32 = 1;

/// One worker slot's always-on utilization counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Cumulative nanoseconds spent running jobs.
    pub busy_ns: u64,
    /// Jobs completed.
    pub jobs: u64,
}

/// Plan-cache counters (always-on atomics, not telemetry-gated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookup hits since daemon start.
    pub hits: u64,
    /// Lookup misses since daemon start.
    pub misses: u64,
    /// Evictions since daemon start.
    pub evictions: u64,
    /// Resident entries.
    pub len: u32,
    /// Capacity bound.
    pub capacity: u32,
}

impl CacheStats {
    /// Hits over lookups, 0.0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A rolling-window histogram with its identity and window length.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Metric name, e.g. `serve.job_latency_ns.60s`.
    pub name: String,
    /// Window length in nanoseconds.
    pub window_ns: u64,
    /// Sum of the live epochs at snapshot time.
    pub hist: HistogramSnapshot,
}

/// The full introspection snapshot (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Payload layout version ([`STATS_VERSION`]).
    pub stats_version: u32,
    /// Nanoseconds since the serve engine was constructed.
    pub uptime_ns: u64,
    /// Jobs queued (both classes) at snapshot time.
    pub queue_depth: u32,
    /// High-priority jobs queued at snapshot time.
    pub queue_high: u32,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Per-worker utilization, indexed by worker slot.
    pub workers: Vec<WorkerStats>,
    /// Rolling-window histograms (job latency, per-priority queue wait).
    pub windows: Vec<WindowStats>,
    /// Registry counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Registry gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Registry histograms, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Flight-recorder tail, oldest first.
    pub flight: Vec<FlightEvent>,
}

impl StatsSnapshot {
    /// Uptime in seconds.
    pub fn uptime_secs(&self) -> f64 {
        self.uptime_ns as f64 / 1e9
    }

    /// The window named `name`, if present.
    pub fn window(&self, name: &str) -> Option<&WindowStats> {
        self.windows.iter().find(|w| w.name == name)
    }

    /// Value of a registry counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Per-worker busy fraction of uptime, in `[0, 1]`.
    pub fn worker_utilization(&self) -> Vec<f64> {
        let up = self.uptime_ns.max(1) as f64;
        self.workers
            .iter()
            .map(|w| (w.busy_ns as f64 / up).min(1.0))
            .collect()
    }

    /// Merge the registry series with the snapshot's derived values
    /// (queue, cache, uptime, workers, windows) into one
    /// [`Snapshot`] for the generic exporters. Derived names win over
    /// same-named registry entries, since the always-on atomics are
    /// authoritative.
    pub fn to_metrics_snapshot(&self) -> Snapshot {
        use std::collections::BTreeMap;
        let mut counters: BTreeMap<String, u64> = self.counters.iter().cloned().collect();
        counters.insert("serve.cache.hit".into(), self.cache.hits);
        counters.insert("serve.cache.miss".into(), self.cache.misses);
        counters.insert("serve.cache.evict".into(), self.cache.evictions);
        let mut gauges: BTreeMap<String, f64> = self.gauges.iter().cloned().collect();
        gauges.insert("serve.uptime_seconds".into(), self.uptime_secs());
        gauges.insert("serve.queue_depth".into(), f64::from(self.queue_depth));
        gauges.insert("serve.queue_depth_high".into(), f64::from(self.queue_high));
        gauges.insert("serve.cache.len".into(), f64::from(self.cache.len));
        gauges.insert(
            "serve.cache.capacity".into(),
            f64::from(self.cache.capacity),
        );
        gauges.insert("serve.cache.hit_rate".into(), self.cache.hit_rate());
        for (i, w) in self.workers.iter().enumerate() {
            gauges.insert(format!("serve.worker.{i}.busy_ns"), w.busy_ns as f64);
            gauges.insert(format!("serve.worker.{i}.jobs"), w.jobs as f64);
        }
        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.iter().cloned().collect();
        for w in &self.windows {
            histograms.insert(w.name.clone(), w.hist.clone());
        }
        Snapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        }
    }

    /// Prometheus text exposition of [`Self::to_metrics_snapshot`].
    pub fn to_prometheus(&self) -> String {
        telemetry::export::prometheus(&self.to_metrics_snapshot())
    }

    /// Human-readable dashboard-style summary.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "uptime {:.1}s  queue {} ({} high)  cache {}/{} entries",
            self.uptime_secs(),
            self.queue_depth,
            self.queue_high,
            self.cache.len,
            self.cache.capacity,
        );
        let _ = writeln!(
            s,
            "cache: {} hit / {} miss / {} evict  (hit rate {:.3})",
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.hit_rate(),
        );
        let utils = self.worker_utilization();
        for (i, (w, u)) in self.workers.iter().zip(&utils).enumerate() {
            let _ = writeln!(s, "worker {i}: {:>6.2}% busy  {} jobs", u * 100.0, w.jobs);
        }
        for w in &self.windows {
            let _ = writeln!(
                s,
                "{} (last {:.0}s): count {}  p50≈{:.0}  p99≈{:.0}",
                w.name,
                w.window_ns as f64 / 1e9,
                w.hist.count,
                w.hist.quantile_estimate(0.5),
                w.hist.quantile_estimate(0.99),
            );
        }
        let registry = Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        };
        s.push_str(&registry.to_table());
        if !self.flight.is_empty() {
            s.push_str("flight tail (oldest first):\n");
            for e in &self.flight {
                let _ = writeln!(s, "  {e}");
            }
        }
        s
    }

    /// Single-object JSON document (hand-rolled; hermetic build).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        use telemetry::export::escape_json;
        fn hist_json(h: &HistogramSnapshot) -> String {
            let mut s = format!(
                "{{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            );
            for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{lo}, {hi}, {c}]");
            }
            s.push_str("]}");
            s
        }
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"stats_version\": {},", self.stats_version);
        let _ = writeln!(s, "  \"uptime_ns\": {},", self.uptime_ns);
        let _ = writeln!(s, "  \"queue_depth\": {},", self.queue_depth);
        let _ = writeln!(s, "  \"queue_high\": {},", self.queue_high);
        let _ = writeln!(
            s,
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"len\": {}, \
             \"capacity\": {}}},",
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.len,
            self.cache.capacity
        );
        s.push_str("  \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{{\"busy_ns\": {}, \"jobs\": {}}}", w.busy_ns, w.jobs);
        }
        s.push_str("],\n  \"windows\": {");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    \"{}\": {{\"window_ns\": {}, \"hist\": {}}}",
                escape_json(&w.name),
                w.window_ns,
                hist_json(&w.hist)
            );
        }
        s.push_str("\n  },\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": {v}", escape_json(n));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": {}", escape_json(n), json_f64(*v));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": {}", escape_json(n), hist_json(h));
        }
        s.push_str("\n  },\n  \"flight\": [");
        for (i, e) in self.flight.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"ts_ns\": {}, \"kind\": \"{}\", \"request_id\": {}, \"tag\": {}, \
                 \"detail\": \"{}\"}}",
                e.ts_ns,
                e.kind.label(),
                e.request_id,
                e.tag,
                escape_json(&e.detail)
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// A fully populated snapshot for unit tests (here and in
/// `protocol.rs`'s round-trip suite).
#[cfg(test)]
pub(crate) fn sample_snapshot() -> StatsSnapshot {
    use telemetry::FlightKind;
    StatsSnapshot {
        stats_version: STATS_VERSION,
        uptime_ns: 2_000_000_000,
        queue_depth: 3,
        queue_high: 1,
        cache: CacheStats {
            hits: 90,
            misses: 10,
            evictions: 2,
            len: 4,
            capacity: 8,
        },
        workers: vec![
            WorkerStats {
                busy_ns: 1_000_000_000,
                jobs: 50,
            },
            WorkerStats {
                busy_ns: 500_000_000,
                jobs: 25,
            },
        ],
        windows: vec![WindowStats {
            name: "serve.job_latency_ns.60s".into(),
            window_ns: 60_000_000_000,
            hist: HistogramSnapshot {
                count: 5,
                sum: 1029,
                buckets: vec![(0, 1, 1), (1, 2, 2), (2, 4, 1), (1024, 2048, 1)],
            },
        }],
        counters: vec![("serve.jobs".into(), 100)],
        gauges: vec![("serve.queue_depth".into(), 2.0)],
        histograms: vec![(
            "serve.job_latency_ns".into(),
            HistogramSnapshot {
                count: 100,
                sum: 123_456,
                buckets: vec![(1024, 2048, 100)],
            },
        )],
        flight: vec![FlightEvent {
            ts_ns: 1_000,
            kind: FlightKind::CacheHit,
            request_id: 42,
            tag: 7,
            detail: "n=64".into(),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsSnapshot {
        sample_snapshot()
    }

    #[test]
    fn derived_quantities() {
        let s = sample();
        assert!((s.cache.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert!((s.uptime_secs() - 2.0).abs() < 1e-12);
        let u = s.worker_utilization();
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 0.25).abs() < 1e-12);
        assert_eq!(s.counter("serve.jobs"), Some(100));
        assert_eq!(s.counter("missing"), None);
        assert!(s.window("serve.job_latency_ns.60s").is_some());
    }

    #[test]
    fn metrics_snapshot_merges_derived_over_registry() {
        let s = sample();
        let m = s.to_metrics_snapshot();
        // Derived cache counters present.
        assert_eq!(m.counter("serve.cache.hit"), Some(90));
        // Derived gauge wins over the registry's stale queue_depth.
        assert_eq!(m.gauge("serve.queue_depth"), Some(3.0));
        assert_eq!(m.gauge("serve.worker.0.jobs"), Some(50.0));
        // Window histograms ride along.
        assert!(m.histogram("serve.job_latency_ns.60s").is_some());
        assert!(m.histogram("serve.job_latency_ns").is_some());
    }

    #[test]
    fn prometheus_render_carries_grep_targets() {
        let text = sample().to_prometheus();
        assert!(text.contains("serve_cache_hit"), "{text}");
        assert!(text.contains("serve_job_latency_ns_bucket"), "{text}");
        assert!(text.contains("serve_queue_depth 3"), "{text}");
    }

    #[test]
    fn table_and_json_render() {
        let s = sample();
        let table = s.to_table();
        assert!(table.contains("hit rate 0.900"), "{table}");
        assert!(table.contains("worker 0"), "{table}");
        assert!(table.contains("p50"), "{table}");
        assert!(table.contains("cache_hit"), "{table}");
        let json = s.to_json();
        let doc = telemetry::json::parse(&json).expect("stats JSON parses");
        assert_eq!(doc.get("queue_depth").and_then(|v| v.as_f64()), Some(3.0));
        let flight = doc.get("flight").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(flight.len(), 1);
    }
}
