//! LRU plan cache keyed by trajectory *contents* and grid geometry.
//!
//! Planning — the per-sample quantize → decompose → LUT-lookup pass of
//! [`NufftPlan::plan_trajectory`] plus the FFT twiddle/apodization setup
//! of [`NufftPlan::new`] — dominates a one-shot transform (the warm-plan
//! row of `BENCH_pooled_vs_scoped.json`). A serving daemon sees the same
//! trajectories over and over (one per pulse sequence), so the cache
//! keeps the `(plan, planned trajectory)` pair for the most recently
//! used keys and evicts least-recently-used entries beyond a capacity
//! bound.
//!
//! ## Keying
//!
//! The key hashes the **full trajectory contents** — every coordinate's
//! `f64` bit pattern, not just the sample count — together with every
//! parameter that shapes the planning output: grid size, kernel width,
//! table oversampling, tile, oversampling factor, and the resolved
//! kernel (family + shape parameter bits). Two same-shape trajectories
//! with different coordinates therefore *never* alias a plan, and two
//! spellings of the same kernel (`Auto` vs. its resolved Kaiser-Bessel)
//! share one entry.
//!
//! Toeplitz normal-operator kernels are cached in the same LRU (see
//! [`PlanCache::get_or_build_toeplitz`]): their keys carry the doubled
//! (`2N`) geometry **plus** an FNV hash of the density weights
//! ([`weights_hash`], never the [`WEIGHT_INDEPENDENT`] sentinel plan
//! entries use), so weighted and unweighted kernels — even ones whose
//! weights differ by a single ULP — never alias each other or a plain
//! `2N` plan.

use crate::config::NufftConfig;
use crate::gridding::Gridder;
use crate::kernel::KernelKind;
use crate::nufft::{NufftPlan, PlannedTrajectory};
use crate::serve::snapshot;
use crate::toeplitz::ToeplitzOperator;
use crate::Result;
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::faultpoint;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything that distinguishes one cached plan from another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanKey {
    /// Base image size `N`.
    pub n: usize,
    /// Oversampled grid size `G`.
    pub grid: usize,
    /// Window width `W`.
    pub width: usize,
    /// Table oversampling `L`.
    pub table_oversampling: usize,
    /// Tile dimension `T`.
    pub tile: usize,
    /// `σ` as IEEE-754 bits (bitwise equality, no float comparison).
    pub sigma_bits: u64,
    /// Resolved-kernel fingerprint: family discriminant mixed with the
    /// shape parameter's bit pattern.
    pub kernel_fp: u64,
    /// Number of trajectory samples.
    pub samples: usize,
    /// FNV-1a hash of every coordinate's bit pattern (see
    /// [`trajectory_hash`]).
    pub traj_hash: u64,
    /// Density-weights hash: [`WEIGHT_INDEPENDENT`] (zero) for plan
    /// entries (planning never depends on weights), [`weights_hash`]
    /// (never zero) for Toeplitz kernel entries — so a kernel can never
    /// alias a plan or a differently-weighted kernel.
    pub weights_hash: u64,
}

/// The [`PlanKey::weights_hash`] sentinel for entries whose artifact
/// does not depend on density weights (plans). [`weights_hash`] never
/// returns it.
pub const WEIGHT_INDEPENDENT: u64 = 0;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over the sample count and every coordinate's `f64` bit
/// pattern, in order. This is the stale-plan fix: identical shapes with
/// different contents hash apart (sample order matters too — planned
/// scatter replays samples in order, so order is part of identity).
pub fn trajectory_hash(coords: &[[f64; 2]]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(coords.len() as u64).to_le_bytes());
    for c in coords {
        h = fnv1a(h, &c[0].to_bits().to_le_bytes());
        h = fnv1a(h, &c[1].to_bits().to_le_bytes());
    }
    h
}

/// Fingerprint of a *resolved* kernel: family discriminant mixed with
/// the shape parameter's bits (0 for parameterless families).
pub fn kernel_fingerprint(kernel: &KernelKind) -> u64 {
    let (disc, param) = match kernel {
        KernelKind::Auto => (0u64, 0.0),
        KernelKind::KaiserBessel { beta } => (1, *beta),
        KernelKind::Gaussian { s } => (2, *s),
        KernelKind::Triangle => (3, 0.0),
        KernelKind::Cosine => (4, 0.0),
        KernelKind::BSpline => (5, 0.0),
        KernelKind::Sinc => (6, 0.0),
    };
    let mut h = fnv1a(FNV_OFFSET, &disc.to_le_bytes());
    h = fnv1a(h, &param.to_bits().to_le_bytes());
    h
}

/// FNV-1a over the weight count and every density weight's `f64` bit
/// pattern, in order — the Toeplitz-kernel analogue of
/// [`trajectory_hash`]. A 1-ULP perturbation of any weight changes the
/// hash. Never returns [`WEIGHT_INDEPENDENT`]: the astronomically rare
/// zero output is remapped to 1 so kernel entries can never alias plan
/// entries by construction.
pub fn weights_hash(weights: &[f64]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(weights.len() as u64).to_le_bytes());
    for w in weights {
        h = fnv1a(h, &w.to_bits().to_le_bytes());
    }
    h.max(1)
}

/// Build the cache key for a configuration + trajectory pair. The kernel
/// is resolved first, so `Auto` and its explicit Beatty Kaiser-Bessel
/// land on the same entry.
pub fn plan_key(cfg: &NufftConfig, coords: &[[f64; 2]]) -> PlanKey {
    PlanKey {
        n: cfg.n,
        grid: cfg.grid_size(),
        width: cfg.width,
        table_oversampling: cfg.table_oversampling,
        tile: cfg.tile,
        sigma_bits: cfg.sigma.to_bits(),
        kernel_fp: kernel_fingerprint(&cfg.resolved_kernel()),
        samples: coords.len(),
        traj_hash: trajectory_hash(coords),
        weights_hash: WEIGHT_INDEPENDENT,
    }
}

/// Build the cache key for a Toeplitz kernel: the geometry of the
/// *doubled* (`2N`) configuration the kernel's PSF is gridded at, plus
/// the density-weights hash (empty weights hash to a distinct, nonzero
/// value — unweighted kernels are still kernels, not plans).
pub fn toeplitz_key(cfg: &NufftConfig, coords: &[[f64; 2]], weights: &[f64]) -> PlanKey {
    let mut cfg2 = cfg.clone();
    cfg2.n = 2 * cfg.n;
    let mut key = plan_key(&cfg2, coords);
    key.weights_hash = weights_hash(weights);
    key
}

/// A cached plan: the `NufftPlan` (LUT, apodization, FFT setup) plus the
/// planned per-sample window decomposition for one trajectory.
///
/// Each entry also retains its **rebuild inputs** — the configuration
/// it was requested under plus the original coordinates and weights —
/// so [`PlanCache::save_snapshot`] can persist the cache across process
/// lifetimes (see [`crate::serve::snapshot`]). The inputs are shared
/// `Arc` slices: one extra allocation per entry, no per-job copies.
pub struct CachedPlan {
    /// The key this entry was stored under.
    pub key: PlanKey,
    /// The configuration the entry was *requested* under (base `N` for
    /// Toeplitz kernel entries, even though [`Self::plan`] is the `2N`
    /// plan).
    pub cfg: NufftConfig,
    /// The NuFFT plan (f64, 2-D at serving v1). For Toeplitz kernel
    /// entries this is the shared `2N` plan the kernel was built on.
    pub plan: NufftPlan<f64, 2>,
    /// The precomputed window decomposition.
    pub traj: PlannedTrajectory<2>,
    /// Original trajectory coordinates (snapshot rebuild input).
    pub coords: Arc<[[f64; 2]]>,
    /// Density weights (empty for plan entries; snapshot rebuild
    /// input for Toeplitz kernel entries).
    pub weights: Arc<[f64]>,
    /// The built Toeplitz normal-operator kernel, for entries created by
    /// [`PlanCache::get_or_build_toeplitz`]; `None` for plain plans.
    pub toeplitz: Option<Arc<ToeplitzOperator<2>>>,
}

impl std::fmt::Debug for CachedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedPlan")
            .field("key", &self.key)
            .field("samples", &self.traj.len())
            .finish_non_exhaustive()
    }
}

/// A bounded LRU cache of [`CachedPlan`]s, safe to share across the
/// daemon's executor threads.
///
/// Hit/miss/eviction counts are kept in always-on atomics (exposed via
/// [`PlanCache::hits`] etc. so admission-control and benches work even
/// with telemetry disabled) *and* mirrored into the telemetry registry
/// as `serve.cache.hit` / `serve.cache.miss` / `serve.cache.evict`.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    /// Front = most recently used.
    entries: Mutex<VecDeque<Arc<CachedPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The resident keys, most recently used first. (Test/diagnostic
    /// surface — the LRU property tests compare this against a model.)
    pub fn keys(&self) -> Vec<PlanKey> {
        self.lock().iter().map(|e| e.key.clone()).collect()
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<CachedPlan>>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up `key`, promoting it to most recently used on a hit.
    /// Counts a hit or a miss.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        let mut entries = self.lock();
        if let Some(i) = entries.iter().position(|e| &e.key == key) {
            let Some(entry) = entries.remove(i) else {
                // Unreachable: `i` came from `position` under the same lock.
                return None;
            };
            entries.push_front(Arc::clone(&entry));
            drop(entries);
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::record_counter("serve.cache.hit", 1);
            telemetry::flight::record(
                telemetry::FlightKind::CacheHit,
                telemetry::current_request_id(),
                key.traj_hash,
                "",
            );
            Some(entry)
        } else {
            drop(entries);
            self.misses.fetch_add(1, Ordering::Relaxed);
            telemetry::record_counter("serve.cache.miss", 1);
            telemetry::flight::record(
                telemetry::FlightKind::CacheMiss,
                telemetry::current_request_id(),
                key.traj_hash,
                "",
            );
            None
        }
    }

    /// Insert an entry at the most-recently-used position, evicting the
    /// least recently used entries beyond capacity. If the key is
    /// already resident (a racing build on another thread won), the
    /// resident entry is kept and returned so all callers share one
    /// canonical plan.
    pub fn insert(&self, entry: Arc<CachedPlan>) -> Arc<CachedPlan> {
        let mut evicted = 0u64;
        let canonical;
        {
            let mut entries = self.lock();
            if let Some(i) = entries.iter().position(|e| e.key == entry.key) {
                let Some(existing) = entries.remove(i) else {
                    return entry;
                };
                entries.push_front(Arc::clone(&existing));
                canonical = existing;
            } else {
                entries.push_front(Arc::clone(&entry));
                while entries.len() > self.capacity {
                    entries.pop_back();
                    evicted += 1;
                }
                canonical = entry;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            telemetry::record_counter("serve.cache.evict", evicted);
            telemetry::flight::record(
                telemetry::FlightKind::CacheEvict,
                telemetry::current_request_id(),
                evicted,
                &format!("len={}", self.len()),
            );
        }
        canonical
    }

    /// The daemon's main seam: return the cached plan for
    /// `(cfg, coords)`, building (outside the lock) and inserting it on
    /// a miss. The boolean is `true` on a cache hit.
    ///
    /// The `serve.cache` fault point fires *before* any lock is taken,
    /// so an injected panic here can never poison or corrupt the cache.
    pub fn get_or_build(
        &self,
        cfg: &NufftConfig,
        coords: &[[f64; 2]],
    ) -> Result<(Arc<CachedPlan>, bool)> {
        faultpoint!(crate::fault::SERVE_CACHE);
        let key = plan_key(cfg, coords);
        if let Some(hit) = self.lookup(&key) {
            return Ok((hit, true));
        }
        // Build outside the lock: concurrent misses on the same key may
        // race, but `insert` keeps a single canonical entry.
        let plan = NufftPlan::<f64, 2>::new(cfg.clone())?;
        let traj = plan.plan_trajectory(coords)?;
        let entry = Arc::new(CachedPlan {
            key,
            cfg: cfg.clone(),
            plan,
            traj,
            coords: coords.into(),
            weights: Arc::from([] as [f64; 0]),
            toeplitz: None,
        });
        Ok((self.insert(entry), false))
    }

    /// Return the cached Toeplitz normal-operator kernel for
    /// `(cfg, coords, weights)`, building and inserting it on a miss.
    /// The boolean is `true` on a cache hit.
    ///
    /// A miss first fetches (or builds) the plain `2N` plan entry via
    /// [`Self::get_or_build`] and hands that prebuilt plan to
    /// [`ToeplitzOperator::build_with_plan`], so the expensive planning
    /// work is shared with any direct `2N` jobs and never done twice.
    /// The kernel entry is keyed by [`toeplitz_key`] — including the
    /// density-weights hash, so weighted and unweighted kernels on the
    /// same trajectory occupy distinct entries.
    pub fn get_or_build_toeplitz(
        &self,
        cfg: &NufftConfig,
        coords: &[[f64; 2]],
        weights: &[f64],
        gridder: &dyn Gridder<f64, 2>,
    ) -> Result<(Arc<ToeplitzOperator<2>>, bool)> {
        // Validate weights before touching the cache at all: a doomed
        // request must not leave even the (weight-independent) base
        // plan behind as a side effect.
        if let Some(i) = weights.iter().position(|w| !w.is_finite()) {
            return Err(crate::Error::Data(format!(
                "non-finite density weight at index {i}"
            )));
        }
        let key = toeplitz_key(cfg, coords, weights);
        if let Some(hit) = self.lookup(&key) {
            if let Some(op) = &hit.toeplitz {
                return Ok((Arc::clone(op), true));
            }
        }
        let mut cfg2 = cfg.clone();
        cfg2.n = 2 * cfg.n;
        let (base, _) = self.get_or_build(&cfg2, coords)?;
        let op = Arc::new(ToeplitzOperator::<2>::build_with_plan(
            cfg,
            coords,
            weights,
            gridder,
            Some(&base.plan),
        )?);
        let entry = Arc::new(CachedPlan {
            key,
            cfg: cfg.clone(),
            plan: base.plan.clone(),
            traj: base.traj.clone(),
            coords: Arc::clone(&base.coords),
            weights: weights.into(),
            toeplitz: Some(Arc::clone(&op)),
        });
        let canonical = self.insert(entry);
        // A racing build on another thread may have inserted first; the
        // canonical entry's kernel is the one every caller shares.
        let op = canonical.toeplitz.clone().unwrap_or(op);
        Ok((op, false))
    }

    /// Persist every resident entry's rebuild inputs to `path`
    /// atomically (temp file + rename; see
    /// [`snapshot::write_atomic`]). Entries are written
    /// least-recently-used **first** so [`Self::load_snapshot`]'s
    /// sequential replay reproduces the exact LRU order. Returns the
    /// number of entries written and counts `serve.snapshot.saves`.
    ///
    /// The entry list is cloned out under the lock (cheap: `Arc`
    /// bumps); encoding and file I/O run outside it, so a slow disk
    /// never blocks executors.
    pub fn save_snapshot(&self, path: &std::path::Path) -> std::io::Result<usize> {
        let resident: Vec<Arc<CachedPlan>> = {
            let entries = self.lock();
            // Rear = LRU; write that first.
            entries.iter().rev().cloned().collect()
        };
        let snap: Vec<snapshot::SnapshotEntry> = resident
            .iter()
            .map(|e| snapshot::SnapshotEntry {
                kind: if e.toeplitz.is_some() {
                    snapshot::ENTRY_TOEPLITZ
                } else {
                    snapshot::ENTRY_PLAN
                },
                cfg: e.cfg.clone(),
                coords: Arc::clone(&e.coords),
                weights: Arc::clone(&e.weights),
            })
            .collect();
        let bytes = snapshot::encode_snapshot(&snap);
        snapshot::write_atomic(path, &bytes)?;
        telemetry::record_counter("serve.snapshot.saves", 1);
        Ok(snap.len())
    }

    /// Rebuild cache entries from a snapshot file, in LRU order.
    /// Returns `(loaded, skipped)`, mirrored into the
    /// `serve.snapshot.loaded` / `serve.snapshot.skipped` counters.
    ///
    /// Failure policy (the restart path must never be worse than a cold
    /// start):
    ///
    /// * missing file → `Ok((0, 0))` — a first boot, not an error;
    /// * unreadable file, garbage/short header, or unsupported version
    ///   → `Err` — the caller logs it and serves cold;
    /// * per-entry damage (checksum, framing, implausible fields) or a
    ///   rebuild failure/panic → that entry is skipped, the rest load.
    ///
    /// The `serve.snapshot` fault site fires at entry, before the file
    /// is touched, so chaos runs can pin the degraded-start path.
    pub fn load_snapshot(
        &self,
        path: &std::path::Path,
        gridder: &dyn Gridder<f64, 2>,
    ) -> Result<(u64, u64)> {
        faultpoint!(crate::fault::SERVE_SNAPSHOT);
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, 0)),
            Err(e) => {
                return Err(crate::Error::Data(format!(
                    "cannot read snapshot {}: {e}",
                    path.display()
                )))
            }
        };
        let outcome = snapshot::decode_snapshot(&bytes)?;
        let mut loaded = 0u64;
        let mut skipped = outcome.skipped;
        if !outcome.file_checksum_ok {
            eprintln!(
                "jigsaw serve: snapshot {} file checksum mismatch; \
                 salvaging entries that verify individually",
                path.display()
            );
        }
        for entry in &outcome.entries {
            // Each rebuild replays the normal build path (validation
            // included) under panic containment: one poisoned entry
            // must not take down the warm start.
            let rebuilt =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match entry.kind {
                    snapshot::ENTRY_TOEPLITZ => self
                        .get_or_build_toeplitz(&entry.cfg, &entry.coords, &entry.weights, gridder)
                        .map(|_| ()),
                    _ => self.get_or_build(&entry.cfg, &entry.coords).map(|_| ()),
                }));
            match rebuilt {
                Ok(Ok(())) => loaded += 1,
                _ => skipped += 1,
            }
        }
        if loaded > 0 {
            telemetry::record_counter("serve.snapshot.loaded", loaded);
        }
        if skipped > 0 {
            telemetry::record_counter("serve.snapshot.skipped", skipped);
        }
        Ok((loaded, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(seed: u64, m: usize) -> Vec<[f64; 2]> {
        crate::traj::random_nd::<2>(m, seed)
    }

    fn cfg(n: usize) -> NufftConfig {
        NufftConfig::with_n(n)
    }

    #[test]
    fn content_hash_distinguishes_same_shape() {
        let a = traj(1, 64);
        let b = traj(2, 64);
        assert_eq!(a.len(), b.len());
        assert_ne!(trajectory_hash(&a), trajectory_hash(&b));
        assert_ne!(plan_key(&cfg(16), &a), plan_key(&cfg(16), &b));
        // Same contents, same hash.
        assert_eq!(trajectory_hash(&a), trajectory_hash(&a.clone()));
    }

    #[test]
    fn sample_order_is_part_of_identity() {
        let a = traj(3, 8);
        let mut rev = a.clone();
        rev.reverse();
        assert_ne!(trajectory_hash(&a), trajectory_hash(&rev));
    }

    #[test]
    fn auto_kernel_aliases_its_resolution() {
        let c_auto = cfg(16);
        let mut c_kb = cfg(16);
        c_kb.kernel = c_auto.resolved_kernel();
        let t = traj(4, 32);
        assert_eq!(plan_key(&c_auto, &t), plan_key(&c_kb, &t));
        // But a genuinely different kernel keys apart.
        let mut c_g = cfg(16);
        c_g.kernel = KernelKind::Gaussian { s: 1.0 };
        assert_ne!(plan_key(&c_auto, &t), plan_key(&c_g, &t));
    }

    #[test]
    fn hit_returns_the_same_plan_and_promotes() {
        let cache = PlanCache::new(2);
        let t = traj(5, 16);
        let (a, hit_a) = cache.get_or_build(&cfg(8), &t).unwrap();
        assert!(!hit_a);
        let (b, hit_b) = cache.get_or_build(&cfg(8), &t).unwrap();
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_is_lru_and_bounded() {
        let cache = PlanCache::new(2);
        // Odd, well-separated seeds: `random_nd` ors the seed with 1,
        // so consecutive even/odd pairs would alias.
        let t1 = traj(101, 8);
        let t2 = traj(201, 8);
        let t3 = traj(301, 8);
        let c = cfg(8);
        cache.get_or_build(&c, &t1).unwrap();
        cache.get_or_build(&c, &t2).unwrap();
        // Touch t1 so t2 is LRU.
        cache.get_or_build(&c, &t1).unwrap();
        cache.get_or_build(&c, &t3).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        let keys = cache.keys();
        assert_eq!(keys[0].traj_hash, trajectory_hash(&t3));
        assert_eq!(keys[1].traj_hash, trajectory_hash(&t1));
        // t2 was evicted: next fetch is a miss.
        let (_, hit) = cache.get_or_build(&c, &t2).unwrap();
        assert!(!hit);
    }

    #[test]
    fn racing_insert_keeps_one_canonical_entry() {
        let cache = PlanCache::new(4);
        let t = traj(20, 8);
        let c = cfg(8);
        let key = plan_key(&c, &t);
        let build = || {
            let plan = NufftPlan::<f64, 2>::new(c.clone()).unwrap();
            let traj = plan.plan_trajectory(&t).unwrap();
            Arc::new(CachedPlan {
                key: key.clone(),
                cfg: c.clone(),
                plan,
                traj,
                coords: t.as_slice().into(),
                weights: Arc::from([] as [f64; 0]),
                toeplitz: None,
            })
        };
        let first = cache.insert(build());
        let second = cache.insert(build());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_is_clamped_positive() {
        assert_eq!(PlanCache::new(0).capacity(), 1);
    }

    #[test]
    fn weights_hash_is_content_sensitive_and_never_the_sentinel() {
        assert_ne!(weights_hash(&[]), WEIGHT_INDEPENDENT);
        assert_ne!(weights_hash(&[1.0, 2.0]), weights_hash(&[2.0, 1.0]));
        assert_eq!(weights_hash(&[0.5; 8]), weights_hash(&[0.5; 8]));
        // A 1-ULP perturbation of one weight changes the hash.
        let w: Vec<f64> = (0..16).map(|i| 0.25 + i as f64 * 0.125).collect();
        let mut w2 = w.clone();
        w2[7] = f64::from_bits(w2[7].to_bits() + 1);
        assert_ne!(weights_hash(&w), weights_hash(&w2));
    }

    #[test]
    fn toeplitz_keys_never_alias_plans_or_other_weights() {
        let t = traj(9, 24);
        let c = cfg(8);
        let mut c2 = c.clone();
        c2.n = 16;
        // Unweighted kernel vs the plain 2N plan on the same trajectory:
        // same geometry, different weights_hash class.
        assert_ne!(toeplitz_key(&c, &t, &[]), plan_key(&c2, &t));
        // Weighted vs unweighted kernels key apart.
        let w = vec![0.75; t.len()];
        assert_ne!(toeplitz_key(&c, &t, &w), toeplitz_key(&c, &t, &[]));
        // Same weights, same key.
        assert_eq!(toeplitz_key(&c, &t, &w), toeplitz_key(&c, &t, &w.clone()));
    }

    #[test]
    fn toeplitz_kernels_are_cached_and_shared() {
        let cache = PlanCache::new(4);
        let t = traj(11, 24);
        let c = cfg(8);
        let g = crate::gridding::SerialGridder;
        let (a, hit_a) = cache.get_or_build_toeplitz(&c, &t, &[], &g).unwrap();
        assert!(!hit_a);
        // The miss also parked the base 2N plan entry.
        assert_eq!(cache.len(), 2);
        let (b, hit_b) = cache.get_or_build_toeplitz(&c, &t, &[], &g).unwrap();
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        // A weighted kernel on the same trajectory is a distinct entry
        // but reuses the cached 2N plan.
        let w = vec![1.5; t.len()];
        let (wk, hit_w) = cache.get_or_build_toeplitz(&c, &t, &w, &g).unwrap();
        assert!(!hit_w);
        assert!(!Arc::ptr_eq(&a, &wk));
        assert_eq!(cache.len(), 3);
    }
}
