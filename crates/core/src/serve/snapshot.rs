//! Durable on-disk snapshots of the serving plan cache.
//!
//! A restart — deploy, crash, OOM-kill — normally throws away every
//! cached plan and replays the cold-planning cliff
//! (`BENCH_serve_soak.json` puts warm/cold at ~0.27). This module
//! defines a versioned, hand-rolled (std-only, no serde) snapshot
//! format so [`super::PlanCache`] contents survive process lifetimes.
//!
//! ## What is persisted
//!
//! Not the built artifacts (LUTs, FFT twiddles, gridded Toeplitz
//! kernels — large, layout-sensitive, and full of derived invariants)
//! but the **rebuild inputs**: the [`NufftConfig`] plus the original
//! trajectory coordinates and density weights of every resident entry.
//! Loading replays [`super::PlanCache::get_or_build`] /
//! [`super::PlanCache::get_or_build_toeplitz`] per entry, so a loaded
//! entry is bit-identical to a freshly built one by construction, every
//! existing validation path runs again at load time, and a snapshot
//! written by an older build stays loadable as long as the inputs
//! parse. The first identical post-restart request is then a genuine
//! plan-cache hit.
//!
//! ## Wire format (all little-endian)
//!
//! ```text
//! magic    [u8; 4] = "JGSP"
//! version  u32     = 1
//! count    u32     (declared entry count)
//! entries  count × {
//!     body_len  u32
//!     body      body_len bytes:
//!         kind       u8   (1 = plan, 2 = Toeplitz kernel)
//!         n          u64
//!         sigma      u64  (f64 bits)
//!         width      u64
//!         table_os   u64
//!         tile       u64
//!         kernel     u8   (family discriminant, see `kernel_fingerprint`)
//!         kernel_par u64  (f64 bits of the shape parameter)
//!         m          u32  (sample count)
//!         coords     m × 2 × u64 (f64 bits, kx then ky)
//!         w          u32  (weight count; 0 for plan entries)
//!         weights    w × u64 (f64 bits)
//!     checksum  u64  (FNV-1a over body)
//! }
//! file_checksum u64 (FNV-1a over everything above)
//! ```
//!
//! Entries are written least-recently-used **first**, so replaying the
//! file in order and inserting at the MRU position reproduces the exact
//! LRU order (and a snapshot larger than the loading cache's capacity
//! degrades correctly: the most recent entries win).
//!
//! ## Corruption policy
//!
//! Decoding never panics on attacker-shaped bytes. A file too short for
//! the header, a magic mismatch, or an unsupported version is an
//! [`Error::Data`] — the caller degrades to a cold start. Past the
//! header, damage is contained per entry: a torn tail, a bad body
//! length, an entry-checksum mismatch, or an implausible field skips
//! that entry (counted by the caller as `serve.snapshot.skipped`) while
//! salvaging the rest. A whole-file checksum mismatch is reported but
//! does not discard entries whose own checksums verify.

use crate::config::NufftConfig;
use crate::kernel::KernelKind;
use crate::{Error, Result};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"JGSP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Entry kind: a plain plan (config + trajectory).
pub const ENTRY_PLAN: u8 = 1;

/// Entry kind: a Toeplitz normal-operator kernel (config, trajectory,
/// and density weights; the config is the *base* `N`, not the doubled
/// grid).
pub const ENTRY_TOEPLITZ: u8 = 2;

/// Implausibility bound on the persisted grid size (the live protocol
/// caps `n` at 2048; the snapshot bound leaves headroom without letting
/// a flipped bit demand a petabyte plan at load).
const MAX_SNAPSHOT_N: u64 = 8192;

/// Implausibility bound on per-entry sample counts (64 Mi samples).
const MAX_SNAPSHOT_SAMPLES: u64 = 1 << 26;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Little-endian u32 from the first 4 bytes of `bytes` (caller has
/// already bounds-checked the slice).
fn u32_at(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// Little-endian u64 from the first 8 bytes of `bytes`.
fn u64_at(bytes: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(a)
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The rebuild inputs of one cached entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// [`ENTRY_PLAN`] or [`ENTRY_TOEPLITZ`].
    pub kind: u8,
    /// The configuration the entry was built from (base `N` for
    /// Toeplitz entries).
    pub cfg: NufftConfig,
    /// Original (pre-wrap) trajectory coordinates.
    pub coords: Arc<[[f64; 2]]>,
    /// Density weights (empty for plan entries and unweighted kernels).
    pub weights: Arc<[f64]>,
}

/// What [`decode_snapshot`] recovered from a byte buffer.
#[derive(Debug)]
pub struct DecodeOutcome {
    /// Entries that passed framing, checksum, and plausibility checks,
    /// in file (LRU-first) order.
    pub entries: Vec<SnapshotEntry>,
    /// Entries (or, for an unsupported version, the whole declared set)
    /// that had to be discarded.
    pub skipped: u64,
    /// Whether the trailing whole-file checksum was present and
    /// matched. Salvaged entries are returned even when it did not.
    pub file_checksum_ok: bool,
}

fn kernel_disc(kernel: &KernelKind) -> (u8, f64) {
    match kernel {
        KernelKind::Auto => (0, 0.0),
        KernelKind::KaiserBessel { beta } => (1, *beta),
        KernelKind::Gaussian { s } => (2, *s),
        KernelKind::Triangle => (3, 0.0),
        KernelKind::Cosine => (4, 0.0),
        KernelKind::BSpline => (5, 0.0),
        KernelKind::Sinc => (6, 0.0),
    }
}

fn kernel_from_disc(disc: u8, param: f64) -> Option<KernelKind> {
    Some(match disc {
        0 => KernelKind::Auto,
        1 => KernelKind::KaiserBessel { beta: param },
        2 => KernelKind::Gaussian { s: param },
        3 => KernelKind::Triangle,
        4 => KernelKind::Cosine,
        5 => KernelKind::BSpline,
        6 => KernelKind::Sinc,
        _ => return None,
    })
}

fn encode_entry_body(entry: &SnapshotEntry, out: &mut Vec<u8>) {
    out.push(entry.kind);
    out.extend_from_slice(&(entry.cfg.n as u64).to_le_bytes());
    out.extend_from_slice(&entry.cfg.sigma.to_bits().to_le_bytes());
    out.extend_from_slice(&(entry.cfg.width as u64).to_le_bytes());
    out.extend_from_slice(&(entry.cfg.table_oversampling as u64).to_le_bytes());
    out.extend_from_slice(&(entry.cfg.tile as u64).to_le_bytes());
    let (disc, param) = kernel_disc(&entry.cfg.kernel);
    out.push(disc);
    out.extend_from_slice(&param.to_bits().to_le_bytes());
    out.extend_from_slice(&(entry.coords.len() as u32).to_le_bytes());
    for c in entry.coords.iter() {
        out.extend_from_slice(&c[0].to_bits().to_le_bytes());
        out.extend_from_slice(&c[1].to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(entry.weights.len() as u32).to_le_bytes());
    for w in entry.weights.iter() {
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
}

/// Serialize a snapshot. Entries must already be in LRU-first order.
pub fn encode_snapshot(entries: &[SnapshotEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + entries.len() * 256);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    let mut body = Vec::new();
    for entry in entries {
        body.clear();
        encode_entry_body(entry, &mut body);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a(FNV_OFFSET, &body).to_le_bytes());
    }
    let file_sum = fnv1a(FNV_OFFSET, &out);
    out.extend_from_slice(&file_sum.to_le_bytes());
    out
}

/// Bounds-checked little-endian reader over an entry body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            let mut a = [0u8; 8];
            a.copy_from_slice(s);
            u64::from_le_bytes(a)
        })
    }

    fn f64_bits(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Parse one entry body. `None` means the entry is damaged or
/// implausible and must be skipped.
fn decode_entry_body(body: &[u8]) -> Option<SnapshotEntry> {
    let mut c = Cursor::new(body);
    let kind = c.u8()?;
    if kind != ENTRY_PLAN && kind != ENTRY_TOEPLITZ {
        return None;
    }
    let n = c.u64()?;
    let sigma = c.f64_bits()?;
    let width = c.u64()?;
    let table_oversampling = c.u64()?;
    let tile = c.u64()?;
    let disc = c.u8()?;
    let param = c.f64_bits()?;
    if n == 0 || n > MAX_SNAPSHOT_N {
        return None;
    }
    if !sigma.is_finite() || sigma <= 1.0 || sigma > 16.0 {
        return None;
    }
    if width == 0 || width > 64 || table_oversampling == 0 || table_oversampling > 65536 {
        return None;
    }
    if tile == 0 || tile > 4096 {
        return None;
    }
    let kernel = kernel_from_disc(disc, param)?;
    let m = c.u32()? as u64;
    if m == 0 || m > MAX_SNAPSHOT_SAMPLES {
        return None;
    }
    // The body must be exactly large enough for the declared counts —
    // a flipped count bit fails here instead of allocating blindly.
    let mut coords = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let kx = c.f64_bits()?;
        let ky = c.f64_bits()?;
        coords.push([kx, ky]);
    }
    let w = c.u32()? as u64;
    if w != 0 && w != m {
        return None;
    }
    if kind == ENTRY_PLAN && w != 0 {
        return None;
    }
    let mut weights = Vec::with_capacity(w as usize);
    for _ in 0..w {
        weights.push(c.f64_bits()?);
    }
    if !c.exhausted() {
        return None;
    }
    Some(SnapshotEntry {
        kind,
        cfg: NufftConfig {
            n: n as usize,
            sigma,
            width: width as usize,
            table_oversampling: table_oversampling as usize,
            tile: tile as usize,
            kernel,
        },
        coords: coords.into(),
        weights: weights.into(),
    })
}

/// Decode a snapshot buffer, salvaging what the corruption policy
/// allows. `Err` only for an unusable prefix (short/garbage header or
/// unsupported version) — per-entry damage lands in
/// [`DecodeOutcome::skipped`] instead.
pub fn decode_snapshot(bytes: &[u8]) -> Result<DecodeOutcome> {
    if bytes.len() < 12 {
        return Err(Error::Data(format!(
            "snapshot too short for header: {} bytes",
            bytes.len()
        )));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(Error::Data("snapshot magic mismatch".into()));
    }
    let version = u32_at(&bytes[4..8]);
    let declared = u32_at(&bytes[8..12]) as u64;
    if version != SNAPSHOT_VERSION {
        return Err(Error::Data(format!(
            "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION}, \
             {declared} declared entries discarded)"
        )));
    }
    let mut entries = Vec::new();
    let mut skipped = 0u64;
    let mut pos = 12usize;
    let mut parsed = 0u64;
    while parsed < declared {
        // Entry framing: body_len, body, checksum. A torn tail stops
        // the walk; everything not yet parsed counts as skipped.
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            skipped += declared - parsed;
            break;
        };
        let body_len = u32_at(len_bytes) as usize;
        let body_start = pos + 4;
        let Some(body_end) = body_start.checked_add(body_len) else {
            skipped += declared - parsed;
            break;
        };
        // The body and its 8-byte checksum must fit in the buffer. The
        // length field itself is untrusted, so on a violation there is
        // no way to resynchronize: stop and skip the rest.
        if body_end.checked_add(8).is_none_or(|e| e > bytes.len()) {
            skipped += declared - parsed;
            break;
        }
        let body = &bytes[body_start..body_end];
        let sum = u64_at(&bytes[body_end..body_end + 8]);
        pos = body_end + 8;
        parsed += 1;
        if fnv1a(FNV_OFFSET, body) != sum {
            skipped += 1;
            continue;
        }
        match decode_entry_body(body) {
            Some(entry) => entries.push(entry),
            None => skipped += 1,
        }
    }
    let file_checksum_ok = match bytes.get(pos..pos + 8) {
        Some(tail) if pos + 8 == bytes.len() => u64_at(tail) == fnv1a(FNV_OFFSET, &bytes[..pos]),
        _ => false,
    };
    Ok(DecodeOutcome {
        entries,
        skipped,
        file_checksum_ok,
    })
}

/// Write `bytes` to `path` atomically: a temp file in the same
/// directory (same filesystem, so the rename cannot cross devices) is
/// written, flushed, and renamed over the target. A reader therefore
/// sees either the old snapshot or the new one, never a torn mix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("snapshot path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seed: u64, m: usize, kind: u8) -> SnapshotEntry {
        let coords = crate::traj::random_nd::<2>(m, seed);
        let weights: Vec<f64> = if kind == ENTRY_TOEPLITZ {
            (0..m).map(|i| 0.5 + i as f64 * 0.125).collect()
        } else {
            Vec::new()
        };
        SnapshotEntry {
            kind,
            cfg: NufftConfig::with_n(16),
            coords: coords.into(),
            weights: weights.into(),
        }
    }

    #[test]
    fn round_trip_is_bitwise() {
        let entries = vec![
            entry(1, 24, ENTRY_PLAN),
            entry(3, 8, ENTRY_TOEPLITZ),
            entry(5, 1, ENTRY_PLAN),
        ];
        let bytes = encode_snapshot(&entries);
        let out = decode_snapshot(&bytes).unwrap();
        assert_eq!(out.skipped, 0);
        assert!(out.file_checksum_ok);
        assert_eq!(out.entries.len(), entries.len());
        for (a, b) in out.entries.iter().zip(&entries) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.cfg, b.cfg);
            for (ca, cb) in a.coords.iter().zip(b.coords.iter()) {
                assert_eq!(ca[0].to_bits(), cb[0].to_bits());
                assert_eq!(ca[1].to_bits(), cb[1].to_bits());
            }
            for (wa, wb) in a.weights.iter().zip(b.weights.iter()) {
                assert_eq!(wa.to_bits(), wb.to_bits());
            }
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = encode_snapshot(&[]);
        let out = decode_snapshot(&bytes).unwrap();
        assert!(out.entries.is_empty());
        assert_eq!(out.skipped, 0);
        assert!(out.file_checksum_ok);
    }

    #[test]
    fn header_damage_is_an_error() {
        assert!(decode_snapshot(&[]).is_err());
        assert!(decode_snapshot(b"JGSPxx").is_err());
        assert!(decode_snapshot(b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00").is_err());
        // Version bump: whole file refused with the declared count in
        // the message.
        let mut bytes = encode_snapshot(&[entry(1, 4, ENTRY_PLAN)]);
        bytes[4] = 99;
        let err = decode_snapshot(&bytes).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn flipped_body_bit_skips_only_that_entry() {
        let entries = vec![entry(1, 16, ENTRY_PLAN), entry(3, 16, ENTRY_PLAN)];
        let mut bytes = encode_snapshot(&entries);
        // Flip a bit inside the first entry's body (past the 12-byte
        // header and 4-byte body length).
        bytes[12 + 4 + 20] ^= 0x10;
        let out = decode_snapshot(&bytes).unwrap();
        assert_eq!(out.skipped, 1);
        assert_eq!(out.entries.len(), 1);
        assert_eq!(
            out.entries[0].coords.len(),
            16,
            "surviving entry must be the undamaged one"
        );
        assert!(!out.file_checksum_ok);
    }

    #[test]
    fn truncation_never_panics_and_counts_skips() {
        let entries = vec![entry(1, 8, ENTRY_PLAN), entry(3, 8, ENTRY_TOEPLITZ)];
        let bytes = encode_snapshot(&entries);
        for cut in 12..bytes.len() {
            let out = decode_snapshot(&bytes[..cut]).unwrap();
            assert_eq!(out.entries.len() as u64 + out.skipped, 2, "cut={cut}");
            assert!(!out.file_checksum_ok, "cut={cut}");
        }
    }

    #[test]
    fn implausible_fields_are_skipped() {
        let mut e = entry(1, 4, ENTRY_PLAN);
        e.cfg.n = 1 << 20; // beyond MAX_SNAPSHOT_N
        let out = decode_snapshot(&encode_snapshot(&[e])).unwrap();
        assert_eq!(out.entries.len(), 0);
        assert_eq!(out.skipped, 1);

        let mut e = entry(1, 4, ENTRY_PLAN);
        e.cfg.sigma = f64::NAN;
        let out = decode_snapshot(&encode_snapshot(&[e])).unwrap();
        assert_eq!(out.skipped, 1);

        // Plan entries must not carry weights.
        let mut e = entry(1, 4, ENTRY_PLAN);
        e.weights = vec![1.0; 4].into();
        let out = decode_snapshot(&encode_snapshot(&[e])).unwrap();
        assert_eq!(out.skipped, 1);
    }

    #[test]
    fn atomic_write_replaces_and_cleans_temp() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("jigsaw-snap-atomic-{}.bin", std::process::id()));
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No stray temp files for this pid remain.
        let tmp = path.with_file_name(format!(
            "jigsaw-snap-atomic-{0}.bin.tmp.{0}",
            std::process::id()
        ));
        assert!(!tmp.exists());
        let _ = std::fs::remove_file(&path);
    }
}
