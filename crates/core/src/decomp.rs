//! The Slice-and-Dice coordinate decomposition (§III, Fig. 4).
//!
//! This module is the software twin of the JIGSAW *select* unit. All
//! engines — serial, binned, Slice-and-Dice, and the hardware simulator —
//! derive their interpolation windows from the same integer decomposition,
//! which both guarantees they produce identical grids and mirrors how the
//! hardware computes everything with truncations and small adders:
//!
//! 1. Coordinates are quantized to the table granularity `1/L`
//!    ("the supported non-uniform coordinate granularity is defined by the
//!    table oversampling factor L", §II-B).
//! 2. The window *base* is `b = ⌊u + W/2⌋`; the window covers the `W`
//!    grid points `k_j = (b − j) mod G`, `j = 0..W`, and the LUT offset of
//!    point `j` is `(j + φ)·L` where `φ = frac(u + W/2)`.
//! 3. Slice-and-Dice splits `b` by the virtual tile size: *tile
//!    coordinate* `q = b div T` (truncate low bits) and *relative
//!    coordinate* `r = b mod T`. A pipeline/thread with index `p` is
//!    affected iff the forward distance `d = (r − p) mod T` is `< W`; the
//!    affected grid point is in tile `q` if `p ≤ r` and tile `q − 1`
//!    (wrap) if `p > r`.

use crate::config::GridParams;

/// Per-dimension decomposition of one quantized coordinate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DimDecomp {
    /// Window base `b = ⌊u + W/2⌋ mod G` (torus).
    pub base: u32,
    /// Relative coordinate `r = b mod T` — "in which column".
    pub rel: u32,
    /// Tile coordinate `q = b div T` — "which depth in the dice".
    pub tile: u32,
    /// Fractional offset `φ` in half-LUT units: `phi2 = 2·φ·L ∈ [0, 2L)`.
    /// Half units make the decomposition exact for every `(W, L)` pair,
    /// including odd `W·L` (e.g. `L = 1`, `W = 5`).
    pub phi2: u32,
}

/// Integer decomposition engine for one [`GridParams`] configuration.
///
/// ```
/// use jigsaw_core::config::GridParams;
/// use jigsaw_core::decomp::Decomposer;
/// use jigsaw_core::kernel::KernelKind;
///
/// let p = GridParams { grid: 64, width: 6, table_oversampling: 32,
///                      tile: 8, kernel: KernelKind::Auto.resolve(6, 2.0) };
/// let dec = Decomposer::new(&p);
/// // Sample at u = 20.25: window base = floor(20.25 + 3) = 23.
/// let d = dec.decompose(dec.quantize(20.25));
/// assert_eq!((d.base, d.tile, d.rel), (23, 2, 7));
/// // Pipeline 5 is affected (forward distance 2 < W), writes tile 2.
/// assert_eq!(dec.forward_distance(d.rel, 5), 2);
/// assert!(dec.affects(2) && !dec.wrapped(d.rel, 5));
/// ```
#[derive(Copy, Clone, Debug)]
pub struct Decomposer {
    g: u32,
    t: u32,
    w: u32,
    l: u32,
    tiles: u32,
    log2_t: u32,
}

impl Decomposer {
    /// Build a decomposer. The params must already be validated.
    pub fn new(p: &GridParams) -> Self {
        debug_assert!(p.validate().is_ok());
        Self {
            g: p.grid as u32,
            t: p.tile as u32,
            w: p.width as u32,
            l: p.table_oversampling as u32,
            tiles: (p.grid / p.tile) as u32,
            log2_t: p.tile.trailing_zeros(),
        }
    }

    /// Grid size `G`.
    pub fn grid(&self) -> u32 {
        self.g
    }
    /// Tile dimension `T`.
    pub fn tile(&self) -> u32 {
        self.t
    }
    /// Window width `W`.
    pub fn width(&self) -> u32 {
        self.w
    }
    /// Table oversampling `L`.
    pub fn table_oversampling(&self) -> u32 {
        self.l
    }
    /// Tiles per dimension `G/T`.
    pub fn tiles_per_dim(&self) -> u32 {
        self.tiles
    }

    /// Quantize a coordinate `u ∈ ℝ` (oversampled grid units, wrapped onto
    /// the torus) to an integer in units of `1/L`: `U = round(u·L) mod G·L`.
    #[inline]
    pub fn quantize(&self, u: f64) -> u32 {
        let gl = (self.g * self.l) as f64;
        let scaled = (u * self.l as f64).round().rem_euclid(gl);
        scaled as u32
    }

    /// Decompose a quantized coordinate `uq` (units of `1/L`).
    #[inline]
    pub fn decompose(&self, uq: u32) -> DimDecomp {
        // Work in half-units of 1/(2L) so that the W/2 shift is always an
        // integer: s2 = 2·uq + W·L.
        let s2 = 2 * uq as u64 + (self.w * self.l) as u64;
        let two_l = (2 * self.l) as u64;
        let base = ((s2 / two_l) % self.g as u64) as u32;
        let phi2 = (s2 % two_l) as u32;
        DimDecomp {
            base,
            rel: base & (self.t - 1),
            tile: base >> self.log2_t,
            phi2,
        }
    }

    /// The `j`-th window point (`j ∈ [0, W)`): grid index and *unfolded*
    /// LUT index `t = round((j + φ)·L)` (round half up).
    #[inline]
    pub fn window_point(&self, d: &DimDecomp, j: u32) -> (u32, u32) {
        debug_assert!(j < self.w);
        let k = (d.base + self.g - j) % self.g;
        (k, self.lut_index(j, d.phi2))
    }

    /// Unfolded LUT index for forward distance `dist` and fractional
    /// offset `phi2`: `t = round(dist·L + phi2/2)`, rounding half up — in
    /// hardware, an add and a 1-bit truncation.
    #[inline]
    pub fn lut_index(&self, dist: u32, phi2: u32) -> u32 {
        (2 * dist * self.l + phi2 + 1) >> 1
    }

    /// Fold an unfolded LUT index into the stored symmetric half-table:
    /// `min(t, WL − t)` (§IV: "only half of the weights must be stored").
    #[inline]
    pub fn fold(&self, t: u32) -> u32 {
        let wl = self.w * self.l;
        t.min(wl - t)
    }

    /// Select-unit boundary check: forward (mod-T) distance from pipeline
    /// index `p` to relative coordinate `rel`. In hardware this is
    /// `rel + T − p` on a `log2(T)`-bit adder, whose natural wraparound
    /// implements the `mod T`.
    #[inline]
    pub fn forward_distance(&self, rel: u32, p: u32) -> u32 {
        (rel + self.t - p) & (self.t - 1)
    }

    /// Whether a forward distance means "affected" (`d < W`).
    #[inline]
    pub fn affects(&self, dist: u32) -> bool {
        dist < self.w
    }

    /// Wrap detection (§IV: "if the relative coordinate is less than the
    /// pipeline index, a wrap has occurred in that dimension").
    #[inline]
    pub fn wrapped(&self, rel: u32, p: u32) -> bool {
        rel < p
    }

    /// Tile coordinate of the point pipeline `p` accumulates for this
    /// sample: `q`, decremented (mod tiles-per-dim) on wrap.
    #[inline]
    pub fn tile_for_pipeline(&self, d: &DimDecomp, p: u32) -> u32 {
        if self.wrapped(d.rel, p) {
            (d.tile + self.tiles - 1) % self.tiles
        } else {
            d.tile
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;

    fn params(g: usize, w: usize, l: usize, t: usize) -> GridParams {
        GridParams {
            grid: g,
            width: w,
            table_oversampling: l,
            tile: t,
            kernel: KernelKind::Auto.resolve(w, 2.0),
        }
    }

    #[test]
    fn quantize_wraps_torus() {
        let d = Decomposer::new(&params(16, 4, 8, 8));
        assert_eq!(d.quantize(0.0), 0);
        assert_eq!(d.quantize(15.9999), 0); // rounds to 16·L ≡ 0
        assert_eq!(d.quantize(-0.125), 15 * 8 + 7); // −1/8 ≡ 15.875
        assert_eq!(d.quantize(16.25), 2); // 0.25 · 8
    }

    #[test]
    fn decompose_reconstructs_coordinate() {
        let p = params(64, 6, 32, 8);
        let d = Decomposer::new(&p);
        for i in 0..64 * 32 {
            let dec = d.decompose(i);
            // q·T + r == base.
            assert_eq!(dec.tile * 8 + dec.rel, dec.base);
            // base and phi2 reconstruct u + W/2 (mod G).
            let u_half = 2 * i as u64 + (6 * 32) as u64;
            assert_eq!(
                (dec.base as u64 * 64 + dec.phi2 as u64) % (64 * 64),
                u_half % (64 * 64)
            );
        }
    }

    #[test]
    fn window_points_are_centered_on_sample() {
        let p = params(32, 6, 32, 8);
        let d = Decomposer::new(&p);
        let u = 10.3;
        let uq = d.quantize(u);
        let dec = d.decompose(uq);
        let pts: Vec<u32> = (0..6).map(|j| d.window_point(&dec, j).0).collect();
        // u + W/2 = 13.3 → base 13; window {13,12,11,10,9,8}.
        assert_eq!(pts, vec![13, 12, 11, 10, 9, 8]);
    }

    #[test]
    fn window_wraps_around_grid_edge() {
        let p = params(32, 6, 32, 8);
        let d = Decomposer::new(&p);
        let dec = d.decompose(d.quantize(0.5)); // base = 3
        let pts: Vec<u32> = (0..6).map(|j| d.window_point(&dec, j).0).collect();
        assert_eq!(pts, vec![3, 2, 1, 0, 31, 30]);
    }

    #[test]
    fn lut_indices_span_table() {
        let p = params(32, 6, 32, 8);
        let d = Decomposer::new(&p);
        let dec = d.decompose(d.quantize(10.25)); // φ = frac(13.25) = 0.25
        for j in 0..6 {
            let (_, t) = d.window_point(&dec, j);
            assert_eq!(t, j * 32 + 8); // (j + 0.25)·32
            assert!(d.fold(t) <= 6 * 32 / 2);
        }
    }

    #[test]
    fn fold_symmetry() {
        let d = Decomposer::new(&params(32, 6, 32, 8));
        let wl = 6 * 32;
        for t in 0..=wl {
            assert_eq!(d.fold(t), d.fold(wl - t));
            assert!(d.fold(t) <= wl / 2);
        }
    }

    #[test]
    fn select_unit_equals_direct_window_membership() {
        // The hardware-style check (forward distance < W, wrap iff r < p)
        // must identify exactly the same (tile, pipeline) pairs as
        // enumerating the window directly.
        let p = params(64, 6, 32, 8);
        let d = Decomposer::new(&p);
        for step in 0..512 {
            let u = step as f64 * 0.123;
            let dec = d.decompose(d.quantize(u));
            // Direct enumeration.
            let mut direct: Vec<(u32, u32)> = (0..6)
                .map(|j| {
                    let (k, _) = d.window_point(&dec, j);
                    (k >> 3, k & 7) // (tile, rel-pos-in-tile)
                })
                .collect();
            direct.sort_unstable();
            // Select-unit enumeration over all pipelines.
            let mut selected: Vec<(u32, u32)> = (0..8)
                .filter(|&pipe| d.affects(d.forward_distance(dec.rel, pipe)))
                .map(|pipe| (d.tile_for_pipeline(&dec, pipe), pipe))
                .collect();
            selected.sort_unstable();
            assert_eq!(direct, selected, "u={u}");
        }
    }

    #[test]
    fn select_unit_distance_matches_window_offset() {
        // For an affected pipeline, the forward distance equals the window
        // offset j of the point it owns, so the LUT index agrees too.
        let p = params(64, 6, 32, 8);
        let d = Decomposer::new(&p);
        for step in 0..256 {
            let u = step as f64 * 0.37 + 0.011;
            let dec = d.decompose(d.quantize(u));
            for pipe in 0..8 {
                let dist = d.forward_distance(dec.rel, pipe);
                if !d.affects(dist) {
                    continue;
                }
                let (k, t) = d.window_point(&dec, dist);
                let tile = d.tile_for_pipeline(&dec, pipe);
                assert_eq!(k, tile * 8 + pipe, "grid index mismatch at u={u}");
                assert_eq!(t, d.lut_index(dist, dec.phi2));
            }
        }
    }

    #[test]
    fn exactly_w_pipelines_affected_per_dim() {
        let p = params(64, 6, 32, 8);
        let d = Decomposer::new(&p);
        for step in 0..100 {
            let dec = d.decompose(d.quantize(step as f64 * 0.61));
            let n = (0..8)
                .filter(|&pipe| d.affects(d.forward_distance(dec.rel, pipe)))
                .count();
            assert_eq!(n, 6);
        }
    }

    #[test]
    fn odd_wl_half_unit_rounding() {
        // L = 1, W = 5: φ carries a half; LUT index rounds half up.
        let p = params(32, 5, 1, 8);
        let d = Decomposer::new(&p);
        let dec = d.decompose(d.quantize(10.0)); // u + W/2 = 12.5
        assert_eq!(dec.base, 12);
        assert_eq!(dec.phi2, 1); // half unit
                                 // t_j = round(j + 0.5) = j + 1 (half up).
        for j in 0..5 {
            assert_eq!(d.lut_index(j, dec.phi2), j + 1);
        }
    }

    #[test]
    fn tile_wrap_decrements_mod_tiles() {
        let p = params(32, 6, 32, 8);
        let d = Decomposer::new(&p);
        // base = 2 → rel = 2, tile = 0. Pipeline 5 is affected
        // (distance (2−5) mod 8 = 5 < 6) and wraps to tile −1 ≡ 3.
        let dec = d.decompose(d.quantize(2.0 - 3.0)); // u = −1 → u+3 = 2
        assert_eq!(dec.rel, 2);
        assert_eq!(dec.tile, 0);
        assert!(d.wrapped(dec.rel, 5));
        assert_eq!(d.tile_for_pipeline(&dec, 5), 3);
        assert!(!d.wrapped(dec.rel, 1));
        assert_eq!(d.tile_for_pipeline(&dec, 1), 0);
    }
}
