//! Direct Non-uniform DFT — the exact (but `O(M·N^d)`) reference.
//!
//! Implements equations (1) and (2) of the paper:
//!
//! * forward: `f_j = Σ_k f̂_k e^{−2πi k·ν_j}` — uniform image to
//!   non-uniform samples,
//! * adjoint: `ĥ_k = Σ_j f_j e^{+2πi k·ν_j}` — non-uniform samples to
//!   uniform image,
//!
//! with image indices `k ∈ [−N/2, N/2)^d` and sample coordinates `ν` in
//! cycles (the paper's `x_j/N`). "Direct calculation requires `M·N^d`
//! floating-point operations, which is too expensive for many
//! applications" (§II-A) — which is exactly why it is the perfect oracle
//! for small problems.
//!
//! All accumulation is in `f64` regardless of the working precision.

use crate::gridding::worker_threads;
use jigsaw_num::{Complex, C64};

const TWO_PI: f64 = 2.0 * core::f64::consts::PI;

/// Adjoint NuDFT: `out[k] = Σ_j values[j]·e^{+2πi k·ν_j}` over the
/// `[−N/2, N/2)^d` image, returned row-major with index `i = k + N/2`.
pub fn adjoint_nudft<const D: usize>(
    n: usize,
    coords: &[[f64; D]],
    values: &[C64],
    threads: Option<usize>,
) -> Vec<C64> {
    assert_eq!(coords.len(), values.len());
    let npix = n.pow(D as u32);
    let mut out = vec![C64::zeroed(); npix];
    let nthreads = worker_threads(threads).min(npix.max(1)).max(1);
    let chunk = npix.div_ceil(nthreads);
    std::thread::scope(|s| {
        for (tid, o_chunk) in out.chunks_mut(chunk).enumerate() {
            let base = tid * chunk;
            s.spawn(move || {
                for (off, o) in o_chunk.iter_mut().enumerate() {
                    let flat = base + off;
                    let mut k = [0f64; D];
                    let mut rem = flat;
                    for d in (0..D).rev() {
                        k[d] = (rem % n) as f64 - (n / 2) as f64;
                        rem /= n;
                    }
                    let mut acc = C64::zeroed();
                    for (c, &v) in coords.iter().zip(values) {
                        let mut phase = 0.0;
                        for d in 0..D {
                            phase += k[d] * c[d];
                        }
                        acc += v * Complex::cis(TWO_PI * phase);
                    }
                    *o = acc;
                }
            });
        }
    });
    out
}

/// Forward NuDFT: `out[j] = Σ_k image[k]·e^{−2πi k·ν_j}`.
pub fn forward_nudft<const D: usize>(
    n: usize,
    image: &[C64],
    coords: &[[f64; D]],
    threads: Option<usize>,
) -> Vec<C64> {
    assert_eq!(image.len(), n.pow(D as u32));
    let m = coords.len();
    let mut out = vec![C64::zeroed(); m];
    let nthreads = worker_threads(threads).min(m.max(1)).max(1);
    let chunk = m.div_ceil(nthreads);
    std::thread::scope(|s| {
        for (tid, o_chunk) in out.chunks_mut(chunk).enumerate() {
            let c_chunk = &coords[tid * chunk..tid * chunk + o_chunk.len()];
            s.spawn(move || {
                for (o, c) in o_chunk.iter_mut().zip(c_chunk) {
                    let mut acc = C64::zeroed();
                    for (flat, &f) in image.iter().enumerate() {
                        let mut rem = flat;
                        let mut phase = 0.0;
                        for d in (0..D).rev() {
                            let k = (rem % n) as f64 - (n / 2) as f64;
                            rem /= n;
                            phase += k * c[d];
                        }
                        acc += f * Complex::cis(-TWO_PI * phase);
                    }
                    *o = acc;
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjoint_of_single_sample_is_plane_wave() {
        let nu = [0.11, -0.23];
        let img = adjoint_nudft(8, &[nu], &[C64::one()], Some(1));
        for r in 0..8 {
            for c in 0..8 {
                let k = [(r as f64) - 4.0, (c as f64) - 4.0];
                let want = C64::cis(TWO_PI * (k[0] * nu[0] + k[1] * nu[1]));
                assert!((img[r * 8 + c] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn forward_of_centered_impulse_is_constant() {
        // image = δ at k = (0,0) (index N/2 each dim) → f_j = 1 ∀j.
        let n = 8;
        let mut img = vec![C64::zeroed(); 64];
        img[4 * 8 + 4] = C64::one();
        let coords = [[0.05, 0.3], [-0.4, 0.2], [0.0, 0.0]];
        let out = forward_nudft(n, &img, &coords, Some(2));
        for v in &out {
            assert!((*v - C64::one()).abs() < 1e-13);
        }
    }

    #[test]
    fn forward_adjoint_inner_product_identity() {
        // ⟨A f, c⟩ = ⟨f, Aᴴ c⟩ with A = forward NuDFT.
        let n = 6;
        let coords = [[0.11, 0.31], [-0.25, 0.07], [0.42, -0.44], [0.0, 0.2]];
        let f: Vec<C64> = (0..36)
            .map(|i| C64::new((i as f64 * 0.4).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let c: Vec<C64> = (0..4)
            .map(|i| C64::new(0.5 + i as f64, 1.0 - i as f64 * 0.3))
            .collect();
        let af = forward_nudft(n, &f, &coords, Some(1));
        let ahc = adjoint_nudft(n, &coords, &c, Some(1));
        let lhs: C64 = af.iter().zip(&c).map(|(a, b)| *a * b.conj()).sum();
        let rhs: C64 = f.iter().zip(&ahc).map(|(a, b)| *a * b.conj()).sum();
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn uniform_samples_reduce_to_dft() {
        // Sampling ν on the uniform grid j/N makes the adjoint NuDFT an
        // inverse-DFT-like sum; cross-check against jigsaw-fft's dft.
        let n = 4usize;
        let coords: Vec<[f64; 1]> = (0..n).map(|j| [j as f64 / n as f64]).collect();
        let values: Vec<C64> = (0..n)
            .map(|j| C64::new(1.0 + j as f64, -(j as f64)))
            .collect();
        let img = adjoint_nudft::<1>(n, &coords, &values, Some(1));
        // Direct check of the defining sum.
        for (i, got) in img.iter().enumerate() {
            let k = i as f64 - 2.0;
            let want: C64 = (0..n)
                .map(|j| values[j] * C64::cis(TWO_PI * k * j as f64 / n as f64))
                .sum();
            assert!((*got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let n = 8;
        let coords: Vec<[f64; 2]> = (0..17)
            .map(|i| [(i as f64 * 0.37).sin() / 2.0, (i as f64 * 0.53).cos() / 2.0])
            .collect();
        let values: Vec<C64> = (0..17).map(|i| C64::new(i as f64, -1.0)).collect();
        let a = adjoint_nudft(n, &coords, &values, Some(1));
        let b = adjoint_nudft(n, &coords, &values, Some(5));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
        }
    }
}
