//! Cooperative run budgets and cancellation.
//!
//! Reconstruction is iterative (CG) and chunked (per-coil NuFFT jobs), so
//! a latency-bounded service needs a way to say "give me the best image
//! you have by the deadline" without killing threads. [`RunBudget`]
//! provides that: a wall-clock deadline and/or an externally triggered
//! cancellation token, *checked cooperatively* between CG iterations and
//! between per-coil chunks. Exhaustion never corrupts state — the solver
//! returns its best iterate so far with a
//! [`crate::recon::CgDiagnostic::BudgetExhausted`] diagnostic, and only
//! reports [`crate::Error::Budget`] when no usable iterate exists yet.
//!
//! The cancellation token is a [`jigsaw_testkit::cancel::CancelFlag`],
//! the same latch the gridding/FFT hot loops poll through
//! `cancel::cancelled()` checkpoints: entering [`RunBudget::enter_scope`]
//! before dispatching work lets a `cancel()` — from a client hangup, a
//! watchdog, or a blown deadline — stop a job within one gridding chunk
//! or FFT panel instead of one CG iteration. The hot loops never look at
//! the deadline themselves (an `Instant::now()` per chunk would not be
//! free); deadline enforcement mid-job comes from the serve watchdog
//! tripping the flag when the deadline passes.
//!
//! The CLI exposes this as `recon --time-budget-ms <ms>`.

use jigsaw_testkit::cancel::{CancelFlag, CancelScope};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative wall-clock / cancellation budget. Cheap to clone (the
/// cancellation flag is shared between clones).
#[derive(Debug, Clone)]
pub struct RunBudget {
    deadline: Option<Instant>,
    cancelled: Arc<CancelFlag>,
}

impl Default for RunBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl RunBudget {
    /// A budget that never exhausts (but can still be [`Self::cancel`]ed).
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            cancelled: CancelFlag::new(),
        }
    }

    /// A budget that exhausts `ms` milliseconds from now.
    pub fn with_time_ms(ms: u64) -> Self {
        Self {
            deadline: Some(Instant::now() + Duration::from_millis(ms)),
            cancelled: CancelFlag::new(),
        }
    }

    /// Trip the cancellation flag: every clone of this budget reports
    /// exhausted from now on, and any thread inside a scope entered via
    /// [`Self::enter_scope`] observes it at its next checkpoint. Safe to
    /// call from another thread.
    pub fn cancel(&self) {
        self.cancelled.cancel();
    }

    /// Whether the deadline has passed or [`Self::cancel`] was called.
    /// One `Instant::now()` plus one relaxed load — cheap enough for
    /// per-iteration and per-chunk checks.
    pub fn exhausted(&self) -> bool {
        if self.cancelled.is_cancelled() {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Whether [`Self::cancel`] was called (ignores the deadline).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.is_cancelled()
    }

    /// Time left before the deadline (`None` when untimed; zero once
    /// exhausted or cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        if self.cancelled.is_cancelled() {
            return Some(Duration::ZERO);
        }
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The shared cancellation latch, for watchdogs that must be able to
    /// trip the budget without holding the whole `RunBudget`.
    pub fn cancel_flag(&self) -> Arc<CancelFlag> {
        Arc::clone(&self.cancelled)
    }

    /// Install this budget's cancellation flag as the calling thread's
    /// checkpoint context (see [`jigsaw_testkit::cancel`]). Hold the
    /// returned guard across the dispatch of pooled work: the worker
    /// pool re-enters the scope inside each job, so every gridding
    /// chunk / FFT panel / coil batch polls this budget's flag.
    pub fn enter_scope(&self) -> CancelScope {
        CancelScope::enter(Some(Arc::clone(&self.cancelled)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_testkit::cancel;

    #[test]
    fn unlimited_never_exhausts() {
        let b = RunBudget::unlimited();
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn zero_budget_exhausts_immediately() {
        let b = RunBudget::with_time_ms(0);
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_live_then_counts_down() {
        let b = RunBudget::with_time_ms(60_000);
        assert!(!b.exhausted());
        let rem = b.remaining().expect("timed budget has remaining");
        assert!(rem > Duration::from_secs(50));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let a = RunBudget::unlimited();
        let b = a.clone();
        assert!(!b.exhausted());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn scope_wires_checkpoints_to_the_budget() {
        let b = RunBudget::unlimited();
        {
            let _scope = b.enter_scope();
            assert!(!cancel::cancelled());
            b.cancel();
            assert!(
                cancel::cancelled(),
                "checkpoints must observe budget cancellation"
            );
        }
        assert!(!cancel::cancelled(), "context cleared after scope drop");
    }

    #[test]
    fn deadline_expiry_does_not_trip_checkpoints_without_watchdog() {
        // Hot-loop checkpoints poll only the flag; the deadline is
        // enforced by exhausted() at phase boundaries (or a watchdog
        // cancelling the flag).
        let b = RunBudget::with_time_ms(0);
        let _scope = b.enter_scope();
        assert!(b.exhausted());
        assert!(!cancel::cancelled());
    }
}
