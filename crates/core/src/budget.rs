//! Cooperative run budgets and cancellation.
//!
//! Reconstruction is iterative (CG) and chunked (per-coil NuFFT jobs), so
//! a latency-bounded service needs a way to say "give me the best image
//! you have by the deadline" without killing threads. [`RunBudget`]
//! provides that: a wall-clock deadline and/or an externally triggered
//! cancellation token, *checked cooperatively* between CG iterations and
//! between per-coil chunks. Exhaustion never corrupts state — the solver
//! returns its best iterate so far with a
//! [`crate::recon::CgDiagnostic::BudgetExhausted`] diagnostic, and only
//! reports [`crate::Error::Budget`] when no usable iterate exists yet.
//!
//! The CLI exposes this as `recon --time-budget-ms <ms>`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative wall-clock / cancellation budget. Cheap to clone (the
/// cancellation flag is shared between clones).
#[derive(Debug, Clone)]
pub struct RunBudget {
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
}

impl Default for RunBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl RunBudget {
    /// A budget that never exhausts (but can still be [`Self::cancel`]ed).
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A budget that exhausts `ms` milliseconds from now.
    pub fn with_time_ms(ms: u64) -> Self {
        Self {
            deadline: Some(Instant::now() + Duration::from_millis(ms)),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Trip the cancellation flag: every clone of this budget reports
    /// exhausted from now on. Safe to call from another thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the deadline has passed or [`Self::cancel`] was called.
    /// One `Instant::now()` plus one relaxed load — cheap enough for
    /// per-iteration and per-chunk checks.
    pub fn exhausted(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Time left before the deadline (`None` when untimed; zero once
    /// exhausted or cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(Duration::ZERO);
        }
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = RunBudget::unlimited();
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn zero_budget_exhausts_immediately() {
        let b = RunBudget::with_time_ms(0);
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_live_then_counts_down() {
        let b = RunBudget::with_time_ms(60_000);
        assert!(!b.exhausted());
        let rem = b.remaining().expect("timed budget has remaining");
        assert!(rem > Duration::from_secs(50));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let a = RunBudget::unlimited();
        let b = a.clone();
        assert!(!b.exhausted());
        a.cancel();
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }
}
