//! Multi-coil (SENSE-style) acquisition and reconstruction.
//!
//! Clinical MRI acquires with arrays of receive coils, each modulating
//! the image by a smooth spatial sensitivity profile before the
//! non-Cartesian sampling the paper accelerates. The per-coil operator is
//! `A_c = F_Ω S_c` (sensitivity multiply, then forward NuFFT at the
//! trajectory Ω); reconstruction solves the joint least-squares problem
//! over all coils. Every coil costs one NuFFT per operator application —
//! with 8–32 coils and tens of CG iterations this is precisely the
//! "millions of NuFFTs" regime the paper's introduction motivates.

use crate::gridding::Gridder;
use crate::nufft::NufftPlan;
use crate::recon::{CgOptions, CgOutput, NormalOpKind};
use crate::toeplitz::ToeplitzOperator;
use crate::{Error, Result};
use jigsaw_num::C64;
use jigsaw_telemetry as telemetry;

/// A set of coil sensitivity maps over an `N^2` image (row-major, one
/// map per coil).
#[derive(Debug, Clone)]
pub struct CoilMaps {
    n: usize,
    maps: Vec<Vec<C64>>,
}

impl CoilMaps {
    /// Build from explicit maps.
    pub fn new(n: usize, maps: Vec<Vec<C64>>) -> Result<Self> {
        if maps.is_empty() {
            return Err(Error::Data("need at least one coil".into()));
        }
        for (c, m) in maps.iter().enumerate() {
            if m.len() != n * n {
                return Err(Error::Data(format!(
                    "coil {c} map has {} pixels, expected {}",
                    m.len(),
                    n * n
                )));
            }
        }
        Ok(Self { n, maps })
    }

    /// Synthetic birdcage-style array: `coils` smooth Gaussian-lobed
    /// profiles centered on a ring around the field of view, with a
    /// linear phase — the standard simulation stand-in for measured maps.
    pub fn synthetic(n: usize, coils: usize) -> Self {
        assert!(coils >= 1);
        let mut maps = Vec::with_capacity(coils);
        for c in 0..coils {
            let theta = c as f64 * 2.0 * core::f64::consts::PI / coils as f64;
            let cx = 0.85 * theta.cos();
            let cy = 0.85 * theta.sin();
            let mut m = Vec::with_capacity(n * n);
            for r in 0..n {
                let y = 2.0 * (r as f64 - (n / 2) as f64) / n as f64;
                for col in 0..n {
                    let x = 2.0 * (col as f64 - (n / 2) as f64) / n as f64;
                    let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                    let mag = (-d2 / 0.8).exp();
                    let phase = 0.7 * (x * theta.sin() - y * theta.cos());
                    m.push(C64::cis(phase).scale(mag));
                }
            }
            maps.push(m);
        }
        Self { n, maps }
    }

    /// Number of coils.
    pub fn coils(&self) -> usize {
        self.maps.len()
    }

    /// Image size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coil `c`'s map.
    pub fn map(&self, c: usize) -> &[C64] {
        &self.maps[c]
    }

    /// Sum-of-squares magnitude `Σ_c |S_c|²` per pixel (the SENSE normal
    /// operator's diagonal image-domain factor).
    pub fn sum_of_squares(&self) -> Vec<f64> {
        let mut sos = vec![0.0; self.n * self.n];
        for m in &self.maps {
            for (s, z) in sos.iter_mut().zip(m) {
                *s += z.norm_sqr();
            }
        }
        sos
    }
}

/// Simulate a multi-coil acquisition: `data[c] = F_Ω (S_c ⊙ image)`.
pub fn acquire(
    plan: &NufftPlan<f64, 2>,
    maps: &CoilMaps,
    image: &[C64],
    coords: &[[f64; 2]],
) -> Result<Vec<Vec<C64>>> {
    if image.len() != maps.n() * maps.n() {
        return Err(Error::Data("image size does not match coil maps".into()));
    }
    let mut out = Vec::with_capacity(maps.coils());
    for c in 0..maps.coils() {
        let weighted: Vec<C64> = image
            .iter()
            .zip(maps.map(c))
            .map(|(x, s)| *x * *s)
            .collect();
        out.push(plan.forward(&weighted, coords)?.samples);
    }
    Ok(out)
}

/// SENSE adjoint: `Σ_c conj(S_c) ⊙ Aᴴ data_c`.
pub fn adjoint(
    plan: &NufftPlan<f64, 2>,
    maps: &CoilMaps,
    data: &[Vec<C64>],
    coords: &[[f64; 2]],
    gridder: &dyn Gridder<f64, 2>,
) -> Result<Vec<C64>> {
    if data.len() != maps.coils() {
        return Err(Error::Data(format!(
            "{} coil data sets for {} coils",
            data.len(),
            maps.coils()
        )));
    }
    let n = maps.n();
    let mut acc = vec![C64::zeroed(); n * n];
    let batches: Vec<&[C64]> = data.iter().map(|d| d.as_slice()).collect();
    let outputs = plan.adjoint_batch(coords, &batches, gridder)?;
    for (c, out) in outputs.iter().enumerate() {
        for ((a, x), s) in acc.iter_mut().zip(&out.image).zip(maps.map(c)) {
            *a += *x * s.conj();
        }
    }
    Ok(acc)
}

/// SENSE adjoint over a planned trajectory: identical math to
/// [`adjoint`], but the per-sample window decomposition is cached in
/// `traj` and every coil streams through the persistent worker pool
/// ([`NufftPlan::adjoint_batch_planned`]). Bitwise equal to
/// `adjoint(..., &SerialGridder)` coil by coil.
pub fn adjoint_planned(
    plan: &NufftPlan<f64, 2>,
    maps: &CoilMaps,
    data: &[Vec<C64>],
    traj: &crate::nufft::PlannedTrajectory<2>,
) -> Result<Vec<C64>> {
    if data.len() != maps.coils() {
        return Err(Error::Data(format!(
            "{} coil data sets for {} coils",
            data.len(),
            maps.coils()
        )));
    }
    let n = maps.n();
    let mut acc = vec![C64::zeroed(); n * n];
    let batches: Vec<&[C64]> = data.iter().map(|d| d.as_slice()).collect();
    let outputs = plan.adjoint_batch_planned(traj, &batches)?;
    for (c, out) in outputs.iter().enumerate() {
        for ((a, x), s) in acc.iter_mut().zip(&out.image).zip(maps.map(c)) {
            *a += *x * s.conj();
        }
    }
    Ok(acc)
}

/// CG-SENSE: solve `(Σ_c S_cᴴ Aᴴ A S_c + λI) x = Σ_c S_cᴴ Aᴴ d_c` with
/// the gridded normal operator.
pub fn cg_sense(
    plan: &NufftPlan<f64, 2>,
    maps: &CoilMaps,
    data: &[Vec<C64>],
    coords: &[[f64; 2]],
    gridder: &dyn Gridder<f64, 2>,
    opts: &CgOptions,
) -> Result<CgOutput> {
    cg_sense_with(
        plan,
        maps,
        data,
        coords,
        gridder,
        opts,
        NormalOpKind::Gridded,
    )
}

/// CG-SENSE with an explicit normal-operator selection — the same
/// [`NormalOpKind`] seam as [`crate::recon::cg_reconstruct_with`].
///
/// With [`NormalOpKind::Toeplitz`] one shared [`ToeplitzOperator`] is
/// built up front (a single gridding pass at `2N`) and each CG iteration
/// applies it to every coil-weighted image through
/// [`ToeplitzOperator::apply_batch`] — zero gridding in the hot loop. A
/// degradable build failure falls back to the gridded closure under the
/// engine's serial-fallback policy.
pub fn cg_sense_with(
    plan: &NufftPlan<f64, 2>,
    maps: &CoilMaps,
    data: &[Vec<C64>],
    coords: &[[f64; 2]],
    gridder: &dyn Gridder<f64, 2>,
    opts: &CgOptions,
    kind: NormalOpKind,
) -> Result<CgOutput> {
    let _span = telemetry::span!("recon.cg_sense", {
        coils: maps.coils(),
        m: coords.len(),
        max_iterations: opts.max_iterations
    });
    let rhs = adjoint(plan, maps, data, coords, gridder)?;
    let toeplitz = match kind {
        NormalOpKind::Gridded => None,
        NormalOpKind::Toeplitz => {
            ToeplitzOperator::<2>::build_degradable(plan.config(), coords, &[], gridder, None)?
        }
    };
    if let Some(top) = toeplitz {
        let normal = |x: &[C64]| -> Result<Vec<C64>> {
            let n = maps.n();
            // Cooperative budget check per application: the whole batch
            // is two FFTs per coil, far cheaper than the gridded path's
            // per-coil NuFFT pair, so one check up front suffices.
            if opts.budget.exhausted() {
                return Err(Error::Budget(
                    "run budget exhausted before the Toeplitz normal operator".into(),
                ));
            }
            let weighted: Vec<Vec<C64>> = (0..maps.coils())
                .map(|c| x.iter().zip(maps.map(c)).map(|(v, s)| *v * *s).collect())
                .collect();
            let refs: Vec<&[C64]> = weighted.iter().map(|w| w.as_slice()).collect();
            let back = top.apply_batch(&refs)?;
            let mut acc = vec![C64::zeroed(); n * n];
            for (c, b) in back.iter().enumerate() {
                for ((a, v), s) in acc.iter_mut().zip(b).zip(maps.map(c)) {
                    *a += *v * s.conj();
                }
            }
            Ok(acc)
        };
        return crate::recon::cg_loop(normal, &rhs, opts);
    }
    let normal = |x: &[C64]| -> Result<Vec<C64>> {
        let n = maps.n();
        let mut acc = vec![C64::zeroed(); n * n];
        for c in 0..maps.coils() {
            // Cooperative budget check between per-coil chunks: each coil
            // costs a forward + adjoint NuFFT, the unit of work worth
            // abandoning mid-iteration. `cg_loop` converts this into a
            // best-iterate return once an iterate exists.
            if opts.budget.exhausted() {
                return Err(Error::Budget(format!(
                    "run budget exhausted before coil {c} of the normal operator"
                )));
            }
            let weighted: Vec<C64> = x.iter().zip(maps.map(c)).map(|(v, s)| *v * *s).collect();
            let fwd = plan.forward(&weighted, coords)?.samples;
            let back = plan.adjoint(coords, &fwd, gridder)?.image;
            for ((a, b), s) in acc.iter_mut().zip(&back).zip(maps.map(c)) {
                *a += *b * s.conj();
            }
        }
        Ok(acc)
    };
    // Shared hardened CG loop (the operator shape differs from
    // recon::NormalOp, so it enters as a closure).
    crate::recon::cg_loop(normal, &rhs, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NufftConfig;
    use crate::gridding::SerialGridder;
    use crate::metrics::rel_l2;
    use crate::phantom::Phantom2d;
    use crate::traj;

    #[test]
    fn synthetic_maps_are_smooth_and_cover_fov() {
        let maps = CoilMaps::synthetic(32, 8);
        assert_eq!(maps.coils(), 8);
        let sos = maps.sum_of_squares();
        // Coverage: every pixel sees some coil.
        let min = sos.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > 1e-3, "coverage hole: min SoS {min}");
        // Smoothness: neighboring pixels differ by < 8 % of the peak.
        for r in 0..31 {
            for c in 0..31 {
                let a = maps.map(0)[r * 32 + c].abs();
                let b = maps.map(0)[r * 32 + c + 1].abs();
                assert!((a - b).abs() <= 0.08, "jump {} at ({r},{c})", (a - b).abs());
            }
        }
    }

    #[test]
    fn adjoint_consistency_multi_coil() {
        // ⟨A x, d⟩ = ⟨x, Aᴴ d⟩ summed over coils.
        let n = 16;
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let maps = CoilMaps::synthetic(n, 4);
        let coords = traj::random_nd::<2>(120, 5);
        let x: Vec<C64> = (0..n * n)
            .map(|i| C64::new((i as f64 * 0.23).sin(), (i as f64 * 0.71).cos()))
            .collect();
        let d: Vec<Vec<C64>> = (0..4)
            .map(|c| {
                (0..120)
                    .map(|i| C64::new((i + c) as f64 * 0.01, 0.5 - c as f64 * 0.1))
                    .collect()
            })
            .collect();
        let ax = acquire(&plan, &maps, &x, &coords).unwrap();
        let ahd = adjoint(&plan, &maps, &d, &coords, &SerialGridder).unwrap();
        let lhs: C64 = ax
            .iter()
            .zip(&d)
            .flat_map(|(a, b)| a.iter().zip(b).map(|(u, v)| *u * v.conj()))
            .sum();
        let rhs: C64 = x.iter().zip(&ahd).map(|(u, v)| *u * v.conj()).sum();
        assert!(
            (lhs - rhs).abs() < 1e-4 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn cg_sense_recovers_undersampled_phantom() {
        // 8 coils let CG-SENSE reconstruct from 2.5× undersampled radial
        // data far better than the single-coil adjoint.
        let n = 32;
        let phantom = Phantom2d::shepp_logan();
        let truth = phantom.rasterize_aa(n, 4);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let maps = CoilMaps::synthetic(n, 8);
        let mut coords = traj::radial_2d(20, 64, true); // 2.5× undersampled
        traj::shuffle(&mut coords, 8);
        let data = acquire(&plan, &maps, &truth, &coords).unwrap();
        let out = cg_sense(
            &plan,
            &maps,
            &data,
            &coords,
            &SerialGridder,
            &CgOptions {
                max_iterations: 25,
                tolerance: 1e-9,
                lambda: 1e-4,
                budget: Default::default(),
            },
        )
        .unwrap();
        // Normalize against SoS weighting before comparing.
        let sos = maps.sum_of_squares();
        let recon: Vec<C64> = out
            .image
            .iter()
            .zip(&sos)
            .map(|(z, &s)| if s > 1e-6 { *z } else { C64::zeroed() })
            .collect();
        let norm = |v: &[C64]| -> Vec<C64> {
            let p = v.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1e-30);
            v.iter().map(|z| z.unscale(p)).collect()
        };
        let err_cg = rel_l2(&norm(&recon), &norm(&truth));
        // Single-coil-style direct adjoint for comparison.
        let direct = adjoint(&plan, &maps, &data, &coords, &SerialGridder).unwrap();
        let err_direct = rel_l2(&norm(&direct), &norm(&truth));
        assert!(
            err_cg < 0.6 * err_direct,
            "CG-SENSE {err_cg} should beat direct adjoint {err_direct}"
        );
        assert!(err_cg < 0.25, "CG-SENSE error {err_cg}");
    }

    #[test]
    fn planned_sense_adjoint_is_bitwise_serial() {
        let n = 16;
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let maps = CoilMaps::synthetic(n, 4);
        let coords = traj::random_nd::<2>(60, 9);
        let data: Vec<Vec<C64>> = (0..4)
            .map(|c| {
                (0..60)
                    .map(|i| C64::new((i * (c + 1)) as f64 * 0.013, 0.4 - c as f64 * 0.09))
                    .collect()
            })
            .collect();
        let reference = adjoint(&plan, &maps, &data, &coords, &SerialGridder).unwrap();
        let traj = plan.plan_trajectory(&coords).unwrap();
        let planned = adjoint_planned(&plan, &maps, &data, &traj).unwrap();
        for (x, y) in planned.iter().zip(&reference) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        // Coil-count mismatch rejected.
        assert!(adjoint_planned(&plan, &maps, &data[..2], &traj).is_err());
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let n = 16;
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let maps = CoilMaps::synthetic(n, 2);
        let coords = traj::random_nd::<2>(10, 1);
        let bad_image = vec![C64::zeroed(); 10];
        assert!(acquire(&plan, &maps, &bad_image, &coords).is_err());
        let one_coil_data = vec![vec![C64::zeroed(); 10]];
        assert!(adjoint(&plan, &maps, &one_coil_data, &coords, &SerialGridder).is_err());
        assert!(CoilMaps::new(4, vec![]).is_err());
        assert!(CoilMaps::new(4, vec![vec![C64::zeroed(); 5]]).is_err());
    }
}
