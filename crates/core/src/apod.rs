//! Apodization (amplitude-weighting) correction.
//!
//! Gridding convolves the true spectrum with the interpolation kernel, so
//! after the FFT the image is multiplied by the kernel's Fourier transform
//! `φ̂`. Step (3) of the adjoint NuFFT divides it back out
//! (*de-apodization*); step (1) of the forward NuFFT divides before the
//! FFT (*pre-apodization*). The correction is separable: one factor per
//! dimension, evaluated at frequency `k/G` for image index `k ∈ [−N/2, N/2)`.

use crate::config::NufftConfig;
use jigsaw_num::{Complex, Float};

/// Per-dimension de-apodization factors `1/φ̂(k/G)` for image indices
/// `i ∈ [0, N)` (so `k = i − N/2`).
#[derive(Debug, Clone)]
pub struct Apodization {
    n: usize,
    factors: Vec<f64>,
}

impl Apodization {
    /// Precompute the factors for a configuration.
    pub fn new(cfg: &NufftConfig) -> Self {
        let n = cfg.n;
        let g = cfg.grid_size() as f64;
        let kernel = cfg.resolved_kernel();
        let factors = (0..n)
            .map(|i| {
                let k = i as f64 - (n / 2) as f64;
                let ft = kernel.ft(k / g, cfg.width);
                assert!(
                    ft.abs() > 1e-12,
                    "kernel transform vanishes at k = {k}; \
                     widen the kernel or increase oversampling"
                );
                1.0 / ft
            })
            .collect();
        Self { n, factors }
    }

    /// Image size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The factor for image index `i` (0-based; `k = i − N/2`).
    #[inline]
    pub fn factor(&self, i: usize) -> f64 {
        self.factors[i]
    }

    /// Apply the separable correction in place to a row-major `[N; D]`
    /// image.
    pub fn apply<T: Float, const D: usize>(&self, image: &mut [Complex<T>]) {
        assert_eq!(image.len(), self.n.pow(D as u32));
        let n = self.n;
        for (flat, z) in image.iter_mut().enumerate() {
            let mut rem = flat;
            let mut f = 1.0;
            for _ in 0..D {
                f *= self.factors[rem % n];
                rem /= n;
            }
            *z = z.scale(T::from_f64(f));
        }
    }

    /// Dynamic range of the correction `max/min` — a diagnostic: large
    /// values mean the kernel rolls off steeply inside the field of view
    /// and the NuFFT will amplify edge noise.
    pub fn dynamic_range(&self) -> f64 {
        let max = self.factors.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.factors.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_num::C64;

    #[test]
    fn factors_are_symmetric_and_positive() {
        let cfg = NufftConfig::with_n(64);
        let a = Apodization::new(&cfg);
        for i in 0..64 {
            assert!(a.factor(i) > 0.0);
        }
        // φ̂ is even, so factors are symmetric about N/2 (with the usual
        // one-sided offset for even N).
        for i in 1..32 {
            assert!(
                (a.factor(32 - i) - a.factor(32 + i)).abs() < 1e-9 * a.factor(32),
                "i={i}"
            );
        }
    }

    #[test]
    fn center_factor_is_smallest() {
        // φ̂ peaks at DC, so 1/φ̂ is minimal at the image center.
        let cfg = NufftConfig::with_n(128);
        let a = Apodization::new(&cfg);
        let center = a.factor(64);
        for i in 0..128 {
            assert!(a.factor(i) >= center - 1e-12);
        }
    }

    #[test]
    fn apply_2d_is_separable_product() {
        let cfg = NufftConfig::with_n(8);
        let a = Apodization::new(&cfg);
        let mut img = vec![C64::one(); 64];
        a.apply::<f64, 2>(&mut img);
        for r in 0..8 {
            for c in 0..8 {
                let want = a.factor(r) * a.factor(c);
                assert!((img[r * 8 + c].re - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dynamic_range_grows_with_narrower_kernel() {
        let mut wide = NufftConfig::with_n(128);
        wide.width = 6;
        let mut narrow = NufftConfig::with_n(128);
        narrow.width = 2;
        let dr_wide = Apodization::new(&wide).dynamic_range();
        let dr_narrow = Apodization::new(&narrow).dynamic_range();
        assert!(
            dr_wide > dr_narrow,
            "wider kernel → steeper rolloff: {dr_wide} vs {dr_narrow}"
        );
    }
}
