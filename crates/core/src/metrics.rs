//! Image/signal quality metrics.
//!
//! The paper verifies image quality with the normalized root-mean-square
//! difference (NRMSD) between a reconstruction and the double-precision
//! reference (§VI-C, Fig. 9): 0.047 % for 32-bit floating point and
//! 0.012 % for JIGSAW's 32-bit fixed point.

use jigsaw_num::{Complex, Float};

/// Root-mean-square of `|a − b|` over complex buffers.
pub fn rms_diff<T: Float>(a: &[Complex<T>], b: &[Complex<T>]) -> f64 {
    assert_eq!(a.len(), b.len(), "buffers must have equal length");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x.to_c64() - y.to_c64()).norm_sqr())
        .sum();
    (sum / a.len() as f64).sqrt()
}

/// Normalized root-mean-square difference in **percent**, normalized by
/// the magnitude range of the reference (the convention matching the
/// paper's sub-0.05 % figures): `100 · rms(a − ref) / (max|ref| − min|ref|)`.
pub fn nrmsd_percent<T: Float>(test: &[Complex<T>], reference: &[Complex<T>]) -> f64 {
    let rms = rms_diff(test, reference);
    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    for z in reference {
        let m = z.to_c64().abs();
        lo = lo.min(m);
        hi = hi.max(m);
    }
    let range = hi - lo;
    if range <= 0.0 {
        return if rms == 0.0 { 0.0 } else { f64::INFINITY };
    }
    100.0 * rms / range
}

/// Relative ℓ² error `‖a − ref‖₂ / ‖ref‖₂` (the usual NuFFT-accuracy
/// measure; used in the library's convergence tests).
pub fn rel_l2<T: Float>(test: &[Complex<T>], reference: &[Complex<T>]) -> f64 {
    assert_eq!(test.len(), reference.len());
    let num: f64 = test
        .iter()
        .zip(reference)
        .map(|(x, y)| (x.to_c64() - y.to_c64()).norm_sqr())
        .sum();
    let den: f64 = reference.iter().map(|z| z.to_c64().norm_sqr()).sum();
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / den).sqrt()
}

/// Maximum absolute component-wise error.
pub fn max_abs_err<T: Float>(test: &[Complex<T>], reference: &[Complex<T>]) -> f64 {
    assert_eq!(test.len(), reference.len());
    test.iter()
        .zip(reference)
        .map(|(x, y)| (x.to_c64() - y.to_c64()).abs())
        .fold(0.0, f64::max)
}

/// Peak signal-to-noise ratio in dB, with the reference's peak magnitude
/// as the signal level.
pub fn psnr_db<T: Float>(test: &[Complex<T>], reference: &[Complex<T>]) -> f64 {
    let rms = rms_diff(test, reference);
    let peak = reference
        .iter()
        .map(|z| z.to_c64().abs())
        .fold(0.0, f64::max);
    if rms == 0.0 {
        return f64::INFINITY;
    }
    20.0 * (peak / rms).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_num::C64;

    fn ramp(n: usize) -> Vec<C64> {
        (0..n).map(|i| C64::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn identical_buffers_have_zero_error() {
        let a = ramp(100);
        assert_eq!(rms_diff(&a, &a), 0.0);
        assert_eq!(nrmsd_percent(&a, &a), 0.0);
        assert_eq!(rel_l2(&a, &a), 0.0);
        assert_eq!(max_abs_err(&a, &a), 0.0);
        assert_eq!(psnr_db(&a, &a), f64::INFINITY);
    }

    #[test]
    fn known_rms() {
        let a = vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0)];
        let b = vec![C64::new(0.0, 0.0), C64::new(0.0, 0.0)];
        assert!((rms_diff(&a, &b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn nrmsd_normalizes_by_range() {
        // Reference magnitudes span [0, 99]; constant offset 1 → rms 1.
        let reference = ramp(100);
        let test: Vec<C64> = reference.iter().map(|z| *z + C64::new(0.0, 1.0)).collect();
        let v = nrmsd_percent(&test, &reference);
        // rms of |Δ| = 1 over range 99 → ~1.0101 %.
        assert!((v - 100.0 / 99.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn rel_l2_scale_invariant() {
        let reference = ramp(50);
        let test: Vec<C64> = reference.iter().map(|z| z.scale(1.01)).collect();
        assert!((rel_l2(&test, &reference) - 0.01).abs() < 1e-12);
        // Scaling both by 7 changes nothing.
        let r7: Vec<C64> = reference.iter().map(|z| z.scale(7.0)).collect();
        let t7: Vec<C64> = test.iter().map(|z| z.scale(7.0)).collect();
        assert!((rel_l2(&t7, &r7) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn degenerate_references() {
        let z = vec![C64::zeroed(); 4];
        assert_eq!(rel_l2(&z, &z), 0.0);
        let nonzero = vec![C64::one(); 4];
        assert_eq!(rel_l2(&nonzero, &z), f64::INFINITY);
        assert_eq!(nrmsd_percent(&nonzero, &z), f64::INFINITY);
    }

    #[test]
    fn psnr_known_value() {
        // Peak 10, rms error 1 → 20 dB.
        let reference: Vec<C64> = vec![C64::new(10.0, 0.0); 8];
        let test: Vec<C64> = vec![C64::new(9.0, 0.0); 8];
        assert!((psnr_db(&test, &reference) - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let a = ramp(3);
        let b = ramp(4);
        rms_diff(&a, &b);
    }
}
