//! NuFFT and gridding configuration.
//!
//! Mirrors the paper's parameter vocabulary (§II-§IV and Table I):
//!
//! * `N` — base uniform grid size per dimension,
//! * `σ` — grid oversampling factor (§II-B; default 2, Beatty σ ≤ 2),
//! * `W` — interpolation window width in oversampled grid units,
//! * `L` — *table* oversampling factor: number of LUT weights per grid
//!   unit (coordinate granularity is `1/L`),
//! * `T` — virtual tile dimension of the Slice-and-Dice decomposition.

use crate::kernel::KernelKind;
use crate::{Error, Result};

/// Parameters of a gridding operation onto the oversampled grid.
///
/// `GridParams` describes only the grid-side problem (what the gridding
/// engines need); [`NufftConfig`] wraps it with image-side information.
#[derive(Debug, Clone, PartialEq)]
pub struct GridParams {
    /// Oversampled grid size per dimension (`G = σN`).
    pub grid: usize,
    /// Interpolation window width `W` (grid units).
    pub width: usize,
    /// Table oversampling factor `L` (power of two).
    pub table_oversampling: usize,
    /// Virtual tile dimension `T` (Slice-and-Dice / JIGSAW).
    pub tile: usize,
    /// Interpolation kernel.
    pub kernel: KernelKind,
}

impl GridParams {
    /// Validate against the constraints shared by all engines and the
    /// JIGSAW hardware (Table I): `T | G`, `W ≤ T`, `L` a power of two.
    pub fn validate(&self) -> Result<()> {
        if self.grid == 0 {
            return Err(Error::Config("grid size must be positive".into()));
        }
        if self.width == 0 {
            return Err(Error::Config("window width must be positive".into()));
        }
        if self.tile == 0 || !self.tile.is_power_of_two() {
            return Err(Error::Config(format!(
                "tile dimension must be a positive power of two, got {}",
                self.tile
            )));
        }
        if !self.grid.is_multiple_of(self.tile) {
            return Err(Error::Config(format!(
                "tile dimension {} must divide grid size {}",
                self.tile, self.grid
            )));
        }
        if self.width > self.tile {
            return Err(Error::Config(format!(
                "window width {} must not exceed tile dimension {} \
                 (Slice-and-Dice requires W ≤ T so a sample affects at most \
                 one point per column)",
                self.width, self.tile
            )));
        }
        if !self.table_oversampling.is_power_of_two() {
            return Err(Error::Config(format!(
                "table oversampling factor must be a power of two, got {}",
                self.table_oversampling
            )));
        }
        Ok(())
    }

    /// Number of virtual tiles per dimension (`G/T`).
    pub fn tiles_per_dim(&self) -> usize {
        self.grid / self.tile
    }

    /// Number of stored LUT weights per dimension, exploiting kernel
    /// symmetry: `WL/2 + 1` (§IV "Weight Lookup").
    pub fn lut_len(&self) -> usize {
        self.width * self.table_oversampling / 2 + 1
    }
}

/// Full NuFFT problem configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NufftConfig {
    /// Base (image) grid size per dimension, `N`.
    pub n: usize,
    /// Grid oversampling factor `σ` (typically 1.25–2).
    pub sigma: f64,
    /// Interpolation window width `W`.
    pub width: usize,
    /// Table oversampling factor `L`.
    pub table_oversampling: usize,
    /// Virtual tile dimension `T`.
    pub tile: usize,
    /// Interpolation kernel. `KernelKind::Auto` selects Kaiser-Bessel with
    /// the Beatty-optimal shape parameter for (`W`, `σ`).
    pub kernel: KernelKind,
}

impl NufftConfig {
    /// A reasonable default configuration matching the paper's running
    /// example: σ = 2, W = 6, L = 32, T = 8, Beatty Kaiser-Bessel.
    pub fn with_n(n: usize) -> Self {
        Self {
            n,
            sigma: 2.0,
            width: 6,
            table_oversampling: 32,
            tile: 8,
            kernel: KernelKind::Auto,
        }
    }

    /// The oversampled grid size `G = round(σN)`, rounded up to the next
    /// multiple of the tile dimension.
    pub fn grid_size(&self) -> usize {
        let g = (self.sigma * self.n as f64).ceil() as usize;
        g.div_ceil(self.tile) * self.tile
    }

    /// The *effective* oversampling factor after grid rounding (`G/N`).
    pub fn effective_sigma(&self) -> f64 {
        self.grid_size() as f64 / self.n as f64
    }

    /// Resolve [`KernelKind::Auto`] into a concrete kernel for this
    /// configuration.
    pub fn resolved_kernel(&self) -> KernelKind {
        self.kernel.resolve(self.width, self.effective_sigma())
    }

    /// Grid-side parameter block for the gridding engines.
    pub fn grid_params(&self) -> GridParams {
        GridParams {
            grid: self.grid_size(),
            width: self.width,
            table_oversampling: self.table_oversampling,
            tile: self.tile,
            kernel: self.resolved_kernel(),
        }
    }

    /// Validate the full configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 {
            return Err(Error::Config("image size N must be positive".into()));
        }
        if !(1.0..=8.0).contains(&self.sigma) {
            return Err(Error::Config(format!(
                "oversampling factor σ = {} outside supported range [1, 8]",
                self.sigma
            )));
        }
        if self.grid_size() < self.n {
            return Err(Error::Config("oversampled grid smaller than image".into()));
        }
        self.grid_params().validate()
    }
}

/// Beatty et al.'s minimal-oversampling kernel width rule (§II-B, paper ref \[1\]):
/// given a target aliasing accuracy, a smaller σ requires a wider kernel.
/// This helper returns the Kaiser-Bessel width achieving roughly the same
/// aliasing error at oversampling `sigma` that width `w_ref` achieves at
/// σ = 2 (error scales as `exp(-πW√((σ−½)/σ − ¼))`; solve for W).
pub fn beatty_width(w_ref: usize, sigma: f64) -> usize {
    assert!(sigma > 1.0, "Beatty widening needs σ > 1");
    let decay = |s: f64| ((s - 0.5) / s - 0.25).max(1e-6).sqrt();
    let w = w_ref as f64 * decay(2.0) / decay(sigma);
    w.ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = NufftConfig::with_n(256);
        assert!(c.validate().is_ok());
        assert_eq!(c.grid_size(), 512);
        assert_eq!(c.effective_sigma(), 2.0);
    }

    #[test]
    fn grid_rounds_up_to_tile_multiple() {
        let mut c = NufftConfig::with_n(100);
        c.sigma = 1.5;
        // 150 → next multiple of 8 = 152.
        assert_eq!(c.grid_size(), 152);
        assert!(c.effective_sigma() > 1.5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_w_greater_than_t() {
        let mut c = NufftConfig::with_n(64);
        c.width = 10;
        assert!(matches!(c.validate(), Err(Error::Config(_))));
    }

    #[test]
    fn rejects_non_pow2_l() {
        let mut c = NufftConfig::with_n(64);
        c.table_oversampling = 24;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_non_pow2_tile() {
        let mut c = NufftConfig::with_n(64);
        c.tile = 6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_degenerate_sizes() {
        let c = NufftConfig::with_n(0);
        assert!(c.validate().is_err());
        let mut c2 = NufftConfig::with_n(64);
        c2.sigma = 0.5;
        assert!(c2.validate().is_err());
        let mut c3 = NufftConfig::with_n(64);
        c3.width = 0;
        assert!(c3.validate().is_err());
    }

    #[test]
    fn lut_len_matches_paper_capacity() {
        // Paper §IV: 256 stored weights support W = 8, L = 64.
        let p = GridParams {
            grid: 2048,
            width: 8,
            table_oversampling: 64,
            tile: 8,
            kernel: KernelKind::Auto,
        };
        assert_eq!(p.lut_len(), 257); // 256 symmetric weights + center
    }

    #[test]
    fn beatty_widens_kernel_at_lower_sigma() {
        let w2 = beatty_width(6, 2.0);
        assert_eq!(w2, 6); // reference point
        let w125 = beatty_width(6, 1.25);
        assert!(w125 > 6, "σ = 1.25 must need a wider kernel, got {w125}");
        let w15 = beatty_width(6, 1.5);
        assert!(w15 > w2 && w15 <= w125);
    }

    #[test]
    fn tiles_per_dim() {
        let p = NufftConfig::with_n(512).grid_params();
        assert_eq!(p.tiles_per_dim(), 128);
    }
}
