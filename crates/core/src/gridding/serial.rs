//! Serial input-driven gridding — the MIRT-style CPU baseline.
//!
//! "The simplest gridding implementation processes the randomly-ordered
//! non-uniform samples serially. Any uniform point lying within W/2
//! distance of the sample's coordinates is accumulated with a
//! distance-based contribution of the sample's magnitude" (§II-C).
//!
//! This engine is both the performance baseline (the denominator of every
//! speedup in Figs. 6–8) and the *quality* reference: run at `f64` it
//! defines the grid every other engine must reproduce.

use super::{sample_windows, scatter_rowmajor, validate_batch, Gridder};
use crate::config::GridParams;
use crate::decomp::Decomposer;
use crate::lut::KernelLut;
use crate::stats::GridStats;
use jigsaw_num::{Complex, Float};
use jigsaw_telemetry as telemetry;
use std::time::Instant;

/// The serial input-driven gridder.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialGridder;

impl<T: Float, const D: usize> Gridder<T, D> for SerialGridder {
    fn name(&self) -> &'static str {
        "serial (MIRT-style baseline)"
    }

    fn grid(
        &self,
        p: &GridParams,
        lut: &KernelLut,
        coords: &[[f64; D]],
        values: &[Complex<T>],
        out: &mut [Complex<T>],
    ) -> GridStats {
        if let Err(e) = validate_batch(p, coords, values, out) {
            panic!("invalid sample batch: {e}");
        }
        let _span = telemetry::span!("gridding.serial", { dim: D, m: coords.len() });
        let dec = Decomposer::new(p);
        let w = p.width;
        let start = Instant::now();
        for (c, &v) in coords.iter().zip(values) {
            let (wins, _) = sample_windows(&dec, lut, c);
            scatter_rowmajor(p.grid, w, &wins, v, out);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let stats = GridStats {
            samples: coords.len(),
            samples_processed: coords.len(),
            boundary_checks: 0, // input-driven: windows are computed, not searched
            kernel_accumulations: (coords.len() * w.pow(D as u32)) as u64,
            presort_seconds: 0.0,
            gridding_seconds: elapsed,
            fft_seconds: 0.0,
            apod_seconds: 0.0,
        };
        stats.mirror("serial");
        stats
    }
}

/// Serial gridder that evaluates the kernel *exactly* at the true
/// (unquantized) offsets, bypassing the LUT entirely.
///
/// LUT gridding rounds coordinates to the table granularity `1/L`, which
/// shifts each sample by up to `1/(2L)` of a grid cell — a phase error of
/// up to `π/(2σL)` at the image edge. `ExactGridder` has no such error,
/// making it the reference for separating kernel-approximation error from
/// table-quantization error (the `ablation_lut` experiment and the L-sweep
/// behind Fig. 9).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactGridder;

impl<T: Float, const D: usize> Gridder<T, D> for ExactGridder {
    fn name(&self) -> &'static str {
        "serial (exact weights, no LUT)"
    }

    fn grid(
        &self,
        p: &GridParams,
        lut: &KernelLut,
        coords: &[[f64; D]],
        values: &[Complex<T>],
        out: &mut [Complex<T>],
    ) -> GridStats {
        let _ = lut; // exact evaluation ignores the table
        if let Err(e) = validate_batch(p, coords, values, out) {
            panic!("invalid sample batch: {e}");
        }
        let _span = telemetry::span!("gridding.exact", { dim: D, m: coords.len() });
        let w = p.width;
        let g = p.grid as f64;
        let kernel = &p.kernel;
        let start = Instant::now();
        for (c, &v) in coords.iter().zip(values) {
            let mut wins = [super::DimWindow::default(); D];
            for d in 0..D {
                let u = c[d].rem_euclid(g);
                let base = (u + w as f64 / 2.0).floor();
                for j in 0..w {
                    let k = base - j as f64;
                    wins[d].idx[j] = k.rem_euclid(g) as u32;
                    wins[d].weight[j] = kernel.eval(u - k, w);
                }
            }
            scatter_rowmajor(p.grid, w, &wins, v, out);
        }
        let stats = GridStats {
            samples: coords.len(),
            samples_processed: coords.len(),
            boundary_checks: 0,
            kernel_accumulations: (coords.len() * w.pow(D as u32)) as u64,
            presort_seconds: 0.0,
            gridding_seconds: start.elapsed().as_secs_f64(),
            fft_seconds: 0.0,
            apod_seconds: 0.0,
        };
        stats.mirror("exact");
        stats
    }
}

/// Serial gridder with *linearly interpolated* LUT weights and
/// unquantized window placement — the software-library operating point
/// (MIRT/NFFT table mode). Same `O(1/L²)` weight error as
/// [`KernelLut::eval_offset_lerp`], no coordinate-quantization floor,
/// still far cheaper than on-the-fly kernel evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct LerpGridder;

impl<T: Float, const D: usize> Gridder<T, D> for LerpGridder {
    fn name(&self) -> &'static str {
        "serial (lerp LUT weights)"
    }

    fn grid(
        &self,
        p: &GridParams,
        lut: &KernelLut,
        coords: &[[f64; D]],
        values: &[Complex<T>],
        out: &mut [Complex<T>],
    ) -> GridStats {
        if let Err(e) = validate_batch(p, coords, values, out) {
            panic!("invalid sample batch: {e}");
        }
        let _span = telemetry::span!("gridding.lerp", { dim: D, m: coords.len() });
        let w = p.width;
        let g = p.grid as f64;
        let start = Instant::now();
        for (c, &v) in coords.iter().zip(values) {
            let mut wins = [super::DimWindow::default(); D];
            for d in 0..D {
                let u = c[d].rem_euclid(g);
                let base = (u + w as f64 / 2.0).floor();
                for j in 0..w {
                    let k = base - j as f64;
                    wins[d].idx[j] = k.rem_euclid(g) as u32;
                    wins[d].weight[j] = lut.eval_offset_lerp(u - k);
                }
            }
            scatter_rowmajor(p.grid, w, &wins, v, out);
        }
        let stats = GridStats {
            samples: coords.len(),
            samples_processed: coords.len(),
            boundary_checks: 0,
            kernel_accumulations: (coords.len() * w.pow(D as u32)) as u64,
            presort_seconds: 0.0,
            gridding_seconds: start.elapsed().as_secs_f64(),
            fft_seconds: 0.0,
            apod_seconds: 0.0,
        };
        stats.mirror("lerp");
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::testutil::*;
    use jigsaw_num::C64;

    #[test]
    fn lerp_gridder_beats_nearest_lut() {
        // Versus the exact-weight grid, lerp should be much closer than
        // the quantized-coordinate nearest-LUT engine.
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(150, 64.0, 23);
        let n = 64 * 64;
        let mut exact = vec![C64::zeroed(); n];
        ExactGridder.grid(&p, &lut, &coords, &values, &mut exact);
        let mut nearest = vec![C64::zeroed(); n];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut nearest);
        let mut lerp = vec![C64::zeroed(); n];
        LerpGridder.grid(&p, &lut, &coords, &values, &mut lerp);
        let e_nearest = crate::metrics::rel_l2(&nearest, &exact);
        let e_lerp = crate::metrics::rel_l2(&lerp, &exact);
        assert!(
            e_lerp < e_nearest / 20.0,
            "lerp {e_lerp} vs nearest {e_nearest}"
        );
    }

    #[test]
    fn exact_gridder_close_to_lut_gridder() {
        // With L = 32 the LUT grid differs from the exact grid only by
        // coordinate quantization (≤ 1/64 cell shifts).
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(100, 64.0, 17);
        let mut a = vec![C64::zeroed(); 64 * 64];
        let mut b = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut a);
        ExactGridder.grid(&p, &lut, &coords, &values, &mut b);
        let err = crate::metrics::rel_l2(&a, &b);
        assert!(err > 0.0, "LUT grid should differ slightly");
        assert!(err < 0.05, "but only slightly: {err}");
    }

    #[test]
    fn exact_gridder_matches_lut_on_quantized_coords() {
        // If coordinates are already multiples of 1/L, quantization is a
        // no-op and only LUT *weight* rounding remains (exact by
        // construction: LUT entries are exact kernel evaluations).
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let coords: Vec<[f64; 2]> = (0..50)
            .map(|i| {
                let q = |v: usize| (v % (64 * 32)) as f64 / 32.0;
                [q(i * 97 + 3), q(i * 53 + 11)]
            })
            .collect();
        let values: Vec<C64> = (0..50).map(|i| C64::new(i as f64, 1.0)).collect();
        let mut a = vec![C64::zeroed(); 64 * 64];
        let mut b = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut a);
        ExactGridder.grid(&p, &lut, &coords, &values, &mut b);
        let err = crate::metrics::max_abs_err(&a, &b);
        let scale: f64 = a.iter().map(|z| z.abs()).fold(0.0, f64::max);
        assert!(err < 1e-11 * scale.max(1.0), "err {err}");
    }

    #[test]
    fn impulse_at_grid_point_reproduces_kernel() {
        // A unit sample exactly on grid point (20, 30) scatters the kernel
        // cross-section: the weight at offset j − W/2 in each dim.
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let mut out = vec![C64::zeroed(); 64 * 64];
        let stats = SerialGridder.grid(&p, &lut, &[[20.0, 30.0]], &[C64::one()], &mut out);
        assert_eq!(stats.kernel_accumulations, 36);
        // Center point (20,30): base = 23, window j = 0..6 covers 23..18;
        // point 20 is j = 3 with offset (3 + 0) − 3 = 0 → peak weight 1².
        assert!((out[20 * 64 + 30].re - 1.0).abs() < 1e-12);
        // Symmetric neighbors have equal weights.
        assert!((out[19 * 64 + 30].re - out[21 * 64 + 30].re).abs() < 1e-12);
        assert!((out[20 * 64 + 29].re - out[20 * 64 + 31].re).abs() < 1e-12);
    }

    #[test]
    fn edge_sample_wraps_torus() {
        // A sample at (0.2, 0.2) must deposit mass on both sides of the
        // grid edge (Fig. 2: samples a, c, f wrap).
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let mut out = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &[[0.2, 0.2]], &[C64::one()], &mut out);
        let near: f64 = (0..4)
            .flat_map(|r| (0..4).map(move |c| (r, c)))
            .map(|(r, c)| out[r * 64 + c].re)
            .sum();
        let far: f64 = (61..64)
            .flat_map(|r| (61..64).map(move |c| (r, c)))
            .map(|(r, c)| out[r * 64 + c].re)
            .sum();
        assert!(near > 0.0, "mass near origin corner");
        assert!(far > 0.0, "wrapped mass in the opposite corner");
    }

    #[test]
    fn accumulation_is_additive() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(50, 64.0, 7);
        let mut once = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut once);
        // Same batch gridded twice into one buffer = 2× the single grid.
        let mut twice = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut twice);
        SerialGridder.grid(&p, &lut, &coords, &values, &mut twice);
        for (a, b) in once.iter().zip(&twice) {
            assert!((b.re - 2.0 * a.re).abs() < 1e-12);
            assert!((b.im - 2.0 * a.im).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_in_sample_values() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(30, 64.0, 3);
        let scaled: Vec<C64> = values.iter().map(|v| v.scale(2.5)).collect();
        let mut g1 = vec![C64::zeroed(); 64 * 64];
        let mut g2 = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut g1);
        SerialGridder.grid(&p, &lut, &coords, &scaled, &mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((b.re - 2.5 * a.re).abs() < 1e-10);
        }
    }

    #[test]
    fn three_dimensional_window() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let mut out = vec![C64::zeroed(); 64 * 64 * 64];
        let stats = SerialGridder.grid(&p, &lut, &[[32.0, 32.0, 32.0]], &[C64::one()], &mut out);
        assert_eq!(stats.kernel_accumulations, 216); // 6³
        assert!((out[32 * 64 * 64 + 32 * 64 + 32].re - 1.0).abs() < 1e-12);
        let total: f64 = out.iter().map(|z| z.re).sum();
        let wsum: f64 = (0..6)
            .map(|j| {
                let dec = crate::decomp::Decomposer::new(&p);
                let dd = dec.decompose(dec.quantize(32.0));
                lut.lookup(dec.window_point(&dd, j).1)
            })
            .sum();
        assert!((total - wsum.powi(3)).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "invalid sample batch")]
    fn rejects_nan_coordinate() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let mut out = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &[[f64::NAN, 0.0]], &[C64::one()], &mut out);
    }
}
