//! Slice-and-Dice gridding — the paper's contribution (§III).
//!
//! The oversampled grid is split into virtual tiles of side `T`; the tiles
//! are conceptually *stacked* into "dice", so each of the `T^d` relative
//! positions — a *column* — appears once per tile. A sample's coordinate
//! decomposes (div/mod `T`) into a tile coordinate and a relative
//! coordinate; a two-part boundary check (forward mod-`T` distance `< W`,
//! wrap iff `rel < p`) determines, per column, whether the sample affects
//! it and in which tile. Because `W ≤ T`, each sample touches **at most
//! one point per column**, so column owners never interact: no presort, no
//! duplicate processing, `M·T^d` checks total.
//!
//! Three execution modes mirror the paper's software variants:
//!
//! * [`SliceDiceMode::Serial`] — one worker plays all columns (reference).
//! * [`SliceDiceMode::ColumnParallel`] — the pure output-driven model:
//!   workers own disjoint column sets of the dice, scan the whole sample
//!   stream, and never synchronize (JIGSAW's structure in software).
//! * [`SliceDiceMode::BlockAtomic`] — the paper's *GPU* scheme: the sample
//!   stream is split across blocks, every block runs the column structure
//!   on its subset, and updates to the shared grid use atomic adds ("We
//!   use atomic addition instructions to ensure proper synchronization").
//! * [`SliceDiceMode::BlockReduce`] — same input split, but with private
//!   per-block grids merged deterministically at the end (an ablation on
//!   the atomic traffic).

use super::{validate_batch, worker_threads, Gridder};
use crate::config::GridParams;
use crate::decomp::{Decomposer, DimDecomp};
use crate::engine::{keys, ExecBackend, WorkerPool};
use crate::lut::KernelLut;
use crate::stats::GridStats;
use jigsaw_num::{Complex, Float};
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::{cancel, faultpoint};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

/// Samples between cooperative-cancellation checkpoints in the gridding
/// inner loops (power-of-two-minus-one mask). 1024 samples of window
/// accumulation cost tens of microseconds, so a cancelled job stops well
/// inside one chunk; the per-sample cost is one predictable mask test
/// (plus one relaxed load every 1024th sample — see
/// [`jigsaw_testkit::cancel::cancelled`]).
pub(crate) const CANCEL_CHECK_MASK: usize = 1023;

/// Execution strategy for [`SliceDiceGridder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SliceDiceMode {
    /// Single worker, dice-structured traversal.
    Serial,
    /// Output-driven: workers own disjoint dice columns (default).
    #[default]
    ColumnParallel,
    /// Input-driven blocks with atomic accumulation into the shared grid
    /// (the paper's GPU mapping). Non-deterministic accumulation order.
    BlockAtomic,
    /// Input-driven blocks with private grids and a deterministic merge.
    BlockReduce,
}

/// The Slice-and-Dice gridder.
#[derive(Debug, Clone, Copy, Default)]
pub struct SliceDiceGridder {
    /// Execution mode.
    pub mode: SliceDiceMode,
    /// Worker thread / block count (`None` = available parallelism).
    ///
    /// This controls the *partition* of work (and therefore, for the
    /// non-deterministic block modes, the reduction shape) — not how many
    /// OS threads exist. Under [`ExecBackend::Pooled`] the partition's
    /// jobs are multiplexed onto the persistent global pool.
    pub threads: Option<usize>,
    /// Execution backend: persistent worker pool (default) or legacy
    /// per-call scoped threads.
    pub backend: ExecBackend,
}

impl SliceDiceGridder {
    /// Convenience constructor.
    pub fn new(mode: SliceDiceMode) -> Self {
        Self {
            mode,
            threads: None,
            backend: ExecBackend::default(),
        }
    }

    /// Builder-style backend override.
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// Per-dimension select-unit precomputation for one sample: for each
/// pipeline index `p ∈ [0, T)`, whether it is affected, its kernel weight,
/// and the tile coordinate it writes.
struct DimSelect {
    weight: [f64; 16],
    tile: [u32; 16],
    affected: [bool; 16],
}

impl DimSelect {
    #[inline]
    fn compute(dec: &Decomposer, lut: &KernelLut, dd: &DimDecomp) -> Self {
        let t = dec.tile() as usize;
        let mut s = DimSelect {
            weight: [0.0; 16],
            tile: [0; 16],
            affected: [false; 16],
        };
        for p in 0..t {
            let dist = dec.forward_distance(dd.rel, p as u32);
            if dec.affects(dist) {
                s.affected[p] = true;
                s.weight[p] = lut.lookup(dec.lut_index(dist, dd.phi2));
                s.tile[p] = dec.tile_for_pipeline(dd, p as u32);
            }
        }
        s
    }
}

impl<T: AtomicFloat, const D: usize> Gridder<T, D> for SliceDiceGridder {
    fn name(&self) -> &'static str {
        match self.mode {
            SliceDiceMode::Serial => "slice-and-dice (serial)",
            SliceDiceMode::ColumnParallel => "slice-and-dice (column-parallel)",
            SliceDiceMode::BlockAtomic => "slice-and-dice (block-atomic GPU model)",
            SliceDiceMode::BlockReduce => "slice-and-dice (block-reduce)",
        }
    }

    fn grid(
        &self,
        p: &GridParams,
        lut: &KernelLut,
        coords: &[[f64; D]],
        values: &[Complex<T>],
        out: &mut [Complex<T>],
    ) -> GridStats {
        if let Err(e) = validate_batch(p, coords, values, out) {
            panic!("invalid sample batch: {e}");
        }
        let _span = telemetry::span!("gridding.slice_dice", {
            dim: D,
            m: coords.len(),
            tile: p.tile,
        });
        let b = self.backend;
        let stats = match self.mode {
            SliceDiceMode::Serial => grid_columns(p, lut, coords, values, out, 1, b),
            SliceDiceMode::ColumnParallel => {
                grid_columns(p, lut, coords, values, out, worker_threads(self.threads), b)
            }
            SliceDiceMode::BlockAtomic => {
                grid_block_atomic(p, lut, coords, values, out, worker_threads(self.threads), b)
            }
            SliceDiceMode::BlockReduce => {
                grid_block_reduce(p, lut, coords, values, out, worker_threads(self.threads), b)
            }
        };
        stats.mirror("slice_dice");
        stats
    }
}

/// One column-owner's job: scan the *full* sample stream and accumulate
/// into a private slab of `chunk.len() / col_len` dice columns starting
/// at global column `first_col`. Shared verbatim by the scoped and pooled
/// backends so their per-column arithmetic is identical instruction for
/// instruction — the bitwise-equality guarantee rests on this.
#[allow(clippy::too_many_arguments)]
fn columns_worker<T: Float, const D: usize>(
    dec: &Decomposer,
    lut: &KernelLut,
    coords: &[[f64; D]],
    values: &[Complex<T>],
    t: usize,
    tiles: usize,
    col_len: usize,
    first_col: usize,
    chunk: &mut [Complex<T>],
) -> (u64, u64) {
    let my_cols = chunk.len() / col_len;
    let mut n_checks = 0u64;
    let mut n_accums = 0u64;
    for (i, (c, &v)) in coords.iter().zip(values).enumerate() {
        if i & CANCEL_CHECK_MASK == 0 && cancel::cancelled() {
            // Cooperative cancellation: stop mid-stream. The partial
            // column slab is discarded by the budget owner; checkpoints
            // never panic (a panic would trigger the bitwise serial
            // *retry* and defeat the cancellation).
            return (n_checks, n_accums);
        }
        // Select-unit precomputation, once per sample per dim.
        let sel: [DimSelect; D] = core::array::from_fn(|d| {
            let dd = dec.decompose(dec.quantize(c[d]));
            DimSelect::compute(dec, lut, &dd)
        });
        n_checks += my_cols as u64;
        for (slot, col_buf) in chunk.chunks_mut(col_len).enumerate() {
            let col = first_col + slot;
            // Decode column → per-dim pipeline indices.
            let mut pidx = [0usize; D];
            let mut rem = col;
            for d in (0..D).rev() {
                pidx[d] = rem % t;
                rem /= t;
            }
            let mut wt = 1.0;
            let mut addr = 0usize;
            let mut hit = true;
            for d in 0..D {
                let sd = &sel[d];
                let pi = pidx[d];
                if !sd.affected[pi] {
                    hit = false;
                    break;
                }
                wt *= sd.weight[pi];
                addr = addr * tiles + sd.tile[pi] as usize;
            }
            if hit {
                col_buf[addr] += v.scale(T::from_f64(wt));
                n_accums += 1;
            }
        }
    }
    (n_checks, n_accums)
}

/// Merge one worker's dice chunk (columns `first_col..`) into the
/// row-major output. Every (column, tile-address) pair maps to a unique
/// grid index, so chunks can merge in any order without changing a single
/// bit of the result.
fn merge_column_chunk<T: Float, const D: usize>(
    g: usize,
    t: usize,
    tiles: usize,
    col_len: usize,
    first_col: usize,
    chunk: &[Complex<T>],
    out: &mut [Complex<T>],
) {
    for (slot, col_buf) in chunk.chunks(col_len).enumerate() {
        let col = first_col + slot;
        let mut pidx = [0usize; D];
        let mut rem = col;
        for d in (0..D).rev() {
            pidx[d] = rem % t;
            rem /= t;
        }
        for (addr, &v) in col_buf.iter().enumerate() {
            let mut q = [0usize; D];
            let mut rem = addr;
            for d in (0..D).rev() {
                q[d] = rem % tiles;
                rem /= tiles;
            }
            let mut idx = 0usize;
            for d in 0..D {
                idx = idx * g + q[d] * t + pidx[d];
            }
            out[idx] += v;
        }
    }
}

/// Column-owned execution: split the `T^d` dice columns across workers;
/// every worker scans the full sample stream and accumulates into its
/// private columns. Deterministic (per-point order = stream order) for
/// *both* backends and any thread count: the partition only decides which
/// worker owns a column, never the order of accumulations within it.
fn grid_columns<T: Float, const D: usize>(
    p: &GridParams,
    lut: &KernelLut,
    coords: &[[f64; D]],
    values: &[Complex<T>],
    out: &mut [Complex<T>],
    nthreads: usize,
    backend: ExecBackend,
) -> GridStats {
    let dec = Decomposer::new(p);
    let g = p.grid;
    let t = p.tile;
    let tiles = p.tiles_per_dim();
    let ncols = t.pow(D as u32);
    let col_len = tiles.pow(D as u32);
    let nthreads = nthreads.min(ncols).max(1);
    let cols_per_thread = ncols.div_ceil(nthreads);
    let njobs = ncols.div_ceil(cols_per_thread);

    let start = Instant::now();
    let mut total_checks = 0u64;
    let mut total_accums = 0u64;
    match backend {
        ExecBackend::Scoped => {
            // Legacy path: per-call allocation + scoped spawn/join.
            let mut dice = vec![Complex::<T>::zeroed(); ncols * col_len];
            let mut checks = vec![0u64; njobs];
            let mut accums = vec![0u64; njobs];
            {
                let dec = &dec;
                std::thread::scope(|s| {
                    for ((tid, chunk), (chk, acc)) in dice
                        .chunks_mut(cols_per_thread * col_len)
                        .enumerate()
                        .zip(checks.iter_mut().zip(accums.iter_mut()))
                    {
                        let first_col = tid * cols_per_thread;
                        s.spawn(move || {
                            let (c, a) = columns_worker(
                                dec, lut, coords, values, t, tiles, col_len, first_col, chunk,
                            );
                            *chk = c;
                            *acc = a;
                        });
                    }
                });
            }
            for (tid, chunk) in dice.chunks(cols_per_thread * col_len).enumerate() {
                merge_column_chunk::<T, D>(g, t, tiles, col_len, tid * cols_per_thread, chunk, out);
            }
            total_checks = checks.iter().sum();
            total_accums = accums.iter().sum();
        }
        ExecBackend::Pooled => {
            // Persistent path: jobs run on the global pool, column slabs
            // come from (and return to) the owning worker's scratch arena.
            let pool = WorkerPool::global();
            let coords_shared: Arc<[[f64; D]]> = coords.into();
            let values_shared: Arc<[Complex<T>]> = values.into();
            let lut_shared = lut.clone();
            let (tx, rx) = channel();
            let run = pool.try_run(njobs, move |tid, arena| {
                faultpoint!(crate::fault::GRIDDING_CHUNK);
                let first_col = tid * cols_per_thread;
                let my_cols = cols_per_thread.min(ncols - first_col);
                let mut chunk = arena.take_vec(
                    keys::DICE_COLUMNS,
                    my_cols * col_len,
                    Complex::<T>::zeroed(),
                );
                let (chk, acc) = columns_worker(
                    &dec,
                    &lut_shared,
                    &coords_shared,
                    &values_shared,
                    t,
                    tiles,
                    col_len,
                    first_col,
                    &mut chunk,
                );
                let _ = tx.send((tid, chunk, chk, acc));
            });
            if run.is_err() {
                // Contained job panic. The trait surface is infallible and
                // column chunks merge only in the drain below (never
                // reached), so `out` is pristine: redo all columns in one
                // serial pass — bitwise identical, the partition only
                // decides ownership.
                crate::engine::note_serial_fallback("gridding.slice_dice.columns");
                drop(rx);
                let dec = Decomposer::new(p);
                let mut dice = vec![Complex::<T>::zeroed(); ncols * col_len];
                let (chk, acc) =
                    columns_worker(&dec, lut, coords, values, t, tiles, col_len, 0, &mut dice);
                merge_column_chunk::<T, D>(g, t, tiles, col_len, 0, &dice, out);
                total_checks = chk;
                total_accums = acc;
            } else {
                for _ in 0..njobs {
                    let Ok((tid, chunk, chk, acc)) = rx.recv() else {
                        unreachable!("pooled column job result missing after clean run");
                    };
                    merge_column_chunk::<T, D>(
                        g,
                        t,
                        tiles,
                        col_len,
                        tid * cols_per_thread,
                        &chunk,
                        out,
                    );
                    pool.restore(tid, keys::DICE_COLUMNS, chunk);
                    total_checks += chk;
                    total_accums += acc;
                }
            }
        }
    }
    GridStats {
        samples: coords.len(),
        samples_processed: coords.len(),
        boundary_checks: total_checks,
        kernel_accumulations: total_accums,
        presort_seconds: 0.0,
        gridding_seconds: start.elapsed().as_secs_f64(),
        fft_seconds: 0.0,
        apod_seconds: 0.0,
    }
}

/// A shared grid of atomically updatable floats (split re/im planes).
///
/// Models the GPU `atomicAdd` the paper's Slice-and-Dice kernel uses when
/// multiple blocks write the shared output grid. Implemented with a
/// compare-exchange loop on the bit pattern — no unsafe code.
/// Atomic `f32` complex grid (re/im planes of `AtomicU32`).
pub struct AtomicGrid32 {
    re: Vec<AtomicU32>,
    im: Vec<AtomicU32>,
}

/// Atomic `f64` complex grid (re/im planes of `AtomicU64`).
pub struct AtomicGrid64 {
    re: Vec<AtomicU64>,
    im: Vec<AtomicU64>,
}

/// Floats that support lock-free atomic accumulation via bit-pattern CAS.
pub trait AtomicFloat: Float {
    /// The shared-grid representation for this precision (`Send + Sync`
    /// so the pooled backend can share it via `Arc` across `'static`
    /// jobs).
    type Grid: Send + Sync + 'static;
    /// Allocate a zeroed atomic grid of `n` complex points.
    fn alloc_grid(n: usize) -> Self::Grid;
    /// `grid[idx] += v`, atomically per component.
    fn fetch_add(grid: &Self::Grid, idx: usize, v: Complex<Self>);
    /// Drain the grid into a complex buffer (`out[i] += grid[i]`).
    fn drain(grid: &Self::Grid, out: &mut [Complex<Self>]);
}

impl AtomicFloat for f32 {
    type Grid = AtomicGrid32;
    fn alloc_grid(n: usize) -> AtomicGrid32 {
        AtomicGrid32 {
            re: (0..n).map(|_| AtomicU32::new(0f32.to_bits())).collect(),
            im: (0..n).map(|_| AtomicU32::new(0f32.to_bits())).collect(),
        }
    }
    #[inline]
    fn fetch_add(grid: &AtomicGrid32, idx: usize, v: Complex<f32>) {
        cas_add_f32(&grid.re[idx], v.re);
        cas_add_f32(&grid.im[idx], v.im);
    }
    fn drain(grid: &AtomicGrid32, out: &mut [Complex<f32>]) {
        for (i, o) in out.iter_mut().enumerate() {
            o.re += f32::from_bits(grid.re[i].load(Ordering::Relaxed));
            o.im += f32::from_bits(grid.im[i].load(Ordering::Relaxed));
        }
    }
}

impl AtomicFloat for f64 {
    type Grid = AtomicGrid64;
    fn alloc_grid(n: usize) -> AtomicGrid64 {
        AtomicGrid64 {
            re: (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
            im: (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
        }
    }
    #[inline]
    fn fetch_add(grid: &AtomicGrid64, idx: usize, v: Complex<f64>) {
        cas_add_f64(&grid.re[idx], v.re);
        cas_add_f64(&grid.im[idx], v.im);
    }
    fn drain(grid: &AtomicGrid64, out: &mut [Complex<f64>]) {
        for (i, o) in out.iter_mut().enumerate() {
            o.re += f64::from_bits(grid.re[i].load(Ordering::Relaxed));
            o.im += f64::from_bits(grid.im[i].load(Ordering::Relaxed));
        }
    }
}

#[inline]
fn cas_add_f32(atom: &AtomicU32, v: f32) {
    if v == 0.0 {
        return;
    }
    let mut cur = atom.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) + v).to_bits();
        match atom.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[inline]
fn cas_add_f64(atom: &AtomicU64, v: f64) {
    if v == 0.0 {
        return;
    }
    let mut cur = atom.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match atom.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Per-sample dice-structured scatter used by the block modes: enumerate
/// the `W^d` affected (pipeline, tile) pairs straight from the select-unit
/// view and emit (row-major index, weight) pairs.
#[inline]
fn for_each_window_point<const D: usize>(
    dec: &Decomposer,
    lut: &KernelLut,
    coord: &[f64; D],
    g: usize,
    t: usize,
    mut f: impl FnMut(usize, f64),
) -> u64 {
    let w = dec.width() as usize;
    let dds: [DimDecomp; D] = core::array::from_fn(|d| dec.decompose(dec.quantize(coord[d])));
    // Per dim: the W affected pipelines, their weights and tiles.
    let mut pidx = [[0u32; 16]; D];
    let mut wts = [[0.0f64; 16]; D];
    let mut tls = [[0u32; 16]; D];
    for d in 0..D {
        for j in 0..w {
            let dist = j as u32;
            // Affected pipeline at forward distance j: p = (rel − j) mod T.
            let p = (dds[d].rel + t as u32 - dist) % t as u32;
            pidx[d][j] = p;
            wts[d][j] = lut.lookup(dec.lut_index(dist, dds[d].phi2));
            tls[d][j] = dec.tile_for_pipeline(&dds[d], p);
        }
    }
    let mut count = 0u64;
    let mut sel = [0usize; D];
    loop {
        let mut idx = 0usize;
        let mut wt = 1.0;
        for d in 0..D {
            idx = idx * g + tls[d][sel[d]] as usize * t + pidx[d][sel[d]] as usize;
            wt *= wts[d][sel[d]];
        }
        f(idx, wt);
        count += 1;
        let mut d = D;
        loop {
            if d == 0 {
                return count;
            }
            d -= 1;
            sel[d] += 1;
            if sel[d] < w {
                break;
            }
            sel[d] = 0;
        }
    }
}

/// One input-block's job for the atomic mode: grid samples `lo..hi` into
/// the shared atomic grid. Shared by both backends.
#[allow(clippy::too_many_arguments)]
fn block_atomic_worker<T: AtomicFloat, const D: usize>(
    dec: &Decomposer,
    lut: &KernelLut,
    coords: &[[f64; D]],
    values: &[Complex<T>],
    g: usize,
    t: usize,
    lo: usize,
    hi: usize,
    shared: &T::Grid,
) -> u64 {
    let mut n = 0u64;
    for i in lo..hi {
        if (i - lo) & CANCEL_CHECK_MASK == 0 && cancel::cancelled() {
            return n; // cancelled: partial grid discarded by the owner
        }
        let v = values[i];
        n += for_each_window_point(dec, lut, &coords[i], g, t, |idx, wt| {
            T::fetch_add(shared, idx, v.scale(T::from_f64(wt)));
        });
    }
    n
}

/// Block-parallel execution with atomic accumulation (the GPU scheme).
fn grid_block_atomic<T: AtomicFloat, const D: usize>(
    p: &GridParams,
    lut: &KernelLut,
    coords: &[[f64; D]],
    values: &[Complex<T>],
    out: &mut [Complex<T>],
    nthreads: usize,
    backend: ExecBackend,
) -> GridStats {
    let dec = Decomposer::new(p);
    let npoints = p.grid.pow(D as u32);
    let g = p.grid;
    let t = p.tile;
    let start = Instant::now();
    let m = coords.len();
    let nthreads = nthreads.min(m.max(1)).max(1);
    let chunk = m.div_ceil(nthreads);
    let total_accums: u64;
    let mut shared = Arc::new(T::alloc_grid(npoints));
    match backend {
        ExecBackend::Scoped => {
            let mut accums = vec![0u64; nthreads];
            {
                let dec = &dec;
                let shared = &*shared;
                std::thread::scope(|s| {
                    for (tid, acc) in accums.iter_mut().enumerate() {
                        let lo = tid * chunk;
                        let hi = ((tid + 1) * chunk).min(m);
                        if lo >= hi {
                            continue;
                        }
                        s.spawn(move || {
                            *acc = block_atomic_worker::<T, D>(
                                dec, lut, coords, values, g, t, lo, hi, shared,
                            );
                        });
                    }
                });
            }
            total_accums = accums.iter().sum();
        }
        ExecBackend::Pooled => {
            let pool = WorkerPool::global();
            let coords_shared: Arc<[[f64; D]]> = coords.into();
            let values_shared: Arc<[Complex<T>]> = values.into();
            let lut_shared = lut.clone();
            let shared_jobs = Arc::clone(&shared);
            let (tx, rx) = channel();
            let run = pool.try_run(nthreads, move |tid, _arena| {
                faultpoint!(crate::fault::GRIDDING_CHUNK);
                let lo = tid * chunk;
                let hi = ((tid + 1) * chunk).min(m);
                let n = if lo < hi {
                    block_atomic_worker::<T, D>(
                        &dec,
                        &lut_shared,
                        &coords_shared,
                        &values_shared,
                        g,
                        t,
                        lo,
                        hi,
                        &shared_jobs,
                    )
                } else {
                    0
                };
                let _ = tx.send(n);
            });
            if run.is_err() {
                // Contained job panic. Surviving jobs accumulated into the
                // shared atomic grid, so discard it wholesale and redo all
                // blocks in one serial pass over a fresh grid.
                crate::engine::note_serial_fallback("gridding.slice_dice.atomic");
                drop(rx);
                shared = Arc::new(T::alloc_grid(npoints));
                let dec = Decomposer::new(p);
                total_accums =
                    block_atomic_worker::<T, D>(&dec, lut, coords, values, g, t, 0, m, &shared);
            } else {
                total_accums = (0..nthreads).map(|_| rx.recv().unwrap_or(0)).sum();
            }
        }
    }
    T::drain(&shared, out);
    GridStats {
        samples: m,
        samples_processed: m,
        boundary_checks: (m * p.tile.pow(D as u32)) as u64,
        kernel_accumulations: total_accums,
        presort_seconds: 0.0,
        gridding_seconds: start.elapsed().as_secs_f64(),
        fft_seconds: 0.0,
        apod_seconds: 0.0,
    }
}

/// One input-block's job for the reduce mode: grid samples `lo..hi` into
/// a private partial grid. Shared by both backends.
#[allow(clippy::too_many_arguments)]
fn block_reduce_worker<T: Float, const D: usize>(
    dec: &Decomposer,
    lut: &KernelLut,
    coords: &[[f64; D]],
    values: &[Complex<T>],
    g: usize,
    t: usize,
    lo: usize,
    hi: usize,
    partial: &mut [Complex<T>],
) -> u64 {
    let mut n = 0u64;
    for i in lo..hi {
        if (i - lo) & CANCEL_CHECK_MASK == 0 && cancel::cancelled() {
            return n; // cancelled: partial grid discarded by the owner
        }
        let v = values[i];
        n += for_each_window_point(dec, lut, &coords[i], g, t, |idx, wt| {
            partial[idx] += v.scale(T::from_f64(wt));
        });
    }
    n
}

/// Block-parallel execution with private grids + deterministic merge.
///
/// The merge runs in block order (`tid` ascending) under both backends,
/// so for a fixed `threads` request the result is reproducible — though
/// unlike the column modes it is *not* bitwise equal to serial, because
/// splitting the sample stream reassociates the floating-point sums.
fn grid_block_reduce<T: Float, const D: usize>(
    p: &GridParams,
    lut: &KernelLut,
    coords: &[[f64; D]],
    values: &[Complex<T>],
    out: &mut [Complex<T>],
    nthreads: usize,
    backend: ExecBackend,
) -> GridStats {
    let dec = Decomposer::new(p);
    let npoints = p.grid.pow(D as u32);
    let g = p.grid;
    let t = p.tile;
    let m = coords.len();
    let nthreads = nthreads.min(m.max(1)).max(1);
    let chunk = m.div_ceil(nthreads);
    let start = Instant::now();
    let total_accums: u64;
    match backend {
        ExecBackend::Scoped => {
            let mut partials: Vec<Vec<Complex<T>>> = Vec::with_capacity(nthreads);
            partials.resize_with(nthreads, || vec![Complex::zeroed(); npoints]);
            let mut accums = vec![0u64; nthreads];
            {
                let dec = &dec;
                std::thread::scope(|s| {
                    for (tid, (partial, acc)) in
                        partials.iter_mut().zip(accums.iter_mut()).enumerate()
                    {
                        let lo = tid * chunk;
                        let hi = ((tid + 1) * chunk).min(m);
                        s.spawn(move || {
                            *acc = block_reduce_worker::<T, D>(
                                dec, lut, coords, values, g, t, lo, hi, partial,
                            );
                        });
                    }
                });
            }
            for partial in &partials {
                for (o, &v) in out.iter_mut().zip(partial) {
                    *o += v;
                }
            }
            total_accums = accums.iter().sum();
        }
        ExecBackend::Pooled => {
            let pool = WorkerPool::global();
            let coords_shared: Arc<[[f64; D]]> = coords.into();
            let values_shared: Arc<[Complex<T>]> = values.into();
            let lut_shared = lut.clone();
            let (tx, rx) = channel();
            let run = pool.try_run(nthreads, move |tid, arena| {
                faultpoint!(crate::fault::GRIDDING_CHUNK);
                let lo = tid * chunk;
                let hi = ((tid + 1) * chunk).min(m);
                let mut partial =
                    arena.take_vec(keys::PARTIAL_GRID, npoints, Complex::<T>::zeroed());
                let n = block_reduce_worker::<T, D>(
                    &dec,
                    &lut_shared,
                    &coords_shared,
                    &values_shared,
                    g,
                    t,
                    lo,
                    hi,
                    &mut partial,
                );
                let _ = tx.send((tid, partial, n));
            });
            if run.is_err() {
                // Contained job panic. Partials merge into `out` only in
                // the drain below (never reached), so redo the whole
                // sample range in one serial block.
                crate::engine::note_serial_fallback("gridding.slice_dice.blocks");
                drop(rx);
                let dec = Decomposer::new(p);
                let mut partial = vec![Complex::<T>::zeroed(); npoints];
                total_accums = block_reduce_worker::<T, D>(
                    &dec,
                    lut,
                    coords,
                    values,
                    g,
                    t,
                    0,
                    m,
                    &mut partial,
                );
                for (o, &v) in out.iter_mut().zip(&partial) {
                    *o += v;
                }
            } else {
                // Deterministic merge: collect all partials, then fold them
                // in block (tid) order exactly as the scoped path does.
                let mut results: Vec<(usize, Vec<Complex<T>>, u64)> = rx.iter().collect();
                results.sort_unstable_by_key(|(tid, _, _)| *tid);
                let mut n = 0u64;
                for (tid, partial, acc) in results {
                    for (o, &v) in out.iter_mut().zip(&partial) {
                        *o += v;
                    }
                    pool.restore(tid, keys::PARTIAL_GRID, partial);
                    n += acc;
                }
                total_accums = n;
            }
        }
    }
    GridStats {
        samples: m,
        samples_processed: m,
        boundary_checks: (m * p.tile.pow(D as u32)) as u64,
        kernel_accumulations: total_accums,
        presort_seconds: 0.0,
        gridding_seconds: start.elapsed().as_secs_f64(),
        fft_seconds: 0.0,
        apod_seconds: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::testutil::*;
    use crate::gridding::{BinnedGridder, SerialGridder};
    use jigsaw_num::C64;

    fn grids_match_bitwise(a: &[C64], b: &[C64], ctx: &str) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{ctx}: re differs at {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{ctx}: im differs at {i}");
        }
    }

    #[test]
    fn serial_mode_matches_input_driven_serial() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(400, 64.0, 13);
        let mut a = vec![C64::zeroed(); 64 * 64];
        let mut b = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut a);
        SliceDiceGridder::new(SliceDiceMode::Serial).grid(&p, &lut, &coords, &values, &mut b);
        grids_match_bitwise(&a, &b, "slice-dice serial");
    }

    #[test]
    fn column_parallel_matches_serial_any_thread_count() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(300, 64.0, 99);
        let mut reference = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut reference);
        for threads in [1usize, 2, 7, 64] {
            let mut b = vec![C64::zeroed(); 64 * 64];
            SliceDiceGridder {
                mode: SliceDiceMode::ColumnParallel,
                threads: Some(threads),
                ..Default::default()
            }
            .grid(&p, &lut, &coords, &values, &mut b);
            grids_match_bitwise(&reference, &b, &format!("threads={threads}"));
        }
    }

    #[test]
    fn block_reduce_matches_serial_within_fp_reassociation() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(500, 64.0, 3);
        let mut a = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut a);
        let mut b = vec![C64::zeroed(); 64 * 64];
        SliceDiceGridder {
            mode: SliceDiceMode::BlockReduce,
            threads: Some(4),
            ..Default::default()
        }
        .grid(&p, &lut, &coords, &values, &mut b);
        let scale: f64 = a.iter().map(|z| z.abs()).fold(0.0, f64::max);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12 * scale.max(1.0));
        }
    }

    #[test]
    fn block_atomic_matches_serial_within_fp_reassociation() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(500, 64.0, 4);
        let mut a = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut a);
        let mut b = vec![C64::zeroed(); 64 * 64];
        SliceDiceGridder {
            mode: SliceDiceMode::BlockAtomic,
            threads: Some(4),
            ..Default::default()
        }
        .grid(&p, &lut, &coords, &values, &mut b);
        let scale: f64 = a.iter().map(|z| z.abs()).fold(0.0, f64::max);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12 * scale.max(1.0));
        }
    }

    #[test]
    fn block_atomic_f32_matches_f64_reference() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values64) = sample_batch::<2>(300, 64.0, 8);
        let values32: Vec<jigsaw_num::C32> = values64
            .iter()
            .map(|v| jigsaw_num::C32::from_c64(*v))
            .collect();
        let mut a = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values64, &mut a);
        let mut b = vec![jigsaw_num::C32::zeroed(); 64 * 64];
        SliceDiceGridder {
            mode: SliceDiceMode::BlockAtomic,
            threads: Some(3),
            ..Default::default()
        }
        .grid(&p, &lut, &coords, &values32, &mut b);
        let scale: f64 = a.iter().map(|z| z.abs()).fold(0.0, f64::max);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - y.to_c64()).abs() < 1e-4 * scale.max(1.0));
        }
    }

    #[test]
    fn boundary_check_count_is_m_t_d() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(100, 64.0, 6);
        let mut out = vec![C64::zeroed(); 64 * 64];
        let stats =
            SliceDiceGridder::new(SliceDiceMode::Serial).grid(&p, &lut, &coords, &values, &mut out);
        assert_eq!(stats.boundary_checks, 100 * 64); // M·T²
        assert_eq!(stats.kernel_accumulations, 100 * 36); // M·W²
        assert_eq!(stats.samples_processed, 100); // no duplication
        assert_eq!(stats.presort_seconds, 0.0); // no presort
    }

    #[test]
    fn three_dimensional_matches_serial() {
        let mut p = small_params();
        p.grid = 32;
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<3>(80, 32.0, 15);
        let n = 32usize.pow(3);
        let mut a = vec![C64::zeroed(); n];
        let mut b = vec![C64::zeroed(); n];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut a);
        SliceDiceGridder {
            mode: SliceDiceMode::ColumnParallel,
            threads: Some(3),
            ..Default::default()
        }
        .grid(&p, &lut, &coords, &values, &mut b);
        grids_match_bitwise(&a, &b, "3d");
    }

    #[test]
    fn agrees_with_binned_engine() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(250, 64.0, 31);
        let mut a = vec![C64::zeroed(); 64 * 64];
        let mut b = vec![C64::zeroed(); 64 * 64];
        BinnedGridder::default().grid(&p, &lut, &coords, &values, &mut a);
        SliceDiceGridder::default().grid(&p, &lut, &coords, &values, &mut b);
        grids_match_bitwise(&a, &b, "binned vs slice-dice");
    }
}
