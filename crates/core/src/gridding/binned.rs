//! Binned (geometrically tiled) gridding — the Impatient-style baseline.
//!
//! "Binning breaks the uniform grid into small subsections, or tiles […]
//! The non-uniform samples are then pre-sorted into subsets, or bins,
//! corresponding to the tiles that they affect. […] Tile–bin pairs are
//! processed sequentially" (§II-C).
//!
//! The engine deliberately reproduces the three overheads the paper
//! attributes to binning:
//!
//! 1. **Presort pass** — a full pass over the samples before any gridding
//!    work (timed separately in [`GridStats::presort_seconds`]).
//! 2. **Duplicate processing** — a sample whose window straddles tile
//!    boundaries is placed in up to `2^d` bins and processed once per bin
//!    (Fig. 3a: 6 samples become 16 processed instances);
//!    [`GridStats::samples_processed`] counts the inflation.
//! 3. **Output-driven boundary checks** — the logical GPU model checks
//!    every point in a tile against every sample in its bin:
//!    `Σ_tiles |bin|·B^d` checks ([`GridStats::boundary_checks`]).
//!
//! Parallelism is across tile–bin pairs; each worker owns a disjoint range
//! of tiles in a tile-blocked scratch buffer (the software analogue of
//! "a single tile fits in the on-chip cache"), which is un-blocked into
//! the row-major output at the end.

use super::{sample_windows, validate_batch, worker_threads, Gridder};
use crate::config::GridParams;
use crate::decomp::Decomposer;
use crate::engine::{keys, ExecBackend, WorkerPool};
use crate::lut::KernelLut;
use crate::stats::GridStats;
use jigsaw_num::{Complex, Float};
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::faultpoint;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

/// The binned gridder.
#[derive(Debug, Clone, Copy)]
pub struct BinnedGridder {
    /// Binning tile size `B` (power of two, `W ≤ B`, `B | G`). This is the
    /// *cache* tile of the binning scheme, independent of Slice-and-Dice's
    /// virtual tile `T`.
    pub bin_tile: usize,
    /// Worker thread count (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Execution backend: persistent worker pool (default) or legacy
    /// per-call scoped threads.
    pub backend: ExecBackend,
}

impl Default for BinnedGridder {
    fn default() -> Self {
        Self {
            bin_tile: 16,
            threads: None,
            backend: ExecBackend::default(),
        }
    }
}

impl BinnedGridder {
    /// Build the bins: for every sample, the set of tiles its window
    /// overlaps (1 or 2 per dimension since `W ≤ B`). Returns
    /// `bins[tile_linear] = sample indices` plus the processed-instance
    /// count.
    fn presort<const D: usize>(
        &self,
        dec: &Decomposer,
        coords: &[[f64; D]],
        tiles_per_dim: usize,
    ) -> (Vec<Vec<u32>>, usize) {
        let b = self.bin_tile as u32;
        let w = dec.width();
        let g = dec.grid();
        let ntiles = tiles_per_dim.pow(D as u32);
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); ntiles];
        let mut processed = 0usize;
        // Tile sets per dim (at most 2 entries each since W ≤ B).
        for (i, c) in coords.iter().enumerate() {
            let mut dim_tiles: [[u32; 2]; D] = [[0; 2]; D];
            let mut dim_count = [0usize; D];
            for d in 0..D {
                let dd = dec.decompose(dec.quantize(c[d]));
                // Window covers grid indices base − W + 1 ..= base (mod G).
                let hi_tile = dd.base / b;
                let lo_point = (dd.base + g - (w - 1)) % g;
                let lo_tile = lo_point / b;
                dim_tiles[d][0] = hi_tile;
                dim_count[d] = 1;
                if lo_tile != hi_tile {
                    dim_tiles[d][1] = lo_tile;
                    dim_count[d] = 2;
                }
            }
            // Cartesian product of the per-dim tile sets.
            let mut sel = [0usize; D];
            loop {
                let mut lin = 0usize;
                for d in 0..D {
                    lin = lin * tiles_per_dim + dim_tiles[d][sel[d]] as usize;
                }
                bins[lin].push(i as u32);
                processed += 1;
                // Odometer.
                let mut d = D;
                let mut done = false;
                loop {
                    if d == 0 {
                        done = true;
                        break;
                    }
                    d -= 1;
                    sel[d] += 1;
                    if sel[d] < dim_count[d] {
                        break;
                    }
                    sel[d] = 0;
                }
                if done {
                    break;
                }
            }
        }
        (bins, processed)
    }
}

impl<T: Float, const D: usize> Gridder<T, D> for BinnedGridder {
    fn name(&self) -> &'static str {
        "binned (Impatient-style)"
    }

    fn grid(
        &self,
        p: &GridParams,
        lut: &KernelLut,
        coords: &[[f64; D]],
        values: &[Complex<T>],
        out: &mut [Complex<T>],
    ) -> GridStats {
        if let Err(e) = validate_batch(p, coords, values, out) {
            panic!("invalid sample batch: {e}");
        }
        assert!(
            self.bin_tile.is_power_of_two()
                && self.bin_tile >= p.width
                && p.grid.is_multiple_of(self.bin_tile),
            "bin tile must be a power of two with W ≤ B and B | G"
        );
        let dec = Decomposer::new(p);
        let g = p.grid;
        let b = self.bin_tile;
        let tiles_per_dim = g / b;
        let tile_points = b.pow(D as u32);
        let ntiles = tiles_per_dim.pow(D as u32);

        let _span = telemetry::span!("gridding.binned", {
            dim: D,
            m: coords.len(),
            bin_tile: b,
        });
        let t0 = Instant::now();
        let (bins, processed) = {
            let _presort_span = telemetry::span!("gridding.binned_presort", { m: coords.len() });
            self.presort(&dec, coords, tiles_per_dim)
        };
        let presort_seconds = t0.elapsed().as_secs_f64();

        let _pass_span = telemetry::span!("gridding.binned_pass", { ntiles: ntiles });
        let t1 = Instant::now();
        let nthreads = worker_threads(self.threads).min(ntiles.max(1));
        let tiles_per_thread = ntiles.div_ceil(nthreads);
        let njobs = ntiles.div_ceil(tiles_per_thread);
        let width = p.width;
        let mut total_accums = 0u64;
        let mut total_checks = 0u64;
        match self.backend {
            ExecBackend::Scoped => {
                // Legacy path: tile-blocked scratch (tile `lin` owns the
                // contiguous range [lin·B^d, (lin+1)·B^d)) allocated per
                // call, scoped spawn/join.
                let mut blocked = vec![Complex::<T>::zeroed(); g.pow(D as u32)];
                let mut accum_counts = vec![0u64; njobs];
                let mut check_counts = vec![0u64; njobs];
                {
                    let bins = &bins;
                    let dec = &dec;
                    std::thread::scope(|s| {
                        for (tid, (chunk, (acc_slot, chk_slot))) in blocked
                            .chunks_mut(tiles_per_thread * tile_points)
                            .zip(accum_counts.iter_mut().zip(check_counts.iter_mut()))
                            .enumerate()
                        {
                            let first_tile = tid * tiles_per_thread;
                            s.spawn(move || {
                                let (a, c) = binned_tile_worker::<T, D>(
                                    dec,
                                    lut,
                                    coords,
                                    values,
                                    bins,
                                    b,
                                    tiles_per_dim,
                                    tile_points,
                                    width,
                                    first_tile,
                                    chunk,
                                );
                                *acc_slot = a;
                                *chk_slot = c;
                            });
                        }
                    });
                }
                for (tid, chunk) in blocked.chunks(tiles_per_thread * tile_points).enumerate() {
                    unblock_tile_chunk::<T, D>(
                        g,
                        b,
                        tiles_per_dim,
                        tile_points,
                        tid * tiles_per_thread,
                        chunk,
                        out,
                    );
                }
                total_accums = accum_counts.iter().sum();
                total_checks = check_counts.iter().sum();
            }
            ExecBackend::Pooled => {
                // Persistent path: each job's tile block comes from (and
                // returns to) the owning pool worker's scratch arena.
                let pool = WorkerPool::global();
                let coords_shared: Arc<[[f64; D]]> = coords.into();
                let values_shared: Arc<[Complex<T>]> = values.into();
                let bins_shared = Arc::new(bins);
                let lut_shared = lut.clone();
                let bins_fallback = Arc::clone(&bins_shared);
                let (tx, rx) = channel();
                let run = pool.try_run(njobs, move |tid, arena| {
                    faultpoint!(crate::fault::GRIDDING_CHUNK);
                    let first_tile = tid * tiles_per_thread;
                    let my_tiles = tiles_per_thread.min(ntiles - first_tile);
                    let mut chunk = arena.take_vec(
                        keys::BIN_TILES,
                        my_tiles * tile_points,
                        Complex::<T>::zeroed(),
                    );
                    let (a, c) = binned_tile_worker::<T, D>(
                        &dec,
                        &lut_shared,
                        &coords_shared,
                        &values_shared,
                        &bins_shared,
                        b,
                        tiles_per_dim,
                        tile_points,
                        width,
                        first_tile,
                        &mut chunk,
                    );
                    let _ = tx.send((tid, chunk, a, c));
                });
                if run.is_err() {
                    // Contained job panic. Tile chunks unblock into `out`
                    // only in the drain below (never reached), so redo
                    // every tile in one serial pass — bitwise identical,
                    // the partition only decides ownership.
                    crate::engine::note_serial_fallback("gridding.binned");
                    drop(rx);
                    let dec = Decomposer::new(p);
                    let mut blocked = vec![Complex::<T>::zeroed(); g.pow(D as u32)];
                    let (a, c) = binned_tile_worker::<T, D>(
                        &dec,
                        lut,
                        coords,
                        values,
                        &bins_fallback,
                        b,
                        tiles_per_dim,
                        tile_points,
                        width,
                        0,
                        &mut blocked,
                    );
                    unblock_tile_chunk::<T, D>(g, b, tiles_per_dim, tile_points, 0, &blocked, out);
                    total_accums = a;
                    total_checks = c;
                } else {
                    for _ in 0..njobs {
                        let Ok((tid, chunk, a, c)) = rx.recv() else {
                            unreachable!("pooled binned job result missing after clean run");
                        };
                        unblock_tile_chunk::<T, D>(
                            g,
                            b,
                            tiles_per_dim,
                            tile_points,
                            tid * tiles_per_thread,
                            &chunk,
                            out,
                        );
                        pool.restore(tid, keys::BIN_TILES, chunk);
                        total_accums += a;
                        total_checks += c;
                    }
                }
            }
        }
        let gridding_seconds = t1.elapsed().as_secs_f64();

        let stats = GridStats {
            samples: coords.len(),
            samples_processed: processed,
            boundary_checks: total_checks,
            kernel_accumulations: total_accums,
            presort_seconds,
            gridding_seconds,
            fft_seconds: 0.0,
            apod_seconds: 0.0,
        };
        stats.mirror("binned");
        stats
    }
}

/// One worker's job: process every tile–bin pair in its tile range into a
/// private tile-blocked chunk. Shared verbatim by the scoped and pooled
/// backends, so the per-tile accumulation order (bin order, then window
/// order) is identical under both. Returns (accumulations, checks).
#[allow(clippy::too_many_arguments)]
fn binned_tile_worker<T: Float, const D: usize>(
    dec: &Decomposer,
    lut: &KernelLut,
    coords: &[[f64; D]],
    values: &[Complex<T>],
    bins: &[Vec<u32>],
    b: usize,
    tiles_per_dim: usize,
    tile_points: usize,
    width: usize,
    first_tile: usize,
    chunk: &mut [Complex<T>],
) -> (u64, u64) {
    let mut accums = 0u64;
    let mut checks = 0u64;
    for (slot, tile_buf) in chunk.chunks_mut(tile_points).enumerate() {
        let lin = first_tile + slot;
        let bin = &bins[lin];
        if bin.is_empty() {
            continue;
        }
        // Decode tile origin.
        let mut origin = [0u32; D];
        let mut rem = lin;
        for d in (0..D).rev() {
            origin[d] = ((rem % tiles_per_dim) * b) as u32;
            rem /= tiles_per_dim;
        }
        checks += bin.len() as u64 * tile_points as u64;
        for &si in bin {
            let (wins, _) = sample_windows(dec, lut, &coords[si as usize]);
            let v = values[si as usize];
            accums += scatter_into_tile::<T, D>(b, &origin, &wins, width, v, tile_buf);
        }
    }
    (accums, checks)
}

/// Un-block one worker's tile chunk into the row-major output. Tiles are
/// disjoint regions of the grid, so chunks can merge in any order without
/// changing a single bit of the result.
fn unblock_tile_chunk<T: Float, const D: usize>(
    g: usize,
    b: usize,
    tiles_per_dim: usize,
    tile_points: usize,
    first_tile: usize,
    chunk: &[Complex<T>],
    out: &mut [Complex<T>],
) {
    for (slot, tile_buf) in chunk.chunks(tile_points).enumerate() {
        let lin = first_tile + slot;
        let mut origin = [0usize; D];
        let mut rem = lin;
        for d in (0..D).rev() {
            origin[d] = (rem % tiles_per_dim) * b;
            rem /= tiles_per_dim;
        }
        // Iterate tile-local points.
        for (local, &v) in tile_buf.iter().enumerate() {
            let mut idx = 0usize;
            let mut rem = local;
            // Decode local coordinates (row-major within tile).
            let mut loc = [0usize; D];
            for d in (0..D).rev() {
                loc[d] = rem % b;
                rem /= b;
            }
            for d in 0..D {
                idx = idx * g + origin[d] + loc[d];
            }
            out[idx] += v;
        }
    }
}

/// Accumulate the window points of one sample that fall inside the tile
/// at `origin` (side `b`). Returns the number of accumulations.
fn scatter_into_tile<T: Float, const D: usize>(
    b: usize,
    origin: &[u32; D],
    wins: &[super::DimWindow; D],
    w: usize,
    value: Complex<T>,
    tile_buf: &mut [Complex<T>],
) -> u64 {
    // Per-dim: which window offsets land in this tile, and their local idx.
    let mut local: [[(usize, f64); super::MAX_W]; D] = [[(0, 0.0); super::MAX_W]; D];
    let mut counts = [0usize; D];
    for d in 0..D {
        for j in 0..w {
            let k = wins[d].idx[j];
            if k >= origin[d] && (k as usize) < origin[d] as usize + b {
                local[d][counts[d]] = ((k - origin[d]) as usize, wins[d].weight[j]);
                counts[d] += 1;
            }
        }
        if counts[d] == 0 {
            return 0;
        }
    }
    let mut accums = 0u64;
    // Odometer over the in-tile sub-window.
    let mut sel = [0usize; D];
    loop {
        let mut idx = 0usize;
        let mut wt = 1.0;
        for d in 0..D {
            let (li, lw) = local[d][sel[d]];
            idx = idx * b + li;
            wt *= lw;
        }
        tile_buf[idx] += value.scale(T::from_f64(wt));
        accums += 1;
        let mut d = D;
        loop {
            if d == 0 {
                return accums;
            }
            d -= 1;
            sel[d] += 1;
            if sel[d] < counts[d] {
                break;
            }
            sel[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::testutil::*;
    use crate::gridding::SerialGridder;
    use jigsaw_num::C64;

    fn run_both(
        p: &GridParams,
        m: usize,
        seed: u64,
        binner: &BinnedGridder,
    ) -> (Vec<C64>, Vec<C64>, GridStats) {
        let lut = KernelLut::from_params(p);
        let (coords, values) = sample_batch::<2>(m, p.grid as f64, seed);
        let n = p.grid * p.grid;
        let mut a = vec![C64::zeroed(); n];
        let mut b = vec![C64::zeroed(); n];
        SerialGridder.grid(p, &lut, &coords, &values, &mut a);
        let stats = binner.grid(p, &lut, &coords, &values, &mut b);
        (a, b, stats)
    }

    #[test]
    fn matches_serial_bitwise() {
        let p = small_params();
        for threads in [1usize, 3] {
            let binner = BinnedGridder {
                bin_tile: 16,
                threads: Some(threads),
                ..Default::default()
            };
            let (a, b, _) = run_both(&p, 300, 5, &binner);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "threads={threads}");
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn matches_serial_bitwise_small_bin_tile() {
        let p = small_params();
        let binner = BinnedGridder {
            bin_tile: 8,
            threads: Some(2),
            ..Default::default()
        };
        let (a, b, _) = run_both(&p, 200, 77, &binner);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
        }
    }

    #[test]
    fn straddling_samples_are_duplicated() {
        // A sample whose window spans four tiles lands in four bins
        // (Fig. 3a: "samples d and f must be placed in all four bins").
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let binner = BinnedGridder {
            bin_tile: 16,
            threads: Some(1),
            ..Default::default()
        };
        // Place the sample right at a 4-tile corner: (16, 16).
        let coords = [[16.0, 16.0]];
        let values = [C64::one()];
        let mut out = vec![C64::zeroed(); 64 * 64];
        let stats = binner.grid(&p, &lut, &coords, &values, &mut out);
        assert_eq!(stats.samples, 1);
        assert_eq!(stats.samples_processed, 4);
        assert!(stats.duplication_factor() > 3.9);
        // Interior sample: exactly one bin.
        let mut out2 = vec![C64::zeroed(); 64 * 64];
        let s2 = binner.grid(&p, &lut, &[[8.0, 8.0]], &values, &mut out2);
        assert_eq!(s2.samples_processed, 1);
    }

    #[test]
    fn presort_pass_is_measured() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(1000, 64.0, 9);
        let mut out = vec![C64::zeroed(); 64 * 64];
        let stats = BinnedGridder::default().grid(&p, &lut, &coords, &values, &mut out);
        assert!(stats.presort_seconds > 0.0, "presort must be timed");
    }

    #[test]
    fn boundary_check_model_counts_bin_times_tile() {
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let binner = BinnedGridder {
            bin_tile: 16,
            threads: Some(1),
            ..Default::default()
        };
        // One interior sample: 1 bin × 16² points.
        let mut out = vec![C64::zeroed(); 64 * 64];
        let stats = binner.grid(&p, &lut, &[[8.0, 8.0]], &[C64::one()], &mut out);
        assert_eq!(stats.boundary_checks, 256);
    }

    #[test]
    fn total_mass_preserved_despite_duplication() {
        // Duplicated bin membership must NOT double-deposit values.
        let p = small_params();
        let lut = KernelLut::from_params(&p);
        let coords = [[16.0, 16.0]]; // 4-bin straddler
        let values = [C64::one()];
        let mut a = vec![C64::zeroed(); 64 * 64];
        let mut b = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut a);
        BinnedGridder::default().grid(&p, &lut, &coords, &values, &mut b);
        let ma: f64 = a.iter().map(|z| z.re).sum();
        let mb: f64 = b.iter().map(|z| z.re).sum();
        assert!((ma - mb).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_matches_serial() {
        let mut p = small_params();
        p.grid = 32;
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<3>(100, 32.0, 21);
        let n = 32usize.pow(3);
        let mut a = vec![C64::zeroed(); n];
        let mut b = vec![C64::zeroed(); n];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut a);
        BinnedGridder {
            bin_tile: 8,
            threads: Some(2),
            ..Default::default()
        }
        .grid(&p, &lut, &coords, &values, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "bin tile")]
    fn rejects_bin_tile_smaller_than_window() {
        let p = small_params(); // W = 6
        let lut = KernelLut::from_params(&p);
        let mut out = vec![C64::zeroed(); 64 * 64];
        BinnedGridder {
            bin_tile: 4,
            threads: Some(1),
            ..Default::default()
        }
        .grid(&p, &lut, &[[1.0, 1.0]], &[C64::one()], &mut out);
    }
}
