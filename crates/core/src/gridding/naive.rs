//! Naive output-parallel gridding (§II-C).
//!
//! "A naive output-parallel implementation must perform a boundary check
//! between each non-uniform sample and every grid point, requiring M
//! boundary checks for each of N^d uniform grid points." The vast
//! majority of checks fail; this engine exists to demonstrate that cost
//! (its `boundary_checks` counter is exactly `M·G^d`) and as an
//! independent oracle: it derives window membership from distances rather
//! than from the shared decomposition, so agreement with the other
//! engines cross-checks the decomposition logic itself.
//!
//! Complexity is `O(M·G^d)` — only use it on small problems.

use super::{validate_batch, worker_threads, Gridder};
use crate::config::GridParams;
use crate::decomp::Decomposer;
use crate::engine::{keys, ExecBackend, WorkerPool};
use crate::lut::KernelLut;
use crate::stats::GridStats;
use jigsaw_num::{Complex, Float};
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::faultpoint;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

/// The naive output-driven gridder (one logical thread per grid point).
///
/// Output points partition across workers; each worker scans the full
/// sample stream for every point it owns, so the per-point accumulation
/// order is the stream order regardless of the partition — the result is
/// bitwise identical for any thread count and either backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveOutputGridder {
    /// Worker thread count (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Execution backend: persistent worker pool (default) or legacy
    /// per-call scoped threads.
    pub backend: ExecBackend,
}

impl NaiveOutputGridder {
    /// Kernel weight of grid point `k` for a sample at quantized
    /// coordinate `uq` (units `1/L`), or `None` if outside the window.
    ///
    /// Works purely with distances, mirroring how an output-parallel GPU
    /// thread would test membership: the forward torus distance from `k`
    /// to `u + W/2` must be in `[0, W)`.
    fn weight_for(dec: &Decomposer, lut: &KernelLut, uq: u32, k: u32) -> Option<f64> {
        let l = dec.table_oversampling();
        let g = dec.grid();
        let w = dec.width();
        // Position of u + W/2 in half-LUT units on the torus.
        let s2 = 2 * uq as u64 + (w * l) as u64;
        let k2 = 2 * (k as u64) * l as u64;
        let circ = 2 * (g as u64) * l as u64;
        // Forward distance (u + W/2) − k on the torus, in half-LUT units.
        let d2 = (s2 + circ - k2) % circ;
        let dist2_limit = 2 * (w as u64) * l as u64;
        if d2 >= dist2_limit {
            return None;
        }
        // Unfolded LUT index = round(d2 / 2) (half up), same as decomp.
        let t = d2.div_ceil(2) as u32;
        Some(lut.lookup(t))
    }
}

impl<T: Float, const D: usize> Gridder<T, D> for NaiveOutputGridder {
    fn name(&self) -> &'static str {
        "naive output-parallel"
    }

    fn grid(
        &self,
        p: &GridParams,
        lut: &KernelLut,
        coords: &[[f64; D]],
        values: &[Complex<T>],
        out: &mut [Complex<T>],
    ) -> GridStats {
        if let Err(e) = validate_batch(p, coords, values, out) {
            panic!("invalid sample batch: {e}");
        }
        let _span = telemetry::span!("gridding.naive", { dim: D, m: coords.len() });
        let dec = Decomposer::new(p);
        let g = p.grid;
        let start = Instant::now();
        // Pre-quantize coordinates once (the GPU equivalent broadcasts the
        // sample stream to all threads).
        let quant: Vec<[u32; D]> = coords
            .iter()
            .map(|c| {
                let mut q = [0u32; D];
                for d in 0..D {
                    q[d] = dec.quantize(c[d]);
                }
                q
            })
            .collect();
        // Output-driven: partition the grid points (the "threads") across
        // workers; each worker scans every sample for each of its points.
        let npoints = g.pow(D as u32);
        let nthreads = worker_threads(self.threads).min(npoints.max(1));
        let points_per_job = npoints.div_ceil(nthreads);
        let njobs = npoints.div_ceil(points_per_job);
        let mut total_accums = 0u64;
        match self.backend {
            ExecBackend::Scoped => {
                let mut accum_counts = vec![0u64; njobs];
                {
                    let dec = &dec;
                    let quant = &quant;
                    std::thread::scope(|s| {
                        for ((tid, chunk), acc_slot) in out
                            .chunks_mut(points_per_job)
                            .enumerate()
                            .zip(accum_counts.iter_mut())
                        {
                            let lo = tid * points_per_job;
                            s.spawn(move || {
                                *acc_slot =
                                    naive_worker::<T, D>(dec, lut, g, quant, values, lo, chunk);
                            });
                        }
                    });
                }
                total_accums = accum_counts.iter().sum();
            }
            ExecBackend::Pooled => {
                let pool = WorkerPool::global();
                let quant_shared: Arc<[[u32; D]]> = quant.into();
                let values_shared: Arc<[Complex<T>]> = values.into();
                let lut_shared = lut.clone();
                let quant_fallback = Arc::clone(&quant_shared);
                let (tx, rx) = channel();
                let run = pool.try_run(njobs, move |tid, arena| {
                    faultpoint!(crate::fault::GRIDDING_CHUNK);
                    let lo = tid * points_per_job;
                    let len = points_per_job.min(npoints - lo);
                    let mut chunk = arena.take_vec(keys::NAIVE_CHUNK, len, Complex::<T>::zeroed());
                    let n = naive_worker::<T, D>(
                        &dec,
                        &lut_shared,
                        g,
                        &quant_shared,
                        &values_shared,
                        lo,
                        &mut chunk,
                    );
                    let _ = tx.send((tid, chunk, n));
                });
                if run.is_err() {
                    // Contained job panic. Chunks fold into `out` only in
                    // the drain below (never reached), so recompute every
                    // grid point in one serial pass — bitwise identical,
                    // each point's windowed sum is independent.
                    crate::engine::note_serial_fallback("gridding.naive");
                    drop(rx);
                    let dec = Decomposer::new(p);
                    let mut chunk = vec![Complex::<T>::zeroed(); npoints];
                    total_accums =
                        naive_worker::<T, D>(&dec, lut, g, &quant_fallback, values, 0, &mut chunk);
                    for (o, &v) in out.iter_mut().zip(&chunk) {
                        *o += v;
                    }
                } else {
                    for _ in 0..njobs {
                        let Ok((tid, chunk, n)) = rx.recv() else {
                            unreachable!("pooled naive job result missing after clean run");
                        };
                        let lo = tid * points_per_job;
                        for (o, &v) in out[lo..lo + chunk.len()].iter_mut().zip(&chunk) {
                            *o += v;
                        }
                        pool.restore(tid, keys::NAIVE_CHUNK, chunk);
                        total_accums += n;
                    }
                }
            }
        }
        let stats = GridStats {
            samples: coords.len(),
            samples_processed: coords.len(),
            boundary_checks: (coords.len() * npoints) as u64,
            kernel_accumulations: total_accums,
            presort_seconds: 0.0,
            gridding_seconds: start.elapsed().as_secs_f64(),
            fft_seconds: 0.0,
            apod_seconds: 0.0,
        };
        stats.mirror("naive");
        stats
    }
}

/// One worker's job: for each grid point in `lo..lo + chunk.len()`, scan
/// the full (pre-quantized) sample stream and accumulate the point's
/// value into `chunk`. Shared verbatim by both backends.
///
/// The scoped backend hands `chunk` straight from the output grid (the
/// per-point sum lands on top of the existing value), while the pooled
/// backend hands a zeroed arena buffer that the caller adds into the
/// output — both orderings produce identical bits because each point's
/// windowed sum is computed in full before the single `+=`.
fn naive_worker<T: Float, const D: usize>(
    dec: &Decomposer,
    lut: &KernelLut,
    g: usize,
    quant: &[[u32; D]],
    values: &[Complex<T>],
    lo: usize,
    chunk: &mut [Complex<T>],
) -> u64 {
    let mut accums = 0u64;
    for (off, o) in chunk.iter_mut().enumerate() {
        let flat = lo + off;
        // Decode this point's coordinates.
        let mut k = [0u32; D];
        let mut rem = flat;
        for d in (0..D).rev() {
            k[d] = (rem % g) as u32;
            rem /= g;
        }
        let mut acc = Complex::<T>::zeroed();
        for (q, &v) in quant.iter().zip(values) {
            let mut wt = 1.0;
            let mut inside = true;
            for d in 0..D {
                match NaiveOutputGridder::weight_for(dec, lut, q[d], k[d]) {
                    Some(x) => wt *= x,
                    None => {
                        inside = false;
                        break;
                    }
                }
            }
            if inside {
                acc += v.scale(T::from_f64(wt));
                accums += 1;
            }
        }
        *o += acc;
    }
    accums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::testutil::*;
    use crate::gridding::SerialGridder;
    use jigsaw_num::C64;

    #[test]
    fn matches_serial_bitwise_small_grid() {
        let mut p = small_params();
        p.grid = 16; // keep O(M·G²) cheap
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(40, 16.0, 11);
        let mut a = vec![C64::zeroed(); 16 * 16];
        let mut b = vec![C64::zeroed(); 16 * 16];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut a);
        NaiveOutputGridder::default().grid(&p, &lut, &coords, &values, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.re.to_bits(),
                y.re.to_bits(),
                "grids must be bitwise equal"
            );
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn check_count_is_m_times_grid() {
        let mut p = small_params();
        p.grid = 16;
        let lut = KernelLut::from_params(&p);
        let (coords, values) = sample_batch::<2>(10, 16.0, 2);
        let mut out = vec![C64::zeroed(); 256];
        let stats = NaiveOutputGridder::default().grid(&p, &lut, &coords, &values, &mut out);
        assert_eq!(stats.boundary_checks, 10 * 256);
        // Each sample touches exactly W² points.
        assert_eq!(stats.kernel_accumulations, 10 * 36);
    }

    #[test]
    fn distance_based_membership_matches_decomposition() {
        // weight_for must produce exactly the serial window weights.
        let p = small_params();
        let dec = Decomposer::new(&p);
        let lut = KernelLut::from_params(&p);
        for step in 0..200 {
            let u = step as f64 * 0.319;
            let uq = dec.quantize(u);
            let dd = dec.decompose(uq);
            let mut expected = std::collections::HashMap::new();
            for j in 0..6 {
                let (k, t) = dec.window_point(&dd, j);
                expected.insert(k, lut.lookup(t));
            }
            for k in 0..64u32 {
                match NaiveOutputGridder::weight_for(&dec, &lut, uq, k) {
                    Some(w) => {
                        let e = expected.get(&k).copied().unwrap_or(f64::NAN);
                        assert_eq!(w.to_bits(), e.to_bits(), "u={u} k={k}");
                    }
                    None => assert!(!expected.contains_key(&k), "u={u} k={k} missing"),
                }
            }
        }
    }
}
