//! Adjoint gridding engines.
//!
//! Gridding scatters each non-uniform sample's value, weighted by the
//! interpolation kernel, onto the `W^d` oversampled-grid points inside its
//! window (torus boundary conditions). This crate implements the full
//! lineage the paper discusses:
//!
//! | Engine | Paper analogue | Parallel model |
//! |---|---|---|
//! | [`SerialGridder`] | MIRT CPU baseline | input-driven, serial |
//! | [`NaiveOutputGridder`] | §II-C naive output-parallel | every point checks every sample |
//! | [`BinnedGridder`] | Impatient-style binning | presort + tile–bin pairs |
//! | [`SliceDiceGridder`] | the paper's contribution | stacked tiles, two-part check |
//!
//! All engines consume coordinates already mapped to oversampled-grid
//! units `u ∈ [0, G)` and quantized through the shared [`Decomposer`], and
//! all use the same [`KernelLut`]; consequently the deterministic engines
//! produce **bitwise identical** `f64` grids (verified by tests), because
//! every grid point accumulates the same weights in the same sample order.

pub mod binned;
pub mod naive;
pub mod serial;
pub mod slice_dice;

pub use binned::BinnedGridder;
pub use naive::NaiveOutputGridder;
pub use serial::{ExactGridder, LerpGridder, SerialGridder};
pub use slice_dice::{AtomicFloat, SliceDiceGridder, SliceDiceMode};

use crate::config::GridParams;
use crate::decomp::{Decomposer, DimDecomp};
use crate::lut::KernelLut;
use crate::stats::GridStats;
use crate::{Error, Result};
use jigsaw_num::{Complex, Float};

/// Maximum supported interpolation window width (per dimension). Engines
/// use fixed-size window scratch arrays; Table I's hardware range is 1–8.
pub const MAX_W: usize = 16;

/// An adjoint gridding engine: scatters samples onto the oversampled grid.
pub trait Gridder<T: Float, const D: usize>: Sync {
    /// Human-readable engine name (used by the bench harnesses).
    fn name(&self) -> &'static str;

    /// Accumulate `values` at `coords` (oversampled-grid units, `[0, G)`
    /// per dim) onto `out`, a row-major `[G; D]` grid. `out` is *not*
    /// cleared first, so multi-shot accumulation works.
    ///
    /// Returns instrumentation counters.
    fn grid(
        &self,
        p: &GridParams,
        lut: &KernelLut,
        coords: &[[f64; D]],
        values: &[Complex<T>],
        out: &mut [Complex<T>],
    ) -> GridStats;
}

/// Validate a sample batch against a grid configuration: matching lengths,
/// finite coordinates and values, and a correctly sized output buffer.
pub fn validate_batch<T: Float, const D: usize>(
    p: &GridParams,
    coords: &[[f64; D]],
    values: &[Complex<T>],
    out: &[Complex<T>],
) -> Result<()> {
    if coords.len() != values.len() {
        return Err(Error::Data(format!(
            "coordinate count {} != value count {}",
            coords.len(),
            values.len()
        )));
    }
    if out.len() != p.grid.pow(D as u32) {
        return Err(Error::Data(format!(
            "output grid has {} points, expected {}^{} = {}",
            out.len(),
            p.grid,
            D,
            p.grid.pow(D as u32)
        )));
    }
    for (i, c) in coords.iter().enumerate() {
        if c.iter().any(|x| !x.is_finite()) {
            return Err(Error::Data(format!("non-finite coordinate at sample {i}")));
        }
    }
    for (i, v) in values.iter().enumerate() {
        if !v.is_finite() {
            return Err(Error::Data(format!("non-finite value at sample {i}")));
        }
    }
    Ok(())
}

/// Per-dimension window of one sample: grid indices and kernel weights.
#[derive(Clone, Copy, Debug)]
pub struct DimWindow {
    /// Grid index of window point `j` (already torus-wrapped).
    pub idx: [u32; MAX_W],
    /// Kernel weight of window point `j`.
    pub weight: [f64; MAX_W],
}

impl Default for DimWindow {
    fn default() -> Self {
        Self {
            idx: [0; MAX_W],
            weight: [0.0; MAX_W],
        }
    }
}

/// Compute the per-dimension windows for one sample. Shared by the serial
/// and binned engines (the Slice-and-Dice engines use the select-unit
/// formulation instead, which tests prove equivalent).
#[inline]
pub fn sample_windows<const D: usize>(
    dec: &Decomposer,
    lut: &KernelLut,
    coord: &[f64; D],
) -> ([DimWindow; D], [DimDecomp; D]) {
    let w = dec.width() as usize;
    let mut wins = [DimWindow::default(); D];
    let mut decs = [DimDecomp {
        base: 0,
        rel: 0,
        tile: 0,
        phi2: 0,
    }; D];
    for d in 0..D {
        let dd = dec.decompose(dec.quantize(coord[d]));
        decs[d] = dd;
        for j in 0..w {
            let (k, t) = dec.window_point(&dd, j as u32);
            wins[d].idx[j] = k;
            wins[d].weight[j] = lut.lookup(t);
        }
    }
    (wins, decs)
}

/// Scatter one sample into a row-major grid given its per-dim windows.
/// Specialized inner loops for the 2-D and 3-D cases the paper targets.
#[inline]
pub fn scatter_rowmajor<T: Float, const D: usize>(
    g: usize,
    w: usize,
    wins: &[DimWindow; D],
    value: Complex<T>,
    out: &mut [Complex<T>],
) {
    match D {
        1 => {
            for j in 0..w {
                let wt = T::from_f64(wins[0].weight[j]);
                out[wins[0].idx[j] as usize] += value.scale(wt);
            }
        }
        2 => {
            // Dimension 0 is the row (slow axis), dimension 1 the column.
            for jy in 0..w {
                let row = wins[0].idx[jy] as usize * g;
                let wy = wins[0].weight[jy];
                for jx in 0..w {
                    let wt = T::from_f64(wy * wins[1].weight[jx]);
                    out[row + wins[1].idx[jx] as usize] += value.scale(wt);
                }
            }
        }
        3 => {
            for jz in 0..w {
                let plane = wins[0].idx[jz] as usize * g * g;
                let wz = wins[0].weight[jz];
                for jy in 0..w {
                    let row = plane + wins[1].idx[jy] as usize * g;
                    let wyz = wz * wins[1].weight[jy];
                    for jx in 0..w {
                        let wt = T::from_f64(wyz * wins[2].weight[jx]);
                        out[row + wins[2].idx[jx] as usize] += value.scale(wt);
                    }
                }
            }
        }
        _ => {
            // Generic odometer over the W^D window.
            let mut j = [0usize; D];
            loop {
                let mut idx = 0usize;
                let mut wt = 1.0;
                for d in 0..D {
                    idx = idx * g + wins[d].idx[j[d]] as usize;
                    wt *= wins[d].weight[j[d]];
                }
                out[idx] += value.scale(T::from_f64(wt));
                let mut d = D;
                loop {
                    if d == 0 {
                        return;
                    }
                    d -= 1;
                    j[d] += 1;
                    if j[d] < w {
                        break;
                    }
                    j[d] = 0;
                }
            }
        }
    }
}

/// Number of worker threads to use for the parallel engines: explicit
/// request, else `available_parallelism`.
pub fn worker_threads(requested: Option<usize>) -> usize {
    requested
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
        .max(1)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::kernel::KernelKind;

    /// Standard small test configuration: G = 64, W = 6, L = 32, T = 8.
    pub fn small_params() -> GridParams {
        GridParams {
            grid: 64,
            width: 6,
            table_oversampling: 32,
            tile: 8,
            kernel: KernelKind::Auto.resolve(6, 2.0),
        }
    }

    /// Deterministic pseudo-random sample batch covering interior, edge
    /// (wrap), and exactly-on-grid coordinates.
    pub fn sample_batch<const D: usize>(
        m: usize,
        g: f64,
        seed: u64,
    ) -> (Vec<[f64; D]>, Vec<jigsaw_num::C64>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64
        };
        let mut coords = Vec::with_capacity(m);
        let mut values = Vec::with_capacity(m);
        for i in 0..m {
            let mut c = [0.0; D];
            for x in c.iter_mut() {
                *x = match i % 7 {
                    0 => next() * 0.5,         // near the wrap edge
                    1 => g - next() * 0.5,     // near the other edge
                    2 => (next() * g).floor(), // exactly on a grid point
                    _ => next() * g,
                };
            }
            coords.push(c);
            values.push(jigsaw_num::C64::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0));
        }
        (coords, values)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use jigsaw_num::C64;

    #[test]
    fn validate_batch_catches_mismatch() {
        let p = small_params();
        let coords = vec![[1.0, 2.0]];
        let values: Vec<C64> = vec![];
        let out = vec![C64::zeroed(); 64 * 64];
        assert!(validate_batch(&p, &coords, &values, &out).is_err());
    }

    #[test]
    fn validate_batch_catches_nonfinite() {
        let p = small_params();
        let out = vec![C64::zeroed(); 64 * 64];
        let bad_coord = vec![[f64::NAN, 1.0]];
        let v = vec![C64::one()];
        assert!(validate_batch(&p, &bad_coord, &v, &out).is_err());
        let good_coord = vec![[1.0, 1.0]];
        let bad_v = vec![C64::new(f64::INFINITY, 0.0)];
        assert!(validate_batch(&p, &good_coord, &bad_v, &out).is_err());
        assert!(validate_batch(&p, &good_coord, &v, &out).is_ok());
    }

    #[test]
    fn validate_batch_catches_wrong_grid_size() {
        let p = small_params();
        let out = vec![C64::zeroed(); 64]; // should be 64²
        assert!(validate_batch::<f64, 2>(&p, &[], &[], &out).is_err());
    }

    #[test]
    fn scatter_mass_conservation_2d() {
        // Total scattered mass = value × (Σ weights)².
        let p = small_params();
        let dec = crate::decomp::Decomposer::new(&p);
        let lut = KernelLut::from_params(&p);
        let coord = [17.3, 42.8];
        let (wins, _) = sample_windows(&dec, &lut, &coord);
        let mut out = vec![C64::zeroed(); 64 * 64];
        scatter_rowmajor(64, 6, &wins, C64::new(2.0, -1.0), &mut out);
        let total: C64 = out.iter().copied().sum();
        let wsum: f64 = (0..6).map(|j| wins[0].weight[j]).sum();
        let wsum2: f64 = (0..6).map(|j| wins[1].weight[j]).sum();
        let expect = C64::new(2.0, -1.0).scale(wsum * wsum2);
        assert!((total - expect).abs() < 1e-12);
    }

    use crate::lut::KernelLut;

    #[test]
    fn scatter_generic_matches_specialized_2d() {
        // The D = 2 fast path must agree with the generic odometer: compare
        // by running the odometer via a D = 2 call through the generic arm
        // — emulate by computing expected values manually.
        let p = small_params();
        let dec = crate::decomp::Decomposer::new(&p);
        let lut = KernelLut::from_params(&p);
        let coord = [5.5, 60.9]; // wraps in x
        let (wins, _) = sample_windows(&dec, &lut, &coord);
        let mut fast = vec![C64::zeroed(); 64 * 64];
        scatter_rowmajor(64, 6, &wins, C64::one(), &mut fast);
        let mut slow = vec![C64::zeroed(); 64 * 64];
        for jy in 0..6 {
            for jx in 0..6 {
                let idx = wins[0].idx[jy] as usize * 64 + wins[1].idx[jx] as usize;
                slow[idx] += C64::one().scale(wins[0].weight[jy] * wins[1].weight[jx]);
            }
        }
        assert_eq!(
            fast.iter().map(|z| z.re.to_bits()).collect::<Vec<_>>(),
            slow.iter().map(|z| z.re.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn worker_threads_respects_request() {
        assert_eq!(worker_threads(Some(3)), 3);
        assert!(worker_threads(None) >= 1);
        assert_eq!(worker_threads(Some(0)), 1);
    }
}
