//! Fault-injection surface of the reconstruction engine.
//!
//! The machinery — the deterministic seeded schedule, the
//! telemetry-style kill switch, the `faultpoint!` macro — lives in
//! `jigsaw_testkit::fault` (the only crate below both `jigsaw-fft` and
//! `jigsaw-core` in the dependency DAG); this module re-exports it and
//! owns the *registry*: the canonical list of fault points compiled into
//! the engine, which the chaos suite iterates so no site can be added
//! without failure-path coverage.
//!
//! Arm via [`arm`] in tests (serialize with [`test_guard`] — the switch
//! is process-global) or the `JIGSAW_FAULTS` environment variable for CLI
//! smoke runs, e.g.:
//!
//! ```text
//! JIGSAW_FAULTS=site=nufft.coil,seed=7,rate=1,fires=1 jigsaw recon …
//! ```
//!
//! Every site is a single relaxed atomic load + branch when disarmed
//! (≤ 2 % on the `pooled_vs_scoped` bench; see `BENCH_fault_overhead.json`).

pub use jigsaw_testkit::fault::{
    arm, disarm, fires, should_fire, test_guard, FaultInjected, FaultPlan,
};

/// Inside every worker-pool job wrapper ([`crate::engine::WorkerPool`]),
/// before the job body runs. Fires on a worker thread; contained by the
/// pool's panic containment.
pub const ENGINE_DISPATCH: &str = "engine.dispatch";

/// Inside every parallel N-D FFT panel job (`jigsaw_fft::nd`).
pub const FFT_PANEL: &str = jigsaw_fft::nd::FAULT_PANEL;

/// Inside every pooled gridding chunk job (column chunks, bin tiles,
/// naive output chunks, block partials).
pub const GRIDDING_CHUNK: &str = "gridding.chunk";

/// Inside every per-coil job of the batched planned NuFFT paths
/// ([`crate::nufft::NufftPlan::adjoint_batch_planned`] /
/// `forward_batch_planned`).
pub const NUFFT_COIL: &str = "nufft.coil";

/// At the top of every serving job body
/// ([`crate::serve::engine::ServeEngine::execute`]), inside the
/// per-job `catch_unwind`. A fire becomes a structured execution-error
/// frame for that client; the daemon, pool, and plan cache survive.
pub const SERVE_JOB: &str = "serve.job";

/// At the entry of every plan-cache fetch
/// ([`crate::serve::cache::PlanCache::get_or_build`]), *before* the
/// cache lock is taken, so an injected panic can never poison or
/// corrupt the cache.
pub const SERVE_CACHE: &str = "serve.cache";

/// Inside every Toeplitz normal-operator build
/// ([`crate::toeplitz::ToeplitzOperator::build_with_plan`]), after
/// validation and before the PSF adjoint. A fire is contained by
/// [`crate::toeplitz::ToeplitzOperator::build_degradable`], which falls
/// back to the gridded normal operator (counted in
/// `recon.normal_op_fallbacks`, flight-recorded) when the serial
/// fallback policy is enabled.
pub const RECON_NORMAL_OP: &str = "recon.normal_op";

/// Inside the overload-refusal path of the serving daemon
/// ([`crate::serve::daemon`]): fired while building the `Overloaded`
/// frame for a shed job, inside a `catch_unwind`, so an injected panic
/// degrades to a plain execution-error frame for that client — the
/// reader thread, queue, and daemon survive.
pub const SERVE_SHED: &str = "serve.shed";

/// Inside every tick of the stuck-job watchdog thread
/// ([`crate::serve::daemon`]). Each tick body runs under
/// `catch_unwind`; an injected panic is counted
/// (`serve.watchdog.panics`) and the thread keeps ticking.
pub const SERVE_WATCHDOG: &str = "serve.watchdog";

/// At the entry of every plan-cache snapshot load
/// ([`crate::serve::cache::PlanCache::load_snapshot`]), before the
/// snapshot file is touched. The daemon runs the load under
/// `catch_unwind`: a fire degrades the warm start to a cold one
/// (counted `serve.snapshot.load_failures`, stderr-logged); the daemon
/// still comes up and serves.
pub const SERVE_SNAPSHOT: &str = "serve.snapshot";

/// At the top of every conjugate-gradient iteration
/// ([`crate::recon::cg_solve`] / [`crate::sense::cg_sense`]). This site
/// does not panic: it poisons the iteration's residual with a NaN,
/// exercising the solver's non-finite containment (best-iterate return
/// with a [`crate::recon::CgDiagnostic::NonFinite`] diagnostic).
pub const RECON_CG_ITER: &str = "recon.cg_iter";

/// Every registered fault point. `tests/chaos.rs` iterates this list;
/// keep it in sync with the `faultpoint!` / [`should_fire`] call sites
/// named above.
pub const SITES: &[&str] = &[
    ENGINE_DISPATCH,
    FFT_PANEL,
    GRIDDING_CHUNK,
    NUFFT_COIL,
    RECON_CG_ITER,
    RECON_NORMAL_OP,
    SERVE_JOB,
    SERVE_CACHE,
    SERVE_SHED,
    SERVE_SNAPSHOT,
    SERVE_WATCHDOG,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_distinct_and_dotted() {
        for (i, a) in SITES.iter().enumerate() {
            assert!(a.contains('.'), "site `{a}` must be category.name");
            for b in &SITES[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(FFT_PANEL, "fft.panel");
    }

    #[test]
    fn armed_plan_targets_only_named_site() {
        let _lock = test_guard();
        arm(FaultPlan::once_at(NUFFT_COIL));
        for site in SITES.iter().filter(|s| **s != NUFFT_COIL) {
            assert!(!should_fire(site));
        }
        assert!(should_fire(NUFFT_COIL));
        disarm();
    }
}
