//! Complete forward and adjoint NuFFT plans.
//!
//! The plan precomputes everything reusable — kernel LUT, apodization
//! factors, FFT twiddles — and then executes the paper's three-step
//! pipeline (Fig. 1) with per-stage timing, because the *ratio* of
//! gridding to FFT time is the paper's core motivation (gridding is
//! 99.6 % of the NuFFT on a modern CPU, §I) and its headline result
//! (gridding and FFT time equalized on GPU, §VI-A).
//!
//! For multi-coil MRI (§II-A: "each of the C receive coils acquires the
//! same k-space trajectory") the plan additionally supports *planned*
//! batched execution: [`NufftPlan::plan_trajectory`] performs the
//! per-sample window decomposition (the div/mod/LUT work of §III) once,
//! and [`NufftPlan::adjoint_batch_planned`] /
//! [`NufftPlan::forward_batch_planned`] stream every coil through the
//! cached windows on the persistent [`crate::engine::WorkerPool`], one
//! coil per pooled job with an arena-recycled grid buffer each.
//!
//! Conventions (`ν` in cycles, image indices `k ∈ [−N/2, N/2)^d`):
//!
//! * adjoint: `ĥ_k = Σ_j c_j e^{+2πi k·ν_j}` (matches [`crate::nudft::adjoint_nudft`]),
//! * forward: `c_j = Σ_k f_k e^{−2πi k·ν_j}` (matches [`crate::nudft::forward_nudft`]).

use crate::apod::Apodization;
use crate::config::{GridParams, NufftConfig};
use crate::decomp::Decomposer;
use crate::engine::{keys, WorkerPool};
use crate::gridding::slice_dice::CANCEL_CHECK_MASK;
use crate::gridding::{sample_windows, scatter_rowmajor, DimWindow, Gridder};
use crate::interp::{self, gather_from_windows};
use crate::lut::KernelLut;
use crate::stats::GridStats;
use crate::{Error, Result};
use jigsaw_fft::exec::{restore_vec, take_vec, Executor, Job as ExecJob};
use jigsaw_fft::{Direction, FftNd};
use jigsaw_num::{Complex, Float};
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::{cancel, faultpoint};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock breakdown of one NuFFT execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Coordinate mapping / grid preparation.
    pub prep_seconds: f64,
    /// Gridding (adjoint) or interpolation (forward).
    pub interp_seconds: f64,
    /// Uniform FFT over the oversampled grid.
    pub fft_seconds: f64,
    /// Apodization correction + grid extraction/embedding.
    pub apod_seconds: f64,
}

impl StageTimings {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.prep_seconds + self.interp_seconds + self.fft_seconds + self.apod_seconds
    }

    /// Fraction of time in the interpolation stage — the paper's
    /// "gridding accounts for 99.6 % of NuFFT computation time" statistic.
    pub fn interp_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.interp_seconds / self.total()
        }
    }
}

/// Result bundle of an adjoint NuFFT.
#[derive(Debug, Clone)]
pub struct AdjointOutput<T> {
    /// Reconstructed `[N; D]` image (row-major).
    pub image: Vec<Complex<T>>,
    /// Stage timings.
    pub timings: StageTimings,
    /// Gridding-engine counters.
    pub grid_stats: GridStats,
}

/// Result bundle of a forward NuFFT.
#[derive(Debug, Clone)]
pub struct ForwardOutput<T> {
    /// Non-uniform sample values.
    pub samples: Vec<Complex<T>>,
    /// Stage timings.
    pub timings: StageTimings,
}

/// A trajectory whose per-sample window decomposition has been computed
/// once and cached for reuse across coils/frames.
///
/// Produced by [`NufftPlan::plan_trajectory`]. Holds the mapped
/// (oversampled-grid-unit) coordinates and, for every sample, the `D`
/// per-dimension index/weight windows that both the adjoint scatter and
/// the forward gather consume. Sharing is `Arc`-based, so cloning the
/// trajectory (or capturing it in pooled jobs) is `O(1)`.
#[derive(Debug, Clone)]
pub struct PlannedTrajectory<const D: usize> {
    mapped: Arc<[[f64; D]]>,
    windows: Arc<[[DimWindow; D]]>,
    grid: usize,
    width: usize,
    plan_seconds: f64,
}

impl<const D: usize> PlannedTrajectory<D> {
    /// Number of planned samples.
    pub fn len(&self) -> usize {
        self.mapped.len()
    }

    /// Whether the trajectory is empty.
    pub fn is_empty(&self) -> bool {
        self.mapped.is_empty()
    }

    /// Mapped coordinates in oversampled-grid units (`u = (ν mod 1)·G`).
    pub fn mapped_coords(&self) -> &[[f64; D]] {
        &self.mapped
    }

    /// Seconds spent planning (coordinate mapping + window decomposition)
    /// — the one-time cost amortized over every batched coil.
    pub fn plan_seconds(&self) -> f64 {
        self.plan_seconds
    }
}

/// Minimum pixel count before the embed/extract apodization passes are
/// worth fanning out over the executor: below this the per-job boxing and
/// snapshot copy dominate the per-pixel index arithmetic they save.
const PARALLEL_APOD_MIN: usize = 1 << 13;

/// Split `npix` flat pixels into `conc` near-equal contiguous chunks.
///
/// Every pixel's value is computed independently with identical
/// floating-point operations regardless of which chunk (and therefore
/// worker) evaluates it, so the partition affects scheduling only — output
/// is bitwise identical to the serial pass for any `conc`.
fn apod_chunks(npix: usize, conc: usize) -> Vec<(usize, usize)> {
    let chunk = npix.div_ceil(conc.max(1));
    (0..npix.div_ceil(chunk))
        .map(|j| {
            let start = j * chunk;
            (start, chunk.min(npix - start))
        })
        .collect()
}

/// The reusable internals of a plan, shared via `Arc` so pooled jobs can
/// hold `'static` references to the FFT, apodization table, and LUT.
struct PlanInner<T, const D: usize> {
    cfg: NufftConfig,
    params: GridParams,
    lut: KernelLut,
    apod: Apodization,
    fft: FftNd<T>,
}

impl<T: Float, const D: usize> PlanInner<T, D> {
    /// Map trajectory coordinates (cycles) onto the oversampled grid
    /// (`u = (ν mod 1)·G`).
    fn map_coords(&self, coords: &[[f64; D]]) -> Vec<[f64; D]> {
        let g = self.params.grid as f64;
        coords
            .iter()
            .map(|c| {
                let mut u = [0.0; D];
                for d in 0..D {
                    u[d] = c[d].rem_euclid(1.0) * g;
                }
                u
            })
            .collect()
    }

    /// Oversampled-grid destination index and apodization factor for image
    /// pixel `flat` (row-major `[N; D]`). The per-pixel work of both the
    /// serial and the parallel embed pass — one body, identical FP ops.
    #[inline]
    fn embed_site(&self, flat: usize) -> (usize, f64) {
        let n = self.cfg.n;
        let g = self.params.grid;
        let mut rem = flat;
        let mut dst = 0usize;
        let mut f = 1.0;
        for d in 0..D {
            let stride = n.pow((D - 1 - d) as u32);
            let i = (rem / stride) % n;
            rem %= stride;
            let k = i as i64 - (n / 2) as i64;
            let s = k.rem_euclid(g as i64) as usize;
            dst = dst * g + s;
            f *= self.apod.factor(i);
        }
        (dst, f)
    }

    /// Pre-apodize an `[N; D]` image and embed it into the (pre-zeroed)
    /// oversampled grid — the forward NuFFT's first stage.
    fn embed_apodized(&self, image: &[Complex<T>], grid: &mut [Complex<T>]) {
        for (flat, &v) in image.iter().enumerate() {
            let (dst, f) = self.embed_site(flat);
            grid[dst] = v.scale(T::from_f64(f));
        }
    }

    /// Compute the `(grid index, apodized value)` pairs for image pixels
    /// `flat0 .. flat0 + out.len()` — the parallel embed pass's job body.
    fn embed_pairs(&self, image: &[Complex<T>], flat0: usize, out: &mut [(usize, Complex<T>)]) {
        for (off, slot) in out.iter_mut().enumerate() {
            let flat = flat0 + off;
            let (dst, f) = self.embed_site(flat);
            *slot = (dst, image[flat].scale(T::from_f64(f)));
        }
    }

    /// [`Self::embed_apodized`] with the index arithmetic + apodization
    /// multiply fanned out over `exec`. Jobs compute `(dst, value)` pairs
    /// from an `Arc`-shared image snapshot; the caller owns the only
    /// mutable reference to `grid` and performs the scatter, so no two
    /// threads ever write the grid. Bitwise identical to the serial pass
    /// for any executor (see [`apod_chunks`]).
    ///
    /// If a job panics and [`crate::engine::serial_fallback_enabled`],
    /// the serial pass recomputes the full output (jobs never touch
    /// `grid`, so it is still pristine) and `engine.fallbacks` is
    /// incremented; with the policy disabled the failure surfaces as
    /// [`Error::Execution`].
    fn embed_apodized_with(
        self: &Arc<Self>,
        exec: &dyn Executor,
        image: &[Complex<T>],
        grid: &mut [Complex<T>],
    ) -> Result<()> {
        let npix = image.len();
        if exec.concurrency() <= 1 || npix < PARALLEL_APOD_MIN {
            self.embed_apodized(image, grid);
            return Ok(());
        }
        let src: Arc<Vec<Complex<T>>> = Arc::new(image.to_vec());
        let chunks = apod_chunks(npix, exec.concurrency());
        let (tx, rx) = channel();
        let jobs: Vec<ExecJob> = chunks
            .iter()
            .enumerate()
            .map(|(j, &(start, len))| {
                let inner = Arc::clone(self);
                let src = Arc::clone(&src);
                let tx = tx.clone();
                let job: ExecJob = Box::new(move |arena| {
                    let _span = telemetry::span!("nufft.embed_chunk", { start: start, len: len });
                    let mut out = take_vec(
                        arena,
                        keys::APOD_LINES,
                        len,
                        (0usize, Complex::<T>::zeroed()),
                    );
                    inner.embed_pairs(&src, start, &mut out);
                    let _ = tx.send((j, out));
                });
                job
            })
            .collect();
        drop(tx);
        if let Err(e) = exec.execute(jobs) {
            if !crate::engine::serial_fallback_enabled() {
                return Err(Error::Execution(e.to_string()));
            }
            crate::engine::note_serial_fallback("nufft.embed_apodized");
            drop(rx);
            self.embed_apodized(image, grid);
            return Ok(());
        }
        for _ in 0..chunks.len() {
            let (j, out) = rx
                .recv()
                .map_err(|_| Error::Execution("embed chunk result channel closed".into()))?;
            for &(dst, v) in out.iter() {
                grid[dst] = v;
            }
            restore_vec(exec, j, keys::APOD_LINES, out);
        }
        Ok(())
    }

    /// De-apodized extraction of image pixels `flat0 .. flat0 + out.len()`
    /// from the FFT'd oversampled grid — one body serving both the serial
    /// and the parallel extract pass.
    fn extract_range(&self, grid: &[Complex<T>], flat0: usize, out: &mut [Complex<T>]) {
        let n = self.cfg.n;
        let g = self.params.grid;
        for (off, o) in out.iter_mut().enumerate() {
            let mut rem = flat0 + off;
            let mut src = 0usize;
            let mut f = 1.0;
            for d in 0..D {
                // Row-major: peel dims from the most significant side.
                let stride = n.pow((D - 1 - d) as u32);
                let i = (rem / stride) % n;
                rem %= stride;
                let k = i as i64 - (n / 2) as i64;
                let s = (-k).rem_euclid(g as i64) as usize;
                src = src * g + s;
                f *= self.apod.factor(i);
            }
            *o = grid[src].scale(T::from_f64(f));
        }
    }

    /// Extract `ĥ_k = FFT[g][(−k) mod G]` with de-apodization, fanning the
    /// per-pixel gather + multiply out over `exec`. Jobs read an
    /// `Arc`-shared grid snapshot and return contiguous image chunks the
    /// caller places — bitwise identical to the serial pass for any
    /// executor (see [`apod_chunks`]).
    ///
    /// Failure policy matches [`Self::embed_apodized_with`]: jobs read a
    /// snapshot and never write `image`, so after a contained panic the
    /// serial pass reproduces the full output bitwise (counted in
    /// `engine.fallbacks`), or [`Error::Execution`] is returned when the
    /// fallback policy is disabled.
    fn extract_deapodized(
        self: &Arc<Self>,
        exec: &dyn Executor,
        grid: &[Complex<T>],
    ) -> Result<Vec<Complex<T>>> {
        let n = self.cfg.n;
        let npix = n.pow(D as u32);
        let mut image = vec![Complex::<T>::zeroed(); npix];
        if exec.concurrency() <= 1 || npix < PARALLEL_APOD_MIN {
            self.extract_range(grid, 0, &mut image);
            return Ok(image);
        }
        let src: Arc<Vec<Complex<T>>> = Arc::new(grid.to_vec());
        let chunks = apod_chunks(npix, exec.concurrency());
        let (tx, rx) = channel();
        let jobs: Vec<ExecJob> = chunks
            .iter()
            .enumerate()
            .map(|(j, &(start, len))| {
                let inner = Arc::clone(self);
                let src = Arc::clone(&src);
                let tx = tx.clone();
                let job: ExecJob = Box::new(move |arena| {
                    let _span = telemetry::span!("nufft.extract_chunk", { start: start, len: len });
                    let mut out = take_vec(arena, keys::APOD_LINES, len, Complex::<T>::zeroed());
                    inner.extract_range(&src, start, &mut out);
                    let _ = tx.send((j, start, out));
                });
                job
            })
            .collect();
        drop(tx);
        if let Err(e) = exec.execute(jobs) {
            if !crate::engine::serial_fallback_enabled() {
                return Err(Error::Execution(e.to_string()));
            }
            crate::engine::note_serial_fallback("nufft.extract_deapodized");
            drop(rx);
            self.extract_range(grid, 0, &mut image);
            return Ok(image);
        }
        for _ in 0..chunks.len() {
            let (j, start, out) = rx
                .recv()
                .map_err(|_| Error::Execution("extract chunk result channel closed".into()))?;
            image[start..start + out.len()].copy_from_slice(&out);
            restore_vec(exec, j, keys::APOD_LINES, out);
        }
        Ok(image)
    }

    /// The adjoint NuFFT's post-gridding stages: uniform FFT over an
    /// already-gridded oversampled buffer, then extraction and
    /// de-apodization. `grid` is consumed as scratch.
    ///
    /// Both stages run on the global [`WorkerPool`] via the
    /// [`Executor`] bridge, so a *single-coil* adjoint parallelizes
    /// within its one FFT instead of hitting the serial Amdahl wall
    /// after parallel gridding. When called from inside a pooled batch
    /// job (one coil per worker), the pool reports serial concurrency on
    /// worker threads and both stages take their serial paths — same
    /// numbers, no nested dispatch.
    fn finish_adjoint(
        self: &Arc<Self>,
        grid: &mut [Complex<T>],
    ) -> Result<(Vec<Complex<T>>, StageTimings)> {
        let g = self.params.grid;
        let n = self.cfg.n;
        if grid.len() != g.pow(D as u32) {
            return Err(Error::Data(format!(
                "grid has {} points, expected {}^{}",
                grid.len(),
                g,
                D
            )));
        }
        let pool = WorkerPool::global();
        let t2 = Instant::now();
        {
            let _span = telemetry::span!("fft.process", { points: grid.len() });
            if crate::engine::serial_fallback_enabled() {
                // Per-axis serial retry on contained panics, counted in
                // `engine.fallbacks` inside the FFT layer.
                self.fft.process_with(pool, grid, Direction::Forward);
            } else {
                self.fft
                    .try_process_with(pool, grid, Direction::Forward)
                    .map_err(|e| Error::Execution(e.to_string()))?;
            }
        }
        let fft_seconds = t2.elapsed().as_secs_f64();

        // Extract ĥ_k = FFT[g][(−k) mod G] with deapodization.
        let t3 = Instant::now();
        let image = {
            let _apod_span = telemetry::span!("nufft.apod", { n: n, dim: D });
            self.extract_deapodized(pool, grid)?
        };
        let apod_seconds = t3.elapsed().as_secs_f64();
        Ok((
            image,
            StageTimings {
                prep_seconds: 0.0,
                interp_seconds: 0.0,
                fft_seconds,
                apod_seconds,
            },
        ))
    }
}

/// A planned NuFFT for a fixed configuration and dimensionality.
///
/// ```
/// use jigsaw_core::{NufftConfig, NufftPlan};
/// use jigsaw_core::gridding::SliceDiceGridder;
/// use jigsaw_core::traj;
/// use jigsaw_num::C64;
///
/// // Adjoint NuFFT of 1000 radial k-space samples onto a 32x32 image.
/// let coords = traj::radial_2d(20, 50, true);
/// let values = vec![C64::one(); coords.len()];
/// let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(32)).unwrap();
/// let out = plan.adjoint(&coords, &values, &SliceDiceGridder::default()).unwrap();
/// assert_eq!(out.image.len(), 32 * 32);
/// assert_eq!(out.grid_stats.boundary_checks, 1000 * 64); // M*T^2
/// ```
///
/// Multi-coil batches amortize the window decomposition:
///
/// ```
/// use jigsaw_core::{NufftConfig, NufftPlan};
/// use jigsaw_core::traj;
/// use jigsaw_num::C64;
///
/// let coords = traj::radial_2d(10, 40, true);
/// let coil_a = vec![C64::one(); coords.len()];
/// let coil_b = vec![C64::new(0.0, 1.0); coords.len()];
/// let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(32)).unwrap();
/// let traj = plan.plan_trajectory(&coords).unwrap();
/// let images = plan
///     .adjoint_batch_planned(&traj, &[&coil_a, &coil_b])
///     .unwrap();
/// assert_eq!(images.len(), 2);
/// ```
pub struct NufftPlan<T, const D: usize> {
    inner: Arc<PlanInner<T, D>>,
}

/// Plans share their immutable state (`cfg`, LUT, apodization, FFT
/// twiddles) behind an `Arc`, so cloning is `O(1)` — the serve cache
/// clones one plan into every entry that reuses it.
impl<T, const D: usize> Clone for NufftPlan<T, D> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Float, const D: usize> NufftPlan<T, D> {
    /// Plan a transform. Validates the configuration.
    pub fn new(cfg: NufftConfig) -> Result<Self> {
        cfg.validate()?;
        if !(1..=4).contains(&D) {
            return Err(Error::Config(format!("unsupported dimensionality {D}")));
        }
        let params = cfg.grid_params();
        let lut = KernelLut::from_params(&params);
        let apod = Apodization::new(&cfg);
        let fft = FftNd::new(&[params.grid; D]);
        Ok(Self {
            inner: Arc::new(PlanInner {
                cfg,
                params,
                lut,
                apod,
                fft,
            }),
        })
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &NufftConfig {
        &self.inner.cfg
    }

    /// Grid-side parameters.
    pub fn grid_params(&self) -> &GridParams {
        &self.inner.params
    }

    /// The shared kernel LUT.
    pub fn lut(&self) -> &KernelLut {
        &self.inner.lut
    }

    /// Map trajectory coordinates (cycles) onto the oversampled grid
    /// (`u = (ν mod 1)·G`).
    pub fn map_coords(&self, coords: &[[f64; D]]) -> Vec<[f64; D]> {
        self.inner.map_coords(coords)
    }

    /// Validate coordinate finiteness, producing the standard error.
    fn check_finite(coords: &[[f64; D]]) -> Result<()> {
        for (i, c) in coords.iter().enumerate() {
            if c.iter().any(|x| !x.is_finite()) {
                return Err(Error::Data(format!("non-finite coordinate at sample {i}")));
            }
        }
        Ok(())
    }

    /// Adjoint NuFFT: non-uniform samples → `[N; D]` image, using the
    /// given gridding engine.
    pub fn adjoint(
        &self,
        coords: &[[f64; D]],
        values: &[Complex<T>],
        gridder: &dyn Gridder<T, D>,
    ) -> Result<AdjointOutput<T>> {
        if coords.len() != values.len() {
            return Err(Error::Data(format!(
                "coordinate count {} != value count {}",
                coords.len(),
                values.len()
            )));
        }
        Self::check_finite(coords)?;
        let _span = telemetry::span!("nufft.adjoint", { dim: D, m: coords.len() });
        let g = self.inner.params.grid;

        let t0 = Instant::now();
        let mapped = {
            let _prep = telemetry::span!("nufft.prep", { m: coords.len() });
            self.inner.map_coords(coords)
        };
        let mut grid = vec![Complex::<T>::zeroed(); g.pow(D as u32)];
        let prep_seconds = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mut grid_stats = gridder.grid(
            &self.inner.params,
            &self.inner.lut,
            &mapped,
            values,
            &mut grid,
        );
        let interp_seconds = t1.elapsed().as_secs_f64();

        let (image, mut timings) = self.inner.finish_adjoint(&mut grid)?;
        timings.prep_seconds = prep_seconds;
        timings.interp_seconds = interp_seconds;
        // Fold the post-gridding stages into the stats so that
        // `GridStats::total_seconds` matches the end-to-end wall clock
        // instead of silently dropping the FFT + apodization time. The
        // two stages are reported separately: the FFT/gridding ratio is
        // the paper's central statistic and must not be inflated by the
        // apodization pass.
        grid_stats.fft_seconds = timings.fft_seconds;
        grid_stats.apod_seconds = timings.apod_seconds;
        Ok(AdjointOutput {
            image,
            timings,
            grid_stats,
        })
    }

    /// Batched adjoint NuFFT: many value sets (e.g. receive coils) on one
    /// trajectory. Maps coordinates once and reuses one grid buffer, so
    /// per-batch overhead is gridding + FFT only.
    ///
    /// Coils execute sequentially through the supplied engine; for the
    /// decomposition-amortizing, pool-parallel path see
    /// [`Self::adjoint_batch_planned`].
    pub fn adjoint_batch(
        &self,
        coords: &[[f64; D]],
        batches: &[&[Complex<T>]],
        gridder: &dyn Gridder<T, D>,
    ) -> Result<Vec<AdjointOutput<T>>> {
        Self::check_finite(coords)?;
        let _span = telemetry::span!("nufft.adjoint_batch", {
            dim: D,
            m: coords.len(),
            coils: batches.len()
        });
        let g = self.inner.params.grid;
        let mapped = self.inner.map_coords(coords);
        let mut grid = vec![Complex::<T>::zeroed(); g.pow(D as u32)];
        let mut out = Vec::with_capacity(batches.len());
        for values in batches {
            if values.len() != coords.len() {
                return Err(Error::Data(format!(
                    "batch has {} values for {} coordinates",
                    values.len(),
                    coords.len()
                )));
            }
            grid.fill(Complex::zeroed());
            let t1 = Instant::now();
            let mut grid_stats = gridder.grid(
                &self.inner.params,
                &self.inner.lut,
                &mapped,
                values,
                &mut grid,
            );
            let interp_seconds = t1.elapsed().as_secs_f64();
            let (image, mut timings) = self.inner.finish_adjoint(&mut grid)?;
            timings.interp_seconds = interp_seconds;
            grid_stats.fft_seconds = timings.fft_seconds;
            grid_stats.apod_seconds = timings.apod_seconds;
            out.push(AdjointOutput {
                image,
                timings,
                grid_stats,
            });
        }
        Ok(out)
    }

    /// Batched forward NuFFT: transform many images (e.g. sensitivity-
    /// weighted coil images) at one trajectory, mapping coordinates once.
    ///
    /// Images execute sequentially; for the pool-parallel path see
    /// [`Self::forward_batch_planned`].
    pub fn forward_batch(
        &self,
        images: &[&[Complex<T>]],
        coords: &[[f64; D]],
    ) -> Result<Vec<ForwardOutput<T>>> {
        images.iter().map(|img| self.forward(img, coords)).collect()
    }

    /// Precompute the per-sample window decomposition for a trajectory.
    ///
    /// This runs the quantize → div/mod-`T` decompose → LUT-lookup stage
    /// (§III) exactly once per sample; the result can then drive any
    /// number of [`Self::adjoint_batch_planned`] /
    /// [`Self::forward_batch_planned`] calls without repeating that work.
    /// Scatter via the cached windows visits grid points in the same
    /// order as [`crate::gridding::SerialGridder`], so planned outputs
    /// are bitwise identical to unplanned serial ones.
    pub fn plan_trajectory(&self, coords: &[[f64; D]]) -> Result<PlannedTrajectory<D>> {
        Self::check_finite(coords)?;
        let _span = telemetry::span!("nufft.plan_trajectory", { dim: D, m: coords.len() });
        let t0 = Instant::now();
        let mapped = self.inner.map_coords(coords);
        let dec = Decomposer::new(&self.inner.params);
        let windows: Vec<[DimWindow; D]> = mapped
            .iter()
            .map(|c| sample_windows(&dec, &self.inner.lut, c).0)
            .collect();
        let plan_seconds = t0.elapsed().as_secs_f64();
        Ok(PlannedTrajectory {
            mapped: mapped.into(),
            windows: windows.into(),
            grid: self.inner.params.grid,
            width: self.inner.params.width,
            plan_seconds,
        })
    }

    /// Check a planned trajectory was built against this plan's geometry.
    fn check_traj(&self, traj: &PlannedTrajectory<D>) -> Result<()> {
        if traj.grid != self.inner.params.grid || traj.width != self.inner.params.width {
            return Err(Error::Config(format!(
                "planned trajectory (G = {}, W = {}) does not match plan (G = {}, W = {})",
                traj.grid, traj.width, self.inner.params.grid, self.inner.params.width
            )));
        }
        Ok(())
    }

    /// Batched adjoint NuFFT over a planned trajectory: every coil's
    /// samples stream through the cached window decomposition, one coil
    /// per job on the persistent [`WorkerPool`], each scattering into an
    /// arena-recycled grid buffer and finishing (FFT + de-apodization)
    /// inside its worker.
    ///
    /// Each coil's image is bitwise identical to
    /// `self.adjoint(coords, coil, &SerialGridder)` because the scatter
    /// consumes the cached windows in sample order. `timings.prep_seconds`
    /// is zero here — the mapping/decomposition cost lives in
    /// [`PlannedTrajectory::plan_seconds`], paid once.
    pub fn adjoint_batch_planned(
        &self,
        traj: &PlannedTrajectory<D>,
        batches: &[&[Complex<T>]],
    ) -> Result<Vec<AdjointOutput<T>>> {
        self.check_traj(traj)?;
        let m = traj.len();
        for (c, values) in batches.iter().enumerate() {
            if values.len() != m {
                return Err(Error::Data(format!(
                    "coil {c} has {} values for {m} planned samples",
                    values.len()
                )));
            }
        }
        if batches.is_empty() {
            return Ok(Vec::new());
        }
        let g = self.inner.params.grid;
        let w = self.inner.params.width;
        let npoints = g.pow(D as u32);
        let kernel_accums = (m as u64) * (w as u64).pow(D as u32);
        let njobs = batches.len();

        let _span = telemetry::span!("nufft.adjoint_batch_planned", {
            dim: D,
            m: m,
            coils: njobs
        });
        let pool = WorkerPool::global();
        let inner = Arc::clone(&self.inner);
        let windows = Arc::clone(&traj.windows);
        let coils: Vec<Arc<[Complex<T>]>> = batches.iter().map(|b| Arc::from(*b)).collect();
        let (tx, rx) = channel();
        let run = pool.try_run(njobs, move |c, arena| {
            let _coil_span = telemetry::span!("nufft.coil_adjoint", { coil: c, m: m });
            faultpoint!(crate::fault::NUFFT_COIL);
            let values = &coils[c];
            let mut grid = arena.take_vec(keys::COIL_GRID, npoints, Complex::<T>::zeroed());
            let t1 = Instant::now();
            let mut cancelled_early = false;
            for (i, (wins, &v)) in windows.iter().zip(values.iter()).enumerate() {
                if i & CANCEL_CHECK_MASK == 0 && cancel::cancelled() {
                    // Cooperative cancellation: stop scattering mid-coil
                    // and skip the FFT/de-apodization entirely. The coil
                    // reports a Budget error instead of a result; the
                    // partial grid is recycled like any other buffer.
                    cancelled_early = true;
                    break;
                }
                scatter_rowmajor(g, w, wins, v, &mut grid);
            }
            let interp_seconds = t1.elapsed().as_secs_f64();
            let finished = if cancelled_early {
                Err(Error::Budget(format!("coil {c} cancelled mid-gridding")))
            } else {
                inner.finish_adjoint(&mut grid)
            };
            let _ = tx.send((c, grid, interp_seconds, finished));
        });
        if let Err(failure) = run {
            if !crate::engine::serial_fallback_enabled() {
                return Err(failure.into());
            }
            // A coil job panicked (contained by the pool, which stays
            // alive; the poisoned worker's scratch was discarded). Coil
            // outputs are independent and the scatter consumes the cached
            // windows in sample order, so the serial recompute below is
            // bitwise identical to an unfaulted pooled run.
            crate::engine::note_serial_fallback("nufft.adjoint_batch_planned");
            drop(rx);
            return self.adjoint_batch_planned_serial(traj, batches);
        }

        let mut out: Vec<Option<AdjointOutput<T>>> = (0..njobs).map(|_| None).collect();
        for _ in 0..njobs {
            let (c, grid, interp_seconds, finished) = rx.recv().map_err(|_| {
                Error::Execution("planned adjoint job result channel closed".into())
            })?;
            pool.restore(c, keys::COIL_GRID, grid);
            let (image, mut timings) = finished?;
            timings.interp_seconds = interp_seconds;
            out[c] = Some(AdjointOutput {
                image,
                timings,
                grid_stats: GridStats {
                    samples: m,
                    samples_processed: m,
                    boundary_checks: 0,
                    kernel_accumulations: kernel_accums,
                    presort_seconds: 0.0,
                    gridding_seconds: interp_seconds,
                    fft_seconds: timings.fft_seconds,
                    apod_seconds: timings.apod_seconds,
                },
            });
        }
        out.into_iter()
            .enumerate()
            .map(|(c, r)| {
                r.ok_or_else(|| Error::Execution(format!("coil job {c} never reported a result")))
            })
            .collect()
    }

    /// Single-threaded recompute of [`Self::adjoint_batch_planned`] — the
    /// graceful-degradation path after a pooled coil job fails. Bitwise
    /// identical to the pooled path: the scatter consumes the cached
    /// windows in sample order, and every post-gridding stage is bitwise
    /// invariant across executors.
    fn adjoint_batch_planned_serial(
        &self,
        traj: &PlannedTrajectory<D>,
        batches: &[&[Complex<T>]],
    ) -> Result<Vec<AdjointOutput<T>>> {
        let g = self.inner.params.grid;
        let w = self.inner.params.width;
        let npoints = g.pow(D as u32);
        let m = traj.len();
        let kernel_accums = (m as u64) * (w as u64).pow(D as u32);
        let mut grid = vec![Complex::<T>::zeroed(); npoints];
        let mut out = Vec::with_capacity(batches.len());
        for (c, values) in batches.iter().enumerate() {
            let _coil_span = telemetry::span!("nufft.coil_adjoint", { coil: c, m: m });
            grid.fill(Complex::zeroed());
            let t1 = Instant::now();
            for (wins, &v) in traj.windows.iter().zip(values.iter()) {
                scatter_rowmajor(g, w, wins, v, &mut grid);
            }
            let interp_seconds = t1.elapsed().as_secs_f64();
            let (image, mut timings) = self.inner.finish_adjoint(&mut grid)?;
            timings.interp_seconds = interp_seconds;
            out.push(AdjointOutput {
                image,
                timings,
                grid_stats: GridStats {
                    samples: m,
                    samples_processed: m,
                    boundary_checks: 0,
                    kernel_accumulations: kernel_accums,
                    presort_seconds: 0.0,
                    gridding_seconds: interp_seconds,
                    fft_seconds: timings.fft_seconds,
                    apod_seconds: timings.apod_seconds,
                },
            });
        }
        Ok(out)
    }

    /// Batched forward NuFFT over a planned trajectory: one image per
    /// pooled job, each embedding + FFT-ing into an arena-recycled grid
    /// and gathering every sample via the cached windows.
    ///
    /// Each output is bitwise identical to `self.forward(image, coords)`
    /// because [`gather_from_windows`] accumulates in the same order as
    /// the on-the-fly interpolator.
    pub fn forward_batch_planned(
        &self,
        images: &[&[Complex<T>]],
        traj: &PlannedTrajectory<D>,
    ) -> Result<Vec<ForwardOutput<T>>> {
        self.check_traj(traj)?;
        let n = self.inner.cfg.n;
        let expect = n.pow(D as u32);
        for (j, img) in images.iter().enumerate() {
            if img.len() != expect {
                return Err(Error::Data(format!(
                    "image {j} has {} pixels, expected {}^{}",
                    img.len(),
                    n,
                    D
                )));
            }
        }
        if images.is_empty() {
            return Ok(Vec::new());
        }
        let g = self.inner.params.grid;
        let w = self.inner.params.width;
        let npoints = g.pow(D as u32);
        let njobs = images.len();

        let _span = telemetry::span!("nufft.forward_batch_planned", {
            dim: D,
            images: njobs
        });
        let pool = WorkerPool::global();
        let inner = Arc::clone(&self.inner);
        let windows = Arc::clone(&traj.windows);
        let imgs: Vec<Arc<[Complex<T>]>> = images.iter().map(|b| Arc::from(*b)).collect();
        let (tx, rx) = channel();
        let run = pool.try_run(njobs, move |j, arena| {
            let _img_span = telemetry::span!("nufft.coil_forward", { image: j });
            faultpoint!(crate::fault::NUFFT_COIL);
            let mut grid = arena.take_vec(keys::COIL_GRID, npoints, Complex::<T>::zeroed());
            let t0 = Instant::now();
            inner.embed_apodized(&imgs[j], &mut grid);
            let apod_seconds = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            {
                let _fft_span = telemetry::span!("fft.process", { points: npoints });
                inner.fft.process(&mut grid, Direction::Forward);
            }
            let fft_seconds = t1.elapsed().as_secs_f64();
            let t2 = Instant::now();
            let mut samples: Vec<Complex<T>> = Vec::with_capacity(windows.len());
            let mut cancelled_early = false;
            for (i, wins) in windows.iter().enumerate() {
                if i & CANCEL_CHECK_MASK == 0 && cancel::cancelled() {
                    // Cooperative cancellation mid-gather: report a Budget
                    // error instead of a truncated sample vector.
                    cancelled_early = true;
                    break;
                }
                samples.push(gather_from_windows::<T, D>(&grid, g, w, wins));
            }
            let interp_seconds = t2.elapsed().as_secs_f64();
            let result = if cancelled_early {
                Err(Error::Budget(format!("image {j} cancelled mid-gather")))
            } else {
                Ok(ForwardOutput {
                    samples,
                    timings: StageTimings {
                        prep_seconds: 0.0,
                        interp_seconds,
                        fft_seconds,
                        apod_seconds,
                    },
                })
            };
            let _ = tx.send((j, grid, result));
        });
        if let Err(failure) = run {
            if !crate::engine::serial_fallback_enabled() {
                return Err(failure.into());
            }
            crate::engine::note_serial_fallback("nufft.forward_batch_planned");
            drop(rx);
            return self.forward_batch_planned_serial(images, traj);
        }

        let mut out: Vec<Option<ForwardOutput<T>>> = (0..njobs).map(|_| None).collect();
        for _ in 0..njobs {
            let (j, grid, fwd) = rx.recv().map_err(|_| {
                Error::Execution("planned forward job result channel closed".into())
            })?;
            pool.restore(j, keys::COIL_GRID, grid);
            out[j] = Some(fwd?);
        }
        out.into_iter()
            .enumerate()
            .map(|(j, r)| {
                r.ok_or_else(|| Error::Execution(format!("image job {j} never reported a result")))
            })
            .collect()
    }

    /// Single-threaded recompute of [`Self::forward_batch_planned`] — the
    /// graceful-degradation path after a pooled image job fails. Mirrors
    /// the job body exactly (serial embed, serial FFT, windowed gather in
    /// sample order), so outputs are bitwise identical to an unfaulted
    /// pooled run.
    fn forward_batch_planned_serial(
        &self,
        images: &[&[Complex<T>]],
        traj: &PlannedTrajectory<D>,
    ) -> Result<Vec<ForwardOutput<T>>> {
        let g = self.inner.params.grid;
        let w = self.inner.params.width;
        let npoints = g.pow(D as u32);
        let mut grid = vec![Complex::<T>::zeroed(); npoints];
        let mut out = Vec::with_capacity(images.len());
        for (j, img) in images.iter().enumerate() {
            let _img_span = telemetry::span!("nufft.coil_forward", { image: j });
            grid.fill(Complex::zeroed());
            let t0 = Instant::now();
            self.inner.embed_apodized(img, &mut grid);
            let apod_seconds = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            {
                let _fft_span = telemetry::span!("fft.process", { points: npoints });
                self.inner.fft.process(&mut grid, Direction::Forward);
            }
            let fft_seconds = t1.elapsed().as_secs_f64();
            let t2 = Instant::now();
            let samples: Vec<Complex<T>> = traj
                .windows
                .iter()
                .map(|wins| gather_from_windows::<T, D>(&grid, g, w, wins))
                .collect();
            let interp_seconds = t2.elapsed().as_secs_f64();
            out.push(ForwardOutput {
                samples,
                timings: StageTimings {
                    prep_seconds: 0.0,
                    interp_seconds,
                    fft_seconds,
                    apod_seconds,
                },
            });
        }
        Ok(out)
    }

    /// The adjoint NuFFT's post-gridding stages: uniform FFT over an
    /// already-gridded oversampled buffer, then extraction and
    /// de-apodization.
    ///
    /// This is the host-side half of an accelerator integration (§IV
    /// "System Integration"): JIGSAW streams back the gridded target grid
    /// and the host completes the NuFFT. `grid` is consumed as scratch.
    pub fn finish_adjoint(
        &self,
        grid: &mut [Complex<T>],
    ) -> Result<(Vec<Complex<T>>, StageTimings)> {
        self.inner.finish_adjoint(grid)
    }

    /// Forward NuFFT: `[N; D]` image → non-uniform samples.
    pub fn forward(&self, image: &[Complex<T>], coords: &[[f64; D]]) -> Result<ForwardOutput<T>> {
        let n = self.inner.cfg.n;
        let g = self.inner.params.grid;
        if image.len() != n.pow(D as u32) {
            return Err(Error::Data(format!(
                "image has {} pixels, expected {}^{}",
                image.len(),
                n,
                D
            )));
        }

        let _span = telemetry::span!("nufft.forward", { dim: D, m: coords.len() });
        // Pre-apodize and embed into the zero-padded oversampled grid,
        // then FFT — both fanned out over the global pool so a single
        // forward transform parallelizes end to end.
        let pool = WorkerPool::global();
        let t0 = Instant::now();
        let mut grid = vec![Complex::<T>::zeroed(); g.pow(D as u32)];
        self.inner.embed_apodized_with(pool, image, &mut grid)?;
        let apod_seconds = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        {
            let _fft_span = telemetry::span!("fft.process", { points: grid.len() });
            if crate::engine::serial_fallback_enabled() {
                self.inner
                    .fft
                    .process_with(pool, &mut grid, Direction::Forward);
            } else {
                self.inner
                    .fft
                    .try_process_with(pool, &mut grid, Direction::Forward)
                    .map_err(|e| Error::Execution(e.to_string()))?;
            }
        }
        let fft_seconds = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let mapped = self.inner.map_coords(coords);
        let prep_seconds = t2.elapsed().as_secs_f64();

        let t3 = Instant::now();
        let mut samples = vec![Complex::<T>::zeroed(); coords.len()];
        interp::interpolate(
            &self.inner.params,
            &self.inner.lut,
            &grid,
            &mapped,
            &mut samples,
            None,
        )?;
        let interp_seconds = t3.elapsed().as_secs_f64();

        Ok(ForwardOutput {
            samples,
            timings: StageTimings {
                prep_seconds,
                interp_seconds,
                fft_seconds,
                apod_seconds,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::{SerialGridder, SliceDiceGridder};
    use crate::metrics::rel_l2;
    use crate::nudft::{adjoint_nudft, forward_nudft};
    use jigsaw_num::C64;

    fn test_coords(m: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64 - 0.5
        };
        (0..m).map(|_| [next(), next()]).collect()
    }

    fn test_values(m: usize, seed: u64) -> Vec<C64> {
        let mut s = seed | 3;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64 - 0.5
        };
        (0..m).map(|_| C64::new(next(), next())).collect()
    }

    #[test]
    fn adjoint_matches_nudft_exact_weights() {
        // With exact (non-LUT) kernel weights, accuracy is limited only by
        // the Kaiser-Bessel aliasing error (~1e-6 for W = 6, sigma = 2).
        let n = 32;
        let m = 200;
        let coords = test_coords(m, 1);
        let values = test_values(m, 2);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let out = plan
            .adjoint(&coords, &values, &crate::gridding::ExactGridder)
            .unwrap();
        let exact = adjoint_nudft(n, &coords, &values, None);
        let err = rel_l2(&out.image, &exact);
        assert!(err < 2e-5, "adjoint NuFFT error vs NuDFT: {err}");
    }

    #[test]
    fn adjoint_lut_error_bounded_and_shrinks_with_l() {
        // LUT gridding quantizes coordinates to 1/L of a grid cell; the
        // worst-case phase error at the image edge is pi/(2*sigma*L).
        let n = 32;
        let coords = test_coords(150, 1);
        let values = test_values(150, 2);
        let exact = adjoint_nudft(n, &coords, &values, None);
        let mut errs = Vec::new();
        for l in [32usize, 256] {
            let mut cfg = NufftConfig::with_n(n);
            cfg.table_oversampling = l;
            let plan = NufftPlan::<f64, 2>::new(cfg).unwrap();
            let out = plan.adjoint(&coords, &values, &SerialGridder).unwrap();
            let err = rel_l2(&out.image, &exact);
            let bound = core::f64::consts::PI / (2.0 * 2.0 * l as f64);
            assert!(err < bound, "L={l}: err {err} exceeds bound {bound}");
            errs.push(err);
        }
        assert!(errs[1] < errs[0] / 4.0, "error must shrink ~1/L: {errs:?}");
    }

    #[test]
    fn forward_matches_nudft() {
        let n = 32;
        let image = test_values(n * n, 5);
        let coords = test_coords(150, 6);
        let mut cfg = NufftConfig::with_n(n);
        cfg.table_oversampling = 4096; // make LUT quantization negligible
        let plan = NufftPlan::<f64, 2>::new(cfg).unwrap();
        let out = plan.forward(&image, &coords).unwrap();
        let exact = forward_nudft(n, &image, &coords, None);
        let err = rel_l2(&out.samples, &exact);
        assert!(err < 3e-4, "forward NuFFT error vs NuDFT: {err}");

        // Default L = 32 stays within the quantization bound.
        let plan32 = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let out32 = plan32.forward(&image, &coords).unwrap();
        let err32 = rel_l2(&out32.samples, &exact);
        assert!(
            err32 < core::f64::consts::PI / (2.0 * 2.0 * 32.0),
            "{err32}"
        );
    }

    #[test]
    fn adjoint_engine_choice_does_not_change_result() {
        let n = 32;
        let coords = test_coords(100, 9);
        let values = test_values(100, 10);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let a = plan.adjoint(&coords, &values, &SerialGridder).unwrap();
        let b = plan
            .adjoint(&coords, &values, &SliceDiceGridder::default())
            .unwrap();
        for (x, y) in a.image.iter().zip(&b.image) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn forward_adjoint_inner_product() {
        // ⟨A f, c⟩ ≈ ⟨f, Aᴴ c⟩ for the NuFFT pair (approximate adjoints —
        // both approximate the same NuDFT).
        let n = 16;
        let coords = test_coords(60, 20);
        let c = test_values(60, 21);
        let f = test_values(n * n, 22);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let af = plan.forward(&f, &coords).unwrap().samples;
        let ahc = plan.adjoint(&coords, &c, &SerialGridder).unwrap().image;
        let lhs: C64 = af.iter().zip(&c).map(|(a, b)| *a * b.conj()).sum();
        let rhs: C64 = f.iter().zip(&ahc).map(|(a, b)| *a * b.conj()).sum();
        assert!(
            (lhs - rhs).abs() < 1e-4 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn beatty_low_oversampling_still_accurate() {
        // σ = 1.25 with a Beatty-widened kernel should stay accurate
        // (§II-B: smaller σ needs larger W).
        let n = 32;
        let coords = test_coords(100, 30);
        let values = test_values(100, 31);
        let mut cfg = NufftConfig::with_n(n);
        cfg.sigma = 1.25;
        cfg.width = crate::config::beatty_width(6, 1.25).min(8);
        cfg.table_oversampling = 1024;
        let plan = NufftPlan::<f64, 2>::new(cfg).unwrap();
        let out = plan.adjoint(&coords, &values, &SerialGridder).unwrap();
        let exact = adjoint_nudft(n, &coords, &values, None);
        let err = rel_l2(&out.image, &exact);
        assert!(err < 2e-3, "σ=1.25 adjoint error: {err}");
    }

    #[test]
    fn coordinates_wrap_mod_one() {
        // ν and ν + 1 are the same frequency (torus).
        let n = 16;
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let values = test_values(1, 40);
        let a = plan
            .adjoint(&[[0.3, -0.4]], &values, &SerialGridder)
            .unwrap();
        let b = plan
            .adjoint(&[[1.3, 0.6]], &values, &SerialGridder)
            .unwrap();
        for (x, y) in a.image.iter().zip(&b.image) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn timings_are_populated() {
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(32)).unwrap();
        let coords = test_coords(500, 50);
        let values = test_values(500, 51);
        let out = plan.adjoint(&coords, &values, &SerialGridder).unwrap();
        assert!(out.timings.interp_seconds > 0.0);
        assert!(out.timings.fft_seconds > 0.0);
        assert!(out.timings.total() > 0.0);
        assert!(out.timings.interp_fraction() > 0.0 && out.timings.interp_fraction() < 1.0);
        assert_eq!(out.grid_stats.samples, 500);
    }

    #[test]
    fn adjoint_batch_matches_individual_calls() {
        let n = 16;
        let coords = test_coords(80, 70);
        let a = test_values(80, 71);
        let b = test_values(80, 72);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let batched = plan
            .adjoint_batch(&coords, &[&a, &b], &SerialGridder)
            .unwrap();
        let single_a = plan.adjoint(&coords, &a, &SerialGridder).unwrap();
        let single_b = plan.adjoint(&coords, &b, &SerialGridder).unwrap();
        for (x, y) in batched[0].image.iter().zip(&single_a.image) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
        }
        for (x, y) in batched[1].image.iter().zip(&single_b.image) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
        }
        // Mismatched batch length is rejected.
        let short = vec![jigsaw_num::C64::one(); 3];
        assert!(plan
            .adjoint_batch(&coords, &[&short], &SerialGridder)
            .is_err());
    }

    #[test]
    fn planned_adjoint_batch_is_bitwise_serial() {
        let n = 16;
        let coords = test_coords(90, 80);
        let coils: Vec<Vec<C64>> = (0..5).map(|i| test_values(90, 81 + i)).collect();
        let refs: Vec<&[C64]> = coils.iter().map(|c| c.as_slice()).collect();
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let traj = plan.plan_trajectory(&coords).unwrap();
        assert_eq!(traj.len(), 90);
        let batched = plan.adjoint_batch_planned(&traj, &refs).unwrap();
        assert_eq!(batched.len(), 5);
        for (c, coil) in coils.iter().enumerate() {
            let single = plan.adjoint(&coords, coil, &SerialGridder).unwrap();
            for (x, y) in batched[c].image.iter().zip(&single.image) {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "coil {c}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "coil {c}");
            }
            assert_eq!(
                batched[c].grid_stats.kernel_accumulations,
                single.grid_stats.kernel_accumulations
            );
        }
    }

    #[test]
    fn planned_forward_batch_is_bitwise_forward() {
        let n = 16;
        let coords = test_coords(70, 90);
        let images: Vec<Vec<C64>> = (0..3).map(|i| test_values(n * n, 91 + i)).collect();
        let refs: Vec<&[C64]> = images.iter().map(|c| c.as_slice()).collect();
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let traj = plan.plan_trajectory(&coords).unwrap();
        let batched = plan.forward_batch_planned(&refs, &traj).unwrap();
        for (j, img) in images.iter().enumerate() {
            let single = plan.forward(img, &coords).unwrap();
            for (x, y) in batched[j].samples.iter().zip(&single.samples) {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "image {j}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "image {j}");
            }
        }
    }

    #[test]
    fn planned_batch_edge_cases() {
        let n = 16;
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        // Empty coil list → empty output.
        let coords = test_coords(10, 100);
        let traj = plan.plan_trajectory(&coords).unwrap();
        assert!(plan.adjoint_batch_planned(&traj, &[]).unwrap().is_empty());
        assert!(plan.forward_batch_planned(&[], &traj).unwrap().is_empty());
        // Single-sample trajectory.
        let one = plan.plan_trajectory(&[[0.25, -0.125]]).unwrap();
        assert_eq!(one.len(), 1);
        let v = [C64::one()];
        let out = plan.adjoint_batch_planned(&one, &[&v]).unwrap();
        let single = plan.adjoint(&[[0.25, -0.125]], &v, &SerialGridder).unwrap();
        for (x, y) in out[0].image.iter().zip(&single.image) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
        }
        // Wrong-length coil rejected.
        let bad = vec![C64::one(); 3];
        assert!(plan.adjoint_batch_planned(&traj, &[&bad]).is_err());
        // Trajectory planned against a different geometry rejected.
        let other = NufftPlan::<f64, 2>::new(NufftConfig::with_n(32)).unwrap();
        let foreign = other.plan_trajectory(&coords).unwrap();
        assert!(plan.adjoint_batch_planned(&foreign, &[]).is_err());
        // Non-finite coordinates rejected at planning time.
        assert!(plan.plan_trajectory(&[[f64::NAN, 0.0]]).is_err());
    }

    #[test]
    fn rejects_bad_data() {
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(16)).unwrap();
        assert!(plan.adjoint(&[[0.0, 0.0]], &[], &SerialGridder).is_err());
        assert!(plan
            .adjoint(&[[f64::NAN, 0.0]], &[C64::one()], &SerialGridder)
            .is_err());
        let bad_image = vec![C64::zeroed(); 7];
        assert!(plan.forward(&bad_image, &[[0.0, 0.0]]).is_err());
    }

    #[test]
    fn f32_plan_reasonable_accuracy() {
        let n = 32;
        let coords = test_coords(100, 60);
        let values64 = test_values(100, 61);
        let values32: Vec<jigsaw_num::C32> = values64
            .iter()
            .map(|v| jigsaw_num::C32::from_c64(*v))
            .collect();
        let plan = NufftPlan::<f32, 2>::new(NufftConfig::with_n(n)).unwrap();
        let out = plan.adjoint(&coords, &values32, &SerialGridder).unwrap();
        let exact = adjoint_nudft(n, &coords, &values64, None);
        let out64: Vec<C64> = out.image.iter().map(|z| z.to_c64()).collect();
        let err = rel_l2(&out64, &exact);
        // Bounded by LUT coordinate quantization at L = 32, not by f32.
        assert!(err < 0.02, "f32 adjoint error: {err}");
    }
}
