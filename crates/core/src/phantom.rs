//! The Shepp-Logan phantom — synthetic stand-in for the paper's clinical
//! 2-D liver data set (Otazo et al. \[25\]), which we do not have.
//!
//! The phantom is a sum of ellipses, which has two exact representations:
//!
//! * a rasterized image (for visual/NuDFT-based comparisons), and
//! * an **analytic k-space**: the Fourier transform of a uniform ellipse
//!   is a scaled/rotated `jinc`, so synthetic non-Cartesian acquisitions
//!   can be generated exactly at any trajectory point — the same role the
//!   paper's acquired liver k-space plays, while exercising identical
//!   code paths (random-order non-uniform samples, torus wrap, etc.).
//!
//! A 3-D ellipsoid variant (Kak-Slaney style) supports the 3-D gridding
//! experiments.

use jigsaw_num::special::bessel_j1;
use jigsaw_num::C64;

const TWO_PI: f64 = 2.0 * core::f64::consts::PI;

/// One ellipse: intensity `a` over the region
/// `((x−x0)cosθ + (y−y0)sinθ)²/rx² + (−(x−x0)sinθ + (y−y0)cosθ)²/ry² ≤ 1`
/// in the `[−1, 1]²` field of view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipse {
    /// Additive intensity.
    pub amplitude: f64,
    /// Semi-axis along the (rotated) x direction.
    pub rx: f64,
    /// Semi-axis along the (rotated) y direction.
    pub ry: f64,
    /// Center x ∈ [−1, 1].
    pub x0: f64,
    /// Center y ∈ [−1, 1].
    pub y0: f64,
    /// Rotation angle in radians.
    pub theta: f64,
}

/// A 2-D phantom: a list of ellipses.
#[derive(Debug, Clone, PartialEq)]
pub struct Phantom2d {
    /// Component ellipses (intensities add where they overlap).
    pub ellipses: Vec<Ellipse>,
}

impl Phantom2d {
    /// The standard (high-contrast, "modified") Shepp-Logan phantom.
    pub fn shepp_logan() -> Self {
        // (A, rx, ry, x0, y0, θ°) — modified Shepp-Logan (Toft).
        let spec: [(f64, f64, f64, f64, f64, f64); 10] = [
            (1.0, 0.69, 0.92, 0.0, 0.0, 0.0),
            (-0.8, 0.6624, 0.874, 0.0, -0.0184, 0.0),
            (-0.2, 0.11, 0.31, 0.22, 0.0, -18.0),
            (-0.2, 0.16, 0.41, -0.22, 0.0, 18.0),
            (0.1, 0.21, 0.25, 0.0, 0.35, 0.0),
            (0.1, 0.046, 0.046, 0.0, 0.1, 0.0),
            (0.1, 0.046, 0.046, 0.0, -0.1, 0.0),
            (0.1, 0.046, 0.023, -0.08, -0.605, 0.0),
            (0.1, 0.023, 0.023, 0.0, -0.606, 0.0),
            (0.1, 0.023, 0.046, 0.06, -0.605, 0.0),
        ];
        Phantom2d {
            ellipses: spec
                .iter()
                .map(|&(amplitude, rx, ry, x0, y0, deg)| Ellipse {
                    amplitude,
                    rx,
                    ry,
                    x0,
                    y0,
                    theta: deg.to_radians(),
                })
                .collect(),
        }
    }

    /// An abdominal-slice phantom (large organ cross-section with vessels
    /// and two lesions) — a synthetic stand-in shaped like the paper's
    /// 2-D liver test data \[25\].
    pub fn abdominal() -> Self {
        let spec: [(f64, f64, f64, f64, f64, f64); 9] = [
            (0.9, 0.88, 0.65, 0.0, -0.1, 0.0),     // body outline
            (-0.25, 0.82, 0.58, 0.0, -0.1, 0.0),   // subcutaneous layer
            (0.45, 0.5, 0.38, -0.25, 0.0, 20.0),   // liver lobe
            (0.25, 0.2, 0.28, 0.42, -0.05, -15.0), // spleen/stomach
            (-0.3, 0.05, 0.05, -0.3, 0.1, 0.0),    // vessel
            (-0.3, 0.04, 0.04, -0.12, -0.08, 0.0), // vessel
            (0.35, 0.06, 0.05, -0.38, -0.15, 0.0), // lesion 1
            (0.35, 0.045, 0.06, -0.1, 0.22, 30.0), // lesion 2
            (0.15, 0.12, 0.09, 0.1, -0.42, 0.0),   // kidney
        ];
        Phantom2d {
            ellipses: spec
                .iter()
                .map(|&(amplitude, rx, ry, x0, y0, deg)| Ellipse {
                    amplitude,
                    rx,
                    ry,
                    x0,
                    y0,
                    theta: deg.to_radians(),
                })
                .collect(),
        }
    }

    /// Evaluate the phantom at a continuous point `(x, y) ∈ [−1, 1]²`.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        self.ellipses
            .iter()
            .map(|e| {
                let dx = x - e.x0;
                let dy = y - e.y0;
                let (s, c) = e.theta.sin_cos();
                let u = (dx * c + dy * s) / e.rx;
                let v = (-dx * s + dy * c) / e.ry;
                if u * u + v * v <= 1.0 {
                    e.amplitude
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Rasterize onto an `n × n` grid (row `r` = y, column `c` = x, pixel
    /// centers at `2(c − n/2)/n` so index `n/2` sits exactly on the
    /// origin — the convention that makes [`Phantom2d::kspace`] phase-free),
    /// returned row-major as complex values with zero imaginary part.
    pub fn rasterize(&self, n: usize) -> Vec<C64> {
        let mut img = Vec::with_capacity(n * n);
        for r in 0..n {
            let y = 2.0 * (r as f64 - (n / 2) as f64) / n as f64;
            for c in 0..n {
                let x = 2.0 * (c as f64 - (n / 2) as f64) / n as f64;
                img.push(C64::new(self.eval(x, y), 0.0));
            }
        }
        img
    }

    /// Antialiased rasterization: each pixel averages an `ss × ss`
    /// supersample — a box-filtered phantom whose low-frequency spectrum
    /// matches the continuous transform much more closely than point
    /// sampling (used by the image-quality experiments).
    pub fn rasterize_aa(&self, n: usize, ss: usize) -> Vec<C64> {
        assert!(ss >= 1);
        let mut img = Vec::with_capacity(n * n);
        let inv = 1.0 / (ss as f64);
        for r in 0..n {
            let y0 = 2.0 * (r as f64 - (n / 2) as f64) / n as f64;
            for c in 0..n {
                let x0 = 2.0 * (c as f64 - (n / 2) as f64) / n as f64;
                let mut acc = 0.0;
                for sy in 0..ss {
                    let y = y0 + (sy as f64 + 0.5) * inv * 2.0 / n as f64 - 1.0 / n as f64;
                    for sx in 0..ss {
                        let x = x0 + (sx as f64 + 0.5) * inv * 2.0 / n as f64 - 1.0 / n as f64;
                        acc += self.eval(x, y);
                    }
                }
                img.push(C64::new(acc * inv * inv, 0.0));
            }
        }
        img
    }

    /// Analytic k-space of the phantom at trajectory points `coords`
    /// (cycles per pixel index, as consumed by [`crate::NufftPlan`]),
    /// for an `n × n` image.
    ///
    /// The continuous phantom `f(x, y)` lives on `[−1, 1]²`; a pixel index
    /// `k` corresponds to spatial position `x = 2k/n`, so the discrete
    /// spectrum at `ν` cycles/pixel approximates `(n/2)² F(n·ν/2)` where
    /// `F` is the continuous 2-D Fourier transform. For an ellipse,
    /// `F(k) = A·rx·ry·π·jinc(2πρ)·e^{−2πi k·c}` with
    /// `ρ = |(rx·k'_x, ry·k'_y)|` and `k'` the rotated frequency.
    /// Coordinate order matches the image layout: `coords[j] = [ν_row(y), ν_col(x)]`.
    pub fn kspace(&self, n: usize, coords: &[[f64; 2]]) -> Vec<C64> {
        let scale = (n as f64 / 2.0).powi(2);
        coords
            .iter()
            .map(|&[nu_y, nu_x]| {
                // Continuous frequency (cycles per unit of the [−1,1] FOV).
                let kx = n as f64 * nu_x / 2.0;
                let ky = n as f64 * nu_y / 2.0;
                let mut acc = C64::zeroed();
                for e in &self.ellipses {
                    let (s, c) = e.theta.sin_cos();
                    let kxp = kx * c + ky * s;
                    let kyp = -kx * s + ky * c;
                    let rho = ((e.rx * kxp).powi(2) + (e.ry * kyp).powi(2)).sqrt();
                    let lobe = if rho < 1e-10 {
                        1.0
                    } else {
                        2.0 * bessel_j1(TWO_PI * rho) / (TWO_PI * rho)
                    };
                    let mag = e.amplitude * e.rx * e.ry * core::f64::consts::PI * lobe;
                    let phase = -TWO_PI * (kx * e.x0 + ky * e.y0);
                    acc += C64::cis(phase).scale(mag);
                }
                acc.scale(scale)
            })
            .collect()
    }
}

/// One ellipsoid of a 3-D phantom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipsoid {
    /// Additive intensity.
    pub amplitude: f64,
    /// Semi-axes.
    pub r: [f64; 3],
    /// Center.
    pub c: [f64; 3],
}

/// Axis-aligned 3-D phantom (a compact Kak-Slaney-style head model).
#[derive(Debug, Clone, PartialEq)]
pub struct Phantom3d {
    /// Component ellipsoids.
    pub ellipsoids: Vec<Ellipsoid>,
}

impl Phantom3d {
    /// A simple three-shell 3-D phantom.
    pub fn default_head() -> Self {
        Phantom3d {
            ellipsoids: vec![
                Ellipsoid {
                    amplitude: 1.0,
                    r: [0.69, 0.92, 0.8],
                    c: [0.0, 0.0, 0.0],
                },
                Ellipsoid {
                    amplitude: -0.8,
                    r: [0.66, 0.87, 0.75],
                    c: [0.0, -0.02, 0.0],
                },
                Ellipsoid {
                    amplitude: 0.2,
                    r: [0.2, 0.3, 0.25],
                    c: [0.2, 0.1, -0.1],
                },
            ],
        }
    }

    /// Evaluate at `(x, y, z) ∈ [−1, 1]³`.
    pub fn eval(&self, p: [f64; 3]) -> f64 {
        self.ellipsoids
            .iter()
            .map(|e| {
                let q: f64 = (0..3).map(|d| ((p[d] - e.c[d]) / e.r[d]).powi(2)).sum();
                if q <= 1.0 {
                    e.amplitude
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Rasterize onto an `n³` grid, row-major `[z, y, x]` (origin at index
    /// `n/2` per dim, matching [`Phantom3d::kspace`]).
    pub fn rasterize(&self, n: usize) -> Vec<C64> {
        let coord = |i: usize| 2.0 * (i as f64 - (n / 2) as f64) / n as f64;
        let mut img = Vec::with_capacity(n * n * n);
        for zi in 0..n {
            for yi in 0..n {
                for xi in 0..n {
                    img.push(C64::new(self.eval([coord(xi), coord(yi), coord(zi)]), 0.0));
                }
            }
        }
        img
    }

    /// Analytic k-space at `coords` (cycles/pixel, `[ν_z, ν_y, ν_x]`) for
    /// an `n³` image. The FT of a uniform unit ball at radial frequency ρ
    /// is `(sin(2πρ) − 2πρ·cos(2πρ)) / (2π²ρ³)`.
    pub fn kspace(&self, n: usize, coords: &[[f64; 3]]) -> Vec<C64> {
        let scale = (n as f64 / 2.0).powi(3);
        coords
            .iter()
            .map(|&[nu_z, nu_y, nu_x]| {
                let k = [
                    n as f64 * nu_x / 2.0,
                    n as f64 * nu_y / 2.0,
                    n as f64 * nu_z / 2.0,
                ];
                let mut acc = C64::zeroed();
                for e in &self.ellipsoids {
                    let rho = ((e.r[0] * k[0]).powi(2)
                        + (e.r[1] * k[1]).powi(2)
                        + (e.r[2] * k[2]).powi(2))
                    .sqrt();
                    let lobe = if rho < 1e-8 {
                        4.0 * core::f64::consts::PI / 3.0
                    } else {
                        let t = TWO_PI * rho;
                        (t.sin() - t * t.cos())
                            / (2.0 * core::f64::consts::PI.powi(2) * rho.powi(3))
                    };
                    let vol = e.amplitude * e.r[0] * e.r[1] * e.r[2];
                    let phase = -TWO_PI * (k[0] * e.c[0] + k[1] * e.c[1] + k[2] * e.c[2]);
                    acc += C64::cis(phase).scale(vol * lobe);
                }
                acc.scale(scale)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rel_l2;
    use crate::nudft::forward_nudft;

    #[test]
    fn shepp_logan_has_expected_structure() {
        let p = Phantom2d::shepp_logan();
        // Center of the head: inside big ellipse (1.0) + brain (−0.8) +
        // nothing else at exactly (0, 0.1) also hits a small +0.1 blob.
        assert!((p.eval(0.0, 0.0) - 0.2).abs() < 1e-12); // 1 − 0.8
                                                         // Outside the skull: zero.
        assert_eq!(p.eval(0.95, 0.95), 0.0);
        // Skull rim (inside outer, outside inner): 1.0.
        assert!((p.eval(0.0, 0.9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abdominal_phantom_is_structured() {
        let p = Phantom2d::abdominal();
        // Inside the body but outside organs: body + subcutaneous.
        let bg = p.eval(0.5, -0.5);
        assert!((bg - 0.65).abs() < 1e-12, "{bg}");
        // Outside the body: zero.
        assert_eq!(p.eval(0.95, 0.9), 0.0);
        // Lesions are brighter than the surrounding liver.
        let liver = p.eval(-0.2, -0.05);
        let lesion = p.eval(-0.38, -0.15);
        assert!(lesion > liver, "{lesion} vs {liver}");
        // Its analytic k-space agrees with the rasterized NuDFT at DC.
        let ks = p.kspace(32, &[[0.0, 0.0]]);
        let img = p.rasterize_aa(32, 4);
        let dc: f64 = img.iter().map(|z| z.re).sum();
        assert!((ks[0].re - dc).abs() / dc.abs() < 0.05);
    }

    #[test]
    fn rasterize_is_real_and_bounded() {
        let img = Phantom2d::shepp_logan().rasterize(64);
        assert_eq!(img.len(), 64 * 64);
        for z in &img {
            assert_eq!(z.im, 0.0);
            assert!(z.re >= -0.01 && z.re <= 1.01);
        }
        // Nontrivial content.
        assert!(img.iter().any(|z| z.re > 0.5));
    }

    #[test]
    fn dc_sample_equals_phantom_area() {
        // k-space at ν = 0 must equal (n/2)²·Σ A·π·rx·ry.
        let p = Phantom2d::shepp_logan();
        let n = 32;
        let ks = p.kspace(n, &[[0.0, 0.0]]);
        let area: f64 = p
            .ellipses
            .iter()
            .map(|e| e.amplitude * core::f64::consts::PI * e.rx * e.ry)
            .sum();
        let want = area * (n as f64 / 2.0).powi(2);
        assert!((ks[0].re - want).abs() < 1e-9 * want.abs());
        assert!(ks[0].im.abs() < 1e-9);
    }

    #[test]
    fn analytic_kspace_approximates_nudft_of_raster() {
        // The continuous FT sampled at low frequencies should match the
        // NuDFT of the rasterized phantom to within discretization error.
        let p = Phantom2d::shepp_logan();
        let n = 64;
        let img = p.rasterize_aa(n, 4);
        // Low-frequency trajectory points (|ν| ≤ 0.1 → features ≫ pixel).
        let coords: Vec<[f64; 2]> = (0..24)
            .map(|i| {
                let th = i as f64 * 0.7;
                [0.08 * th.sin(), 0.08 * th.cos()]
            })
            .collect();
        let analytic = p.kspace(n, &coords);
        let discrete = forward_nudft(n, &img, &coords, None);
        // Rasterization error ~ O(1/n) relative; antialiasing reduces it.
        let err = rel_l2(&analytic, &discrete);
        assert!(err < 0.05, "analytic vs rasterized NuDFT error: {err}");
        // Antialiasing must beat point sampling.
        let img_point = p.rasterize(n);
        let discrete_point = forward_nudft(n, &img_point, &coords, None);
        let err_point = rel_l2(&analytic, &discrete_point);
        assert!(err < err_point, "aa {err} vs point {err_point}");
    }

    #[test]
    fn kspace_is_conjugate_symmetric() {
        // Real phantom ⇒ F(−ν) = conj(F(ν)).
        let p = Phantom2d::shepp_logan();
        let coords = [[0.13, -0.21], [-0.13, 0.21]];
        let ks = p.kspace(64, &coords);
        assert!((ks[0] - ks[1].conj()).abs() < 1e-9 * ks[0].abs().max(1.0));
    }

    #[test]
    fn phantom3d_center_and_outside() {
        let p = Phantom3d::default_head();
        assert!((p.eval([0.0, 0.0, 0.0]) - 0.2).abs() < 1e-12);
        assert_eq!(p.eval([0.99, 0.99, 0.99]), 0.0);
    }

    #[test]
    fn phantom3d_dc_equals_volume() {
        let p = Phantom3d::default_head();
        let n = 16;
        let ks = p.kspace(n, &[[0.0, 0.0, 0.0]]);
        let vol: f64 = p
            .ellipsoids
            .iter()
            .map(|e| e.amplitude * 4.0 / 3.0 * core::f64::consts::PI * e.r[0] * e.r[1] * e.r[2])
            .sum();
        let want = vol * (n as f64 / 2.0).powi(3);
        assert!(
            (ks[0].re - want).abs() < 1e-9 * want.abs(),
            "{} vs {want}",
            ks[0].re
        );
    }

    #[test]
    fn phantom3d_raster_matches_low_freq_nudft() {
        let p = Phantom3d::default_head();
        let n = 24;
        let img = p.rasterize(n);
        let coords: Vec<[f64; 3]> = (0..10)
            .map(|i| {
                let t = i as f64;
                [0.05 * t.sin(), 0.05 * t.cos(), 0.03 * (t * 0.5).sin()]
            })
            .collect();
        let analytic = p.kspace(n, &coords);
        let discrete = forward_nudft(n, &img, &coords, None);
        let err = rel_l2(&analytic, &discrete);
        assert!(err < 0.15, "3d analytic vs raster error: {err}");
    }
}
