//! Instrumentation counters for the gridding engines.
//!
//! §III motivates Slice-and-Dice with an operation-count argument: a naive
//! output-parallel gridder performs `M·N^d` boundary checks, binning
//! shrinks that to `Σ|bin|·B^d` but re-processes straddling samples and
//! needs a presort pass, while Slice-and-Dice performs exactly `M·T^d`
//! checks with no presort and no duplicates. Every engine reports these
//! counts so the benches can print the paper's complexity table next to
//! the measured wall-clock times.

/// Counters and timings returned by one gridding invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GridStats {
    /// Number of distinct non-uniform input samples `M`.
    pub samples: usize,
    /// Samples actually processed, *including* duplicates — for binning
    /// this counts a straddling sample once per bin it lands in (Fig. 3a
    /// processes 16 sample instances for 6 samples).
    pub samples_processed: usize,
    /// Logical boundary checks performed by the engine's parallel model
    /// (`M·N^d` naive, `Σ|bin|·B^d` binned, `M·T^d` Slice-and-Dice, 0 for
    /// the purely input-driven serial gridder).
    pub boundary_checks: u64,
    /// Kernel multiply-accumulate operations (one per affected grid
    /// point, i.e. `W^d` per processed sample).
    pub kernel_accumulations: u64,
    /// Seconds spent pre-sorting samples into bins (zero for every engine
    /// except binning — eliminating this step is a headline claim).
    pub presort_seconds: f64,
    /// Seconds spent in the gridding pass proper.
    pub gridding_seconds: f64,
}

impl GridStats {
    /// Total wall-clock seconds (presort + gridding).
    pub fn total_seconds(&self) -> f64 {
        self.presort_seconds + self.gridding_seconds
    }

    /// Duplicate sample-processing factor (1.0 = no duplication).
    pub fn duplication_factor(&self) -> f64 {
        if self.samples == 0 {
            1.0
        } else {
            self.samples_processed as f64 / self.samples as f64
        }
    }

    /// Merge counters from a parallel worker (times take the max, counts
    /// add — workers run concurrently).
    pub fn merge_parallel(&mut self, other: &GridStats) {
        self.samples += other.samples;
        self.samples_processed += other.samples_processed;
        self.boundary_checks += other.boundary_checks;
        self.kernel_accumulations += other.kernel_accumulations;
        self.presort_seconds = self.presort_seconds.max(other.presort_seconds);
        self.gridding_seconds = self.gridding_seconds.max(other.gridding_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplication_factor() {
        let s = GridStats {
            samples: 6,
            samples_processed: 16,
            ..Default::default()
        };
        // Fig. 3a's example: 6 samples, 16 processed instances.
        assert!((s.duplication_factor() - 16.0 / 6.0).abs() < 1e-12);
        assert_eq!(GridStats::default().duplication_factor(), 1.0);
    }

    #[test]
    fn merge_parallel_semantics() {
        let mut a = GridStats {
            samples: 10,
            samples_processed: 10,
            boundary_checks: 100,
            kernel_accumulations: 360,
            presort_seconds: 0.0,
            gridding_seconds: 1.5,
        };
        let b = GridStats {
            samples: 20,
            samples_processed: 20,
            boundary_checks: 200,
            kernel_accumulations: 720,
            presort_seconds: 0.0,
            gridding_seconds: 2.0,
        };
        a.merge_parallel(&b);
        assert_eq!(a.samples, 30);
        assert_eq!(a.boundary_checks, 300);
        assert_eq!(a.gridding_seconds, 2.0); // concurrent → max
    }

    #[test]
    fn total_includes_presort() {
        let s = GridStats {
            presort_seconds: 0.5,
            gridding_seconds: 1.0,
            ..Default::default()
        };
        assert_eq!(s.total_seconds(), 1.5);
    }
}
