//! Instrumentation counters for the gridding engines.
//!
//! §III motivates Slice-and-Dice with an operation-count argument: a naive
//! output-parallel gridder performs `M·N^d` boundary checks, binning
//! shrinks that to `Σ|bin|·B^d` but re-processes straddling samples and
//! needs a presort pass, while Slice-and-Dice performs exactly `M·T^d`
//! checks with no presort and no duplicates. Every engine reports these
//! counts so the benches can print the paper's complexity table next to
//! the measured wall-clock times.
//!
//! `GridStats` predates the [`jigsaw_telemetry`] registry; so the two
//! systems don't drift apart, [`GridStats::mirror`] publishes every
//! counter into the registry under `grid.<engine>.*` names (counts
//! exactly, times as nanosecond histogram samples).

use jigsaw_telemetry as telemetry;

/// Counters and timings returned by one gridding invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GridStats {
    /// Number of distinct non-uniform input samples `M`.
    pub samples: usize,
    /// Samples actually processed, *including* duplicates — for binning
    /// this counts a straddling sample once per bin it lands in (Fig. 3a
    /// processes 16 sample instances for 6 samples).
    pub samples_processed: usize,
    /// Logical boundary checks performed by the engine's parallel model
    /// (`M·N^d` naive, `Σ|bin|·B^d` binned, `M·T^d` Slice-and-Dice, 0 for
    /// the purely input-driven serial gridder).
    pub boundary_checks: u64,
    /// Kernel multiply-accumulate operations (one per affected grid
    /// point, i.e. `W^d` per processed sample).
    pub kernel_accumulations: u64,
    /// Seconds spent pre-sorting samples into bins (zero for every engine
    /// except binning — eliminating this step is a headline claim).
    pub presort_seconds: f64,
    /// Seconds spent in the gridding pass proper.
    pub gridding_seconds: f64,
    /// Seconds spent in the uniform FFT stage of the surrounding NuFFT
    /// (zero for a bare gridding call). Populated by the NuFFT plan so
    /// per-phase times add up to the end-to-end wall clock instead of
    /// silently dropping the FFT. Strictly the FFT itself — apodization
    /// is reported separately in [`GridStats::apod_seconds`], because the
    /// FFT/gridding time ratio is the paper's central statistic and
    /// folding apodization in would inflate it.
    pub fft_seconds: f64,
    /// Seconds spent in apodization correction + grid extraction or
    /// embedding around the FFT (zero for a bare gridding call).
    pub apod_seconds: f64,
}

impl GridStats {
    /// Total wall-clock seconds across all recorded phases
    /// (presort + gridding + FFT + apodization).
    pub fn total_seconds(&self) -> f64 {
        self.presort_seconds + self.gridding_seconds + self.fft_seconds + self.apod_seconds
    }

    /// Duplicate sample-processing factor (1.0 = no duplication).
    pub fn duplication_factor(&self) -> f64 {
        if self.samples == 0 {
            1.0
        } else {
            self.samples_processed as f64 / self.samples as f64
        }
    }

    /// Merge counters from a parallel worker (times take the max, counts
    /// add — workers run concurrently).
    pub fn merge_parallel(&mut self, other: &GridStats) {
        self.samples += other.samples;
        self.samples_processed += other.samples_processed;
        self.boundary_checks += other.boundary_checks;
        self.kernel_accumulations += other.kernel_accumulations;
        self.presort_seconds = self.presort_seconds.max(other.presort_seconds);
        self.gridding_seconds = self.gridding_seconds.max(other.gridding_seconds);
        self.fft_seconds = self.fft_seconds.max(other.fft_seconds);
        self.apod_seconds = self.apod_seconds.max(other.apod_seconds);
    }

    /// Mirror these stats into the global telemetry registry under
    /// `grid.<engine>.*` (no-op when telemetry is disabled). Counts are
    /// added to counters bit-exactly; phase times are recorded as
    /// nanosecond samples in histograms.
    pub fn mirror(&self, engine: &str) {
        if !telemetry::enabled() {
            return;
        }
        self.mirror_to(telemetry::global(), engine);
    }

    /// [`GridStats::mirror`] into an explicit registry (testable without
    /// global state).
    pub fn mirror_to(&self, registry: &telemetry::Registry, engine: &str) {
        let c = |metric: &str| registry.counter(&format!("grid.{engine}.{metric}"));
        c("samples").add(self.samples as u64);
        c("samples_processed").add(self.samples_processed as u64);
        c("boundary_checks").add(self.boundary_checks);
        c("kernel_accumulations").add(self.kernel_accumulations);
        let h = |metric: &str| registry.histogram(&format!("grid.{engine}.{metric}"));
        h("presort_ns").record(secs_to_ns(self.presort_seconds));
        h("gridding_ns").record(secs_to_ns(self.gridding_seconds));
        if self.fft_seconds > 0.0 {
            h("fft_ns").record(secs_to_ns(self.fft_seconds));
        }
        if self.apod_seconds > 0.0 {
            h("apod_ns").record(secs_to_ns(self.apod_seconds));
        }
    }
}

fn secs_to_ns(s: f64) -> u64 {
    (s.max(0.0) * 1e9).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplication_factor() {
        let s = GridStats {
            samples: 6,
            samples_processed: 16,
            ..Default::default()
        };
        // Fig. 3a's example: 6 samples, 16 processed instances.
        assert!((s.duplication_factor() - 16.0 / 6.0).abs() < 1e-12);
        assert_eq!(GridStats::default().duplication_factor(), 1.0);
    }

    #[test]
    fn merge_parallel_semantics() {
        let mut a = GridStats {
            samples: 10,
            samples_processed: 10,
            boundary_checks: 100,
            kernel_accumulations: 360,
            presort_seconds: 0.0,
            gridding_seconds: 1.5,
            fft_seconds: 0.1,
            apod_seconds: 0.02,
        };
        let b = GridStats {
            samples: 20,
            samples_processed: 20,
            boundary_checks: 200,
            kernel_accumulations: 720,
            presort_seconds: 0.0,
            gridding_seconds: 2.0,
            fft_seconds: 0.3,
            apod_seconds: 0.01,
        };
        a.merge_parallel(&b);
        assert_eq!(a.samples, 30);
        assert_eq!(a.boundary_checks, 300);
        assert_eq!(a.gridding_seconds, 2.0); // concurrent → max
        assert_eq!(a.fft_seconds, 0.3);
        assert_eq!(a.apod_seconds, 0.02); // max, not sum
    }

    #[test]
    fn total_includes_every_phase() {
        let s = GridStats {
            presort_seconds: 0.5,
            gridding_seconds: 1.0,
            fft_seconds: 0.25,
            apod_seconds: 0.125,
            ..Default::default()
        };
        assert_eq!(s.total_seconds(), 1.875);
    }

    #[test]
    fn mirror_is_bitwise_for_counts() {
        let s = GridStats {
            samples: 4096,
            samples_processed: 5000,
            boundary_checks: 262_144,
            kernel_accumulations: 147_456,
            presort_seconds: 0.001,
            gridding_seconds: 0.002,
            fft_seconds: 0.0005,
            apod_seconds: 0.0002,
        };
        let reg = telemetry::Registry::new();
        s.mirror_to(&reg, "binned");
        s.mirror_to(&reg, "binned"); // counters accumulate across calls
        let snap = reg.snapshot();
        assert_eq!(snap.counter("grid.binned.samples"), Some(2 * 4096));
        assert_eq!(snap.counter("grid.binned.samples_processed"), Some(10_000));
        assert_eq!(
            snap.counter("grid.binned.boundary_checks"),
            Some(2 * 262_144)
        );
        assert_eq!(
            snap.counter("grid.binned.kernel_accumulations"),
            Some(2 * 147_456)
        );
        let h = snap.histogram("grid.binned.gridding_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 2 * 2_000_000);
        assert_eq!(
            snap.histogram("grid.binned.fft_ns").map(|h| h.sum),
            Some(2 * 500_000)
        );
        assert_eq!(
            snap.histogram("grid.binned.apod_ns").map(|h| h.sum),
            Some(2 * 200_000)
        );
    }

    #[test]
    fn mirror_skips_fft_histogram_for_bare_gridding() {
        let s = GridStats {
            samples: 1,
            gridding_seconds: 0.001,
            ..Default::default()
        };
        let reg = telemetry::Registry::new();
        s.mirror_to(&reg, "naive");
        let snap = reg.snapshot();
        assert!(snap.histogram("grid.naive.fft_ns").is_none());
        assert!(snap.histogram("grid.naive.apod_ns").is_none());
        assert!(snap.histogram("grid.naive.gridding_ns").is_some());
    }
}
