//! Interpolation window functions and their Fourier transforms.
//!
//! The gridding step convolves the non-uniform samples with a compactly
//! supported window `φ` of width `W` (§II-B: "the interpolation kernel can
//! be one of a variety of windowing functions, such as Kaiser-Bessel,
//! Gaussian, B-spline, Sinc, etc."). After the FFT, the image must be
//! divided by the window's Fourier transform `φ̂` (apodization correction).
//!
//! All kernels are evaluated on the *centered* argument `t ∈ [−W/2, W/2]`
//! in oversampled-grid units and are separable across dimensions.

use jigsaw_num::special::{bessel_i0, sinc};

/// The interpolation window family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelKind {
    /// Kaiser-Bessel with the Beatty-optimal shape parameter for the
    /// configured (W, σ) — the paper's choice. Resolved via
    /// [`KernelKind::resolve`].
    Auto,
    /// Kaiser-Bessel window `I0(β√(1−(2t/W)²))/I0(β)`.
    KaiserBessel {
        /// Shape parameter β.
        beta: f64,
    },
    /// Truncated Gaussian `exp(−t²/(2s²))`.
    Gaussian {
        /// Standard deviation `s` in grid units.
        s: f64,
    },
    /// Linear (triangle / first-order B-spline) window `max(0, 1 − |2t/W|)`.
    Triangle,
    /// Two-term cosine (Hann) window `½(1 + cos(2πt/W))`.
    Cosine,
    /// Cubic B-spline `B₃` scaled to the window width (§II-B lists
    /// B-splines among the standard choices).
    BSpline,
    /// Truncated sinc `sinc(2σ_eff·t/W)` windowed by a Hann taper — the
    /// "ideal" low-pass interpolator cut to finite support.
    Sinc,
}

impl KernelKind {
    /// Replace [`KernelKind::Auto`] with a Kaiser-Bessel kernel using the
    /// Beatty shape parameter for window width `w` and oversampling
    /// `sigma`: `β = π√((W/σ)²(σ−½)² − 0.8)` (Beatty et al. 2005, the rule
    /// the paper cites for its accuracy/oversampling trade-off).
    pub fn resolve(self, w: usize, sigma: f64) -> KernelKind {
        match self {
            KernelKind::Auto => KernelKind::KaiserBessel {
                beta: beatty_beta(w, sigma),
            },
            other => other,
        }
    }

    /// Evaluate the window at centered offset `t` (grid units). Returns 0
    /// outside the support `|t| > W/2`.
    pub fn eval(&self, t: f64, w: usize) -> f64 {
        let half = w as f64 / 2.0;
        if t.abs() > half {
            return 0.0;
        }
        match *self {
            KernelKind::Auto => panic!("resolve() the kernel before evaluating"),
            KernelKind::KaiserBessel { beta } => {
                let u = 2.0 * t / w as f64;
                let arg = (1.0 - u * u).max(0.0).sqrt();
                bessel_i0(beta * arg) / bessel_i0(beta)
            }
            KernelKind::Gaussian { s } => (-t * t / (2.0 * s * s)).exp(),
            KernelKind::Triangle => 1.0 - (2.0 * t / w as f64).abs(),
            KernelKind::Cosine => 0.5 * (1.0 + (2.0 * core::f64::consts::PI * t / w as f64).cos()),
            KernelKind::BSpline => {
                // Cubic B-spline on [−2, 2], scaled so support = [−W/2, W/2].
                let x = 4.0 * t.abs() / w as f64; // |x| ≤ 2 inside support
                if x < 1.0 {
                    2.0 / 3.0 - x * x + x * x * x / 2.0
                } else if x < 2.0 {
                    (2.0 - x).powi(3) / 6.0
                } else {
                    0.0
                }
            }
            KernelKind::Sinc => {
                let taper = 0.5 * (1.0 + (2.0 * core::f64::consts::PI * t / w as f64).cos());
                sinc(2.0 * t / w as f64 * 2.0) * taper
            }
        }
    }

    /// Continuous Fourier transform of the window evaluated at frequency
    /// `nu` (cycles per grid unit): `φ̂(ν) = ∫ φ(t) e^{−2πiνt} dt` (real,
    /// since all windows are even).
    ///
    /// Kaiser-Bessel and Gaussian use their analytic transforms; the
    /// remaining windows use adaptive Simpson quadrature over the support
    /// (exactness is verified against quadrature in tests for the
    /// analytic cases too).
    pub fn ft(&self, nu: f64, w: usize) -> f64 {
        match *self {
            KernelKind::Auto => panic!("resolve() the kernel before evaluating"),
            KernelKind::KaiserBessel { beta } => kb_ft(nu, w, beta),
            KernelKind::Gaussian { s } => {
                // FT of the *untruncated* Gaussian; truncation error is
                // negligible for the s used in practice (s ≲ W/6).
                let two_pi = 2.0 * core::f64::consts::PI;
                s * (two_pi).sqrt() * (-(two_pi * two_pi) * nu * nu * s * s / 2.0).exp()
            }
            KernelKind::Triangle => {
                let half = w as f64 / 2.0;
                half * sinc(half * nu).powi(2)
            }
            KernelKind::Cosine => self.ft_quadrature(nu, w),
            KernelKind::BSpline => {
                // FT of B₃(4t/W) = (W/4)·sinc⁴(Wν/4).
                let q = w as f64 / 4.0;
                q * sinc(q * nu).powi(4)
            }
            KernelKind::Sinc => self.ft_quadrature(nu, w),
        }
    }

    /// Numerical Fourier transform via composite Simpson quadrature — the
    /// fallback used for windows without a closed form, and the oracle the
    /// analytic forms are tested against.
    pub fn ft_quadrature(&self, nu: f64, w: usize) -> f64 {
        // The integrand φ(t)cos(2πνt) oscillates with period 1/ν; resolve
        // both the window and the oscillation.
        let half = w as f64 / 2.0;
        let oscillations = (nu.abs() * w as f64).ceil() as usize + 1;
        let n = (1024 * oscillations.max(4))
            .next_power_of_two()
            .min(1 << 20);
        let h = 2.0 * half / n as f64;
        let f = |t: f64| self.eval(t, w) * (2.0 * core::f64::consts::PI * nu * t).cos();
        let mut sum = f(-half) + f(half);
        for i in 1..n {
            let t = -half + i as f64 * h;
            sum += f(t) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        sum * h / 3.0
    }
}

/// Beatty et al.'s Kaiser-Bessel shape parameter:
/// `β = π√((W/σ)²(σ−½)² − 0.8)`.
pub fn beatty_beta(w: usize, sigma: f64) -> f64 {
    let wf = w as f64;
    let inner = (wf / sigma).powi(2) * (sigma - 0.5).powi(2) - 0.8;
    core::f64::consts::PI * inner.max(0.0).sqrt()
}

/// Analytic Fourier transform of the Kaiser-Bessel window
/// (normalized by `I0(β)` to match [`KernelKind::eval`]):
///
/// `φ̂(ν) = (W/I0(β)) · sinh(√(β² − (πWν)²)) / √(β² − (πWν)²)`,
/// with `sinh → sin` when the radicand turns negative.
fn kb_ft(nu: f64, w: usize, beta: f64) -> f64 {
    let wf = w as f64;
    let x = core::f64::consts::PI * wf * nu;
    let radicand = beta * beta - x * x;
    let core = if radicand > 0.0 {
        let r = radicand.sqrt();
        jigsaw_num::special::sinhc(r)
    } else {
        let r = (-radicand).sqrt();
        jigsaw_num::special::sinxc(r)
    };
    wf * core / bessel_i0(beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<(KernelKind, usize)> {
        vec![
            (KernelKind::Auto.resolve(6, 2.0), 6),
            (KernelKind::KaiserBessel { beta: 8.0 }, 4),
            (KernelKind::Gaussian { s: 0.6 }, 6),
            (KernelKind::Triangle, 4),
            (KernelKind::Cosine, 6),
            (KernelKind::BSpline, 8),
            (KernelKind::Sinc, 6),
        ]
    }

    #[test]
    fn windows_are_even_and_peak_at_center() {
        for (k, w) in kernels() {
            for i in 1..20 {
                let t = i as f64 * 0.07 * w as f64 / 2.0 / 1.4;
                assert!(
                    (k.eval(t, w) - k.eval(-t, w)).abs() < 1e-14,
                    "{k:?} not even at {t}"
                );
                assert!(k.eval(t, w) <= k.eval(0.0, w) + 1e-14, "{k:?} not peaked");
            }
            assert!(k.eval(0.0, w) > 0.0);
        }
    }

    #[test]
    fn zero_outside_support() {
        for (k, w) in kernels() {
            assert_eq!(k.eval(w as f64 / 2.0 + 0.001, w), 0.0);
            assert_eq!(k.eval(-(w as f64) / 2.0 - 5.0, w), 0.0);
        }
    }

    #[test]
    fn kb_normalized_to_one_at_center() {
        let k = KernelKind::Auto.resolve(6, 2.0);
        assert!((k.eval(0.0, 6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn beatty_beta_reference_value() {
        // W = 6, σ = 2: β = π√(9·2.25 − 0.8) = π√19.45 ≈ 13.8551.
        let b = beatty_beta(6, 2.0);
        assert!((b - core::f64::consts::PI * (19.45f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn analytic_ft_matches_quadrature_kb() {
        let k = KernelKind::Auto.resolve(6, 2.0);
        for i in 0..25 {
            let nu = i as f64 * 0.02; // up to 0.48 cycles/unit
            let analytic = k.ft(nu, 6);
            let numeric = k.ft_quadrature(nu, 6);
            // The I0 polynomial approximation limits agreement to ~1e-7.
            assert!(
                (analytic - numeric).abs() < 3e-7 * k.ft(0.0, 6).abs().max(1.0),
                "nu={nu}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn analytic_ft_matches_quadrature_triangle() {
        let k = KernelKind::Triangle;
        for i in 0..20 {
            let nu = i as f64 * 0.025;
            assert!((k.ft(nu, 4) - k.ft_quadrature(nu, 4)).abs() < 1e-8);
        }
    }

    #[test]
    fn analytic_ft_matches_quadrature_bspline() {
        let k = KernelKind::BSpline;
        for i in 0..20 {
            let nu = i as f64 * 0.025;
            assert!(
                (k.ft(nu, 8) - k.ft_quadrature(nu, 8)).abs() < 1e-8,
                "nu={nu}: {} vs {}",
                k.ft(nu, 8),
                k.ft_quadrature(nu, 8)
            );
        }
    }

    #[test]
    fn bspline_partition_of_unity() {
        // Cubic B-splines on an integer lattice sum to 1: with support
        // scaled to W = 8, shifts by W/4 = 2 tile the line.
        let k = KernelKind::BSpline;
        for i in 0..40 {
            let t = -2.0 + i as f64 * 0.1;
            let total: f64 = (-4..=4).map(|s| k.eval(t + 2.0 * s as f64, 8)).sum();
            assert!((total - 1.0).abs() < 1e-12, "t={t}: {total}");
        }
    }

    #[test]
    fn analytic_ft_matches_quadrature_gaussian() {
        // Narrow Gaussian so truncation at W/2 = 3 is negligible.
        let k = KernelKind::Gaussian { s: 0.6 };
        for i in 0..20 {
            let nu = i as f64 * 0.025;
            assert!(
                (k.ft(nu, 6) - k.ft_quadrature(nu, 6)).abs() < 1e-6,
                "nu={nu}"
            );
        }
    }

    #[test]
    fn ft_at_zero_is_window_area() {
        for (k, w) in kernels() {
            // Riemann-sum of the window.
            let n = 20000;
            let h = w as f64 / n as f64;
            let area: f64 = (0..n)
                .map(|i| k.eval(-(w as f64) / 2.0 + (i as f64 + 0.5) * h, w) * h)
                .sum();
            assert!(
                (k.ft(0.0, w) - area).abs() < 1e-4 * area.max(1e-9),
                "{k:?}: ft(0)={} area={area}",
                k.ft(0.0, w)
            );
        }
    }

    #[test]
    fn ft_decays_beyond_passband_kb() {
        // The KB transform should be strongly attenuated past ν ≈ β/(πW),
        // which is what makes the σN grid alias-safe.
        let k = KernelKind::Auto.resolve(6, 2.0);
        let dc = k.ft(0.0, 6);
        let edge = k.ft(0.75, 6).abs(); // beyond the [−½, ½]/σ passband
        assert!(edge / dc < 1e-3, "stopband leakage {}", edge / dc);
    }

    #[test]
    #[should_panic(expected = "resolve()")]
    fn auto_kernel_must_be_resolved() {
        KernelKind::Auto.eval(0.0, 6);
    }
}
