//! # jigsaw-core — Slice-and-Dice NuFFT
//!
//! A from-scratch implementation of the Non-uniform Fast Fourier Transform
//! centered on the **Slice-and-Dice** gridding model of West, Fessler &
//! Wenisch (IPDPS 2021), together with every baseline the paper compares
//! against.
//!
//! ## The problem
//!
//! MRI and other computational-imaging modalities sample the frequency
//! domain along non-Cartesian trajectories. The NuFFT approximates the
//! non-uniform DFT in three steps — (1) *gridding* (non-uniform
//! interpolation onto an oversampled uniform grid), (2) a uniform FFT, and
//! (3) *apodization* correction — and gridding dominates: up to 99.6 % of
//! NuFFT runtime, because each randomly-ordered sample scatters into a
//! `W^d` window of non-contiguous memory.
//!
//! ## What lives here
//!
//! * [`config`] — problem/kernel/tile parameters with validation.
//! * [`kernel`] — interpolation windows (Kaiser-Bessel, Gaussian, …) and
//!   their Fourier transforms; Beatty kernel-width selection.
//! * [`lut`] — the precomputed, symmetry-folded weight table (table
//!   oversampling factor `L`).
//! * [`decomp`] — the Slice-and-Dice coordinate decomposition (tile /
//!   relative coordinates, forward distance, wrap detection) — the
//!   software twin of the JIGSAW select unit.
//! * [`gridding`] — four adjoint gridding engines: serial input-driven
//!   (MIRT-style baseline), naive output-parallel, binned output-driven
//!   (Impatient-style), and Slice-and-Dice (serial, column-parallel,
//!   block-parallel atomic).
//! * [`interp`] — the forward counterpart (regridding).
//! * [`nufft`] — complete forward/adjoint NuFFT plans with per-stage
//!   timing, plus [`nudft`] as the exact reference.
//! * [`traj`], [`phantom`] — MRI sampling trajectories and the Shepp-Logan
//!   phantom with analytic k-space, standing in for the paper's clinical
//!   data set.
//! * [`metrics`] — NRMSD and friends for the image-quality experiments.
//! * [`engine`] — the persistent worker-pool execution layer: every
//!   parallel gridder dispatches into a long-lived [`engine::WorkerPool`]
//!   with per-worker scratch arenas instead of spawning scoped threads
//!   per call, amortizing thread and allocation churn across the many
//!   transforms of a multi-coil reconstruction.
//! * [`serve`] — the plan-cached serving layer behind `jigsaw serve`: a
//!   length-prefixed job protocol, a bounded LRU plan cache keyed by
//!   trajectory contents, and a priority queue of jobs multiplexed onto
//!   the worker pool with per-job [`budget::RunBudget`] admission.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod accuracy;
pub mod apod;
pub mod budget;
pub mod config;
pub mod decomp;
pub mod density;
pub mod engine;
pub mod fault;
pub mod gridding;
pub mod interp;
pub mod kernel;
pub mod lut;
pub mod metrics;
pub mod nudft;
pub mod nufft;
pub mod phantom;
pub mod recon;
pub mod sense;
pub mod serve;
pub mod stats;
pub mod toeplitz;
pub mod traj;
pub mod type3;

pub use config::{GridParams, NufftConfig};
pub use kernel::KernelKind;
pub use lut::KernelLut;
pub use nufft::{NufftPlan, PlannedTrajectory};

/// Errors reported by configuration validation, data ingestion, and the
/// execution engine. See `DESIGN.md` §7 for the full failure-mode
/// taxonomy (what degrades gracefully vs. what aborts).
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A configuration parameter is outside its supported range.
    Config(String),
    /// Sample data is malformed (non-finite coordinate or value, length
    /// mismatch between coordinate and value arrays).
    Data(String),
    /// A contained execution failure: a job panicked on the worker pool
    /// (payload and worker id captured in the message) and the serial
    /// fallback was disabled or impossible. The pool itself survives.
    Execution(String),
    /// A [`budget::RunBudget`] was exhausted before any usable result
    /// existed. (When a partial result exists, operations return it with
    /// a diagnostic instead of this error.)
    Budget(String),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Data(m) => write!(f, "data error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Budget(m) => write!(f, "budget exhausted: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = core::result::Result<T, Error>;
