//! Non-Cartesian MRI sampling trajectories.
//!
//! "Imaging applications such as MRI use non-uniform sampling to enable
//! reduced imaging scan time or irregular sensor placement" (§I) —
//! "such as spiral and radial scans" (§II). These generators produce
//! k-space coordinates in **cycles**, `ν ∈ [−½, ½)` per dimension, the
//! unit the [`crate::NufftPlan`] consumes. Samples arrive in acquisition
//! order; [`shuffle`] randomizes it, since the paper stresses that
//! real-world sample streams are "often arriving in effectively random
//! order".

const TWO_PI: f64 = 2.0 * core::f64::consts::PI;
/// The golden angle in radians (π·(3−√5)): the asymptotically uniform
/// radial-spoke increment used by modern real-time MRI.
pub const GOLDEN_ANGLE: f64 = core::f64::consts::PI * (3.0 - 2.23606797749979);

/// Radial (projection-reconstruction) trajectory: `spokes` diameters
/// through the k-space origin, `samples_per_spoke` points each, spanning
/// radius `[−½, ½)`. `golden = true` uses golden-angle ordering, `false`
/// uniform angles.
pub fn radial_2d(spokes: usize, samples_per_spoke: usize, golden: bool) -> Vec<[f64; 2]> {
    let mut out = Vec::with_capacity(spokes * samples_per_spoke);
    for s in 0..spokes {
        let theta = if golden {
            s as f64 * GOLDEN_ANGLE
        } else {
            s as f64 * core::f64::consts::PI / spokes as f64
        };
        let (sin, cos) = theta.sin_cos();
        for i in 0..samples_per_spoke {
            // Radius in [−½, ½), excluding the +½ endpoint (Nyquist edge).
            let r = (i as f64 + 0.5) / samples_per_spoke as f64 - 0.5;
            out.push([clamp_half(r * cos), clamp_half(r * sin)]);
        }
    }
    out
}

/// Archimedean spiral: `arms` interleaved arms, each with
/// `samples_per_arm` points winding `turns` times out to the k-space edge.
pub fn spiral_2d(arms: usize, samples_per_arm: usize, turns: f64) -> Vec<[f64; 2]> {
    let mut out = Vec::with_capacity(arms * samples_per_arm);
    for a in 0..arms {
        let phase = a as f64 * TWO_PI / arms as f64;
        for i in 0..samples_per_arm {
            let t = i as f64 / samples_per_arm as f64; // [0, 1)
            let r = 0.5 * t;
            let theta = phase + turns * TWO_PI * t;
            out.push([clamp_half(r * theta.cos()), clamp_half(r * theta.sin())]);
        }
    }
    out
}

/// Rosette trajectory `r(t) = ½ sin(ω₁ t)` at angle `ω₂ t` — a stress
/// test with dense self-crossings near the origin.
pub fn rosette_2d(m: usize, omega1: f64, omega2: f64) -> Vec<[f64; 2]> {
    (0..m)
        .map(|i| {
            let t = i as f64 / m as f64 * TWO_PI;
            let r = 0.5 * (omega1 * t).sin();
            let theta = omega2 * t;
            [clamp_half(r * theta.cos()), clamp_half(r * theta.sin())]
        })
        .collect()
}

/// Uniformly random coordinates (the paper's worst-case "effectively
/// random order" stream *and* random positions).
pub fn random_nd<const D: usize>(m: usize, seed: u64) -> Vec<[f64; D]> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s as f64 / u64::MAX as f64 - 0.5
    };
    (0..m)
        .map(|_| {
            let mut c = [0.0; D];
            for x in c.iter_mut() {
                *x = clamp_half(next());
            }
            c
        })
        .collect()
}

/// Cartesian grid positions perturbed by uniform jitter of amplitude
/// `jitter` grid cells — models slightly miscalibrated Cartesian scans.
pub fn perturbed_cartesian_2d(n: usize, jitter: f64, seed: u64) -> Vec<[f64; 2]> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64 - 0.5) * 2.0
    };
    let mut out = Vec::with_capacity(n * n);
    for r in 0..n {
        for c in 0..n {
            let base_r = (r as f64 + 0.5) / n as f64 - 0.5;
            let base_c = (c as f64 + 0.5) / n as f64 - 0.5;
            out.push([
                clamp_half(base_r + next() * jitter / n as f64),
                clamp_half(base_c + next() * jitter / n as f64),
            ]);
        }
    }
    out
}

/// 3-D stack-of-stars: a radial trajectory in (x, y) repeated on `nz`
/// uniformly spaced kz planes — the standard 3-D extension the paper's
/// "3D Slice" JIGSAW variant targets (samples sortable by z-slice).
pub fn stack_of_stars_3d(spokes: usize, samples_per_spoke: usize, nz: usize) -> Vec<[f64; 3]> {
    let plane = radial_2d(spokes, samples_per_spoke, true);
    let mut out = Vec::with_capacity(plane.len() * nz);
    for z in 0..nz {
        let kz = (z as f64 + 0.5) / nz as f64 - 0.5;
        for p in &plane {
            out.push([kz, p[0], p[1]]);
        }
    }
    out
}

/// Sort samples by the Morton (Z-order) code of their quantized grid
/// position — a *software* locality presort. This is the alternative the
/// paper's binning baselines embody: spend a pass reordering the stream
/// so the serial gridder's window writes become cache-friendly. Useful
/// as an ablation against Slice-and-Dice's no-presort claim: the sort
/// helps a serial CPU gridder, but it is a pre-processing pass of
/// exactly the kind JIGSAW's trajectory-agnostic `M + 12` makes
/// unnecessary.
/// Returns the permutation (indices into the original order); apply it to
/// the value array with [`apply_permutation`].
pub fn morton_order_2d(coords: &[[f64; 2]], grid: usize) -> Vec<u32> {
    let mut keyed: Vec<(u64, u32)> = coords
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let qx = (c[0].rem_euclid(1.0) * grid as f64) as u32;
            let qy = (c[1].rem_euclid(1.0) * grid as f64) as u32;
            (morton_interleave(qy, qx), i as u32)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Interleave the low 16 bits of `a` (odd positions) and `b` (even).
fn morton_interleave(a: u32, b: u32) -> u64 {
    fn spread(mut x: u64) -> u64 {
        x &= 0xFFFF;
        x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
        x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
        x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        x = (x | (x << 2)) & 0x3333_3333_3333_3333;
        x = (x | (x << 1)) & 0x5555_5555_5555_5555;
        x
    }
    (spread(a as u64) << 1) | spread(b as u64)
}

/// Reorder a slice by a permutation produced by [`morton_order_2d`].
pub fn apply_permutation<T: Copy>(items: &[T], perm: &[u32]) -> Vec<T> {
    perm.iter().map(|&i| items[i as usize]).collect()
}

/// Deterministically shuffle sample order (Fisher-Yates with an xorshift
/// generator) — the random arrival order the paper assumes.
pub fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[inline]
fn clamp_half(v: f64) -> f64 {
    // Keep strictly inside [−½, ½) so grid mapping never hits exactly G.
    v.clamp(-0.5, 0.5 - 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_range(coords: &[[f64; 2]]) {
        for c in coords {
            for &x in c {
                assert!((-0.5..0.5).contains(&x), "coordinate {x} out of range");
            }
        }
    }

    #[test]
    fn radial_counts_and_range() {
        let t = radial_2d(13, 64, true);
        assert_eq!(t.len(), 13 * 64);
        in_range(&t);
    }

    #[test]
    fn radial_spokes_pass_through_origin_region() {
        let t = radial_2d(1, 64, false);
        // First spoke is horizontal (θ = 0): all y ≈ 0.
        for c in &t {
            assert!(c[1].abs() < 1e-12);
        }
        // Radii cover both negative and positive sides.
        assert!(t.iter().any(|c| c[0] < -0.4));
        assert!(t.iter().any(|c| c[0] > 0.4));
    }

    #[test]
    fn golden_angle_spokes_differ() {
        let a = radial_2d(8, 4, true);
        let b = radial_2d(8, 4, false);
        assert_ne!(a, b);
    }

    #[test]
    fn spiral_radius_grows() {
        let t = spiral_2d(1, 256, 8.0);
        in_range(&t);
        let r0 = (t[10][0].powi(2) + t[10][1].powi(2)).sqrt();
        let r1 = (t[200][0].powi(2) + t[200][1].powi(2)).sqrt();
        assert!(r1 > r0, "spiral must wind outward");
    }

    #[test]
    fn rosette_in_range() {
        let t = rosette_2d(500, 3.0, 5.0);
        in_range(&t);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = random_nd::<2>(100, 7);
        let b = random_nd::<2>(100, 7);
        let c = random_nd::<2>(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        in_range(&a);
    }

    #[test]
    fn perturbed_cartesian_stays_close_to_grid() {
        let n = 16;
        let t = perturbed_cartesian_2d(n, 0.25, 3);
        assert_eq!(t.len(), n * n);
        for (i, c) in t.iter().enumerate() {
            let r = i / n;
            let col = i % n;
            let base_r = (r as f64 + 0.5) / n as f64 - 0.5;
            let base_c = (col as f64 + 0.5) / n as f64 - 0.5;
            assert!((c[0] - base_r).abs() <= 0.25 / n as f64 + 1e-12);
            assert!((c[1] - base_c).abs() <= 0.25 / n as f64 + 1e-12);
        }
    }

    #[test]
    fn stack_of_stars_has_planes() {
        let t = stack_of_stars_3d(4, 8, 5);
        assert_eq!(t.len(), 4 * 8 * 5);
        let mut kzs: Vec<f64> = t.iter().map(|c| c[0]).collect();
        kzs.dedup();
        assert_eq!(kzs.len(), 5);
    }

    #[test]
    fn morton_order_is_a_permutation_with_locality() {
        let coords = random_nd::<2>(2000, 9);
        let perm = morton_order_2d(&coords, 256);
        // Permutation property.
        let mut seen = perm.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..2000u32).collect::<Vec<_>>());
        // Locality: mean grid distance between consecutive samples drops
        // sharply vs the shuffled order.
        let sorted = apply_permutation(&coords, &perm);
        let mean_step = |v: &[[f64; 2]]| -> f64 {
            v.windows(2)
                .map(|w| {
                    let dx = (w[0][0] - w[1][0]).abs();
                    let dy = (w[0][1] - w[1][1]).abs();
                    (dx * dx + dy * dy).sqrt()
                })
                .sum::<f64>()
                / (v.len() - 1) as f64
        };
        let before = mean_step(&coords);
        let after = mean_step(&sorted);
        assert!(
            after < before / 4.0,
            "Morton order should localize the stream: {before} → {after}"
        );
    }

    #[test]
    fn morton_interleave_known_values() {
        assert_eq!(morton_interleave(0, 0), 0);
        assert_eq!(morton_interleave(0, 1), 1);
        assert_eq!(morton_interleave(1, 0), 2);
        assert_eq!(morton_interleave(0b11, 0b11), 0b1111);
        assert_eq!(morton_interleave(0b10, 0b01), 0b1001);
    }

    #[test]
    fn apply_permutation_reorders() {
        let items = [10, 20, 30];
        assert_eq!(apply_permutation(&items, &[2, 0, 1]), vec![30, 10, 20]);
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..100).collect();
        shuffle(&mut a, 42);
        let mut b: Vec<u32> = (0..100).collect();
        shuffle(&mut b, 42);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, (0..100).collect::<Vec<_>>());
    }
}
