//! Sampling-density compensation.
//!
//! The adjoint NuFFT of non-uniformly sampled data weights each k-space
//! region by how often it was sampled; for interpretable direct
//! reconstructions the samples must be pre-weighted by the inverse local
//! sampling density. The paper's reference list covers both approaches
//! implemented here:
//!
//! * [`ramp_radial`] — the analytic `|k|` ramp, exact for ideal radial
//!   (projection) sampling;
//! * [`pipe_menon`] — Pipe & Menon's fixed-point iteration
//!   `w ← w / (C w)`, where `C` is the gridding/regridding convolution
//!   (grid the weights, then interpolate back at the sample positions).
//!   Works for *any* trajectory; Johnson & Pipe \[12\] is the paper's
//!   citation for the kernel-design side of this scheme.

use crate::config::GridParams;
use crate::decomp::Decomposer;
use crate::gridding::{sample_windows, scatter_rowmajor, Gridder, SerialGridder};
use crate::interp;
use crate::lut::KernelLut;
use crate::Result;
use jigsaw_num::C64;

/// Analytic ramp (`|ν|`) density-compensation weights for radial
/// trajectories, normalized to mean 1. `floor` guards the DC sample
/// (where the true density diverges); it is expressed as a fraction of
/// the maximum radius (default-style value: `1/(2·samples_per_spoke)`).
pub fn ramp_radial<const D: usize>(coords: &[[f64; D]], floor: f64) -> Vec<f64> {
    let mut w: Vec<f64> = coords
        .iter()
        .map(|c| {
            let r: f64 = c.iter().map(|x| x * x).sum::<f64>().sqrt();
            r.max(floor)
        })
        .collect();
    let mean = w.iter().sum::<f64>() / w.len().max(1) as f64;
    if mean > 0.0 {
        for x in &mut w {
            *x /= mean;
        }
    }
    w
}

/// Pipe–Menon iterative density compensation.
///
/// `coords` are in oversampled-grid units (as consumed by the gridding
/// engines); `p`/`lut` define the convolution kernel. Returns weights
/// normalized to mean 1 after `iterations` fixed-point steps (3–15 is
/// typical; the iteration converges quickly because `C` is a local
/// smoothing operator).
pub fn pipe_menon<const D: usize>(
    p: &GridParams,
    lut: &KernelLut,
    coords: &[[f64; D]],
    iterations: usize,
) -> Result<Vec<f64>> {
    let m = coords.len();
    let mut w = vec![1.0f64; m];
    let npts = p.grid.pow(D as u32);
    let mut grid = vec![C64::zeroed(); npts];
    let mut back = vec![C64::zeroed(); m];
    for _ in 0..iterations {
        grid.fill(C64::zeroed());
        let values: Vec<C64> = w.iter().map(|&x| C64::new(x, 0.0)).collect();
        SerialGridder.grid(p, lut, coords, &values, &mut grid);
        interp::interpolate(p, lut, &grid, coords, &mut back, Some(1))?;
        for (wi, b) in w.iter_mut().zip(&back) {
            let density = b.re;
            if density > 1e-12 {
                *wi /= density;
            }
        }
    }
    let mean = w.iter().sum::<f64>() / m.max(1) as f64;
    if mean > 0.0 {
        for x in &mut w {
            *x /= mean;
        }
    }
    Ok(w)
}

/// Residual flatness of a weight set: after convolving the weighted
/// sampling density through the kernel, how far from uniform is the
/// density seen at the sample positions? (Max relative deviation from
/// the mean; 0 = perfectly compensated.)
pub fn density_flatness<const D: usize>(
    p: &GridParams,
    lut: &KernelLut,
    coords: &[[f64; D]],
    weights: &[f64],
) -> Result<f64> {
    let npts = p.grid.pow(D as u32);
    let mut grid = vec![C64::zeroed(); npts];
    let values: Vec<C64> = weights.iter().map(|&x| C64::new(x, 0.0)).collect();
    let dec = Decomposer::new(p);
    for (c, &v) in coords.iter().zip(&values) {
        let (wins, _) = sample_windows(&dec, lut, c);
        scatter_rowmajor(p.grid, p.width, &wins, v, &mut grid);
    }
    let mut back = vec![C64::zeroed(); coords.len()];
    interp::interpolate(p, lut, &grid, coords, &mut back, Some(1))?;
    let densities: Vec<f64> = back.iter().map(|z| z.re).collect();
    let mean = densities.iter().sum::<f64>() / densities.len().max(1) as f64;
    Ok(densities
        .iter()
        .map(|d| (d - mean).abs() / mean.max(1e-12))
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;
    use crate::traj;

    fn params(g: usize) -> (GridParams, KernelLut) {
        let p = GridParams {
            grid: g,
            width: 6,
            table_oversampling: 32,
            tile: 8,
            kernel: KernelKind::Auto.resolve(6, 2.0),
        };
        let lut = KernelLut::from_params(&p);
        (p, lut)
    }

    fn map_coords(coords: &[[f64; 2]], g: usize) -> Vec<[f64; 2]> {
        coords
            .iter()
            .map(|c| {
                [
                    c[0].rem_euclid(1.0) * g as f64,
                    c[1].rem_euclid(1.0) * g as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn ramp_weights_grow_radially_and_mean_one() {
        let coords = traj::radial_2d(16, 32, false);
        let w = ramp_radial(&coords, 1e-3);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        // Edge-of-spoke samples outweigh near-center ones.
        for spoke in 0..16 {
            let base = spoke * 32;
            let center = w[base + 16]; // r ≈ 0
            let edge = w[base]; // r ≈ 0.5
            assert!(edge > 3.0 * center, "spoke {spoke}: {edge} vs {center}");
        }
    }

    #[test]
    fn pipe_menon_flattens_radial_density() {
        let g = 64;
        let (p, lut) = params(g);
        let mut coords = traj::radial_2d(40, 64, true);
        traj::shuffle(&mut coords, 3);
        let mapped = map_coords(&coords, g);
        let uniform = vec![1.0; mapped.len()];
        let before = density_flatness(&p, &lut, &mapped, &uniform).unwrap();
        let w = pipe_menon(&p, &lut, &mapped, 10).unwrap();
        let after = density_flatness(&p, &lut, &mapped, &w).unwrap();
        assert!(
            after < before / 3.0,
            "Pipe-Menon should flatten density: {before} → {after}"
        );
    }

    #[test]
    fn pipe_menon_weights_correlate_with_ramp_on_radial() {
        let g = 64;
        let (p, lut) = params(g);
        let coords = traj::radial_2d(48, 64, true);
        let mapped = map_coords(&coords, g);
        let pm = pipe_menon(&p, &lut, &mapped, 10).unwrap();
        let ramp = ramp_radial(&coords, 1.0 / 128.0);
        // Pearson correlation between the two weight sets.
        let n = pm.len() as f64;
        let (mx, my) = (pm.iter().sum::<f64>() / n, ramp.iter().sum::<f64>() / n);
        let mut num = 0.0;
        let mut dx = 0.0;
        let mut dy = 0.0;
        for (a, b) in pm.iter().zip(&ramp) {
            num += (a - mx) * (b - my);
            dx += (a - mx).powi(2);
            dy += (b - my).powi(2);
        }
        let corr = num / (dx * dy).sqrt();
        assert!(corr > 0.6, "PM vs ramp correlation {corr}");
    }

    #[test]
    fn near_uniform_sampling_needs_no_compensation() {
        let g = 32;
        let (p, lut) = params(g);
        let coords = traj::perturbed_cartesian_2d(32, 0.2, 5);
        let mapped = map_coords(&coords, g);
        let w = pipe_menon(&p, &lut, &mapped, 8).unwrap();
        // Weights should be nearly constant (dense uniform sampling).
        let (lo, hi) = w
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &x| (l.min(x), h.max(x)));
        assert!(hi / lo < 2.0, "uniform sampling weights spread {lo}..{hi}");
    }
}
