//! Type-3 NuFFT: nonuniform sources → nonuniform targets.
//!
//! The paper's forward/adjoint transforms (types 2 and 1) connect
//! non-uniform samples with a uniform grid. The third classical variant
//! evaluates
//!
//! ```text
//! F(s_k) = Σ_j c_j e^{2πi s_k · x_j}
//! ```
//!
//! for *arbitrary* real source positions `x_j` and target frequencies
//! `s_k` — needed when neither side lies on a grid (e.g. field-corrected
//! MRI, SAR). Following Lee & Greengard, it factors through the type-1
//! machinery this crate already has:
//!
//! 1. rescale sources into the well-conditioned central band:
//!    `b_j = x_j / (2σX)` with `X = max|x|`, so `b ∈ [−1/(2σ·…), …]`;
//! 2. pre-correct strengths by the *target-side* kernel's transform:
//!    `c'_j = c_j / Π_d ψ̂(b_{jd})`;
//! 3. adjoint (type-1) NuFFT of `(b_j, c'_j)` onto a central lattice
//!    `k ∈ [−n/2, n/2)^d` sized so every scaled target
//!    `τ = 2σX·s` fits with a `W/2` margin;
//! 4. gather: `F(s) = Σ_{|k−τ|<W/2} ψ(τ−k)·ĥ_k` per dimension.
//!
//! Accuracy is the product of two kernel approximations (≈ 2× a single
//! transform's error), verified against the direct sum in tests.

use crate::config::NufftConfig;
use crate::gridding::ExactGridder;
use crate::nufft::NufftPlan;
use crate::{Error, Result};
use jigsaw_num::C64;

/// Parameters of a type-3 transform.
#[derive(Debug, Clone, Copy)]
pub struct Type3Params {
    /// Grid oversampling σ (≥ 1.5 recommended; default 2).
    pub sigma: f64,
    /// Kernel width `W`.
    pub width: usize,
}

impl Default for Type3Params {
    fn default() -> Self {
        Self {
            sigma: 2.0,
            width: 6,
        }
    }
}

/// Evaluate `F(s_k) = Σ_j c_j e^{2πi s_k·x_j}` for arbitrary real source
/// positions and target frequencies.
pub fn nufft3<const D: usize>(
    sources: &[[f64; D]],
    strengths: &[C64],
    targets: &[[f64; D]],
    params: Type3Params,
) -> Result<Vec<C64>> {
    if sources.len() != strengths.len() {
        return Err(Error::Data(format!(
            "{} sources for {} strengths",
            sources.len(),
            strengths.len()
        )));
    }
    if sources.is_empty() || targets.is_empty() {
        return Ok(vec![C64::zeroed(); targets.len()]);
    }
    for (i, x) in sources.iter().chain(targets.iter()).enumerate() {
        if x.iter().any(|v| !v.is_finite()) {
            return Err(Error::Data(format!("non-finite coordinate (entry {i})")));
        }
    }
    let sigma = params.sigma;
    let w = params.width;

    // Per-dimension spans (avoid zero spans for degenerate inputs).
    let mut x_max = [1e-9f64; D];
    for x in sources {
        for d in 0..D {
            x_max[d] = x_max[d].max(x[d].abs());
        }
    }
    let mut s_max = [1e-9f64; D];
    for s in targets {
        for d in 0..D {
            s_max[d] = s_max[d].max(s[d].abs());
        }
    }
    // Scaled target range τ_d = 2σ·X_d·s_d; lattice must cover |τ|+W/2.
    let tau_max: f64 = (0..D)
        .map(|d| 2.0 * sigma * x_max[d] * s_max[d])
        .fold(0.0, f64::max);
    let n = (2.0 * (tau_max + w as f64 / 2.0 + 2.0)).ceil() as usize;
    let n = n.next_multiple_of(8).max(16);
    if n > 1 << 16 {
        return Err(Error::Config(format!(
            "type-3 lattice of {n} points per dim exceeds the supported range \
             (space-bandwidth product too large)"
        )));
    }

    // Inner type-1 plan. Its kernel doubles as the target-side ψ.
    let mut cfg = NufftConfig::with_n(n);
    cfg.sigma = sigma;
    cfg.width = w;
    let kernel = cfg.resolved_kernel();
    let plan = NufftPlan::<f64, D>::new(cfg)?;
    let g = plan.grid_params().grid as f64;

    // Steps 1–2: rescale sources and pre-correct strengths by ψ̂(b).
    let mut b = Vec::with_capacity(sources.len());
    let mut cprime = Vec::with_capacity(sources.len());
    for (x, &c) in sources.iter().zip(strengths) {
        let mut bb = [0.0f64; D];
        let mut corr = 1.0f64;
        for d in 0..D {
            bb[d] = x[d] / (2.0 * sigma * x_max[d]);
            // ψ̂ at the *source* position in cycles — the Poisson r = 0
            // term of the frequency-side interpolation.
            corr *= kernel.ft(bb[d], w);
        }
        if corr.abs() < 1e-14 {
            return Err(Error::Data(
                "source lands where the kernel transform vanishes".into(),
            ));
        }
        b.push(bb);
        cprime.push(c.unscale(corr));
    }

    // Step 3: central lattice values ĥ_k, k ∈ [−n/2, n/2)^D.
    let lattice = plan.adjoint(&b, &cprime, &ExactGridder)?.image;

    // Step 4: gather each target from its W^D lattice neighborhood.
    let half = n as i64 / 2;
    let mut out = Vec::with_capacity(targets.len());
    for s in targets {
        let mut tau = [0.0f64; D];
        for d in 0..D {
            tau[d] = 2.0 * sigma * x_max[d] * s[d];
        }
        // Per-dim neighbor lists.
        let mut idx = [[0usize; 16]; D];
        let mut wt = [[0.0f64; 16]; D];
        let mut cnt = [0usize; D];
        for d in 0..D {
            let lo = (tau[d] - w as f64 / 2.0).ceil() as i64;
            for k in lo..=(tau[d] + w as f64 / 2.0).floor() as i64 {
                if k < -half || k >= half {
                    continue;
                }
                let weight = kernel.eval(tau[d] - k as f64, w);
                if weight == 0.0 {
                    continue;
                }
                idx[d][cnt[d]] = (k + half) as usize;
                wt[d][cnt[d]] = weight;
                cnt[d] += 1;
            }
            if cnt[d] == 0 {
                // Target entirely outside the lattice: contributes ~0.
                idx[d][0] = 0;
                wt[d][0] = 0.0;
                cnt[d] = 1;
            }
        }
        // Odometer over the neighborhood.
        let mut acc = C64::zeroed();
        let mut sel = [0usize; D];
        'outer: loop {
            let mut flat = 0usize;
            let mut weight = 1.0;
            for d in 0..D {
                flat = flat * n + idx[d][sel[d]];
                weight *= wt[d][sel[d]];
            }
            acc += lattice[flat].scale(weight);
            let mut d = D;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                sel[d] += 1;
                if sel[d] < cnt[d] {
                    break;
                }
                sel[d] = 0;
            }
        }
        let _ = g;
        out.push(acc);
    }
    Ok(out)
}

/// Direct `O(M·K)` evaluation — the oracle.
pub fn nudft3<const D: usize>(
    sources: &[[f64; D]],
    strengths: &[C64],
    targets: &[[f64; D]],
) -> Vec<C64> {
    targets
        .iter()
        .map(|s| {
            let mut acc = C64::zeroed();
            for (x, &c) in sources.iter().zip(strengths) {
                let phase: f64 = (0..D).map(|d| s[d] * x[d]).sum();
                acc += c * C64::cis(2.0 * core::f64::consts::PI * phase);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rel_l2;

    fn rand_points<const D: usize>(m: usize, span: f64, seed: u64) -> Vec<[f64; D]> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64 - 0.5) * span
        };
        (0..m)
            .map(|_| {
                let mut p = [0.0; D];
                for v in p.iter_mut() {
                    *v = next();
                }
                p
            })
            .collect()
    }

    fn rand_strengths(m: usize, seed: u64) -> Vec<C64> {
        let mut s = seed | 3;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64 - 0.5
        };
        (0..m).map(|_| C64::new(next(), next())).collect()
    }

    #[test]
    fn matches_direct_sum_1d() {
        let sources = rand_points::<1>(150, 3.0, 1);
        let strengths = rand_strengths(150, 2);
        let targets = rand_points::<1>(90, 10.0, 3);
        let fast = nufft3(&sources, &strengths, &targets, Type3Params::default()).unwrap();
        let exact = nudft3(&sources, &strengths, &targets);
        let err = rel_l2(&fast, &exact);
        assert!(err < 1e-4, "type-3 1-D error {err}");
    }

    #[test]
    fn matches_direct_sum_2d() {
        let sources = rand_points::<2>(200, 2.0, 5);
        let strengths = rand_strengths(200, 6);
        let targets = rand_points::<2>(120, 8.0, 7);
        let fast = nufft3(&sources, &strengths, &targets, Type3Params::default()).unwrap();
        let exact = nudft3(&sources, &strengths, &targets);
        let err = rel_l2(&fast, &exact);
        assert!(err < 2e-4, "type-3 2-D error {err}");
    }

    #[test]
    fn anisotropic_spans() {
        // Very different per-dimension extents must still work (per-dim
        // rescaling).
        let mut sources = rand_points::<2>(100, 1.0, 9);
        for s in &mut sources {
            s[1] *= 20.0;
        }
        let strengths = rand_strengths(100, 10);
        let mut targets = rand_points::<2>(60, 6.0, 11);
        for t in &mut targets {
            t[1] *= 0.05;
        }
        let fast = nufft3(&sources, &strengths, &targets, Type3Params::default()).unwrap();
        let exact = nudft3(&sources, &strengths, &targets);
        let err = rel_l2(&fast, &exact);
        assert!(err < 2e-4, "anisotropic type-3 error {err}");
    }

    #[test]
    fn single_source_is_pure_exponential() {
        let sources = vec![[0.7]];
        let strengths = vec![C64::new(2.0, -1.0)];
        let targets: Vec<[f64; 1]> = (0..20).map(|i| [i as f64 * 0.3 - 3.0]).collect();
        let fast = nufft3(&sources, &strengths, &targets, Type3Params::default()).unwrap();
        for (t, f) in targets.iter().zip(&fast) {
            let want = strengths[0] * C64::cis(2.0 * core::f64::consts::PI * t[0] * 0.7);
            assert!((*f - want).abs() < 1e-4, "target {t:?}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        let p = Type3Params::default();
        assert!(nufft3::<1>(&[[0.0]], &[], &[[1.0]], p).is_err());
        assert!(nufft3::<1>(&[[f64::NAN]], &[C64::one()], &[[1.0]], p).is_err());
        // Absurd space-bandwidth product is refused, not OOM'd.
        assert!(nufft3::<1>(&[[1e6]], &[C64::one()], &[[1e6]], p).is_err());
        // Empty targets are fine.
        let out = nufft3::<1>(&[[0.1]], &[C64::one()], &[], p).unwrap();
        assert!(out.is_empty());
    }
}
