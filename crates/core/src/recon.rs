//! Iterative image reconstruction — the workload that motivates the
//! paper.
//!
//! §I: "With the rise in real-time and iterative image reconstruction
//! techniques — particularly in 3D, wherein millions of NuFFTs are taken
//! iteratively to reconstruct a single volume — NuFFT performance is key."
//!
//! This module provides conjugate-gradient SENSE-style reconstruction of
//! the regularized normal equations
//!
//! ```text
//! (AᴴWA + λI) x = AᴴW b
//! ```
//!
//! where `A` is the forward NuFFT, `W` optional density weights, and `λ`
//! a Tikhonov term. The normal operator can be evaluated either with a
//! forward+adjoint NuFFT pair per iteration (two gridding passes — the
//! cost profile JIGSAW targets) or through the precomputed
//! [`ToeplitzOperator`] (two FFTs, Impatient's strategy); both paths are
//! exposed so the trade-off is measurable.

use crate::budget::RunBudget;
use crate::gridding::Gridder;
use crate::nufft::NufftPlan;
use crate::toeplitz::ToeplitzOperator;
use crate::{Error, Result};
use jigsaw_num::C64;
use jigsaw_telemetry as telemetry;
use std::sync::Arc;

/// Options for [`cg_reconstruct`].
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Maximum CG iterations.
    pub max_iterations: usize,
    /// Relative residual (‖r‖/‖r₀‖) stopping threshold.
    pub tolerance: f64,
    /// Tikhonov regularization weight λ.
    pub lambda: f64,
    /// Cooperative wall-clock / cancellation budget, checked between
    /// iterations (and between per-coil chunks in
    /// [`crate::sense::cg_sense`]). Defaults to unlimited.
    pub budget: RunBudget,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            tolerance: 1e-6,
            lambda: 0.0,
            budget: RunBudget::unlimited(),
        }
    }
}

/// Why a CG solve stopped — distinguishes clean convergence from the
/// contained numerical / budget failure modes (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgDiagnostic {
    /// Relative residual dropped below the tolerance.
    Converged,
    /// Iteration cap reached without convergence; the last iterate is
    /// returned.
    MaxIterations,
    /// Krylov breakdown: the search-direction curvature `⟨p, Ap⟩`
    /// underflowed, so no further progress is possible. The last iterate
    /// is returned.
    Breakdown,
    /// A non-finite residual or curvature appeared (NaN/Inf in the data
    /// or operator). The best *finite* iterate is returned.
    NonFinite,
    /// The residual grew far past the best seen — the operator is not
    /// positive semi-definite or the problem is badly scaled. The best
    /// iterate is returned.
    Diverged,
    /// The [`RunBudget`] was exhausted mid-solve; the best iterate so far
    /// is returned. (Exhaustion before any iterate exists is reported as
    /// [`crate::Error::Budget`] instead.)
    BudgetExhausted,
}

impl CgDiagnostic {
    /// Whether the solve ended without a contained failure.
    pub fn is_clean(self) -> bool {
        matches!(
            self,
            CgDiagnostic::Converged | CgDiagnostic::MaxIterations | CgDiagnostic::Breakdown
        )
    }
}

impl core::fmt::Display for CgDiagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CgDiagnostic::Converged => "converged",
            CgDiagnostic::MaxIterations => "max-iterations",
            CgDiagnostic::Breakdown => "breakdown",
            CgDiagnostic::NonFinite => "non-finite (best finite iterate returned)",
            CgDiagnostic::Diverged => "diverged (best iterate returned)",
            CgDiagnostic::BudgetExhausted => "budget-exhausted (best iterate returned)",
        };
        f.write_str(s)
    }
}

/// Reconstruction output: the image plus the CG convergence history.
#[derive(Debug, Clone)]
pub struct CgOutput {
    /// Reconstructed `[N; D]` image.
    pub image: Vec<C64>,
    /// Relative residual after each iteration.
    pub residuals: Vec<f64>,
    /// Why the solve stopped.
    pub diagnostic: CgDiagnostic,
}

/// Which normal-operator evaluation strategy a reconstruction selects —
/// the seam shared by [`cg_reconstruct_with`] and
/// [`crate::sense::cg_sense_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormalOpKind {
    /// Forward + adjoint NuFFT per iteration (two gridding passes). The
    /// default until the Toeplitz accuracy gate graduates.
    #[default]
    Gridded,
    /// Precomputed [`ToeplitzOperator`]: one gridding pass at build
    /// time, two padded FFTs per iteration, zero gridding in the hot
    /// loop. A failed build degrades back to [`NormalOpKind::Gridded`]
    /// under the engine's fallback policy (see
    /// [`ToeplitzOperator::build_degradable`]).
    Toeplitz,
}

/// How the normal operator is evaluated each iteration.
pub enum NormalOp<'a, const D: usize> {
    /// Forward + adjoint NuFFT per iteration (two gridding passes).
    Nufft {
        /// The planned transform.
        plan: &'a NufftPlan<f64, D>,
        /// Trajectory in cycles.
        coords: &'a [[f64; D]],
        /// Gridding engine for the adjoint half.
        gridder: &'a dyn Gridder<f64, D>,
        /// Optional density weights (empty = uniform).
        weights: &'a [f64],
    },
    /// Precomputed Toeplitz embedding (two FFTs, no gridding). Shared
    /// (`Arc`) so serve-cached kernels plug in directly.
    Toeplitz(Arc<ToeplitzOperator<D>>),
}

impl<const D: usize> NormalOp<'_, D> {
    fn apply(&self, x: &[C64]) -> Result<Vec<C64>> {
        match self {
            NormalOp::Nufft {
                plan,
                coords,
                gridder,
                weights,
            } => {
                let mut samples = plan.forward(x, coords)?.samples;
                if !weights.is_empty() {
                    for (s, &w) in samples.iter_mut().zip(*weights) {
                        *s = s.scale(w);
                    }
                }
                Ok(plan.adjoint(coords, &samples, *gridder)?.image)
            }
            NormalOp::Toeplitz(t) => t.apply(x),
        }
    }
}

fn dot(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b).map(|(x, y)| *x * y.conj()).sum()
}

/// Residual growth factor past the best seen that declares divergence.
/// The zero start iterate has relative residual exactly 1, so this also
/// bounds absolute blow-up on the very first iteration.
const CG_DIVERGENCE_FACTOR: f64 = 1e4;

/// The shared hardened CG loop: solve `(A + λI) x = rhs` from zero via
/// `apply`, with best-iterate tracking, non-finite / divergence
/// containment, deterministic fault injection at
/// [`crate::fault::RECON_CG_ITER`], and cooperative budget checks between
/// iterations.
///
/// Errors from `apply` propagate — except [`Error::Budget`], which (once
/// at least one iterate exists) degrades to the best iterate with a
/// [`CgDiagnostic::BudgetExhausted`] flag. A budget that exhausts before
/// the first iterate completes is a hard [`Error::Budget`].
pub(crate) fn cg_loop(
    mut apply: impl FnMut(&[C64]) -> Result<Vec<C64>>,
    rhs: &[C64],
    opts: &CgOptions,
) -> Result<CgOutput> {
    let n = rhs.len();
    let mut x = vec![C64::zeroed(); n];
    let mut r = rhs.to_vec();
    let mut p = r.clone();
    let r0_norm = dot(&r, &r).re.sqrt().max(1e-300);
    let mut rs_old = dot(&r, &r).re;
    let mut residuals = Vec::with_capacity(opts.max_iterations);
    // The zero start iterate: relative residual ‖r₀‖/‖r₀‖ = 1 exactly.
    let mut best = x.clone();
    let mut best_rel = 1.0f64;
    let mut diagnostic = CgDiagnostic::MaxIterations;
    for iter in 0..opts.max_iterations {
        if opts.budget.exhausted() {
            diagnostic = CgDiagnostic::BudgetExhausted;
            break;
        }
        let _iter_span = telemetry::span!("recon.cg_iteration", { iter: iter });
        let mut ap = match apply(&p) {
            Ok(v) => v,
            Err(Error::Budget(_)) if !residuals.is_empty() => {
                diagnostic = CgDiagnostic::BudgetExhausted;
                break;
            }
            Err(e) => return Err(e),
        };
        if opts.lambda != 0.0 {
            for (a, &pv) in ap.iter_mut().zip(&p) {
                *a += pv.scale(opts.lambda);
            }
        }
        let denom = dot(&p, &ap).re;
        if !denom.is_finite() {
            diagnostic = CgDiagnostic::NonFinite;
            break;
        }
        if denom.abs() < 1e-300 {
            diagnostic = CgDiagnostic::Breakdown;
            break;
        }
        let alpha = rs_old / denom;
        for ((xi, pi), (ri, api)) in x.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap)) {
            *xi += pi.scale(alpha);
            *ri -= api.scale(alpha);
        }
        let mut rs_new = dot(&r, &r).re;
        // Deterministic fault injection: poison (don't panic) so the
        // solver's own non-finite containment is what gets exercised.
        if crate::fault::should_fire(crate::fault::RECON_CG_ITER) {
            rs_new = f64::NAN;
        }
        let rel = rs_new.sqrt() / r0_norm;
        residuals.push(rel);
        // Residual time-series: a counter event per iteration (visible as
        // a chrome-trace counter track) plus a last-value gauge.
        telemetry::counter_event("recon.cg_residual", rel);
        telemetry::record_gauge("recon.cg_residual", rel);
        if !rel.is_finite() {
            diagnostic = CgDiagnostic::NonFinite;
            break;
        }
        if rel > best_rel * CG_DIVERGENCE_FACTOR {
            diagnostic = CgDiagnostic::Diverged;
            break;
        }
        if rel < best_rel {
            best_rel = rel;
            best.copy_from_slice(&x);
        }
        if rel < opts.tolerance {
            diagnostic = CgDiagnostic::Converged;
            break;
        }
        let beta = rs_new / rs_old;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + pi.scale(beta);
        }
        rs_old = rs_new;
    }
    if diagnostic == CgDiagnostic::BudgetExhausted && residuals.is_empty() {
        return Err(Error::Budget(
            "run budget exhausted before the first CG iteration".into(),
        ));
    }
    // Clean stops return the last iterate (converged ⇒ it is also the
    // best); contained failures return the best finite iterate instead of
    // the possibly-poisoned last one.
    let image = if diagnostic.is_clean() { x } else { best };
    Ok(CgOutput {
        image,
        residuals,
        diagnostic,
    })
}

/// Solve `(AᴴWA + λI) x = rhs` by conjugate gradients, starting from zero.
///
/// `rhs` must already be `AᴴW b` (compute it with one adjoint NuFFT of
/// the weighted data). Numerical failure modes (non-finite values,
/// divergence) and budget exhaustion are contained: the solve returns its
/// best iterate with the reason in [`CgOutput::diagnostic`].
pub fn cg_solve<const D: usize>(
    op: &NormalOp<'_, D>,
    rhs: &[C64],
    opts: &CgOptions,
) -> Result<CgOutput> {
    let _span = telemetry::span!("recon.cg_solve", {
        n: rhs.len(),
        max_iterations: opts.max_iterations
    });
    cg_loop(|v| op.apply(v), rhs, opts)
}

/// Convenience wrapper: full CG reconstruction from k-space data with
/// the gridded normal operator.
pub fn cg_reconstruct<const D: usize>(
    plan: &NufftPlan<f64, D>,
    coords: &[[f64; D]],
    data: &[C64],
    weights: &[f64],
    gridder: &dyn Gridder<f64, D>,
    opts: &CgOptions,
) -> Result<CgOutput> {
    cg_reconstruct_with(
        plan,
        coords,
        data,
        weights,
        gridder,
        opts,
        NormalOpKind::Gridded,
    )
}

/// Full CG reconstruction with an explicit normal-operator selection.
///
/// [`NormalOpKind::Toeplitz`] builds the operator once (one gridding
/// pass at `2N`) and iterates gridding-free; a degradable build failure
/// (injected fault, non-finite PSF) falls back to the gridded path under
/// the engine's serial-fallback policy.
pub fn cg_reconstruct_with<const D: usize>(
    plan: &NufftPlan<f64, D>,
    coords: &[[f64; D]],
    data: &[C64],
    weights: &[f64],
    gridder: &dyn Gridder<f64, D>,
    opts: &CgOptions,
    kind: NormalOpKind,
) -> Result<CgOutput> {
    // rhs = AᴴW b.
    let weighted: Vec<C64> = if weights.is_empty() {
        data.to_vec()
    } else {
        data.iter().zip(weights).map(|(d, &w)| d.scale(w)).collect()
    };
    let rhs = plan.adjoint(coords, &weighted, gridder)?.image;
    let toeplitz = match kind {
        NormalOpKind::Gridded => None,
        NormalOpKind::Toeplitz => {
            ToeplitzOperator::<D>::build_degradable(plan.config(), coords, weights, gridder, None)?
        }
    };
    let op = match toeplitz {
        Some(t) => NormalOp::Toeplitz(t),
        None => NormalOp::Nufft {
            plan,
            coords,
            gridder,
            weights,
        },
    };
    cg_solve(&op, &rhs, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NufftConfig;
    use crate::gridding::{ExactGridder, SerialGridder};
    use crate::metrics::rel_l2;
    use crate::phantom::Phantom2d;
    use crate::traj;

    #[test]
    fn cg_recovers_image_from_dense_sampling() {
        // With M ≫ N² random samples, AᴴA ≈ M·I and CG recovers the image.
        let n = 12;
        let mut coords = traj::random_nd::<2>(1500, 4);
        traj::shuffle(&mut coords, 1);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let truth: Vec<C64> = (0..n * n)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let data = plan.forward(&truth, &coords).unwrap().samples;
        let out = cg_reconstruct(
            &plan,
            &coords,
            &data,
            &[],
            &ExactGridder,
            &CgOptions {
                max_iterations: 30,
                tolerance: 1e-9,
                lambda: 0.0,
                budget: Default::default(),
            },
        )
        .unwrap();
        let err = rel_l2(&out.image, &truth);
        assert!(err < 1e-3, "CG reconstruction error {err}");
    }

    #[test]
    fn residuals_decrease_monotonically_enough() {
        let n = 12;
        let coords = traj::random_nd::<2>(800, 9);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let truth: Vec<C64> = (0..n * n).map(|i| C64::from_re((i % 7) as f64)).collect();
        let data = plan.forward(&truth, &coords).unwrap().samples;
        let out = cg_reconstruct(
            &plan,
            &coords,
            &data,
            &[],
            &SerialGridder,
            &CgOptions::default(),
        )
        .unwrap();
        assert!(out.residuals.len() >= 3);
        let first = out.residuals[0];
        let last = *out.residuals.last().unwrap();
        assert!(last < first / 10.0, "residuals {first} → {last}");
    }

    #[test]
    fn cg_beats_direct_adjoint_on_radial_phantom() {
        let n = 32;
        let mut coords = traj::radial_2d(52, 64, true);
        traj::shuffle(&mut coords, 3);
        let phantom = Phantom2d::shepp_logan();
        let data = phantom.kspace(n, &coords);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let truth = phantom.rasterize_aa(n, 4);

        let normalize = |img: &[C64]| -> Vec<C64> {
            let peak = img.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1e-30);
            img.iter().map(|z| z.unscale(peak)).collect()
        };
        let tn = normalize(&truth);

        // Direct (unweighted) adjoint: blurred by the density.
        let direct = plan.adjoint(&coords, &data, &SerialGridder).unwrap().image;
        let err_direct = rel_l2(&normalize(&direct), &tn);

        // 12 CG iterations.
        let out = cg_reconstruct(
            &plan,
            &coords,
            &data,
            &[],
            &SerialGridder,
            &CgOptions {
                max_iterations: 12,
                tolerance: 1e-8,
                lambda: 1e-6,
                budget: Default::default(),
            },
        )
        .unwrap();
        let err_cg = rel_l2(&normalize(&out.image), &tn);
        assert!(
            err_cg < err_direct / 2.0,
            "CG {err_cg} should beat direct adjoint {err_direct}"
        );
    }

    // `toeplitz_path_matches_nufft_path` graduated into the
    // `tests/toeplitz.rs` property suite (radial/spiral/random
    // trajectories, D = 1 and 2, with and without density weights).

    #[test]
    fn non_finite_apply_returns_best_iterate() {
        // apply() yields NaNs: denom goes non-finite on the very first
        // iteration, so the best iterate is still the zero start.
        let rhs = vec![C64::from_re(1.0); 4];
        let out = cg_loop(
            |p| Ok(vec![C64::new(f64::NAN, 0.0); p.len()]),
            &rhs,
            &CgOptions::default(),
        )
        .unwrap();
        assert_eq!(out.diagnostic, CgDiagnostic::NonFinite);
        assert!(!out.diagnostic.is_clean());
        assert!(out.image.iter().all(|z| z.re == 0.0 && z.im == 0.0));
    }

    #[test]
    fn diverging_residual_is_contained() {
        // apply() returns the constant vector [eps, 1] regardless of input.
        // With rhs = [1, 0]: denom = eps, alpha = 1/eps, the new residual
        // ~1/eps dwarfs the start residual ⇒ relative residual ~1e8 > the
        // 1e4 divergence factor on iteration one.
        let eps = 1e-8;
        let rhs = vec![C64::from_re(1.0), C64::zeroed()];
        let out = cg_loop(
            |_| Ok(vec![C64::from_re(eps), C64::from_re(1.0)]),
            &rhs,
            &CgOptions::default(),
        )
        .unwrap();
        assert_eq!(out.diagnostic, CgDiagnostic::Diverged);
        // Best iterate is the zero start (rel = 1), not the blown-up x.
        assert!(out.image.iter().all(|z| z.re == 0.0 && z.im == 0.0));
        assert_eq!(out.residuals.len(), 1);
        assert!(out.residuals[0] > CG_DIVERGENCE_FACTOR);
    }

    #[test]
    fn exhausted_budget_before_first_iteration_is_a_hard_error() {
        let rhs = vec![C64::from_re(1.0); 4];
        let opts = CgOptions {
            budget: crate::budget::RunBudget::with_time_ms(0),
            ..Default::default()
        };
        let err = cg_loop(|p| Ok(p.to_vec()), &rhs, &opts).unwrap_err();
        assert!(matches!(err, Error::Budget(_)), "got {err:?}");
    }

    #[test]
    fn cancellation_mid_solve_returns_best_partial_iterate() {
        // Diagonal operator with six distinct eigenvalues: CG needs six
        // iterations for an exact solve, so cancelling after the second
        // application leaves a genuinely partial (but improving) iterate.
        let rhs: Vec<C64> = (0..6).map(|i| C64::from_re(1.0 + i as f64)).collect();
        let budget = crate::budget::RunBudget::unlimited();
        let handle = budget.clone();
        let mut applies = 0usize;
        let opts = CgOptions {
            max_iterations: 50,
            tolerance: 1e-300,
            lambda: 0.0,
            budget,
        };
        let out = cg_loop(
            move |p| {
                applies += 1;
                if applies == 2 {
                    handle.cancel();
                }
                Ok(p.iter()
                    .enumerate()
                    .map(|(i, z)| z.scale(1.0 + i as f64))
                    .collect())
            },
            &rhs,
            &opts,
        )
        .unwrap();
        assert_eq!(out.diagnostic, CgDiagnostic::BudgetExhausted);
        assert_eq!(out.residuals.len(), 2);
        // The best iterate improved on the zero start.
        assert!(out.image.iter().any(|z| z.re != 0.0 || z.im != 0.0));
        assert!(*out.residuals.last().unwrap() < 1.0);
    }

    #[test]
    fn converged_diagnostic_is_clean() {
        let rhs = vec![C64::from_re(2.0); 3];
        let out = cg_loop(|p| Ok(p.to_vec()), &rhs, &CgOptions::default()).unwrap();
        assert_eq!(out.diagnostic, CgDiagnostic::Converged);
        assert!(out.diagnostic.is_clean());
        let err = rel_l2(&out.image, &rhs);
        assert!(err < 1e-12);
    }
}
