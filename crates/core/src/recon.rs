//! Iterative image reconstruction — the workload that motivates the
//! paper.
//!
//! §I: "With the rise in real-time and iterative image reconstruction
//! techniques — particularly in 3D, wherein millions of NuFFTs are taken
//! iteratively to reconstruct a single volume — NuFFT performance is key."
//!
//! This module provides conjugate-gradient SENSE-style reconstruction of
//! the regularized normal equations
//!
//! ```text
//! (AᴴWA + λI) x = AᴴW b
//! ```
//!
//! where `A` is the forward NuFFT, `W` optional density weights, and `λ`
//! a Tikhonov term. The normal operator can be evaluated either with a
//! forward+adjoint NuFFT pair per iteration (two gridding passes — the
//! cost profile JIGSAW targets) or through the precomputed
//! [`ToeplitzOperator`] (two FFTs, Impatient's strategy); both paths are
//! exposed so the trade-off is measurable.

use crate::gridding::Gridder;
use crate::nufft::NufftPlan;
use crate::toeplitz::ToeplitzOperator;
use crate::Result;
use jigsaw_num::C64;
use jigsaw_telemetry as telemetry;

/// Options for [`cg_reconstruct`].
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Maximum CG iterations.
    pub max_iterations: usize,
    /// Relative residual (‖r‖/‖r₀‖) stopping threshold.
    pub tolerance: f64,
    /// Tikhonov regularization weight λ.
    pub lambda: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            tolerance: 1e-6,
            lambda: 0.0,
        }
    }
}

/// Reconstruction output: the image plus the CG convergence history.
#[derive(Debug, Clone)]
pub struct CgOutput {
    /// Reconstructed `[N; D]` image.
    pub image: Vec<C64>,
    /// Relative residual after each iteration.
    pub residuals: Vec<f64>,
}

/// How the normal operator is evaluated each iteration.
pub enum NormalOp<'a, const D: usize> {
    /// Forward + adjoint NuFFT per iteration (two gridding passes).
    Nufft {
        /// The planned transform.
        plan: &'a NufftPlan<f64, D>,
        /// Trajectory in cycles.
        coords: &'a [[f64; D]],
        /// Gridding engine for the adjoint half.
        gridder: &'a dyn Gridder<f64, D>,
        /// Optional density weights (empty = uniform).
        weights: &'a [f64],
    },
    /// Precomputed Toeplitz embedding (two FFTs, no gridding).
    Toeplitz(&'a ToeplitzOperator<D>),
}

impl<const D: usize> NormalOp<'_, D> {
    fn apply(&self, x: &[C64]) -> Result<Vec<C64>> {
        match self {
            NormalOp::Nufft {
                plan,
                coords,
                gridder,
                weights,
            } => {
                let mut samples = plan.forward(x, coords)?.samples;
                if !weights.is_empty() {
                    for (s, &w) in samples.iter_mut().zip(*weights) {
                        *s = s.scale(w);
                    }
                }
                Ok(plan.adjoint(coords, &samples, *gridder)?.image)
            }
            NormalOp::Toeplitz(t) => t.apply(x),
        }
    }
}

fn dot(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b).map(|(x, y)| *x * y.conj()).sum()
}

/// Solve `(AᴴWA + λI) x = rhs` by conjugate gradients, starting from zero.
///
/// `rhs` must already be `AᴴW b` (compute it with one adjoint NuFFT of
/// the weighted data).
pub fn cg_solve<const D: usize>(
    op: &NormalOp<'_, D>,
    rhs: &[C64],
    opts: &CgOptions,
) -> Result<CgOutput> {
    let _span = telemetry::span!("recon.cg_solve", {
        n: rhs.len(),
        max_iterations: opts.max_iterations
    });
    let n = rhs.len();
    let mut x = vec![C64::zeroed(); n];
    let mut r = rhs.to_vec();
    let mut p = r.clone();
    let r0_norm = dot(&r, &r).re.sqrt().max(1e-300);
    let mut rs_old = dot(&r, &r).re;
    let mut residuals = Vec::with_capacity(opts.max_iterations);
    for iter in 0..opts.max_iterations {
        let _iter_span = telemetry::span!("recon.cg_iteration", { iter: iter });
        let mut ap = op.apply(&p)?;
        if opts.lambda != 0.0 {
            for (a, &pv) in ap.iter_mut().zip(&p) {
                *a += pv.scale(opts.lambda);
            }
        }
        let denom = dot(&p, &ap).re;
        if denom.abs() < 1e-300 {
            break;
        }
        let alpha = rs_old / denom;
        for ((xi, pi), (ri, api)) in x.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap)) {
            *xi += pi.scale(alpha);
            *ri -= api.scale(alpha);
        }
        let rs_new = dot(&r, &r).re;
        let rel = rs_new.sqrt() / r0_norm;
        residuals.push(rel);
        // Residual time-series: a counter event per iteration (visible as
        // a chrome-trace counter track) plus a last-value gauge.
        telemetry::counter_event("recon.cg_residual", rel);
        telemetry::record_gauge("recon.cg_residual", rel);
        if rel < opts.tolerance {
            break;
        }
        let beta = rs_new / rs_old;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + pi.scale(beta);
        }
        rs_old = rs_new;
    }
    Ok(CgOutput {
        image: x,
        residuals,
    })
}

/// Convenience wrapper: full CG reconstruction from k-space data.
pub fn cg_reconstruct<const D: usize>(
    plan: &NufftPlan<f64, D>,
    coords: &[[f64; D]],
    data: &[C64],
    weights: &[f64],
    gridder: &dyn Gridder<f64, D>,
    opts: &CgOptions,
) -> Result<CgOutput> {
    // rhs = AᴴW b.
    let weighted: Vec<C64> = if weights.is_empty() {
        data.to_vec()
    } else {
        data.iter().zip(weights).map(|(d, &w)| d.scale(w)).collect()
    };
    let rhs = plan.adjoint(coords, &weighted, gridder)?.image;
    let op = NormalOp::Nufft {
        plan,
        coords,
        gridder,
        weights,
    };
    cg_solve(&op, &rhs, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NufftConfig;
    use crate::gridding::{ExactGridder, SerialGridder};
    use crate::metrics::rel_l2;
    use crate::phantom::Phantom2d;
    use crate::traj;

    #[test]
    fn cg_recovers_image_from_dense_sampling() {
        // With M ≫ N² random samples, AᴴA ≈ M·I and CG recovers the image.
        let n = 12;
        let mut coords = traj::random_nd::<2>(1500, 4);
        traj::shuffle(&mut coords, 1);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let truth: Vec<C64> = (0..n * n)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let data = plan.forward(&truth, &coords).unwrap().samples;
        let out = cg_reconstruct(
            &plan,
            &coords,
            &data,
            &[],
            &ExactGridder,
            &CgOptions {
                max_iterations: 30,
                tolerance: 1e-9,
                lambda: 0.0,
            },
        )
        .unwrap();
        let err = rel_l2(&out.image, &truth);
        assert!(err < 1e-3, "CG reconstruction error {err}");
    }

    #[test]
    fn residuals_decrease_monotonically_enough() {
        let n = 12;
        let coords = traj::random_nd::<2>(800, 9);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let truth: Vec<C64> = (0..n * n).map(|i| C64::from_re((i % 7) as f64)).collect();
        let data = plan.forward(&truth, &coords).unwrap().samples;
        let out = cg_reconstruct(
            &plan,
            &coords,
            &data,
            &[],
            &SerialGridder,
            &CgOptions::default(),
        )
        .unwrap();
        assert!(out.residuals.len() >= 3);
        let first = out.residuals[0];
        let last = *out.residuals.last().unwrap();
        assert!(last < first / 10.0, "residuals {first} → {last}");
    }

    #[test]
    fn cg_beats_direct_adjoint_on_radial_phantom() {
        let n = 32;
        let mut coords = traj::radial_2d(52, 64, true);
        traj::shuffle(&mut coords, 3);
        let phantom = Phantom2d::shepp_logan();
        let data = phantom.kspace(n, &coords);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let truth = phantom.rasterize_aa(n, 4);

        let normalize = |img: &[C64]| -> Vec<C64> {
            let peak = img.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1e-30);
            img.iter().map(|z| z.unscale(peak)).collect()
        };
        let tn = normalize(&truth);

        // Direct (unweighted) adjoint: blurred by the density.
        let direct = plan.adjoint(&coords, &data, &SerialGridder).unwrap().image;
        let err_direct = rel_l2(&normalize(&direct), &tn);

        // 12 CG iterations.
        let out = cg_reconstruct(
            &plan,
            &coords,
            &data,
            &[],
            &SerialGridder,
            &CgOptions {
                max_iterations: 12,
                tolerance: 1e-8,
                lambda: 1e-6,
            },
        )
        .unwrap();
        let err_cg = rel_l2(&normalize(&out.image), &tn);
        assert!(
            err_cg < err_direct / 2.0,
            "CG {err_cg} should beat direct adjoint {err_direct}"
        );
    }

    #[test]
    fn toeplitz_path_matches_nufft_path() {
        let n = 16;
        let coords = traj::random_nd::<2>(600, 6);
        let cfg = NufftConfig::with_n(n);
        let plan = NufftPlan::<f64, 2>::new(cfg.clone()).unwrap();
        let truth: Vec<C64> = (0..n * n)
            .map(|i| C64::new((i as f64 * 0.29).cos(), 0.0))
            .collect();
        let data = plan.forward(&truth, &coords).unwrap().samples;
        let rhs = plan.adjoint(&coords, &data, &ExactGridder).unwrap().image;
        let opts = CgOptions {
            max_iterations: 15,
            tolerance: 1e-10,
            lambda: 0.0,
        };
        let via_nufft = cg_solve(
            &NormalOp::Nufft {
                plan: &plan,
                coords: &coords,
                gridder: &ExactGridder,
                weights: &[],
            },
            &rhs,
            &opts,
        )
        .unwrap();
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &ExactGridder).unwrap();
        let via_toeplitz = cg_solve(&NormalOp::Toeplitz(&top), &rhs, &opts).unwrap();
        let err = rel_l2(&via_toeplitz.image, &via_nufft.image);
        assert!(err < 5e-2, "Toeplitz vs NuFFT CG paths: {err}");
    }
}
