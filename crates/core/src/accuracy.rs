//! NuFFT accuracy model: predicted aliasing error per configuration.
//!
//! The gridding approximation's error is aliasing: after dividing by
//! `φ̂(k/G)`, the image at index `k` picks up replicas weighted by
//! `φ̂((k + rG)/G)` for `r ≠ 0`. The worst-case relative amplitude
//!
//! ```text
//! ε(k) = Σ_{r≠0} |φ̂((k + rG)/G)| / |φ̂(k/G)|
//! ```
//!
//! maximized over the image band `k ∈ [−N/2, N/2)` predicts the relative
//! ℓ∞/ℓ2 error of the transform — the quantity behind the paper's §II-B
//! accuracy/oversampling/width trade-off (Beatty's rule chooses `β` to
//! minimize exactly this). The estimate is computed numerically from the
//! kernel's Fourier transform, so it applies to *every* kernel family,
//! and the test suite verifies the measured NuFFT-vs-NuDFT error tracks
//! it across configurations.

use crate::config::NufftConfig;

/// Worst-case relative aliasing amplitude for a configuration
/// (replicas `|r| ≤ replicas` included; 3 is plenty — terms decay fast).
pub fn aliasing_bound(cfg: &NufftConfig) -> f64 {
    let g = cfg.grid_size() as f64;
    let n = cfg.n;
    let w = cfg.width;
    let kernel = cfg.resolved_kernel();
    let replicas = 3i64;
    let mut worst = 0.0f64;
    // Probe the image band densely enough to catch the edge maximum.
    let probes = (2 * n).clamp(64, 512);
    for i in 0..=probes {
        let k = -(n as f64) / 2.0 + i as f64 / probes as f64 * n as f64;
        let denom = kernel.ft(k / g, w).abs();
        if denom < 1e-300 {
            continue;
        }
        let mut alias = 0.0;
        for r in -replicas..=replicas {
            if r == 0 {
                continue;
            }
            alias += kernel.ft((k + r as f64 * g) / g, w).abs();
        }
        worst = worst.max(alias / denom);
    }
    worst
}

/// The coordinate-quantization error floor of LUT gridding: rounding
/// sample positions to `1/L` of a grid cell shifts them by up to
/// `1/(2L)`, a worst-case edge phase error of `π·N/(2·G·L) = π/(2σL)`
/// radians; the rms relative error over a flat spectrum is `≈ bound/√3`.
pub fn quantization_floor(cfg: &NufftConfig) -> f64 {
    core::f64::consts::PI
        / (2.0 * cfg.effective_sigma() * cfg.table_oversampling as f64)
        / 3f64.sqrt()
}

/// Combined error estimate for a LUT-gridded NuFFT.
pub fn total_estimate(cfg: &NufftConfig) -> f64 {
    aliasing_bound(cfg) + quantization_floor(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::ExactGridder;
    use crate::metrics::rel_l2;
    use crate::nudft::adjoint_nudft;
    use crate::nufft::NufftPlan;
    use jigsaw_num::C64;

    fn measured_error(cfg: &NufftConfig) -> f64 {
        let n = cfg.n;
        let m = 150;
        let mut s = 0x1234_5678u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64 - 0.5
        };
        let coords: Vec<[f64; 2]> = (0..m).map(|_| [next(), next()]).collect();
        let values: Vec<C64> = (0..m).map(|_| C64::new(next(), next())).collect();
        let plan = NufftPlan::<f64, 2>::new(cfg.clone()).unwrap();
        let img = plan.adjoint(&coords, &values, &ExactGridder).unwrap().image;
        let exact = adjoint_nudft(n, &coords, &values, None);
        rel_l2(&img, &exact)
    }

    #[test]
    fn bound_shrinks_with_width() {
        let mut last = f64::MAX;
        for w in [2usize, 4, 6, 8] {
            let mut cfg = NufftConfig::with_n(64);
            cfg.width = w;
            let b = aliasing_bound(&cfg);
            assert!(b < last, "W={w}: bound {b} should beat {last}");
            last = b;
        }
        // W = 6, σ = 2 Kaiser-Bessel is a ~1e-5-accurate configuration.
        let cfg = NufftConfig::with_n(64);
        let b = aliasing_bound(&cfg);
        assert!((1e-8..1e-3).contains(&b), "bound {b}");
    }

    #[test]
    fn measured_error_tracks_bound() {
        // Across three widths the measured error stays within two orders
        // of magnitude of the estimate and preserves its ordering.
        let mut prev_meas = f64::MAX;
        for w in [3usize, 5, 7] {
            let mut cfg = NufftConfig::with_n(32);
            cfg.width = w;
            let bound = aliasing_bound(&cfg);
            let meas = measured_error(&cfg);
            assert!(
                meas < 100.0 * bound + 1e-12 && meas > bound / 1000.0,
                "W={w}: measured {meas} vs bound {bound}"
            );
            assert!(meas < prev_meas, "error must shrink with W");
            prev_meas = meas;
        }
    }

    #[test]
    fn beatty_widening_keeps_bound_at_lower_sigma() {
        // σ = 1.25 with a Beatty-widened kernel should land within ~10×
        // of the σ = 2, W = 6 bound (that's the point of the rule).
        let base = aliasing_bound(&NufftConfig::with_n(64));
        let mut low = NufftConfig::with_n(64);
        low.sigma = 1.25;
        low.width = crate::config::beatty_width(6, 1.25).min(8);
        let widened = aliasing_bound(&low);
        assert!(
            widened < 50.0 * base,
            "σ=1.25 W={} bound {widened} vs σ=2 bound {base}",
            low.width
        );
        // Without widening it would be far worse.
        let mut narrow = low.clone();
        narrow.width = 4;
        assert!(aliasing_bound(&narrow) > 5.0 * widened);
    }

    #[test]
    fn quantization_floor_formula() {
        let cfg = NufftConfig::with_n(64); // σ = 2, L = 32
        let f = quantization_floor(&cfg);
        assert!((f - core::f64::consts::PI / 128.0 / 3f64.sqrt()).abs() < 1e-12);
        let mut fine = cfg.clone();
        fine.table_oversampling = 1024;
        assert!(quantization_floor(&fine) < f / 30.0);
    }

    #[test]
    fn total_estimate_dominated_by_right_term() {
        // At L = 32 the quantization floor dominates the aliasing term
        // for the default W = 6 kernel; at L = 4096 aliasing dominates.
        let coarse = NufftConfig::with_n(64);
        assert!(quantization_floor(&coarse) > aliasing_bound(&coarse));
        let mut fine = NufftConfig::with_n(64);
        fine.table_oversampling = 4096;
        let q = quantization_floor(&fine);
        let a = aliasing_bound(&fine);
        assert!(
            total_estimate(&fine) >= a.max(q),
            "estimate must cover both terms"
        );
    }
}
