//! Toeplitz embedding of the NuFFT normal operator — the strategy behind
//! the paper's GPU baseline.
//!
//! Impatient \[10\] is "a gridding-accelerated *Toeplitz-based* strategy":
//! iterative MRI reconstruction repeatedly applies the normal operator
//! `AᴴA`, and because `(AᴴA x)_k = Σ_l x_l ψ(k−l)` with the point-spread
//! kernel `ψ(d) = Σ_j w_j e^{2πi d·ν_j}`, the whole operator is a
//! (block-)Toeplitz matrix: its action is one zero-padded FFT
//! convolution on a `2N` grid. Gridding is then needed only *once*, to
//! build `ψ` — which is exactly why Impatient's performance is dominated
//! by that single gridding pass, the step the paper accelerates.
//!
//! [`ToeplitzOperator::build`] computes `ψ` on the `[−N, N)^d` lattice
//! with one adjoint NuFFT of the (optionally density-weighted) all-ones
//! vector at doubled image size, then [`ToeplitzOperator::apply`]
//! evaluates `AᴴA x` with two FFTs and no gridding at all.

use crate::config::NufftConfig;
use crate::gridding::Gridder;
use crate::nufft::NufftPlan;
use crate::{Error, Result};
use jigsaw_fft::{Direction, FftNd};
use jigsaw_num::C64;

/// A precomputed NuFFT normal operator `x ↦ AᴴA x`.
pub struct ToeplitzOperator<const D: usize> {
    n: usize,
    /// FFT of the PSF kernel on the `(2N)^d` torus.
    psf_hat: Vec<C64>,
    fft: FftNd<f64>,
}

impl<const D: usize> ToeplitzOperator<D> {
    /// Build from trajectory `coords` (cycles) for an `N^d` image, using
    /// the given NuFFT configuration's kernel/accuracy parameters and
    /// gridding engine. `weights` (density compensation, applied inside
    /// `AᴴA` as `Aᴴ W A`) may be empty for uniform weighting.
    pub fn build(
        cfg: &NufftConfig,
        coords: &[[f64; D]],
        weights: &[f64],
        gridder: &dyn Gridder<f64, D>,
    ) -> Result<Self> {
        if !weights.is_empty() && weights.len() != coords.len() {
            return Err(Error::Data(format!(
                "weight count {} != coordinate count {}",
                weights.len(),
                coords.len()
            )));
        }
        let n = cfg.n;
        // PSF on the doubled lattice: adjoint NuFFT at image size 2N.
        let mut cfg2 = cfg.clone();
        cfg2.n = 2 * n;
        let plan2 = NufftPlan::<f64, D>::new(cfg2)?;
        let ones: Vec<C64> = if weights.is_empty() {
            vec![C64::one(); coords.len()]
        } else {
            weights.iter().map(|&w| C64::new(w, 0.0)).collect()
        };
        let psf = plan2.adjoint(coords, &ones, gridder)?.image;
        // Rearrange ψ(d), d ∈ [−N, N)^d (index i = d + N) onto the torus
        // (index d mod 2N) and take its FFT once.
        let two_n = 2 * n;
        let npts = two_n.pow(D as u32);
        let mut torus = vec![C64::zeroed(); npts];
        for (flat, &v) in psf.iter().enumerate() {
            let mut rem = flat;
            let mut dst = 0usize;
            for d in 0..D {
                let stride = two_n.pow((D - 1 - d) as u32);
                let i = (rem / stride) % two_n;
                rem %= stride;
                let delta = i as i64 - n as i64; // d ∈ [−N, N)
                let t = delta.rem_euclid(two_n as i64) as usize;
                dst = dst * two_n + t;
            }
            torus[dst] = v;
        }
        let fft = FftNd::new(&[two_n; D]);
        fft.process(&mut torus, Direction::Forward);
        Ok(Self {
            n,
            psf_hat: torus,
            fft,
        })
    }

    /// Image size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Apply the normal operator: `out = AᴴA x` for a row-major `[N; D]`
    /// image. Two FFTs on the `(2N)^d` grid, no gridding.
    pub fn apply(&self, x: &[C64]) -> Result<Vec<C64>> {
        let n = self.n;
        let two_n = 2 * n;
        if x.len() != n.pow(D as u32) {
            return Err(Error::Data(format!(
                "image has {} pixels, expected {}^{}",
                x.len(),
                n,
                D
            )));
        }
        // Zero-pad x: pixel index i ↔ k = i − N/2 ∈ [−N/2, N/2), placed at
        // (k mod 2N) on the torus.
        let npts = two_n.pow(D as u32);
        let mut pad = vec![C64::zeroed(); npts];
        for (flat, &v) in x.iter().enumerate() {
            let mut rem = flat;
            let mut dst = 0usize;
            for d in 0..D {
                let stride = n.pow((D - 1 - d) as u32);
                let i = (rem / stride) % n;
                rem %= stride;
                let k = i as i64 - (n / 2) as i64;
                dst = dst * two_n + k.rem_euclid(two_n as i64) as usize;
            }
            pad[dst] = v;
        }
        self.fft.process(&mut pad, Direction::Forward);
        for (p, &h) in pad.iter_mut().zip(&self.psf_hat) {
            *p *= h;
        }
        self.fft.process(&mut pad, Direction::Inverse);
        // Crop back to [−N/2, N/2)^d.
        let mut out = vec![C64::zeroed(); n.pow(D as u32)];
        for (flat, o) in out.iter_mut().enumerate() {
            let mut rem = flat;
            let mut src = 0usize;
            for d in 0..D {
                let stride = n.pow((D - 1 - d) as u32);
                let i = (rem / stride) % n;
                rem %= stride;
                let k = i as i64 - (n / 2) as i64;
                src = src * two_n + k.rem_euclid(two_n as i64) as usize;
            }
            *o = pad[src];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::{ExactGridder, SerialGridder};
    use crate::metrics::rel_l2;
    use crate::nudft::{adjoint_nudft, forward_nudft};
    use crate::traj;

    fn test_image(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64 - 0.5
        };
        (0..n * n).map(|_| C64::new(next(), next())).collect()
    }

    /// Direct normal operator via the NuDFT pair — the exact oracle.
    fn normal_direct(n: usize, coords: &[[f64; 2]], x: &[C64]) -> Vec<C64> {
        let samples = forward_nudft(n, x, coords, None);
        adjoint_nudft(n, coords, &samples, None)
    }

    #[test]
    fn matches_direct_normal_operator() {
        let n = 16;
        let mut coords = traj::radial_2d(20, 24, true);
        traj::shuffle(&mut coords, 1);
        let cfg = NufftConfig::with_n(n);
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &ExactGridder).unwrap();
        let x = test_image(n, 5);
        let got = top.apply(&x).unwrap();
        let want = normal_direct(n, &coords, &x);
        let err = rel_l2(&got, &want);
        assert!(err < 1e-3, "Toeplitz vs direct AᴴA: {err}");
    }

    #[test]
    fn matches_forward_adjoint_composition() {
        let n = 16;
        let mut coords = traj::spiral_2d(4, 300, 4.0);
        traj::shuffle(&mut coords, 2);
        let cfg = NufftConfig::with_n(n);
        let plan = NufftPlan::<f64, 2>::new(cfg.clone()).unwrap();
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &SerialGridder).unwrap();
        let x = test_image(n, 9);
        let fa = plan
            .adjoint(
                &coords,
                &plan.forward(&x, &coords).unwrap().samples,
                &SerialGridder,
            )
            .unwrap()
            .image;
        let tp = top.apply(&x).unwrap();
        let err = rel_l2(&tp, &fa);
        assert!(err < 5e-2, "Toeplitz vs NuFFT AᴴA: {err}");
    }

    #[test]
    fn weighted_normal_operator() {
        // Aᴴ W A with non-uniform weights must match the weighted NuDFT
        // composition.
        let n = 12;
        let coords = traj::random_nd::<2>(200, 7);
        let weights: Vec<f64> = (0..200).map(|i| 0.5 + (i % 5) as f64 * 0.25).collect();
        let cfg = NufftConfig::with_n(n);
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &weights, &ExactGridder).unwrap();
        let x = test_image(n, 11);
        let got = top.apply(&x).unwrap();
        // Oracle.
        let samples = forward_nudft(n, &x, &coords, None);
        let weighted: Vec<C64> = samples
            .iter()
            .zip(&weights)
            .map(|(s, &w)| s.scale(w))
            .collect();
        let want = adjoint_nudft(n, &coords, &weighted, None);
        let err = rel_l2(&got, &want);
        assert!(err < 1e-3, "weighted Toeplitz error: {err}");
    }

    #[test]
    fn operator_is_hermitian() {
        // ⟨Tx, y⟩ = ⟨x, Ty⟩ (AᴴA is Hermitian).
        let n = 8;
        let coords = traj::random_nd::<2>(100, 3);
        let cfg = NufftConfig::with_n(n);
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &ExactGridder).unwrap();
        let x = test_image(n, 1);
        let y = test_image(n, 2);
        let tx = top.apply(&x).unwrap();
        let ty = top.apply(&y).unwrap();
        let lhs: C64 = tx.iter().zip(&y).map(|(a, b)| *a * b.conj()).sum();
        let rhs: C64 = x.iter().zip(&ty).map(|(a, b)| *a * b.conj()).sum();
        assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn rejects_bad_sizes() {
        let cfg = NufftConfig::with_n(8);
        let coords = traj::random_nd::<2>(10, 1);
        assert!(ToeplitzOperator::<2>::build(&cfg, &coords, &[1.0; 3], &SerialGridder).is_err());
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &SerialGridder).unwrap();
        assert!(top.apply(&[C64::zeroed(); 7]).is_err());
    }
}
