//! Toeplitz embedding of the NuFFT normal operator — the strategy behind
//! the paper's GPU baseline, promoted here to a production fast path.
//!
//! Impatient \[10\] is "a gridding-accelerated *Toeplitz-based* strategy":
//! iterative MRI reconstruction repeatedly applies the normal operator
//! `AᴴA`, and because `(AᴴA x)_k = Σ_l x_l ψ(k−l)` with the point-spread
//! kernel `ψ(d) = Σ_j w_j e^{2πi d·ν_j}`, the whole operator is a
//! (block-)Toeplitz matrix: its action is one zero-padded FFT
//! convolution on a `2N` grid. Gridding is then needed only *once*, to
//! build `ψ` — which is exactly why Impatient's performance is dominated
//! by that single gridding pass, the step the paper accelerates.
//!
//! [`ToeplitzOperator::build`] computes `ψ` on the `[−N, N)^d` lattice
//! with one adjoint NuFFT of the (optionally density-weighted) all-ones
//! vector at doubled image size, then [`ToeplitzOperator::apply`]
//! evaluates `AᴴA x` with two FFTs and no gridding at all.
//!
//! The hot path is engineered for the CG inner loop:
//!
//! * Both `(2N)^d` FFTs run through [`FftNd::process_with`] on the shared
//!   [`WorkerPool`](crate::engine::WorkerPool), honoring the same serial
//!   fallback policy as the NuFFT plans (per-axis retry, counted in
//!   `engine.fallbacks`, strict `Error::Execution` when disabled).
//! * The `(2N)^d` pad grid is recycled across applications instead of
//!   reallocated — the operator keeps a small arena of parked buffers.
//! * The embed/extract index map (image pixel → torus position) is
//!   precomputed at build time, and [`ToeplitzOperator::apply_batch`]
//!   amortizes it (and one scratch grid) over all coils of a SENSE
//!   normal-operator application.
//!
//! Build-time robustness: the `recon.normal_op` fault site fires inside
//! [`ToeplitzOperator::build_with_plan`], and
//! [`ToeplitzOperator::build_degradable`] contains both injected panics
//! and a non-finite PSF so reconstructions can fall back to the gridded
//! normal operator (counted in `recon.normal_op_fallbacks`,
//! flight-recorded).

use crate::config::NufftConfig;
use crate::gridding::Gridder;
use crate::nufft::NufftPlan;
use crate::{Error, Result};
use jigsaw_fft::exec::Executor;
use jigsaw_fft::{Direction, FftNd};
use jigsaw_num::C64;
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::faultpoint;
use std::sync::{Arc, Mutex};

/// Parked pad grids kept per operator (two covers an apply racing a
/// batched apply on another serve thread without unbounded growth).
const MAX_PARKED_GRIDS: usize = 2;

/// A precomputed NuFFT normal operator `x ↦ AᴴA x`.
pub struct ToeplitzOperator<const D: usize> {
    n: usize,
    /// FFT of the PSF kernel on the `(2N)^d` torus.
    psf_hat: Vec<C64>,
    fft: FftNd<f64>,
    /// Torus position of every image pixel (row-major `[N; D]` order),
    /// shared by the zero-pad embed and the crop extract.
    embed_idx: Vec<u32>,
    /// Recycled `(2N)^d` pad grids (see [`MAX_PARKED_GRIDS`]).
    scratch: Mutex<Vec<Vec<C64>>>,
}

/// Run one in-place FFT on the given executor, honoring the engine's
/// serial-fallback policy — the same pattern as the NuFFT plans'
/// uniform-FFT stage.
fn fft_on(exec: &dyn Executor, fft: &FftNd<f64>, data: &mut [C64], dir: Direction) -> Result<()> {
    if crate::engine::serial_fallback_enabled() {
        // Per-axis serial retry on contained panics, counted in
        // `engine.fallbacks` inside the FFT layer.
        fft.process_with(exec, data, dir);
        Ok(())
    } else {
        fft.try_process_with(exec, data, dir)
            .map_err(|e| Error::Execution(e.to_string()))
    }
}

/// Run one in-place FFT over the shared worker pool.
fn fft_pooled(fft: &FftNd<f64>, data: &mut [C64], dir: Direction) -> Result<()> {
    fft_on(crate::engine::WorkerPool::global(), fft, data, dir)
}

impl<const D: usize> ToeplitzOperator<D> {
    /// Build from trajectory `coords` (cycles) for an `N^d` image, using
    /// the given NuFFT configuration's kernel/accuracy parameters and
    /// gridding engine. `weights` (density compensation, applied inside
    /// `AᴴA` as `Aᴴ W A`) may be empty for uniform weighting.
    pub fn build(
        cfg: &NufftConfig,
        coords: &[[f64; D]],
        weights: &[f64],
        gridder: &dyn Gridder<f64, D>,
    ) -> Result<Self> {
        Self::build_with_plan(cfg, coords, weights, gridder, None)
    }

    /// Like [`Self::build`], but reusing a prebuilt NuFFT plan at the
    /// doubled image size `2N` (its configuration must equal `cfg` with
    /// `n` doubled) instead of planning one internally and dropping it —
    /// the serving layer hands one from its plan cache.
    pub fn build_with_plan(
        cfg: &NufftConfig,
        coords: &[[f64; D]],
        weights: &[f64],
        gridder: &dyn Gridder<f64, D>,
        plan2: Option<&NufftPlan<f64, D>>,
    ) -> Result<Self> {
        if !weights.is_empty() && weights.len() != coords.len() {
            return Err(Error::Data(format!(
                "weight count {} != coordinate count {}",
                weights.len(),
                coords.len()
            )));
        }
        // A non-finite density weight would propagate through the PSF
        // into every entry of the embedded kernel spectrum — and the
        // kernel is cacheable (and now snapshot-persistable), so the
        // poison would outlive this call. Reject at the door, like
        // planning rejects non-finite coordinates.
        if let Some(i) = weights.iter().position(|w| !w.is_finite()) {
            return Err(Error::Data(format!(
                "non-finite density weight at index {i}"
            )));
        }
        let n = cfg.n;
        let _span = telemetry::span!("toeplitz.build", {
            n: n,
            dim: D,
            m: coords.len()
        });
        telemetry::record_counter("toeplitz.builds", 1);
        faultpoint!(crate::fault::RECON_NORMAL_OP);
        // PSF on the doubled lattice: adjoint NuFFT at image size 2N.
        let mut cfg2 = cfg.clone();
        cfg2.n = 2 * n;
        let owned;
        let plan2 = match plan2 {
            Some(p) => {
                if *p.config() != cfg2 {
                    return Err(Error::Config(format!(
                        "prebuilt Toeplitz plan has n={}, expected the doubled \
                         configuration (n={}) of the target image",
                        p.config().n,
                        cfg2.n
                    )));
                }
                p
            }
            None => {
                owned = NufftPlan::<f64, D>::new(cfg2)?;
                &owned
            }
        };
        let ones: Vec<C64> = if weights.is_empty() {
            vec![C64::one(); coords.len()]
        } else {
            weights.iter().map(|&w| C64::new(w, 0.0)).collect()
        };
        let psf = plan2.adjoint(coords, &ones, gridder)?.image;
        if psf.iter().any(|z| !z.re.is_finite() || !z.im.is_finite()) {
            return Err(Error::Execution(
                "non-finite PSF from the Toeplitz build adjoint".into(),
            ));
        }
        // Rearrange ψ(d), d ∈ [−N, N)^d (index i = d + N) onto the torus
        // (index d mod 2N) and take its FFT once.
        let two_n = 2 * n;
        let npts = two_n.pow(D as u32);
        if npts > u32::MAX as usize {
            return Err(Error::Config(format!(
                "Toeplitz torus of {npts} points exceeds the index range"
            )));
        }
        let mut torus = vec![C64::zeroed(); npts];
        for (flat, &v) in psf.iter().enumerate() {
            let mut rem = flat;
            let mut dst = 0usize;
            for d in 0..D {
                let stride = two_n.pow((D - 1 - d) as u32);
                let i = (rem / stride) % two_n;
                rem %= stride;
                let delta = i as i64 - n as i64; // d ∈ [−N, N)
                let t = delta.rem_euclid(two_n as i64) as usize;
                dst = dst * two_n + t;
            }
            torus[dst] = v;
        }
        let fft = FftNd::new(&[two_n; D]);
        fft_pooled(&fft, &mut torus, Direction::Forward)?;
        // Embed/extract map: pixel index i ↔ k = i − N/2 ∈ [−N/2, N/2),
        // placed at (k mod 2N) on the torus. Shared by both directions,
        // computed once here instead of per application.
        let npix = n.pow(D as u32);
        let mut embed_idx = Vec::with_capacity(npix);
        for flat in 0..npix {
            let mut rem = flat;
            let mut dst = 0usize;
            for d in 0..D {
                let stride = n.pow((D - 1 - d) as u32);
                let i = (rem / stride) % n;
                rem %= stride;
                let k = i as i64 - (n / 2) as i64;
                dst = dst * two_n + k.rem_euclid(two_n as i64) as usize;
            }
            embed_idx.push(dst as u32);
        }
        Ok(Self {
            n,
            psf_hat: torus,
            fft,
            embed_idx,
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// Build with graceful degradation (the `recon.normal_op` policy): a
    /// contained panic or non-finite PSF during the build returns
    /// `Ok(None)` when the engine's serial fallback is enabled — counted
    /// in `recon.normal_op_fallbacks` and flight-recorded — so the caller
    /// can fall back to the gridded normal operator. With the fallback
    /// disabled the failure surfaces as [`Error::Execution`]. Validation
    /// errors (mismatched weights, bad configuration) propagate either
    /// way: they are caller bugs, not degradable build failures.
    pub fn build_degradable(
        cfg: &NufftConfig,
        coords: &[[f64; D]],
        weights: &[f64],
        gridder: &dyn Gridder<f64, D>,
        plan2: Option<&NufftPlan<f64, D>>,
    ) -> Result<Option<Arc<Self>>> {
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Self::build_with_plan(cfg, coords, weights, gridder, plan2)
        }));
        let failure = match built {
            Ok(Ok(op)) => return Ok(Some(Arc::new(op))),
            Ok(Err(Error::Execution(msg))) => msg,
            Ok(Err(other)) => return Err(other),
            Err(payload) => jigsaw_fft::exec::panic_message(&*payload),
        };
        if !crate::engine::serial_fallback_enabled() {
            return Err(Error::Execution(format!(
                "Toeplitz normal-operator build failed: {failure}"
            )));
        }
        telemetry::record_counter("recon.normal_op_fallbacks", 1);
        telemetry::flight::record(
            telemetry::FlightKind::FallbackTaken,
            telemetry::current_request_id(),
            0,
            &format!("toeplitz build → gridded normal op: {failure}"),
        );
        Ok(None)
    }

    /// Image size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Apply the normal operator: `out = AᴴA x` for a row-major `[N; D]`
    /// image. Two FFTs on the `(2N)^d` grid, no gridding.
    pub fn apply(&self, x: &[C64]) -> Result<Vec<C64>> {
        self.apply_with(crate::engine::WorkerPool::global(), x)
    }

    /// Like [`Self::apply`], but running the FFTs on the given executor
    /// instead of the shared global pool. The FFT's panel partition
    /// depends only on the grid shape, so the output is bitwise
    /// identical for every executor and worker count — the bench pins
    /// pool sizes through this seam to prove it.
    pub fn apply_with(&self, exec: &dyn Executor, x: &[C64]) -> Result<Vec<C64>> {
        self.check_image(x)?;
        let _span = telemetry::span!("toeplitz.apply", { n: self.n, coils: 1usize });
        telemetry::record_counter("toeplitz.applies", 1);
        let mut pad = self.take_grid();
        let mut out = vec![C64::zeroed(); x.len()];
        let result = self.convolve(exec, x, &mut pad, &mut out);
        self.give_grid(pad);
        result.map(|()| out)
    }

    /// Apply the normal operator to a batch of images (one per coil,
    /// each row-major `[N; D]`), reusing one pad grid and the shared
    /// embed/extract map across the whole batch — the per-iteration
    /// shape of the SENSE normal operator. Output order matches input;
    /// every image is computed exactly as [`Self::apply`] would
    /// (bitwise).
    pub fn apply_batch(&self, xs: &[&[C64]]) -> Result<Vec<Vec<C64>>> {
        for x in xs {
            self.check_image(x)?;
        }
        let _span = telemetry::span!("toeplitz.apply", { n: self.n, coils: xs.len() });
        telemetry::record_counter("toeplitz.applies", xs.len() as u64);
        let exec: &dyn Executor = crate::engine::WorkerPool::global();
        let mut pad = self.take_grid();
        let mut outs = Vec::with_capacity(xs.len());
        let mut failed = None;
        for x in xs {
            if !outs.is_empty() {
                pad.fill(C64::zeroed());
            }
            let mut out = vec![C64::zeroed(); x.len()];
            match self.convolve(exec, x, &mut pad, &mut out) {
                Ok(()) => outs.push(out),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        self.give_grid(pad);
        match failed {
            Some(e) => Err(e),
            None => Ok(outs),
        }
    }

    fn check_image(&self, x: &[C64]) -> Result<()> {
        if x.len() != self.n.pow(D as u32) {
            return Err(Error::Data(format!(
                "image has {} pixels, expected {}^{}",
                x.len(),
                self.n,
                D
            )));
        }
        Ok(())
    }

    /// One zero-pad → FFT → multiply → IFFT → crop cycle. `pad` must
    /// arrive zeroed (the grid arena guarantees it for the first use;
    /// batch callers re-zero between coils).
    fn convolve(
        &self,
        exec: &dyn Executor,
        x: &[C64],
        pad: &mut [C64],
        out: &mut [C64],
    ) -> Result<()> {
        for (&idx, &v) in self.embed_idx.iter().zip(x) {
            pad[idx as usize] = v;
        }
        fft_on(exec, &self.fft, pad, Direction::Forward)?;
        for (p, &h) in pad.iter_mut().zip(&self.psf_hat) {
            *p *= h;
        }
        fft_on(exec, &self.fft, pad, Direction::Inverse)?;
        for (o, &idx) in out.iter_mut().zip(&self.embed_idx) {
            *o = pad[idx as usize];
        }
        Ok(())
    }

    /// Take a zeroed `(2N)^d` pad grid, recycling a parked one when
    /// available (arena-style: allocate once, reuse every iteration).
    fn take_grid(&self) -> Vec<C64> {
        let parked = self.scratch.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let mut grid = parked.unwrap_or_default();
        grid.clear();
        grid.resize(self.psf_hat.len(), C64::zeroed());
        grid
    }

    /// Park a pad grid for the next application (bounded; see
    /// [`MAX_PARKED_GRIDS`]).
    fn give_grid(&self, grid: Vec<C64>) {
        let mut parked = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        if parked.len() < MAX_PARKED_GRIDS {
            parked.push(grid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridding::{ExactGridder, SerialGridder};
    use crate::metrics::rel_l2;
    use crate::nudft::{adjoint_nudft, forward_nudft};
    use crate::traj;

    fn test_image(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64 - 0.5
        };
        (0..n * n).map(|_| C64::new(next(), next())).collect()
    }

    fn bits_eq(a: &[C64], b: &[C64]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
    }

    /// Direct normal operator via the NuDFT pair — the exact oracle.
    fn normal_direct(n: usize, coords: &[[f64; 2]], x: &[C64]) -> Vec<C64> {
        let samples = forward_nudft(n, x, coords, None);
        adjoint_nudft(n, coords, &samples, None)
    }

    #[test]
    fn matches_direct_normal_operator() {
        let n = 16;
        let mut coords = traj::radial_2d(20, 24, true);
        traj::shuffle(&mut coords, 1);
        let cfg = NufftConfig::with_n(n);
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &ExactGridder).unwrap();
        let x = test_image(n, 5);
        let got = top.apply(&x).unwrap();
        let want = normal_direct(n, &coords, &x);
        let err = rel_l2(&got, &want);
        assert!(err < 1e-3, "Toeplitz vs direct AᴴA: {err}");
    }

    #[test]
    fn matches_forward_adjoint_composition() {
        let n = 16;
        let mut coords = traj::spiral_2d(4, 300, 4.0);
        traj::shuffle(&mut coords, 2);
        let cfg = NufftConfig::with_n(n);
        let plan = NufftPlan::<f64, 2>::new(cfg.clone()).unwrap();
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &SerialGridder).unwrap();
        let x = test_image(n, 9);
        let fa = plan
            .adjoint(
                &coords,
                &plan.forward(&x, &coords).unwrap().samples,
                &SerialGridder,
            )
            .unwrap()
            .image;
        let tp = top.apply(&x).unwrap();
        let err = rel_l2(&tp, &fa);
        assert!(err < 5e-2, "Toeplitz vs NuFFT AᴴA: {err}");
    }

    #[test]
    fn weighted_normal_operator() {
        // Aᴴ W A with non-uniform weights must match the weighted NuDFT
        // composition.
        let n = 12;
        let coords = traj::random_nd::<2>(200, 7);
        let weights: Vec<f64> = (0..200).map(|i| 0.5 + (i % 5) as f64 * 0.25).collect();
        let cfg = NufftConfig::with_n(n);
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &weights, &ExactGridder).unwrap();
        let x = test_image(n, 11);
        let got = top.apply(&x).unwrap();
        // Oracle.
        let samples = forward_nudft(n, &x, &coords, None);
        let weighted: Vec<C64> = samples
            .iter()
            .zip(&weights)
            .map(|(s, &w)| s.scale(w))
            .collect();
        let want = adjoint_nudft(n, &coords, &weighted, None);
        let err = rel_l2(&got, &want);
        assert!(err < 1e-3, "weighted Toeplitz error: {err}");
    }

    #[test]
    fn operator_is_hermitian() {
        // ⟨Tx, y⟩ = ⟨x, Ty⟩ (AᴴA is Hermitian).
        let n = 8;
        let coords = traj::random_nd::<2>(100, 3);
        let cfg = NufftConfig::with_n(n);
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &ExactGridder).unwrap();
        let x = test_image(n, 1);
        let y = test_image(n, 2);
        let tx = top.apply(&x).unwrap();
        let ty = top.apply(&y).unwrap();
        let lhs: C64 = tx.iter().zip(&y).map(|(a, b)| *a * b.conj()).sum();
        let rhs: C64 = x.iter().zip(&ty).map(|(a, b)| *a * b.conj()).sum();
        assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn rejects_bad_sizes() {
        let cfg = NufftConfig::with_n(8);
        let coords = traj::random_nd::<2>(10, 1);
        assert!(ToeplitzOperator::<2>::build(&cfg, &coords, &[1.0; 3], &SerialGridder).is_err());
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &SerialGridder).unwrap();
        assert!(top.apply(&[C64::zeroed(); 7]).is_err());
        assert!(top
            .apply_batch(&[&vec![C64::zeroed(); 64][..], &[C64::zeroed(); 7][..]])
            .is_err());
    }

    #[test]
    fn prebuilt_plan_is_bitwise_identical_and_validated() {
        let n = 12;
        let coords = traj::random_nd::<2>(150, 13);
        let cfg = NufftConfig::with_n(n);
        let mut cfg2 = cfg.clone();
        cfg2.n = 2 * n;
        let plan2 = NufftPlan::<f64, 2>::new(cfg2).unwrap();
        let fresh = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &SerialGridder).unwrap();
        let reused = ToeplitzOperator::<2>::build_with_plan(
            &cfg,
            &coords,
            &[],
            &SerialGridder,
            Some(&plan2),
        )
        .unwrap();
        assert!(bits_eq(&fresh.psf_hat, &reused.psf_hat));
        let x = test_image(n, 17);
        assert!(bits_eq(
            &fresh.apply(&x).unwrap(),
            &reused.apply(&x).unwrap()
        ));
        // A plan at the wrong size (the base N, not 2N) is rejected.
        let wrong = NufftPlan::<f64, 2>::new(cfg.clone()).unwrap();
        assert!(matches!(
            ToeplitzOperator::<2>::build_with_plan(
                &cfg,
                &coords,
                &[],
                &SerialGridder,
                Some(&wrong)
            ),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        // Repeated applications recycle the pad grid; outputs must stay
        // bitwise identical to the first.
        let n = 8;
        let coords = traj::random_nd::<2>(80, 21);
        let cfg = NufftConfig::with_n(n);
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &SerialGridder).unwrap();
        let x = test_image(n, 4);
        let first = top.apply(&x).unwrap();
        for _ in 0..3 {
            assert!(bits_eq(&first, &top.apply(&x).unwrap()));
        }
    }

    #[test]
    fn apply_batch_matches_per_coil_apply_bitwise() {
        let n = 8;
        let coords = traj::random_nd::<2>(90, 25);
        let cfg = NufftConfig::with_n(n);
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &SerialGridder).unwrap();
        let coils: Vec<Vec<C64>> = (0..4).map(|c| test_image(n, 30 + c)).collect();
        let refs: Vec<&[C64]> = coils.iter().map(|c| c.as_slice()).collect();
        let batch = top.apply_batch(&refs).unwrap();
        assert_eq!(batch.len(), 4);
        for (xc, got) in coils.iter().zip(&batch) {
            assert!(bits_eq(got, &top.apply(xc).unwrap()));
        }
    }

    #[test]
    fn build_counts_into_registry() {
        let n = 8;
        let coords = traj::random_nd::<2>(40, 31);
        let cfg = NufftConfig::with_n(n);
        telemetry::set_enabled(true);
        let before = telemetry::global()
            .snapshot()
            .counter("toeplitz.builds")
            .unwrap_or(0);
        let _ = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &SerialGridder).unwrap();
        let after = telemetry::global()
            .snapshot()
            .counter("toeplitz.builds")
            .unwrap_or(0);
        assert_eq!(after, before + 1);
    }

    #[test]
    fn non_finite_psf_degrades_or_propagates() {
        let _lock = crate::fault::test_guard();
        let n = 8;
        let coords = traj::random_nd::<2>(40, 37);
        let cfg = NufftConfig::with_n(n);
        // Finite but overflowing density weights poison the PSF: each
        // weight passes the at-the-door finiteness check, yet their
        // gridded sum overflows to infinity — only the post-build PSF
        // check can catch it.
        let weights = vec![f64::MAX; coords.len()];
        crate::engine::set_serial_fallback(true);
        let degraded =
            ToeplitzOperator::<2>::build_degradable(&cfg, &coords, &weights, &SerialGridder, None)
                .unwrap();
        assert!(degraded.is_none());
        crate::engine::set_serial_fallback(false);
        let strict =
            ToeplitzOperator::<2>::build_degradable(&cfg, &coords, &weights, &SerialGridder, None);
        assert!(matches!(strict, Err(Error::Execution(_))));
        crate::engine::set_serial_fallback(true);
        // Validation errors are never degraded: a mismatched weight
        // count and outright non-finite weights are both refused as
        // `Data` even under the permissive policy.
        let bad =
            ToeplitzOperator::<2>::build_degradable(&cfg, &coords, &[1.0; 3], &SerialGridder, None);
        assert!(matches!(bad, Err(Error::Data(_))));
        let nan_weights = vec![f64::NAN; coords.len()];
        let nan = ToeplitzOperator::<2>::build_degradable(
            &cfg,
            &coords,
            &nan_weights,
            &SerialGridder,
            None,
        );
        assert!(matches!(nan, Err(Error::Data(_))));
    }
}
