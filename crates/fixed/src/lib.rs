//! 32-bit fixed-point arithmetic — the numeric substrate of the JIGSAW
//! accelerator pipelines.
//!
//! The paper's ASIC performs *all* gridding arithmetic in 32-bit fixed
//! point: interpolation weights are stored as 32-bit complex words with
//! 16-bit real and imaginary components, sample values stream in as 32-bit
//! complex words, and the per-pipeline accumulators are 32-bit per
//! component. This halves ALU width and table storage versus `f32` while
//! *improving* reconstruction error (0.012 % vs 0.047 % NRMSD in Fig. 9),
//! because fixed point spends no bits on exponent range the well-scaled
//! gridding data never uses.
//!
//! * [`Fx32`] — a `Qm.n` value stored in `i32` with a const-generic number
//!   of fraction bits; saturating conversion/arithmetic (hardware clamps).
//! * [`Fx16`] — the 16-bit weight format (`Q1.15` when `FRAC = 15`).
//! * [`CFx32`] / [`CFx16`] — complex pairs, with Knuth's 3-multiply complex
//!   product exactly as the weight-lookup and interpolation units compute it.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod complex;

pub use complex::{CFx16, CFx32};

/// Rounding mode applied when narrowing (float→fixed and product shifts).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Round {
    /// Round to nearest, ties away from zero — what a hardware
    /// "add-half-then-truncate" rounder implements.
    #[default]
    Nearest,
    /// Truncate toward negative infinity (drop the low bits) — the cheapest
    /// hardware option; used in ablations to show the accuracy cost.
    Truncate,
}

/// A signed fixed-point value with `FRAC` fraction bits stored in an `i32`.
///
/// The format is `Q(31−FRAC).FRAC`; e.g. `Fx32<16>` is Q15.16 covering
/// ±32768 with granularity 2⁻¹⁶ — JIGSAW's accumulator format — and
/// `Fx32<30>` is Q1.30 for unit-magnitude data.
///
/// ```
/// use jigsaw_fixed::{Fx32, Round};
/// let x = Fx32::<16>::from_f64(1.5, Round::Nearest);
/// assert_eq!(x.to_f64(), 1.5);                       // exactly representable
/// assert_eq!(x.mul(x, Round::Nearest).to_f64(), 2.25);
/// assert_eq!(Fx32::<16>::from_f64(1e9, Round::Nearest), Fx32::<16>::MAX); // saturates
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Fx32<const FRAC: u32>(pub i32);

impl<const FRAC: u32> Fx32<FRAC> {
    /// Number of fraction bits.
    pub const FRAC_BITS: u32 = FRAC;
    /// Smallest positive increment (one LSB) as `f64`.
    pub const EPS: f64 = 1.0 / (1u64 << FRAC) as f64;
    /// Zero.
    pub const ZERO: Self = Self(0);
    /// One, if representable (requires `FRAC < 31`).
    pub const ONE: Self = Self(1 << FRAC);
    /// Maximum representable value.
    pub const MAX: Self = Self(i32::MAX);
    /// Minimum representable value.
    pub const MIN: Self = Self(i32::MIN);

    /// Construct from the raw two's-complement bit pattern.
    #[inline(always)]
    pub const fn from_bits(bits: i32) -> Self {
        Self(bits)
    }

    /// The raw bit pattern.
    #[inline(always)]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Convert from `f64`, saturating out-of-range values and rounding per
    /// `round`. NaN maps to zero (a hardware pipeline never sees NaN; the
    /// software front end rejects non-finite samples before streaming).
    pub fn from_f64(v: f64, round: Round) -> Self {
        if v.is_nan() {
            return Self(0);
        }
        let scaled = v * (1u64 << FRAC) as f64;
        let r = match round {
            Round::Nearest => scaled.round(),
            Round::Truncate => scaled.floor(),
        };
        if r >= i32::MAX as f64 {
            Self(i32::MAX)
        } else if r <= i32::MIN as f64 {
            Self(i32::MIN)
        } else {
            Self(r as i32)
        }
    }

    /// Convert to `f64` (exact: every `Fx32` is representable in `f64`).
    #[inline(always)]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 * Self::EPS
    }

    /// Saturating addition (hardware accumulators clamp on overflow).
    #[inline(always)]
    pub fn sat_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline(always)]
    pub fn sat_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Wrapping addition (for modeling a cheaper non-saturating adder).
    #[inline(always)]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        Self(self.0.wrapping_add(rhs.0))
    }

    /// Negation (saturates `MIN` to `MAX`).
    #[allow(clippy::should_implement_trait)] // deliberate: saturating, not wrapping, semantics
    #[inline(always)]
    pub fn neg(self) -> Self {
        Self(self.0.saturating_neg())
    }

    /// Fixed-point multiply: 64-bit intermediate product, shifted back by
    /// `FRAC` with the given rounding, then saturated to 32 bits — the
    /// standard DSP multiplier datapath.
    pub fn mul(self, rhs: Self, round: Round) -> Self {
        let wide = self.0 as i64 * rhs.0 as i64;
        let shifted = match round {
            Round::Nearest => {
                let half = 1i64 << (FRAC - 1);
                if wide >= 0 {
                    (wide + half) >> FRAC
                } else {
                    -((-wide + half) >> FRAC)
                }
            }
            Round::Truncate => wide >> FRAC,
        };
        Self(shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Multiply by a 16-bit value with `F2` fraction bits, producing a
    /// result in this 32-bit format — the interpolation unit's
    /// weight × sample product.
    pub fn mul_fx16<const F2: u32>(self, rhs: Fx16<F2>, round: Round) -> Self {
        let wide = self.0 as i64 * rhs.0 as i64;
        let shift = F2;
        let shifted = match round {
            Round::Nearest => {
                let half = 1i64 << (shift - 1);
                if wide >= 0 {
                    (wide + half) >> shift
                } else {
                    -((-wide + half) >> shift)
                }
            }
            Round::Truncate => wide >> shift,
        };
        Self(shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }
}

/// A signed fixed-point value with `FRAC` fraction bits stored in an `i16` —
/// the format of JIGSAW's interpolation-weight LUT entries (`Fx16<15>` =
/// Q1.15, covering (−1, 1) with 2⁻¹⁵ granularity; kernel weights lie in
/// `[0, 1]`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Fx16<const FRAC: u32>(pub i16);

impl<const FRAC: u32> Fx16<FRAC> {
    /// Number of fraction bits.
    pub const FRAC_BITS: u32 = FRAC;
    /// One LSB as `f64`.
    pub const EPS: f64 = 1.0 / (1u32 << FRAC) as f64;
    /// Zero.
    pub const ZERO: Self = Self(0);
    /// Maximum representable value.
    pub const MAX: Self = Self(i16::MAX);
    /// Minimum representable value.
    pub const MIN: Self = Self(i16::MIN);

    /// Construct from the raw bit pattern.
    #[inline(always)]
    pub const fn from_bits(bits: i16) -> Self {
        Self(bits)
    }

    /// The raw bit pattern.
    #[inline(always)]
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Convert from `f64`, saturating and rounding. NaN maps to zero.
    pub fn from_f64(v: f64, round: Round) -> Self {
        if v.is_nan() {
            return Self(0);
        }
        let scaled = v * (1u32 << FRAC) as f64;
        let r = match round {
            Round::Nearest => scaled.round(),
            Round::Truncate => scaled.floor(),
        };
        if r >= i16::MAX as f64 {
            Self(i16::MAX)
        } else if r <= i16::MIN as f64 {
            Self(i16::MIN)
        } else {
            Self(r as i16)
        }
    }

    /// Convert to `f64` (exact).
    #[inline(always)]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 * Self::EPS
    }

    /// Saturating addition.
    #[inline(always)]
    pub fn sat_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Widen to a 32-bit format with the same numeric value
    /// (requires `F32 ≥ FRAC`; the shift is `F32 − FRAC`).
    pub fn widen<const F32: u32>(self) -> Fx32<F32> {
        Fx32((self.0 as i32) << (F32 - FRAC))
    }

    /// 16×16→16 multiply with rounding — the weight-lookup unit combining
    /// per-dimension LUT weights into the final interpolation weight.
    pub fn mul(self, rhs: Self, round: Round) -> Self {
        let wide = self.0 as i32 * rhs.0 as i32;
        let shifted = match round {
            Round::Nearest => {
                let half = 1i32 << (FRAC - 1);
                if wide >= 0 {
                    (wide + half) >> FRAC
                } else {
                    -((-wide + half) >> FRAC)
                }
            }
            Round::Truncate => wide >> FRAC,
        };
        Self(shifted.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }
}

/// JIGSAW's accumulator format: Q15.16.
pub type Acc = Fx32<16>;
/// JIGSAW's weight format: Q1.15.
pub type Weight = Fx16<15>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_values() {
        for v in [-1.0f64, -0.5, 0.0, 0.25, 0.75, 1.0, 100.0, -100.0] {
            let f = Fx32::<16>::from_f64(v, Round::Nearest);
            assert_eq!(f.to_f64(), v, "Q15.16 should represent {v} exactly");
        }
    }

    #[test]
    fn quantization_error_bounded() {
        let mut x = -0.9997;
        while x < 1.0 {
            let q = Fx16::<15>::from_f64(x, Round::Nearest);
            assert!((q.to_f64() - x).abs() <= Fx16::<15>::EPS / 2.0 + 1e-12);
            let t = Fx16::<15>::from_f64(x, Round::Truncate);
            assert!(t.to_f64() <= x + 1e-12 && x - t.to_f64() < Fx16::<15>::EPS + 1e-12);
            x += 0.000137;
        }
    }

    #[test]
    fn saturation_on_overflow() {
        assert_eq!(Fx16::<15>::from_f64(2.0, Round::Nearest), Fx16::<15>::MAX);
        assert_eq!(Fx16::<15>::from_f64(-2.0, Round::Nearest), Fx16::<15>::MIN);
        assert_eq!(Fx32::<16>::from_f64(1e9, Round::Nearest), Fx32::<16>::MAX);
        assert_eq!(Fx32::<16>::from_f64(-1e9, Round::Nearest), Fx32::<16>::MIN);
        let big = Fx32::<16>::MAX;
        assert_eq!(big.sat_add(Fx32::<16>::ONE), Fx32::<16>::MAX);
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(
            Fx32::<16>::from_f64(f64::NAN, Round::Nearest),
            Fx32::<16>::ZERO
        );
        assert_eq!(
            Fx16::<15>::from_f64(f64::NAN, Round::Truncate),
            Fx16::<15>::ZERO
        );
    }

    #[test]
    fn multiply_matches_float_within_lsb() {
        let cases = [(0.5, 0.5), (0.999, -0.999), (-0.25, 0.125), (0.707, 0.707)];
        for (a, b) in cases {
            let fa = Fx16::<15>::from_f64(a, Round::Nearest);
            let fb = Fx16::<15>::from_f64(b, Round::Nearest);
            let prod = fa.mul(fb, Round::Nearest).to_f64();
            assert!(
                (prod - a * b).abs() < 3.0 * Fx16::<15>::EPS,
                "{a}*{b}: {prod} vs {}",
                a * b
            );
        }
    }

    #[test]
    fn q16_16_multiply() {
        let a = Fx32::<16>::from_f64(3.5, Round::Nearest);
        let b = Fx32::<16>::from_f64(-2.0, Round::Nearest);
        assert_eq!(a.mul(b, Round::Nearest).to_f64(), -7.0);
    }

    #[test]
    fn mixed_width_multiply() {
        let s = Fx32::<16>::from_f64(1.5, Round::Nearest);
        let w = Fx16::<15>::from_f64(0.5, Round::Nearest);
        assert_eq!(s.mul_fx16(w, Round::Nearest).to_f64(), 0.75);
    }

    #[test]
    fn widen_preserves_value() {
        let w = Fx16::<15>::from_f64(0.625, Round::Nearest);
        let a: Fx32<16> = w.widen();
        assert_eq!(a.to_f64(), 0.625);
    }

    #[test]
    fn nearest_rounding_ties_away() {
        // 0.5 LSB exactly: 1.5 * EPS has a tie at the LSB boundary.
        let v = 1.5 * Fx16::<15>::EPS;
        let q = Fx16::<15>::from_f64(v, Round::Nearest);
        assert_eq!(q.0, 2); // rounds away from zero
        let q = Fx16::<15>::from_f64(-v, Round::Nearest);
        assert_eq!(q.0, -2);
    }

    #[test]
    fn truncate_is_floor() {
        let q = Fx32::<16>::from_f64(-0.30000001, Round::Truncate);
        assert!(q.to_f64() <= -0.30000001);
        assert!(-0.30000001 - q.to_f64() < Fx32::<16>::EPS);
    }

    #[test]
    fn negation_saturates_min() {
        assert_eq!(Fx32::<16>::MIN.neg(), Fx32::<16>::MAX);
        assert_eq!(Fx32::<16>::ONE.neg().to_f64(), -1.0);
    }

    #[test]
    fn wrapping_add_wraps() {
        let r = Fx32::<16>::MAX.wrapping_add(Fx32::<16>(1));
        assert_eq!(r, Fx32::<16>::MIN);
    }
}
