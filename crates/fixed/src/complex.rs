//! Complex fixed-point values and the packed LUT word format.
//!
//! JIGSAW stores each interpolation weight as one 32-bit SRAM word holding
//! a 16-bit real and a 16-bit imaginary component ([`CFx16::pack`]), and
//! multiplies complex values with Knuth's 3-multiply / 5-add scheme — three
//! real multipliers instead of four is a real silicon saving at 16 nm.

use crate::{Fx16, Fx32, Round};
use jigsaw_num::C64;

/// Complex value with 32-bit fixed-point components (pipeline datapath and
/// accumulator format).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default, Hash)]
pub struct CFx32<const FRAC: u32> {
    /// Real component.
    pub re: Fx32<FRAC>,
    /// Imaginary component.
    pub im: Fx32<FRAC>,
}

impl<const FRAC: u32> CFx32<FRAC> {
    /// Zero.
    pub const ZERO: Self = Self {
        re: Fx32::ZERO,
        im: Fx32::ZERO,
    };

    /// Construct from components.
    #[inline(always)]
    pub const fn new(re: Fx32<FRAC>, im: Fx32<FRAC>) -> Self {
        Self { re, im }
    }

    /// Quantize a `Complex<f64>`.
    pub fn from_c64(z: C64, round: Round) -> Self {
        Self::new(Fx32::from_f64(z.re, round), Fx32::from_f64(z.im, round))
    }

    /// Widen to `Complex<f64>` (exact).
    pub fn to_c64(self) -> C64 {
        C64::new(self.re.to_f64(), self.im.to_f64())
    }

    /// Saturating complex addition (the accumulate stage).
    #[inline(always)]
    pub fn sat_add(self, rhs: Self) -> Self {
        Self::new(self.re.sat_add(rhs.re), self.im.sat_add(rhs.im))
    }

    /// Knuth 3-multiply complex product with a 16-bit weight
    /// (the interpolation unit: weight × sample).
    ///
    /// `(a+bi)(c+di) = (ac − bd) + ((a+b)(c+d) − ac − bd)i` where `c+di` is
    /// the weight. Intermediate sums use 64-bit headroom before narrowing,
    /// as a hardware implementation would carry guard bits.
    pub fn knuth_mul_w<const WF: u32>(self, w: CFx16<WF>, round: Round) -> Self {
        // Work in raw integer domain with full precision, then narrow once.
        let a = self.re.0 as i64;
        let b = self.im.0 as i64;
        let c = w.re.0 as i64;
        let d = w.im.0 as i64;
        let ac = a * c;
        let bd = b * d;
        let abcd = (a + b) * (c + d);
        let re_wide = ac - bd;
        let im_wide = abcd - ac - bd;
        Self::new(narrow(re_wide, WF, round), narrow(im_wide, WF, round))
    }

    /// Multiply by a real 16-bit weight (separable kernels apply one real
    /// weight per dimension before the final complex product).
    pub fn scale_w<const WF: u32>(self, w: Fx16<WF>, round: Round) -> Self {
        Self::new(self.re.mul_fx16(w, round), self.im.mul_fx16(w, round))
    }
}

/// Shift a wide product right by `shift` bits with rounding, saturating to
/// 32 bits — the narrowing stage at the end of every hardware multiplier.
fn narrow<const FRAC: u32>(wide: i64, shift: u32, round: Round) -> Fx32<FRAC> {
    let shifted = match round {
        Round::Nearest => {
            let half = 1i64 << (shift - 1);
            if wide >= 0 {
                (wide + half) >> shift
            } else {
                -((-wide + half) >> shift)
            }
        }
        Round::Truncate => wide >> shift,
    };
    Fx32(shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
}

/// Complex value with 16-bit fixed-point components — the LUT weight word.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default, Hash)]
pub struct CFx16<const FRAC: u32> {
    /// Real component.
    pub re: Fx16<FRAC>,
    /// Imaginary component.
    pub im: Fx16<FRAC>,
}

impl<const FRAC: u32> CFx16<FRAC> {
    /// Zero.
    pub const ZERO: Self = Self {
        re: Fx16::ZERO,
        im: Fx16::ZERO,
    };

    /// Construct from components.
    #[inline(always)]
    pub const fn new(re: Fx16<FRAC>, im: Fx16<FRAC>) -> Self {
        Self { re, im }
    }

    /// A purely real weight.
    pub fn from_re(re: Fx16<FRAC>) -> Self {
        Self::new(re, Fx16::ZERO)
    }

    /// Quantize a `Complex<f64>`.
    pub fn from_c64(z: C64, round: Round) -> Self {
        Self::new(Fx16::from_f64(z.re, round), Fx16::from_f64(z.im, round))
    }

    /// Widen to `Complex<f64>` (exact).
    pub fn to_c64(self) -> C64 {
        C64::new(self.re.to_f64(), self.im.to_f64())
    }

    /// Pack into the 32-bit SRAM word format: real in the high half-word,
    /// imaginary in the low half-word.
    pub fn pack(self) -> u32 {
        ((self.re.0 as u16 as u32) << 16) | (self.im.0 as u16 as u32)
    }

    /// Unpack from the 32-bit SRAM word format.
    pub fn unpack(word: u32) -> Self {
        Self::new(
            Fx16::from_bits((word >> 16) as u16 as i16),
            Fx16::from_bits(word as u16 as i16),
        )
    }

    /// Knuth 3-multiply 16×16→16 complex product (combining the
    /// per-dimension weights in the weight-lookup unit).
    pub fn knuth_mul(self, rhs: Self, round: Round) -> Self {
        let a = self.re.0 as i32;
        let b = self.im.0 as i32;
        let c = rhs.re.0 as i32;
        let d = rhs.im.0 as i32;
        let ac = a * c;
        let bd = b * d;
        let abcd = (a + b) * (c + d);
        let shift_round = |wide: i32| -> i16 {
            let shifted = match round {
                Round::Nearest => {
                    let half = 1i32 << (FRAC - 1);
                    if wide >= 0 {
                        (wide + half) >> FRAC
                    } else {
                        -((-wide + half) >> FRAC)
                    }
                }
                Round::Truncate => wide >> FRAC,
            };
            shifted.clamp(i16::MIN as i32, i16::MAX as i32) as i16
        };
        Self::new(
            Fx16::from_bits(shift_round(ac - bd)),
            Fx16::from_bits(shift_round(abcd - ac - bd)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_num::C64;

    type W = CFx16<15>;
    type A = CFx32<16>;

    #[test]
    fn pack_unpack_roundtrip() {
        let w = W::from_c64(C64::new(0.75, -0.5), Round::Nearest);
        assert_eq!(W::unpack(w.pack()), w);
        // Negative components survive the u16 cast.
        let w2 = W::from_c64(C64::new(-0.999, 0.001), Round::Nearest);
        assert_eq!(W::unpack(w2.pack()), w2);
    }

    #[test]
    fn pack_layout() {
        let w = W::new(Fx16::from_bits(0x1234), Fx16::from_bits(0x00AB_u16 as i16));
        assert_eq!(w.pack(), 0x1234_00AB);
    }

    #[test]
    fn knuth_16_matches_float() {
        let a = C64::new(0.6, -0.3);
        let b = C64::new(0.5, 0.25);
        let fa = W::from_c64(a, Round::Nearest);
        let fb = W::from_c64(b, Round::Nearest);
        let prod = fa.knuth_mul(fb, Round::Nearest).to_c64();
        let want = a * b;
        assert!((prod - want).abs() < 4.0 * Fx16::<15>::EPS);
    }

    #[test]
    fn knuth_32x16_matches_float() {
        let s = C64::new(1.25, -2.5);
        let w = C64::new(0.5, 0.125);
        let fs = A::from_c64(s, Round::Nearest);
        let fw = W::from_c64(w, Round::Nearest);
        let prod = fs.knuth_mul_w(fw, Round::Nearest).to_c64();
        let want = s * w;
        assert!(
            (prod - want).abs() < 4.0 * Fx32::<16>::EPS + 4.0 * Fx16::<15>::EPS,
            "{prod} vs {want}"
        );
    }

    #[test]
    fn accumulate_saturates() {
        let big = A::new(Fx32::MAX, Fx32::ZERO);
        let one = A::from_c64(C64::new(1.0, 0.0), Round::Nearest);
        assert_eq!(big.sat_add(one).re, Fx32::MAX);
    }

    #[test]
    fn real_scale() {
        let s = A::from_c64(C64::new(2.0, -4.0), Round::Nearest);
        let w = Fx16::<15>::from_f64(0.25, Round::Nearest);
        let r = s.scale_w(w, Round::Nearest).to_c64();
        assert!((r - C64::new(0.5, -1.0)).abs() < 1e-4);
    }

    #[test]
    fn purely_real_weight_product_preserves_phase() {
        let s = A::from_c64(C64::new(0.3, 0.4), Round::Nearest);
        let w = W::from_re(Fx16::from_f64(1.0 - Fx16::<15>::EPS, Round::Truncate));
        let r = s.knuth_mul_w(w, Round::Nearest).to_c64();
        let orig = s.to_c64();
        assert!((r - orig).abs() < 1e-3);
    }
}
