//! Property-based tests of the fixed-point substrate.

use jigsaw_fixed::{CFx16, CFx32, Fx16, Fx32, Round};
use jigsaw_num::C64;
use jigsaw_testkit::cases;

/// Float→fixed→float round trip error is bounded by the rounding mode.
#[test]
fn q15_roundtrip_error() {
    cases!(256, |rng| {
        let v = rng.f64_range(-0.999, 0.999);
        let near = Fx16::<15>::from_f64(v, Round::Nearest);
        assert!((near.to_f64() - v).abs() <= Fx16::<15>::EPS / 2.0 + 1e-15);
        let trunc = Fx16::<15>::from_f64(v, Round::Truncate);
        assert!(trunc.to_f64() <= v + 1e-15);
        assert!(v - trunc.to_f64() < Fx16::<15>::EPS + 1e-15);
    });
}

#[test]
fn q16_roundtrip_error() {
    cases!(256, |rng| {
        let v = rng.f64_range(-30000.0, 30000.0);
        let near = Fx32::<16>::from_f64(v, Round::Nearest);
        assert!((near.to_f64() - v).abs() <= Fx32::<16>::EPS / 2.0 + 1e-12);
    });
}

/// Out-of-range values saturate (never wrap).
#[test]
fn saturation_never_wraps() {
    cases!(256, |rng| {
        // Arbitrary normal floats, including huge magnitudes.
        let v = loop {
            let x = f64::from_bits(rng.u64());
            if x.is_normal() {
                break x;
            }
        };
        let q = Fx16::<15>::from_f64(v, Round::Nearest);
        if v >= 1.0 {
            assert_eq!(q, Fx16::<15>::MAX);
        } else if v <= -1.0 - Fx16::<15>::EPS {
            assert_eq!(q, Fx16::<15>::MIN);
        }
        // Sign is always preserved.
        assert!(q.to_f64() * v >= 0.0 || q.0 == 0);
    });
}

/// Multiplication is commutative and tracks the real product.
#[test]
fn mul_commutative_and_accurate() {
    cases!(256, |rng| {
        let a = rng.f64_range(-0.99, 0.99);
        let b = rng.f64_range(-0.99, 0.99);
        let fa = Fx16::<15>::from_f64(a, Round::Nearest);
        let fb = Fx16::<15>::from_f64(b, Round::Nearest);
        assert_eq!(fa.mul(fb, Round::Nearest), fb.mul(fa, Round::Nearest));
        let err = (fa.mul(fb, Round::Nearest).to_f64() - a * b).abs();
        assert!(err < 3.0 * Fx16::<15>::EPS, "err {err}");
    });
}

/// Saturating addition is commutative and monotone.
#[test]
fn sat_add_commutative() {
    cases!(256, |rng| {
        let a = rng.u64() as u32 as i32;
        let b = rng.u64() as u32 as i32;
        let fa = Fx32::<16>::from_bits(a);
        let fb = Fx32::<16>::from_bits(b);
        assert_eq!(fa.sat_add(fb), fb.sat_add(fa));
    });
}

/// Complex pack/unpack is the identity for every bit pattern.
#[test]
fn pack_unpack_identity() {
    cases!(256, |rng| {
        let word = rng.u32();
        assert_eq!(CFx16::<15>::unpack(word).pack(), word);
    });
}

/// Knuth's 3-multiply complex product matches the schoolbook product.
#[test]
fn knuth_matches_schoolbook() {
    cases!(256, |rng| {
        let a = C64::new(rng.f64_range(-0.7, 0.7), rng.f64_range(-0.7, 0.7));
        let b = C64::new(rng.f64_range(-0.7, 0.7), rng.f64_range(-0.7, 0.7));
        let fa = CFx16::<15>::from_c64(a, Round::Nearest);
        let fb = CFx16::<15>::from_c64(b, Round::Nearest);
        let prod = fa.knuth_mul(fb, Round::Nearest).to_c64();
        assert!((prod - a * b).abs() < 6.0 * Fx16::<15>::EPS);
    });
}

/// 32×16 product (interpolation unit) tracks f64 within format error.
#[test]
fn mixed_width_product() {
    cases!(256, |rng| {
        let s = C64::new(rng.f64_range(-100.0, 100.0), rng.f64_range(-100.0, 100.0));
        let w = C64::new(rng.f64_range(-0.99, 0.99), rng.f64_range(-0.99, 0.99));
        let fs = CFx32::<16>::from_c64(s, Round::Nearest);
        let fw = CFx16::<15>::from_c64(w, Round::Nearest);
        let prod = fs.knuth_mul_w(fw, Round::Nearest).to_c64();
        // Error ≈ |s|·(weight LSB) + product LSB.
        let bound = (s.abs() + 1.0) * 2.0 * Fx16::<15>::EPS + 4.0 * Fx32::<16>::EPS;
        assert!((prod - s * w).abs() < bound, "{:?} vs {:?}", prod, s * w);
    });
}

/// Widening a 16-bit value to 32 bits is exact.
#[test]
fn widen_exact() {
    cases!(256, |rng| {
        let bits = rng.u64() as u16 as i16;
        let w = Fx16::<15>::from_bits(bits);
        let a: Fx32<16> = w.widen();
        assert_eq!(a.to_f64(), w.to_f64());
    });
}

/// Nearest rounding error never exceeds truncation error.
#[test]
fn nearest_at_least_as_good_as_truncate() {
    cases!(256, |rng| {
        let v = rng.f64_range(-0.999, 0.999);
        let en = (Fx16::<15>::from_f64(v, Round::Nearest).to_f64() - v).abs();
        let et = (Fx16::<15>::from_f64(v, Round::Truncate).to_f64() - v).abs();
        assert!(en <= et + 1e-15);
    });
}
