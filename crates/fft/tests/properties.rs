//! Property-based tests of the FFT substrate.

use jigsaw_fft::{dft, fftshift, ifftshift, Direction, Fft1d, FftNd};
use jigsaw_num::C64;
use proptest::prelude::*;

fn arb_signal(max_n: usize) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..max_n)
        .prop_map(|v| v.into_iter().map(|(re, im)| C64::new(re, im)).collect())
}

fn max_err(a: &[C64], b: &[C64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// forward∘inverse ≡ id for every length (radix-2 and Bluestein).
    #[test]
    fn roundtrip_any_length(x in arb_signal(300)) {
        let plan = Fft1d::new(x.len());
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        prop_assert!(max_err(&y, &x) < 1e-9, "err {}", max_err(&y, &x));
    }

    /// The FFT equals the O(n²) DFT for small arbitrary lengths.
    #[test]
    fn matches_dft(x in arb_signal(96)) {
        let plan = Fft1d::new(x.len());
        let mut got = x.clone();
        plan.process(&mut got, Direction::Forward);
        let want = dft(&x, Direction::Forward);
        prop_assert!(max_err(&got, &want) < 1e-8);
    }

    /// Parseval: energy is conserved (up to 1/n on the spectrum side).
    #[test]
    fn parseval(x in arb_signal(256)) {
        let n = x.len();
        let plan = Fft1d::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((ex - ey).abs() <= 1e-9 * ex.max(1.0));
    }

    /// Time shift ↔ spectral phase ramp (circular shift theorem).
    #[test]
    fn shift_theorem(x in arb_signal(128), shift in 0usize..64) {
        let n = x.len();
        let shift = shift % n;
        let plan = Fft1d::new(n);
        // FFT of circularly shifted signal.
        let shifted: Vec<C64> = (0..n).map(|i| x[(i + n - shift) % n]).collect();
        let mut fs = shifted.clone();
        plan.process(&mut fs, Direction::Forward);
        // Phase-ramped FFT of the original.
        let mut fx = x.clone();
        plan.process(&mut fx, Direction::Forward);
        for (k, z) in fx.iter_mut().enumerate() {
            let theta = -2.0 * core::f64::consts::PI * (k * shift) as f64 / n as f64;
            *z *= C64::cis(theta);
        }
        prop_assert!(max_err(&fs, &fx) < 1e-8);
    }

    /// fftshift/ifftshift are inverses for arbitrary 2-D shapes.
    #[test]
    fn shift_inverse_2d(r in 1usize..12, c in 1usize..12, seed in 0u64..1000) {
        let n = r * c;
        let mut s = seed | 1;
        let orig: Vec<C64> = (0..n).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            C64::new(s as f64, 0.0)
        }).collect();
        let dims = [r, c];
        let mut v = orig.clone();
        fftshift(&mut v, &dims);
        ifftshift(&mut v, &dims);
        prop_assert_eq!(
            v.iter().map(|z| z.re.to_bits()).collect::<Vec<_>>(),
            orig.iter().map(|z| z.re.to_bits()).collect::<Vec<_>>()
        );
    }

    /// N-d transform is separable: 2-D FFT = row FFTs then column FFTs.
    #[test]
    fn nd_is_separable(r_exp in 0u32..4, c_exp in 0u32..4, seed in 0u64..1000) {
        let (r, c) = (1usize << r_exp, 1usize << c_exp);
        let mut s = seed | 1;
        let x: Vec<C64> = (0..r * c).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            C64::new((s as f64 / u64::MAX as f64) - 0.5, 0.0)
        }).collect();
        let mut a = x.clone();
        FftNd::new(&[r, c]).process(&mut a, Direction::Forward);
        // Manual row-column.
        let mut b = x.clone();
        let row_plan = Fft1d::new(c);
        for row in b.chunks_mut(c) {
            row_plan.process(row, Direction::Forward);
        }
        let col_plan = Fft1d::new(r);
        let mut scratch = vec![C64::zeroed(); r];
        for col in 0..c {
            for (i, sc) in scratch.iter_mut().enumerate() {
                *sc = b[i * c + col];
            }
            col_plan.process(&mut scratch, Direction::Forward);
            for (i, sc) in scratch.iter().enumerate() {
                b[i * c + col] = *sc;
            }
        }
        prop_assert!(max_err(&a, &b) < 1e-10);
    }
}
