//! Property-based tests of the FFT substrate.

use jigsaw_fft::{dft, fftshift, ifftshift, Direction, Fft1d, FftNd};
use jigsaw_num::C64;
use jigsaw_testkit::{cases, Rng};

fn arb_signal(rng: &mut Rng, max_n: usize) -> Vec<C64> {
    let n = rng.usize_range(1, max_n);
    rng.vec(n, |r| {
        C64::new(r.f64_range(-1.0, 1.0), r.f64_range(-1.0, 1.0))
    })
}

fn max_err(a: &[C64], b: &[C64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

/// forward∘inverse ≡ id for every length (radix-2 and Bluestein).
#[test]
fn roundtrip_any_length() {
    cases!(64, |rng| {
        let x = arb_signal(rng, 300);
        let plan = Fft1d::new(x.len());
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        assert!(max_err(&y, &x) < 1e-9, "err {}", max_err(&y, &x));
    });
}

/// The FFT equals the O(n²) DFT for small arbitrary lengths.
#[test]
fn matches_dft() {
    cases!(64, |rng| {
        let x = arb_signal(rng, 96);
        let plan = Fft1d::new(x.len());
        let mut got = x.clone();
        plan.process(&mut got, Direction::Forward);
        let want = dft(&x, Direction::Forward);
        assert!(max_err(&got, &want) < 1e-8);
    });
}

/// Parseval: energy is conserved (up to 1/n on the spectrum side).
#[test]
fn parseval() {
    cases!(64, |rng| {
        let x = arb_signal(rng, 256);
        let n = x.len();
        let plan = Fft1d::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() <= 1e-9 * ex.max(1.0));
    });
}

/// Time shift ↔ spectral phase ramp (circular shift theorem).
#[test]
fn shift_theorem() {
    cases!(64, |rng| {
        let x = arb_signal(rng, 128);
        let n = x.len();
        let shift = rng.usize_range(0, 64) % n;
        let plan = Fft1d::new(n);
        // FFT of circularly shifted signal.
        let shifted: Vec<C64> = (0..n).map(|i| x[(i + n - shift) % n]).collect();
        let mut fs = shifted.clone();
        plan.process(&mut fs, Direction::Forward);
        // Phase-ramped FFT of the original.
        let mut fx = x.clone();
        plan.process(&mut fx, Direction::Forward);
        for (k, z) in fx.iter_mut().enumerate() {
            let theta = -2.0 * core::f64::consts::PI * (k * shift) as f64 / n as f64;
            *z *= C64::cis(theta);
        }
        assert!(max_err(&fs, &fx) < 1e-8);
    });
}

/// fftshift/ifftshift are inverses for arbitrary 2-D shapes.
#[test]
fn shift_inverse_2d() {
    cases!(64, |rng| {
        let r = rng.usize_range(1, 12);
        let c = rng.usize_range(1, 12);
        let n = r * c;
        let orig: Vec<C64> = rng.vec(n, |rr| C64::new(rr.u64() as f64, 0.0));
        let dims = [r, c];
        let mut v = orig.clone();
        fftshift(&mut v, &dims);
        ifftshift(&mut v, &dims);
        assert_eq!(
            v.iter().map(|z| z.re.to_bits()).collect::<Vec<_>>(),
            orig.iter().map(|z| z.re.to_bits()).collect::<Vec<_>>()
        );
    });
}

/// N-d transform is separable: 2-D FFT = row FFTs then column FFTs.
#[test]
fn nd_is_separable() {
    cases!(64, |rng| {
        let r = 1usize << rng.usize_range(0, 4);
        let c = 1usize << rng.usize_range(0, 4);
        let x: Vec<C64> = rng.vec(r * c, |rr| C64::new(rr.f64() - 0.5, 0.0));
        let mut a = x.clone();
        FftNd::new(&[r, c]).process(&mut a, Direction::Forward);
        // Manual row-column.
        let mut b = x.clone();
        let row_plan = Fft1d::new(c);
        for row in b.chunks_mut(c) {
            row_plan.process(row, Direction::Forward);
        }
        let col_plan = Fft1d::new(r);
        let mut scratch = vec![C64::zeroed(); r];
        for col in 0..c {
            for (i, sc) in scratch.iter_mut().enumerate() {
                *sc = b[i * c + col];
            }
            col_plan.process(&mut scratch, Direction::Forward);
            for (i, sc) in scratch.iter().enumerate() {
                b[i * c + col] = *sc;
            }
        }
        assert!(max_err(&a, &b) < 1e-10);
    });
}
