//! Iterative radix-4 decimation-in-time FFT for lengths that are powers
//! of four.
//!
//! Radix-4 halves the number of butterfly passes and replaces four
//! complex multiplies per 4-group with three (the `±i` rotations are
//! free), cutting multiply count ~25 % vs radix-2 — matters for the `σN`
//! grids of this workspace, which are powers of four for the common
//! `N ∈ {128, 512}` (G ∈ {256, 1024}). The planner picks this engine
//! automatically when applicable.

use crate::Direction;
use jigsaw_num::{Complex, Float};

/// Planned radix-4 transform for `n = 4^k`, `n ≥ 4`.
pub struct Radix4<T> {
    n: usize,
    stages: u32,
    /// `twiddles[k] = e^{-2πik/n}` for `k < n`.
    twiddles: Vec<Complex<T>>,
    /// Base-4 digit-reversal swap pairs `(i, j)` with `i < j`.
    swaps: Vec<(u32, u32)>,
}

/// Whether `n` is a power of four.
pub fn is_power_of_four(n: usize) -> bool {
    n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2) && n >= 4
}

fn digit_reverse_base4(mut x: u32, digits: u32) -> u32 {
    let mut out = 0u32;
    for _ in 0..digits {
        out = (out << 2) | (x & 3);
        x >>= 2;
    }
    out
}

impl<T: Float> Radix4<T> {
    /// Plan a radix-4 FFT. `n` must be a power of four.
    pub fn new(n: usize) -> Self {
        assert!(is_power_of_four(n), "radix-4 needs n = 4^k ≥ 4");
        let stages = n.trailing_zeros() / 2;
        let twiddles = (0..n)
            .map(|k| {
                let theta = -2.0 * core::f64::consts::PI * k as f64 / n as f64;
                Complex::from_c64(Complex::cis(theta))
            })
            .collect();
        let mut swaps = Vec::new();
        for i in 0..n as u32 {
            let j = digit_reverse_base4(i, stages);
            if i < j {
                swaps.push((i, j));
            }
        }
        Self {
            n,
            stages,
            twiddles,
            swaps,
        }
    }

    /// In-place transform (no inverse scaling; the caller handles it).
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        debug_assert_eq!(data.len(), self.n);
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let inverse = dir == Direction::Inverse;
        for stage in 1..=self.stages {
            let len = 1usize << (2 * stage);
            let quarter = len / 4;
            let tw_step = self.n / len;
            for start in (0..self.n).step_by(len) {
                for k in 0..quarter {
                    let w1 = self.tw(k * tw_step, inverse);
                    let w2 = self.tw(2 * k * tw_step, inverse);
                    let w3 = self.tw(3 * k * tw_step, inverse);
                    let a = data[start + k];
                    let b = data[start + k + quarter] * w1;
                    let c = data[start + k + 2 * quarter] * w2;
                    let d = data[start + k + 3 * quarter] * w3;
                    let t0 = a + c;
                    let t1 = a - c;
                    let t2 = b + d;
                    // ±i rotation: forward uses −i, inverse +i.
                    let bd = b - d;
                    let t3 = if inverse { bd.mul_i() } else { bd.mul_neg_i() };
                    data[start + k] = t0 + t2;
                    data[start + k + quarter] = t1 + t3;
                    data[start + k + 2 * quarter] = t0 - t2;
                    data[start + k + 3 * quarter] = t1 - t3;
                }
            }
        }
    }

    /// Split-plane (SoA) batch transform: `lanes` signals with element `k`
    /// of lane `l` at `re[k * lanes + l]` / `im[k * lanes + l]`.
    ///
    /// Lane `l` receives *exactly* the floating-point operations of a
    /// [`Self::process`] call on that lane alone: every butterfly is
    /// elementwise across lanes and the real/imaginary expressions below
    /// mirror `Complex`'s `Mul`/`Add`/`Sub`/`conj`/`mul_i`/`mul_neg_i`
    /// term-for-term, so per-lane results are bitwise identical to the
    /// scalar path. The SoA form exists for speed — the three twiddles are
    /// loaded (and conjugated) once per butterfly group instead of once per
    /// lane, and the lane loops are pure independent mul/add over
    /// contiguous memory, which the compiler turns into shuffle-free
    /// vector code.
    pub fn process_planes(&self, re: &mut [T], im: &mut [T], lanes: usize, dir: Direction) {
        debug_assert_eq!(re.len(), self.n * lanes);
        debug_assert_eq!(im.len(), self.n * lanes);
        for &(i, j) in &self.swaps {
            let (i, j) = (i as usize * lanes, j as usize * lanes);
            let (a, b) = re.split_at_mut(j);
            a[i..i + lanes].swap_with_slice(&mut b[..lanes]);
            let (a, b) = im.split_at_mut(j);
            a[i..i + lanes].swap_with_slice(&mut b[..lanes]);
        }
        let inverse = dir == Direction::Inverse;
        for stage in 1..=self.stages {
            let len = 1usize << (2 * stage);
            let quarter = len / 4;
            let tw_step = self.n / len;
            let q = quarter * lanes;
            for start in (0..self.n).step_by(len) {
                for k in 0..quarter {
                    let w1 = self.tw(k * tw_step, inverse);
                    let w2 = self.tw(2 * k * tw_step, inverse);
                    let w3 = self.tw(3 * k * tw_step, inverse);
                    let (w1r, w1i) = (w1.re, w1.im);
                    let (w2r, w2i) = (w2.re, w2.im);
                    let (w3r, w3i) = (w3.re, w3.im);
                    // Four butterfly rows `quarter * lanes` apart;
                    // exact-length sub-slices elide bounds checks in the
                    // hot lane loop.
                    let base = (start + k) * lanes;
                    let (r0r, rest) = re[base..].split_at_mut(q);
                    let (r1r, rest) = rest.split_at_mut(q);
                    let (r2r, rest) = rest.split_at_mut(q);
                    let r0r = &mut r0r[..lanes];
                    let r1r = &mut r1r[..lanes];
                    let r2r = &mut r2r[..lanes];
                    let r3r = &mut rest[..lanes];
                    let (r0i, rest) = im[base..].split_at_mut(q);
                    let (r1i, rest) = rest.split_at_mut(q);
                    let (r2i, rest) = rest.split_at_mut(q);
                    let r0i = &mut r0i[..lanes];
                    let r1i = &mut r1i[..lanes];
                    let r2i = &mut r2i[..lanes];
                    let r3i = &mut rest[..lanes];
                    for l in 0..lanes {
                        let ar = r0r[l];
                        let ai = r0i[l];
                        // b/c/d = row * w, mirroring Complex::mul exactly:
                        // (re·wr − im·wi, re·wi + im·wr).
                        let br = r1r[l] * w1r - r1i[l] * w1i;
                        let bi = r1r[l] * w1i + r1i[l] * w1r;
                        let cr = r2r[l] * w2r - r2i[l] * w2i;
                        let ci = r2r[l] * w2i + r2i[l] * w2r;
                        let dr = r3r[l] * w3r - r3i[l] * w3i;
                        let di = r3r[l] * w3i + r3i[l] * w3r;
                        let t0r = ar + cr;
                        let t0i = ai + ci;
                        let t1r = ar - cr;
                        let t1i = ai - ci;
                        let t2r = br + dr;
                        let t2i = bi + di;
                        // ±i rotation: forward uses −i (mul_neg_i = (im, −re)),
                        // inverse +i (mul_i = (−im, re)).
                        let bdr = br - dr;
                        let bdi = bi - di;
                        let (t3r, t3i) = if inverse { (-bdi, bdr) } else { (bdi, -bdr) };
                        r0r[l] = t0r + t2r;
                        r0i[l] = t0i + t2i;
                        r1r[l] = t1r + t3r;
                        r1i[l] = t1i + t3i;
                        r2r[l] = t0r - t2r;
                        r2i[l] = t0i - t2i;
                        r3r[l] = t1r - t3r;
                        r3i[l] = t1i - t3i;
                    }
                }
            }
        }
    }

    #[inline(always)]
    fn tw(&self, idx: usize, inverse: bool) -> Complex<T> {
        let w = self.twiddles[idx % self.n];
        if inverse {
            w.conj()
        } else {
            w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::Radix2;
    use jigsaw_num::C64;

    fn signal(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new((i as f64 * 0.19).sin(), (i as f64 * 0.41).cos()))
            .collect()
    }

    #[test]
    fn power_of_four_detector() {
        for n in [4usize, 16, 64, 256, 1024] {
            assert!(is_power_of_four(n), "{n}");
        }
        for n in [1usize, 2, 8, 32, 128, 512, 12] {
            assert!(!is_power_of_four(n), "{n}");
        }
    }

    #[test]
    fn digit_reversal_is_involution() {
        for digits in 1..6 {
            let n = 1u32 << (2 * digits);
            for i in 0..n {
                assert_eq!(
                    digit_reverse_base4(digit_reverse_base4(i, digits), digits),
                    i
                );
            }
        }
    }

    #[test]
    fn matches_radix2_forward_and_inverse() {
        for n in [4usize, 16, 64, 256, 1024] {
            let x = signal(n);
            let r2 = Radix2::<f64>::new(n);
            let r4 = Radix4::<f64>::new(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut a = x.clone();
                let mut b = x.clone();
                r2.process(&mut a, dir);
                r4.process(&mut b, dir);
                let err = a
                    .iter()
                    .zip(&b)
                    .map(|(p, q)| (*p - *q).abs())
                    .fold(0.0, f64::max);
                assert!(err < 1e-10 * n as f64, "n={n} {dir:?}: {err}");
            }
        }
    }

    #[test]
    fn roundtrip() {
        let n = 256;
        let x = signal(n);
        let plan = Radix4::<f64>::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            assert!((*b - a.scale(n as f64)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "radix-4")]
    fn rejects_non_power_of_four() {
        let _ = Radix4::<f64>::new(128);
    }
}
