//! Minimal job-execution abstraction for parallel N-D FFT passes.
//!
//! [`FftNd::process_with`](crate::FftNd::process_with) partitions each axis
//! pass into independent *panel jobs* (gather a block of lines into
//! contiguous scratch, run batched 1-D FFTs, hand the result back). This
//! module defines the executor those jobs run on:
//!
//! * [`Executor`] — object-safe trait with a blocking [`Executor::execute`]
//!   over a batch of owned jobs, plus buffer-recycling hooks.
//! * [`SerialExecutor`] — the default, dependency-free implementation: runs
//!   jobs in order on the calling thread with a private recycling arena.
//! * [`BufferArena`] — type-erased recycled-buffer store each job receives;
//!   `jigsaw-core` implements it for its per-worker `ScratchArena` so the
//!   persistent pool recycles panel scratch across FFT calls.
//!
//! # Why owned jobs instead of borrowed closures
//!
//! The whole workspace forbids `unsafe`, and a persistent worker pool moves
//! work over channels, which requires `'static` payloads. A borrowed
//! `run(jobs, &f)` API therefore could not be implemented by
//! `jigsaw_core::engine::WorkerPool` without unsafe lifetime erasure.
//! Instead, jobs are `'static` `FnOnce` boxes that own their inputs
//! (`Arc`-shared plans and source snapshots) and return results through
//! channels the caller drains. Determinism is structural: every 1-D line
//! transform executes the exact same floating-point operations regardless
//! of which worker runs it or how lines are grouped into panels, so output
//! is bitwise identical across executors and worker counts — no atomics,
//! no merge-order dependence.
//!
//! # Why the trait lives here
//!
//! `jigsaw-fft` sits below `jigsaw-core` in the crate DAG (core *uses* the
//! FFT); depending on core for its `WorkerPool` would invert that edge.
//! Owning a minimal executor trait here keeps the FFT crate self-contained
//! (its only dependencies are `jigsaw-num` and the std-only
//! `jigsaw-telemetry`) while letting core plug the shared pool in from
//! above.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Mutex;

/// A unit of FFT work: owns its inputs, receives a recycling arena.
pub type Job = Box<dyn FnOnce(&mut dyn BufferArena) + Send>;

/// A contained job failure: some job in an [`Executor::execute`] batch
/// panicked. The executor catches the panic (its workers — or, for
/// [`SerialExecutor`], the calling thread — survive), and reports the
/// first failure here so callers can degrade gracefully instead of
/// unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Index of the failed job within the submitted batch.
    pub job: usize,
    /// The worker that ran the job, when the executor has workers.
    pub worker: Option<usize>,
    /// The captured panic payload, rendered as a string.
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.worker {
            Some(w) => write!(
                f,
                "job {} panicked on worker {}: {}",
                self.job, w, self.message
            ),
            None => write!(f, "job {} panicked: {}", self.job, self.message),
        }
    }
}

impl std::error::Error for ExecError {}

/// Render a caught panic payload as a string: `&str` and `String`
/// payloads verbatim, [`jigsaw_testkit::fault::FaultInjected`] by site
/// name, anything else opaquely.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(f) = payload.downcast_ref::<jigsaw_testkit::fault::FaultInjected>() {
        f.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Scratch key for N-D FFT panel buffers (`Vec<Complex<T>>`).
///
/// Chosen to extend the `jigsaw_core::engine::keys` space without
/// collision (core uses `0x01..=0x05`); core re-exports it as
/// `keys::FFT_PANEL`.
pub const PANEL_KEY: u64 = 0x06;

/// Scratch key for Bluestein convolution work buffers used inside panel
/// jobs (`Vec<Complex<T>>` of `lanes * work_len()` elements). Lives in the
/// same key space as [`PANEL_KEY`]; core re-exports it as
/// `keys::FFT_WORK`. `0x07` is taken by core's apodization scratch.
pub const WORK_KEY: u64 = 0x08;

/// Object-safe, type-erased store of recyclable buffers.
///
/// Mirrors `jigsaw_core::engine::ScratchArena` (which implements this
/// trait): buffers are keyed by `(key, TypeId)` and cycle between jobs and
/// the caller. The `bytes` argument to [`BufferArena::give_any`] lets
/// implementations track resident scratch without downcasting.
pub trait BufferArena {
    /// Take a previously stored buffer under `(key, ty)`, if any.
    fn take_any(&mut self, key: u64, ty: TypeId) -> Option<Box<dyn Any + Send>>;
    /// Store `buf` (whose payload occupies `bytes` bytes) for future reuse.
    fn give_any(&mut self, key: u64, ty: TypeId, buf: Box<dyn Any + Send>, bytes: usize);
}

/// Take a `Vec<T>` of exactly `len` elements (all `fill`) from the arena,
/// reusing a recycled buffer when one is available.
pub fn take_vec<T: Clone + Send + 'static>(
    arena: &mut dyn BufferArena,
    key: u64,
    len: usize,
    fill: T,
) -> Vec<T> {
    if let Some(boxed) = arena.take_any(key, TypeId::of::<Vec<T>>()) {
        if let Ok(mut v) = boxed.downcast::<Vec<T>>() {
            v.clear();
            v.resize(len, fill);
            return *v;
        }
    }
    vec![fill; len]
}

/// Return a `Vec<T>` to the arena under `key` for future reuse.
pub fn give_vec<T: Send + 'static>(arena: &mut dyn BufferArena, key: u64, v: Vec<T>) {
    let bytes = v.capacity() * core::mem::size_of::<T>();
    arena.give_any(key, TypeId::of::<Vec<T>>(), Box::new(v), bytes);
}

/// A batch-job executor for FFT panel work.
///
/// Implementations must run every submitted job exactly once and return
/// from [`Executor::execute`] only after all jobs have completed. Jobs may
/// run concurrently and in any order; numerical determinism is the *job
/// author's* responsibility (upheld in this crate by making jobs fully
/// independent — see the module docs).
pub trait Executor: Sync {
    /// Run all `jobs` to completion. Job `j` should run against a stable,
    /// worker-affine [`BufferArena`] so recycled buffers stay warm.
    ///
    /// A panicking job must be *contained*: the executor stays usable,
    /// and the first failure is reported as an [`ExecError`] after every
    /// job in the batch has either run or been discarded. Scratch buffers
    /// held by a panicking job must be discarded, not recycled.
    fn execute(&self, jobs: Vec<Job>) -> Result<(), ExecError>;

    /// Number of jobs that can make progress simultaneously (≥ 1). Used
    /// only to decide whether parallel orchestration is worth setting up —
    /// never to shape the panel partition, which is deterministic.
    fn concurrency(&self) -> usize;

    /// Return a buffer to the arena that served job `job`, so the next
    /// batch's job on the same slot reuses it. Called by the orchestrating
    /// thread after it has merged the job's output.
    fn restore(&self, job: usize, key: u64, ty: TypeId, buf: Box<dyn Any + Send>, bytes: usize);
}

/// Give a `Vec<T>` produced by `job` back to the executor for recycling.
pub fn restore_vec<T: Send + 'static>(exec: &dyn Executor, job: usize, key: u64, v: Vec<T>) {
    let bytes = v.capacity() * core::mem::size_of::<T>();
    exec.restore(job, key, TypeId::of::<Vec<T>>(), Box::new(v), bytes);
}

/// The default arena: a `(key, TypeId)`-keyed stack of boxed buffers.
#[derive(Default)]
pub struct MapArena {
    slots: HashMap<(u64, TypeId), Vec<Box<dyn Any + Send>>>,
    bytes: usize,
}

impl MapArena {
    /// Approximate resident bytes currently parked in this arena.
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }
}

impl BufferArena for MapArena {
    fn take_any(&mut self, key: u64, ty: TypeId) -> Option<Box<dyn Any + Send>> {
        self.slots.get_mut(&(key, ty))?.pop()
    }

    fn give_any(&mut self, key: u64, ty: TypeId, buf: Box<dyn Any + Send>, bytes: usize) {
        self.bytes += bytes;
        self.slots.entry((key, ty)).or_default().push(buf);
    }
}

/// Runs jobs serially on the calling thread. The zero-dependency default:
/// [`crate::FftNd::process`] is exactly `process_with(&SerialExecutor::new(), ..)`
/// minus the panel-job boxing overhead.
#[derive(Default)]
pub struct SerialExecutor {
    arena: Mutex<MapArena>,
}

impl SerialExecutor {
    /// Create an executor with an empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Executor for SerialExecutor {
    fn execute(&self, jobs: Vec<Job>) -> Result<(), ExecError> {
        for (j, job) in jobs.into_iter().enumerate() {
            // The arena lock is scoped per job so a panicking job leaves
            // the executor reusable; its arena is discarded (fresh buffers
            // on next use) rather than recycled in an unknown state.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut arena = self.arena.lock().unwrap_or_else(|e| e.into_inner());
                job(&mut *arena);
            }));
            if let Err(payload) = result {
                *self.arena.lock().unwrap_or_else(|e| e.into_inner()) = MapArena::default();
                return Err(ExecError {
                    job: j,
                    worker: None,
                    message: panic_message(&*payload),
                });
            }
        }
        Ok(())
    }

    fn concurrency(&self) -> usize {
        1
    }

    fn restore(&self, _job: usize, key: u64, ty: TypeId, buf: Box<dyn Any + Send>, bytes: usize) {
        self.arena
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .give_any(key, ty, buf, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn serial_executor_runs_all_jobs_in_order() {
        let exec = SerialExecutor::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<Job> = (0..5)
            .map(|j| {
                let seen = Arc::clone(&seen);
                let job: Job = Box::new(move |_arena| {
                    seen.lock().unwrap().push(j);
                });
                job
            })
            .collect();
        exec.execute(jobs).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(exec.concurrency(), 1);
    }

    #[test]
    fn serial_executor_contains_job_panics() {
        let exec = SerialExecutor::new();
        let ran_after = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = vec![
            Box::new(|_arena| {}),
            Box::new(|_arena| panic!("boom in job 1")),
            Box::new(|_arena| {}),
        ];
        let err = exec.execute(jobs).unwrap_err();
        assert_eq!(err.job, 1);
        assert_eq!(err.worker, None);
        assert!(err.message.contains("boom in job 1"), "{err}");
        assert!(err.to_string().contains("job 1 panicked"));
        // The executor stays usable after the contained failure.
        let ra = Arc::clone(&ran_after);
        exec.execute(vec![Box::new(move |_arena| {
            ra.store(7, Ordering::SeqCst);
        })])
        .unwrap();
        assert_eq!(ran_after.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn panic_message_renders_known_payloads() {
        let p: Box<dyn Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*p), "static str");
        let p: Box<dyn Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*p), "owned");
        let p: Box<dyn Any + Send> = Box::new(jigsaw_testkit::fault::FaultInjected { site: "a.b" });
        assert_eq!(panic_message(&*p), "injected fault at a.b");
        let p: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(&*p), "non-string panic payload");
    }

    #[test]
    fn map_arena_recycles_buffers() {
        let mut arena = MapArena::default();
        let v = take_vec::<u64>(&mut arena, 7, 16, 0);
        let ptr = v.as_ptr() as usize;
        give_vec(&mut arena, 7, v);
        assert!(arena.resident_bytes() >= 16 * 8);
        let v2 = take_vec::<u64>(&mut arena, 7, 8, 0);
        assert_eq!(v2.as_ptr() as usize, ptr, "buffer must be recycled");
        assert_eq!(v2.len(), 8);
        // Different key: fresh allocation path.
        let v3 = take_vec::<u64>(&mut arena, 8, 4, 3);
        assert!(v3.iter().all(|&x| x == 3));
    }

    #[test]
    fn take_vec_refills_recycled_buffers() {
        let mut arena = MapArena::default();
        let mut v = take_vec::<f64>(&mut arena, 1, 4, 0.0);
        v.iter_mut().for_each(|x| *x = 9.0);
        give_vec(&mut arena, 1, v);
        let v2 = take_vec::<f64>(&mut arena, 1, 6, 0.0);
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(v2.len(), 6);
    }

    #[test]
    fn restore_vec_lands_in_serial_arena() {
        let exec = SerialExecutor::new();
        let buf = vec![1u32; 32];
        let ptr = buf.as_ptr() as usize;
        restore_vec(&exec, 3, 5, buf);
        let got = Arc::new(AtomicUsize::new(0));
        let got2 = Arc::clone(&got);
        exec.execute(vec![Box::new(move |arena| {
            let v = take_vec::<u32>(arena, 5, 32, 0);
            got2.store(v.as_ptr() as usize, Ordering::SeqCst);
        })])
        .unwrap();
        assert_eq!(got.load(Ordering::SeqCst), ptr);
    }
}
