//! Iterative radix-2 decimation-in-time FFT for power-of-two lengths.
//!
//! The classic textbook pipeline: a bit-reversal permutation followed by
//! `log2(n)` butterfly passes. Twiddle factors `e^{-2πik/n}` are
//! precomputed once at plan time (`n/2` entries); the inverse transform
//! conjugates them on the fly, so one table serves both directions.

use crate::Direction;
use jigsaw_num::{Complex, Float};

/// Planned radix-2 transform for a power-of-two length `n ≥ 2`.
pub struct Radix2<T> {
    n: usize,
    log2n: u32,
    /// `twiddles[k] = e^{-2πik/n}` for `k < n/2`.
    twiddles: Vec<Complex<T>>,
    /// Precomputed bit-reversal swap pairs `(i, j)` with `i < j`.
    swaps: Vec<(u32, u32)>,
}

impl<T: Float> Radix2<T> {
    /// Plan a radix-2 FFT. `n` must be a power of two, `n ≥ 2`.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "radix-2 needs a power of two ≥ 2"
        );
        let log2n = n.trailing_zeros();
        let twiddles = (0..n / 2)
            .map(|k| {
                let theta = -2.0 * core::f64::consts::PI * k as f64 / n as f64;
                Complex::from_c64(Complex::cis(theta))
            })
            .collect();
        let shift = 32 - log2n;
        let mut swaps = Vec::with_capacity(n / 2);
        for i in 0..n as u32 {
            let j = i.reverse_bits() >> shift;
            if i < j {
                swaps.push((i, j));
            }
        }
        Self {
            n,
            log2n,
            twiddles,
            swaps,
        }
    }

    /// In-place transform (no inverse scaling; the caller handles it).
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        debug_assert_eq!(data.len(), self.n);
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let inverse = dir == Direction::Inverse;
        for stage in 1..=self.log2n {
            let len = 1usize << stage;
            let half = len / 2;
            let tw_step = self.n >> stage;
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * tw_step];
                    if inverse {
                        w = w.conj();
                    }
                    let u = data[start + k];
                    let v = data[start + k + half] * w;
                    data[start + k] = u + v;
                    data[start + k + half] = u - v;
                }
            }
        }
    }

    /// Split-plane (SoA) batch transform: `lanes` signals with element `k`
    /// of lane `l` at `re[k * lanes + l]` / `im[k * lanes + l]`.
    ///
    /// Lane `l` receives *exactly* the floating-point operations of a
    /// [`Self::process`] call on that lane alone: every butterfly is
    /// elementwise across lanes and the real/imaginary expressions below
    /// mirror `Complex`'s `Mul`/`Add`/`Sub`/`conj` term-for-term, so
    /// per-lane results are bitwise identical to the scalar path. The SoA
    /// form exists for speed — each twiddle is loaded (and conjugated)
    /// once per butterfly group instead of once per lane, and the inner
    /// lane loops are pure independent mul/add over contiguous memory,
    /// which the compiler turns into shuffle-free vector code.
    pub fn process_planes(&self, re: &mut [T], im: &mut [T], lanes: usize, dir: Direction) {
        debug_assert_eq!(re.len(), self.n * lanes);
        debug_assert_eq!(im.len(), self.n * lanes);
        for &(i, j) in &self.swaps {
            let (i, j) = (i as usize * lanes, j as usize * lanes);
            let (a, b) = re.split_at_mut(j);
            a[i..i + lanes].swap_with_slice(&mut b[..lanes]);
            let (a, b) = im.split_at_mut(j);
            a[i..i + lanes].swap_with_slice(&mut b[..lanes]);
        }
        let inverse = dir == Direction::Inverse;
        for stage in 1..=self.log2n {
            let len = 1usize << stage;
            let half = len / 2;
            let tw_step = self.n >> stage;
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * tw_step];
                    // `conj` mirrors the scalar path's on-the-fly inverse
                    // conjugation (exact sign flip).
                    let (wr, wi) = (w.re, if inverse { -w.im } else { w.im });
                    // The two butterfly rows sit `half * lanes` apart;
                    // exact-length sub-slices keep bounds checks out of
                    // the hot lane loops.
                    let base = (start + k) * lanes;
                    let (ur, rest) = re[base..].split_at_mut(half * lanes);
                    let ur = &mut ur[..lanes];
                    let vr = &mut rest[..lanes];
                    let (ui, rest) = im[base..].split_at_mut(half * lanes);
                    let ui = &mut ui[..lanes];
                    let vi = &mut rest[..lanes];
                    for l in 0..lanes {
                        // v = hi * w, mirroring Complex::mul exactly:
                        // (re·wr − im·wi, re·wi + im·wr).
                        let xr = vr[l] * wr - vi[l] * wi;
                        let xi = vr[l] * wi + vi[l] * wr;
                        let a_r = ur[l];
                        let a_i = ui[l];
                        ur[l] = a_r + xr;
                        ui[l] = a_i + xi;
                        vr[l] = a_r - xr;
                        vi[l] = a_i - xi;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_num::C64;

    #[test]
    fn size_two_butterfly() {
        let plan = Radix2::<f64>::new(2);
        let mut d = [C64::new(1.0, 0.0), C64::new(2.0, 0.0)];
        plan.process(&mut d, Direction::Forward);
        assert!((d[0].re - 3.0).abs() < 1e-15);
        assert!((d[1].re + 1.0).abs() < 1e-15);
    }

    #[test]
    fn size_four_known_answer() {
        // DFT([1, i, -1, -i]) = [0, 4, 0, 0] (tone at bin 1).
        let plan = Radix2::<f64>::new(4);
        let mut d = [
            C64::new(1.0, 0.0),
            C64::new(0.0, 1.0),
            C64::new(-1.0, 0.0),
            C64::new(0.0, -1.0),
        ];
        plan.process(&mut d, Direction::Forward);
        assert!(d[0].abs() < 1e-15);
        assert!((d[1] - C64::new(4.0, 0.0)).abs() < 1e-15);
        assert!(d[2].abs() < 1e-15);
        assert!(d[3].abs() < 1e-15);
    }

    #[test]
    fn bit_reversal_pairs_cover_permutation() {
        let plan = Radix2::<f64>::new(16);
        // Applying swaps twice must be the identity.
        let mut v: Vec<C64> = (0..16).map(|i| C64::new(i as f64, 0.0)).collect();
        let orig = v.clone();
        for &(i, j) in &plan.swaps {
            v.swap(i as usize, j as usize);
        }
        for &(i, j) in &plan.swaps {
            v.swap(i as usize, j as usize);
        }
        assert_eq!(
            v.iter().map(|z| z.re as i64).collect::<Vec<_>>(),
            orig.iter().map(|z| z.re as i64).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Radix2::<f64>::new(12);
    }
}
