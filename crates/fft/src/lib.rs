//! From-scratch uniform FFT substrate for the Jigsaw NuFFT.
//!
//! The NuFFT's third step is a conventional uniform FFT over the
//! oversampled grid. The paper treats this step as a fast, solved substrate
//! (FFTW on the CPU, cuFFT on the GPU); we provide the same role with a
//! self-contained implementation:
//!
//! * [`Fft1d`] — planned 1-D transform: iterative radix-4 (for `4^k`
//!   lengths) and radix-2 decimation-in-time with precomputed twiddles for
//!   the remaining powers of two, and Bluestein's chirp-z algorithm for
//!   everything else, so *any* length is `O(n log n)`.
//! * [`FftNd`] — multi-dimensional transforms (the paper's grids are 2-D
//!   `σN × σN` and 3-D processed as 2-D slices) via the row-column method.
//! * [`dft`] — a direct `O(n²)` DFT used as the oracle in tests.
//!
//! # Conventions
//!
//! The forward transform computes `X_k = Σ_j x_j e^{-2πi jk/n}`
//! (unnormalized); the inverse applies `e^{+2πi jk/n}` and scales by `1/n`,
//! so `inverse(forward(x)) == x`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod bluestein;
pub mod exec;
pub mod nd;
pub mod radix;
pub mod radix4;
pub mod shift;

use jigsaw_num::{Complex, Float};

pub use exec::{ExecError, Executor, SerialExecutor};
pub use nd::FftNd;
pub use shift::{fftshift, ifftshift};

/// Transform direction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Negative exponent, unnormalized.
    Forward,
    /// Positive exponent, scaled by `1/n`.
    Inverse,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

enum Algo<T> {
    Radix2(radix::Radix2<T>),
    Radix4(radix4::Radix4<T>),
    Bluestein(Box<bluestein::Bluestein<T>>),
    Trivial,
}

/// A planned one-dimensional FFT of a fixed length.
///
/// Planning precomputes twiddle tables (and, for non-power-of-two lengths,
/// the Bluestein chirp spectra); [`Fft1d::process`] then runs with no
/// allocation for power-of-two sizes.
///
/// ```
/// use jigsaw_fft::{Fft1d, Direction};
/// use jigsaw_num::C64;
/// let plan = Fft1d::<f64>::new(8);
/// let mut data = vec![C64::zeroed(); 8];
/// data[0] = C64::one(); // impulse
/// plan.process(&mut data, Direction::Forward);
/// assert!(data.iter().all(|z| (z.re - 1.0).abs() < 1e-12)); // flat spectrum
/// plan.process(&mut data, Direction::Inverse);
/// assert!((data[0].re - 1.0).abs() < 1e-12); // round trip
/// ```
pub struct Fft1d<T> {
    n: usize,
    algo: Algo<T>,
}

impl<T: Float> Fft1d<T> {
    /// Plan a transform of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let algo = if n == 1 {
            Algo::Trivial
        } else if radix4::is_power_of_four(n) {
            Algo::Radix4(radix4::Radix4::new(n))
        } else if n.is_power_of_two() {
            Algo::Radix2(radix::Radix2::new(n))
        } else {
            Algo::Bluestein(Box::new(bluestein::Bluestein::new(n)))
        };
        Self { n, algo }
    }

    /// The planned length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the planned length is zero. Consistent with [`Self::len`];
    /// always `false` in practice because [`Self::new`] rejects `n == 0`,
    /// but derived from `len` rather than hardcoded so the two can never
    /// drift apart.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transform `data` in place.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        match &self.algo {
            Algo::Trivial => {}
            Algo::Radix2(r) => r.process(data, dir),
            Algo::Radix4(r) => r.process(data, dir),
            Algo::Bluestein(b) => {
                let mut work = vec![Complex::<T>::zeroed(); b.work_len()];
                b.process_with_scratch(data, dir, &mut work);
            }
        }
        if dir == Direction::Inverse {
            self.scale_inverse(data);
        }
    }

    /// Transform many contiguous length-`n` rows in place through this one
    /// plan (one twiddle table, one Bluestein chirp spectrum).
    ///
    /// `data` is treated as `data.len() / n` back-to-back rows; each row
    /// receives exactly the same floating-point operations as a separate
    /// [`Self::process`] call, so results are bitwise identical to the
    /// row-at-a-time loop. For Bluestein lengths the convolution scratch is
    /// allocated once and reused across rows instead of once per row.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the planned length.
    pub fn process_many(&self, data: &mut [Complex<T>], dir: Direction) {
        assert_eq!(
            data.len() % self.n,
            0,
            "batch length must be a multiple of the planned length"
        );
        match &self.algo {
            Algo::Trivial => {}
            Algo::Radix2(r) => {
                for row in data.chunks_exact_mut(self.n) {
                    r.process(row, dir);
                }
            }
            Algo::Radix4(r) => {
                for row in data.chunks_exact_mut(self.n) {
                    r.process(row, dir);
                }
            }
            Algo::Bluestein(b) => {
                let mut work = vec![Complex::<T>::zeroed(); b.work_len()];
                for row in data.chunks_exact_mut(self.n) {
                    b.process_with_scratch(row, dir, &mut work);
                }
            }
        }
        if dir == Direction::Inverse {
            self.scale_inverse(data);
        }
    }

    /// Scratch length (in scalars) required by [`Self::process_planes`]
    /// for a `lanes`-wide batch: `2 · lanes · m` for Bluestein lengths
    /// (`m = next_pow2(2n−1)`; the factor 2 holds the convolution's real
    /// and imaginary planes), zero for power-of-two and trivial lengths.
    pub fn batch_scratch_len(&self, lanes: usize) -> usize {
        match &self.algo {
            Algo::Bluestein(b) => 2 * b.work_len() * lanes,
            _ => 0,
        }
    }

    /// Transform `lanes` signals stored as split real/imaginary planes:
    /// element `k` of lane `l` lives at `re[k * lanes + l]` /
    /// `im[k * lanes + l]`. `work` is Bluestein convolution scratch of
    /// exactly [`Self::batch_scratch_len`] scalars (empty for power-of-two
    /// lengths); batched callers reuse one buffer across panels.
    ///
    /// Lane `l` receives exactly the floating-point operations of a
    /// [`Self::process`] call on that lane alone (every kernel step is
    /// elementwise across lanes and mirrors `Complex`'s operators
    /// term-for-term), so per-lane results are **bitwise identical** to the
    /// scalar path — the invariant the N-D panel passes rely on. The split
    /// SoA form is the fast path: twiddle loads amortize across lanes and
    /// the inner loops are independent mul/adds over contiguous memory,
    /// which the compiler turns into shuffle-free vector code.
    ///
    /// # Panics
    /// Panics if `lanes == 0`, either plane is not `lanes * self.len()`
    /// scalars, or `work.len() != self.batch_scratch_len(lanes)`.
    pub fn process_planes(
        &self,
        re: &mut [T],
        im: &mut [T],
        lanes: usize,
        dir: Direction,
        work: &mut [T],
    ) {
        assert!(lanes > 0, "need at least one lane");
        assert_eq!(
            re.len(),
            self.n * lanes,
            "planes must be lanes * planned length"
        );
        assert_eq!(
            im.len(),
            self.n * lanes,
            "planes must be lanes * planned length"
        );
        match &self.algo {
            Algo::Trivial => {}
            Algo::Radix2(r) => r.process_planes(re, im, lanes, dir),
            Algo::Radix4(r) => r.process_planes(re, im, lanes, dir),
            Algo::Bluestein(b) => b.process_planes_with_scratch(re, im, lanes, dir, work),
        }
        if dir == Direction::Inverse {
            // Mirrors `Complex::scale` componentwise: (re·s, im·s).
            let scale = T::ONE / T::from_usize(self.n);
            for v in re.iter_mut() {
                *v *= scale;
            }
            for v in im.iter_mut() {
                *v *= scale;
            }
        }
    }

    /// Transform `lanes` *interleaved* signals in place: element `k` of
    /// lane `l` lives at `data[k * lanes + l]`.
    ///
    /// Convenience wrapper around [`Self::process_planes`]: splits the
    /// interleaved buffer into freshly allocated real/imaginary planes,
    /// transforms, and merges back. Per-lane results are bitwise identical
    /// to [`Self::process`] on each lane. Hot callers (the N-D panel
    /// passes) keep persistent plane buffers and call
    /// [`Self::process_planes`] directly instead.
    ///
    /// # Panics
    /// Panics if `lanes == 0` or `data.len() != lanes * self.len()`.
    pub fn process_interleaved(&self, data: &mut [Complex<T>], lanes: usize, dir: Direction) {
        assert!(lanes > 0, "need at least one lane");
        assert_eq!(
            data.len(),
            self.n * lanes,
            "buffer must be lanes * planned length"
        );
        let mut re: Vec<T> = data.iter().map(|z| z.re).collect();
        let mut im: Vec<T> = data.iter().map(|z| z.im).collect();
        let mut work = vec![T::ZERO; self.batch_scratch_len(lanes)];
        self.process_planes(&mut re, &mut im, lanes, dir, &mut work);
        for ((z, &r), &i) in data.iter_mut().zip(&re).zip(&im) {
            *z = Complex::new(r, i);
        }
    }

    /// Apply the inverse transform's `1/n` normalization.
    fn scale_inverse(&self, data: &mut [Complex<T>]) {
        let scale = T::ONE / T::from_usize(self.n);
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }
}

/// Direct `O(n²)` discrete Fourier transform; the correctness oracle.
///
/// Uses the same conventions as [`Fft1d`].
pub fn dft<T: Float>(input: &[Complex<T>], dir: Direction) -> Vec<Complex<T>> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex::zeroed(); n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::<f64>::zeroed();
        for (j, &x) in input.iter().enumerate() {
            let theta = sign * 2.0 * core::f64::consts::PI * ((j * k) % n) as f64 / n as f64;
            acc += x.to_c64() * Complex::cis(theta);
        }
        if dir == Direction::Inverse {
            acc = acc.unscale(n as f64);
        }
        *o = Complex::from_c64(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_num::C64;

    fn rand_signal(n: usize, seed: u64) -> Vec<C64> {
        // Simple xorshift so tests don't need the rand crate here.
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| C64::new(next(), next())).collect()
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_dft_all_small_sizes() {
        for n in 1..=64 {
            let x = rand_signal(n, n as u64 * 7919);
            let want = dft(&x, Direction::Forward);
            let plan = Fft1d::new(n);
            let mut got = x.clone();
            plan.process(&mut got, Direction::Forward);
            assert!(
                max_err(&got, &want) < 1e-9 * (n as f64),
                "size {n} mismatch: {}",
                max_err(&got, &want)
            );
        }
    }

    #[test]
    fn inverse_matches_dft_small_sizes() {
        for n in [2usize, 3, 5, 8, 12, 17, 31, 32] {
            let x = rand_signal(n, n as u64 + 5);
            let want = dft(&x, Direction::Inverse);
            let plan = Fft1d::new(n);
            let mut got = x.clone();
            plan.process(&mut got, Direction::Inverse);
            assert!(max_err(&got, &want) < 1e-10 * n as f64, "size {n}");
        }
    }

    #[test]
    fn roundtrip_large_pow2() {
        let n = 4096;
        let x = rand_signal(n, 42);
        let plan = Fft1d::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        assert!(max_err(&y, &x) < 1e-10);
    }

    #[test]
    fn roundtrip_large_nonpow2() {
        for n in [1000usize, 1536, 2187] {
            let x = rand_signal(n, n as u64);
            let plan = Fft1d::new(n);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            plan.process(&mut y, Direction::Inverse);
            assert!(max_err(&y, &x) < 1e-9, "size {n}");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 256;
        let mut x = vec![C64::zeroed(); n];
        x[0] = C64::one();
        Fft1d::new(n).process(&mut x, Direction::Forward);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_has_single_bin() {
        let n = 128;
        let k0 = 9;
        let x: Vec<C64> = (0..n)
            .map(|j| C64::cis(2.0 * core::f64::consts::PI * (j * k0) as f64 / n as f64))
            .collect();
        let mut y = x.clone();
        Fft1d::new(n).process(&mut y, Direction::Forward);
        for (k, z) in y.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 512;
        let x = rand_signal(n, 99);
        let mut y = x.clone();
        Fft1d::new(n).process(&mut y, Direction::Forward);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() / ex < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a = rand_signal(n, 1);
        let b = rand_signal(n, 2);
        let plan = Fft1d::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.process(&mut fa, Direction::Forward);
        plan.process(&mut fb, Direction::Forward);
        let mut sum: Vec<C64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.process(&mut sum, Direction::Forward);
        let combined: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&sum, &combined) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_length_panics() {
        let plan = Fft1d::<f64>::new(8);
        let mut data = vec![C64::zeroed(); 4];
        plan.process(&mut data, Direction::Forward);
    }

    #[test]
    fn f32_precision_reasonable() {
        let n = 1024;
        let x: Vec<jigsaw_num::C32> = rand_signal(n, 3)
            .into_iter()
            .map(jigsaw_num::C32::from_c64)
            .collect();
        let plan = Fft1d::<f32>::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        let err = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f32, f32::max);
        assert!(err < 1e-4, "f32 roundtrip err {err}");
    }

    #[test]
    fn interleaved_is_bitwise_per_lane_scalar() {
        // Covers every kernel class: trivial (1), radix-2 (8, 64),
        // radix-4 (16, 256), Bluestein (31, 45).
        for n in [1usize, 8, 16, 31, 45, 64, 256] {
            let plan = Fft1d::<f64>::new(n);
            let lanes = 5;
            let lane_signals: Vec<Vec<C64>> = (0..lanes)
                .map(|l| rand_signal(n, (n * 31 + l) as u64 + 1))
                .collect();
            let mut inter = vec![C64::zeroed(); n * lanes];
            for (k, row) in inter.chunks_exact_mut(lanes).enumerate() {
                for (l, slot) in row.iter_mut().enumerate() {
                    *slot = lane_signals[l][k];
                }
            }
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut got = inter.clone();
                plan.process_interleaved(&mut got, lanes, dir);
                for (l, lane) in lane_signals.iter().enumerate() {
                    let mut want = lane.clone();
                    plan.process(&mut want, dir);
                    for k in 0..n {
                        let g = got[k * lanes + l];
                        assert_eq!(
                            g.re.to_bits(),
                            want[k].re.to_bits(),
                            "n={n} lane={l} k={k} {dir:?}: re"
                        );
                        assert_eq!(g.im.to_bits(), want[k].im.to_bits(), "n={n} lane={l} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_scratch_len_is_zero_for_pow2() {
        assert_eq!(Fft1d::<f64>::new(64).batch_scratch_len(8), 0);
        assert_eq!(Fft1d::<f64>::new(1).batch_scratch_len(8), 0);
        // Bluestein 31 pads to m = next_pow2(61) = 64; two scalar planes.
        assert_eq!(Fft1d::<f64>::new(31).batch_scratch_len(8), 2 * 64 * 8);
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Inverse);
        assert_eq!(Direction::Inverse.flip(), Direction::Forward);
    }
}
