//! From-scratch uniform FFT substrate for the Jigsaw NuFFT.
//!
//! The NuFFT's third step is a conventional uniform FFT over the
//! oversampled grid. The paper treats this step as a fast, solved substrate
//! (FFTW on the CPU, cuFFT on the GPU); we provide the same role with a
//! self-contained implementation:
//!
//! * [`Fft1d`] — planned 1-D transform: iterative radix-4 (for `4^k`
//!   lengths) and radix-2 decimation-in-time with precomputed twiddles for
//!   the remaining powers of two, and Bluestein's chirp-z algorithm for
//!   everything else, so *any* length is `O(n log n)`.
//! * [`FftNd`] — multi-dimensional transforms (the paper's grids are 2-D
//!   `σN × σN` and 3-D processed as 2-D slices) via the row-column method.
//! * [`dft`] — a direct `O(n²)` DFT used as the oracle in tests.
//!
//! # Conventions
//!
//! The forward transform computes `X_k = Σ_j x_j e^{-2πi jk/n}`
//! (unnormalized); the inverse applies `e^{+2πi jk/n}` and scales by `1/n`,
//! so `inverse(forward(x)) == x`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bluestein;
pub mod nd;
pub mod radix;
pub mod radix4;
pub mod shift;

use jigsaw_num::{Complex, Float};

pub use nd::FftNd;
pub use shift::{fftshift, ifftshift};

/// Transform direction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Negative exponent, unnormalized.
    Forward,
    /// Positive exponent, scaled by `1/n`.
    Inverse,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

enum Algo<T> {
    Radix2(radix::Radix2<T>),
    Radix4(radix4::Radix4<T>),
    Bluestein(Box<bluestein::Bluestein<T>>),
    Trivial,
}

/// A planned one-dimensional FFT of a fixed length.
///
/// Planning precomputes twiddle tables (and, for non-power-of-two lengths,
/// the Bluestein chirp spectra); [`Fft1d::process`] then runs with no
/// allocation for power-of-two sizes.
///
/// ```
/// use jigsaw_fft::{Fft1d, Direction};
/// use jigsaw_num::C64;
/// let plan = Fft1d::<f64>::new(8);
/// let mut data = vec![C64::zeroed(); 8];
/// data[0] = C64::one(); // impulse
/// plan.process(&mut data, Direction::Forward);
/// assert!(data.iter().all(|z| (z.re - 1.0).abs() < 1e-12)); // flat spectrum
/// plan.process(&mut data, Direction::Inverse);
/// assert!((data[0].re - 1.0).abs() < 1e-12); // round trip
/// ```
pub struct Fft1d<T> {
    n: usize,
    algo: Algo<T>,
}

impl<T: Float> Fft1d<T> {
    /// Plan a transform of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let algo = if n == 1 {
            Algo::Trivial
        } else if radix4::is_power_of_four(n) {
            Algo::Radix4(radix4::Radix4::new(n))
        } else if n.is_power_of_two() {
            Algo::Radix2(radix::Radix2::new(n))
        } else {
            Algo::Bluestein(Box::new(bluestein::Bluestein::new(n)))
        };
        Self { n, algo }
    }

    /// The planned length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (length is ≥ 1 by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transform `data` in place.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        match &self.algo {
            Algo::Trivial => {}
            Algo::Radix2(r) => r.process(data, dir),
            Algo::Radix4(r) => r.process(data, dir),
            Algo::Bluestein(b) => b.process(data, dir),
        }
        if dir == Direction::Inverse {
            let scale = T::ONE / T::from_usize(self.n);
            for z in data.iter_mut() {
                *z = z.scale(scale);
            }
        }
    }
}

/// Direct `O(n²)` discrete Fourier transform; the correctness oracle.
///
/// Uses the same conventions as [`Fft1d`].
pub fn dft<T: Float>(input: &[Complex<T>], dir: Direction) -> Vec<Complex<T>> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex::zeroed(); n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::<f64>::zeroed();
        for (j, &x) in input.iter().enumerate() {
            let theta = sign * 2.0 * core::f64::consts::PI * ((j * k) % n) as f64 / n as f64;
            acc += x.to_c64() * Complex::cis(theta);
        }
        if dir == Direction::Inverse {
            acc = acc.unscale(n as f64);
        }
        *o = Complex::from_c64(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_num::C64;

    fn rand_signal(n: usize, seed: u64) -> Vec<C64> {
        // Simple xorshift so tests don't need the rand crate here.
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| C64::new(next(), next())).collect()
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_dft_all_small_sizes() {
        for n in 1..=64 {
            let x = rand_signal(n, n as u64 * 7919);
            let want = dft(&x, Direction::Forward);
            let plan = Fft1d::new(n);
            let mut got = x.clone();
            plan.process(&mut got, Direction::Forward);
            assert!(
                max_err(&got, &want) < 1e-9 * (n as f64),
                "size {n} mismatch: {}",
                max_err(&got, &want)
            );
        }
    }

    #[test]
    fn inverse_matches_dft_small_sizes() {
        for n in [2usize, 3, 5, 8, 12, 17, 31, 32] {
            let x = rand_signal(n, n as u64 + 5);
            let want = dft(&x, Direction::Inverse);
            let plan = Fft1d::new(n);
            let mut got = x.clone();
            plan.process(&mut got, Direction::Inverse);
            assert!(max_err(&got, &want) < 1e-10 * n as f64, "size {n}");
        }
    }

    #[test]
    fn roundtrip_large_pow2() {
        let n = 4096;
        let x = rand_signal(n, 42);
        let plan = Fft1d::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        assert!(max_err(&y, &x) < 1e-10);
    }

    #[test]
    fn roundtrip_large_nonpow2() {
        for n in [1000usize, 1536, 2187] {
            let x = rand_signal(n, n as u64);
            let plan = Fft1d::new(n);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            plan.process(&mut y, Direction::Inverse);
            assert!(max_err(&y, &x) < 1e-9, "size {n}");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 256;
        let mut x = vec![C64::zeroed(); n];
        x[0] = C64::one();
        Fft1d::new(n).process(&mut x, Direction::Forward);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_has_single_bin() {
        let n = 128;
        let k0 = 9;
        let x: Vec<C64> = (0..n)
            .map(|j| C64::cis(2.0 * core::f64::consts::PI * (j * k0) as f64 / n as f64))
            .collect();
        let mut y = x.clone();
        Fft1d::new(n).process(&mut y, Direction::Forward);
        for (k, z) in y.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 512;
        let x = rand_signal(n, 99);
        let mut y = x.clone();
        Fft1d::new(n).process(&mut y, Direction::Forward);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() / ex < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a = rand_signal(n, 1);
        let b = rand_signal(n, 2);
        let plan = Fft1d::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.process(&mut fa, Direction::Forward);
        plan.process(&mut fb, Direction::Forward);
        let mut sum: Vec<C64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.process(&mut sum, Direction::Forward);
        let combined: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&sum, &combined) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_length_panics() {
        let plan = Fft1d::<f64>::new(8);
        let mut data = vec![C64::zeroed(); 4];
        plan.process(&mut data, Direction::Forward);
    }

    #[test]
    fn f32_precision_reasonable() {
        let n = 1024;
        let x: Vec<jigsaw_num::C32> = rand_signal(n, 3)
            .into_iter()
            .map(jigsaw_num::C32::from_c64)
            .collect();
        let plan = Fft1d::<f32>::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        let err = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f32, f32::max);
        assert!(err < 1e-4, "f32 roundtrip err {err}");
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Inverse);
        assert_eq!(Direction::Inverse.flip(), Direction::Forward);
    }
}
