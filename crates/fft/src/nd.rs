//! Multi-dimensional FFTs via the row-column method.
//!
//! An N-dimensional transform factorizes into 1-D transforms along each
//! axis. Data is stored flat in row-major order (`dims = [d0, d1, ...]`,
//! with the *last* dimension contiguous), matching the grid layout used by
//! the gridding engines in `jigsaw-core`.
//!
//! # Cache-blocked interleaved panel passes
//!
//! A strided axis pass used to walk every line one element at a time —
//! `d` cache misses per line at large strides. Every axis pass now
//! processes *panels* of [`PANEL_LINES`] adjacent lines instead, gathered
//! into **k-major split-plane (SoA)** scratch: element `k` of panel lane
//! `l` lives at `re[k·lanes + l]` / `im[k·lanes + l]`. For a strided axis
//! that gather reads `lanes` adjacent grid elements per `k` (one streamed
//! AoS→SoA split); for the contiguous axis it is a cache-blocked tile
//! transpose. The panel then runs through
//! [`crate::Fft1d::process_planes`] — the batched kernel whose twiddle
//! loads amortize across lanes and whose inner lane loops compile to
//! shuffle-free vector code — and scatters back the same way. Per-lane
//! floating-point operations are exactly the scalar 1-D path's, so the
//! blocked pass is bitwise identical to line-at-a-time processing.
//!
//! # Parallel execution
//!
//! [`FftNd::process_with`] runs the panel jobs of each axis pass on an
//! [`Executor`] — `jigsaw-core` implements that trait for its persistent
//! `WorkerPool`, so one FFT parallelizes across panels. Output is bitwise
//! identical to [`FftNd::process`] for every executor and worker count:
//! each line receives exactly the same floating-point operations
//! regardless of panel grouping or scheduling (lines are independent, the
//! panel partition depends only on the shape, and there are no atomics and
//! no merge-order dependence).

use crate::exec::{self, ExecError, Executor};
use crate::{Direction, Fft1d};
use jigsaw_num::{Complex, Float};
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::{cancel, faultpoint};
use std::sync::mpsc::channel;
use std::sync::Arc;

/// Fault-injection site fired inside every parallel panel job (see
/// `jigsaw_testkit::fault`). Listed in `jigsaw_core::fault::SITES`.
pub const FAULT_PANEL: &str = "fft.panel";

/// Lines per cache-blocked panel. 32 lines × 16-byte elements = 512-byte
/// blocked reads/writes per grid row — wide enough to amortize the strided
/// access, small enough that a `32×d` panel stays cache-resident for every
/// supported grid size. Fixed (never derived from executor concurrency) so
/// the panel partition is deterministic.
pub const PANEL_LINES: usize = 32;

/// `k`-tile depth of the transpose gather/scatter on the contiguous axis:
/// one tile is `K_TILE × PANEL_LINES` scalars per plane (4 KiB each at
/// `f64`), small enough that the plane tile and the `lanes` line segments
/// feeding it all stay L1-resident while the tile fills.
const K_TILE: usize = 16;

/// A planned multi-dimensional FFT.
///
/// One [`Fft1d`] plan is created per distinct axis length, so a square 2-D
/// plan stores a single 1-D plan. Plans are `Arc`-shared so panel jobs can
/// carry them onto executor workers.
pub struct FftNd<T> {
    dims: Vec<usize>,
    plans: Vec<Arc<Fft1d<T>>>, // parallel to dims
    len: usize,
}

/// Geometry of one panel job: `lines` lines whose element `(l, k)` lives
/// at `start + l·line_step + k·elem_step` in the flat array.
#[derive(Clone, Copy)]
struct Panel {
    start: usize,
    lines: usize,
    line_step: usize,
    elem_step: usize,
}

/// Gather a panel from the AoS grid into k-major split-plane scratch
/// (`re[k*lanes + l] / im[k*lanes + l] =
/// src[start + l*line_step + k*elem_step].{re, im}`) — the layout
/// [`crate::Fft1d::process_planes`] consumes.
///
/// For a strided axis (`line_step == 1`: the lines are adjacent elements)
/// every `k`-row reads `lanes` contiguous grid elements and splits them
/// into the two planes; for the contiguous axis (`elem_step == 1`) this is
/// a tile transpose walked line-by-line inside `k`-tiles of [`K_TILE`], so
/// grid reads stay sequential and the plane tile stays L1-resident
/// (walking `k`-major outright would read the `lanes` lines at a multi-KiB
/// power-of-two stride — every access aliasing onto one L1 set).
fn gather_panel<T: Float>(src: &[Complex<T>], p: &Panel, d: usize, re: &mut [T], im: &mut [T]) {
    let lanes = p.lines;
    if p.line_step == 1 {
        for k in 0..d {
            let s = p.start + k * p.elem_step;
            let row = &src[s..s + lanes];
            let dr = &mut re[k * lanes..(k + 1) * lanes];
            let di = &mut im[k * lanes..(k + 1) * lanes];
            for l in 0..lanes {
                dr[l] = row[l].re;
                di[l] = row[l].im;
            }
        }
        return;
    }
    let mut kb = 0;
    while kb < d {
        let ke = (kb + K_TILE).min(d);
        for l in 0..lanes {
            let base = p.start + l * p.line_step;
            for k in kb..ke {
                let z = src[base + k * p.elem_step];
                re[k * lanes + l] = z.re;
                im[k * lanes + l] = z.im;
            }
        }
        kb = ke;
    }
}

/// Scatter k-major split-plane panel scratch back into the AoS grid
/// (inverse of [`gather_panel`], same tiling rationale).
fn scatter_panel<T: Float>(re: &[T], im: &[T], p: &Panel, d: usize, dst: &mut [Complex<T>]) {
    let lanes = p.lines;
    if p.line_step == 1 {
        for k in 0..d {
            let s = p.start + k * p.elem_step;
            let row = &mut dst[s..s + lanes];
            let sr = &re[k * lanes..(k + 1) * lanes];
            let si = &im[k * lanes..(k + 1) * lanes];
            for l in 0..lanes {
                row[l] = Complex::new(sr[l], si[l]);
            }
        }
        return;
    }
    let mut kb = 0;
    while kb < d {
        let ke = (kb + K_TILE).min(d);
        for l in 0..lanes {
            let base = p.start + l * p.line_step;
            for k in kb..ke {
                dst[base + k * p.elem_step] = Complex::new(re[k * lanes + l], im[k * lanes + l]);
            }
        }
        kb = ke;
    }
}

/// The per-axis telemetry span (axis index must be a static name).
fn axis_span(axis: usize, d: usize, panels: usize) -> telemetry::span::SpanGuard {
    let name = match axis {
        0 => "fft.axis0",
        1 => "fft.axis1",
        2 => "fft.axis2",
        _ => "fft.axis3",
    };
    telemetry::span!(name, { d: d, panels: panels })
}

impl<T: Float> FftNd<T> {
    /// Plan a transform over a row-major array of shape `dims`.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any dimension is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        let plans = dims.iter().map(|&d| Arc::new(Fft1d::new(d))).collect();
        let len = dims.iter().product();
        Self {
            dims: dims.to_vec(),
            plans,
            len,
        }
    }

    /// The shape this plan transforms.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the planned array has zero elements. Consistent with
    /// [`Self::len`]; always `false` in practice because [`Self::new`]
    /// rejects empty and zero-sized shapes, but derived from `len` rather
    /// than hardcoded so the invariant and the accessor cannot drift.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The panel partition of one axis pass: every line along `axis`
    /// grouped into blocks of at most [`PANEL_LINES`] adjacent lines.
    /// Depends only on the shape — never on the executor — so parallel
    /// and serial execution share one deterministic decomposition.
    fn panels_for_axis(&self, axis: usize) -> Vec<Panel> {
        let d = self.dims[axis];
        let stride: usize = self.dims[axis + 1..].iter().product();
        let outer: usize = self.dims[..axis].iter().product();
        let mut panels = Vec::new();
        if stride == 1 {
            // Contiguous lines tile the array: block adjacent rows.
            let nlines = outer;
            let mut l0 = 0;
            while l0 < nlines {
                let b = PANEL_LINES.min(nlines - l0);
                panels.push(Panel {
                    start: l0 * d,
                    lines: b,
                    line_step: d,
                    elem_step: 1,
                });
                l0 += b;
            }
        } else {
            for o in 0..outer {
                let base = o * d * stride;
                let mut i0 = 0;
                while i0 < stride {
                    let b = PANEL_LINES.min(stride - i0);
                    panels.push(Panel {
                        start: base + i0,
                        lines: b,
                        line_step: 1,
                        elem_step: stride,
                    });
                    i0 += b;
                }
            }
        }
        panels
    }

    /// Transform `data` (row-major, shape [`Self::dims`]) in place,
    /// serially on the calling thread with cache-blocked panel passes.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the planned shape.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        assert_eq!(data.len(), self.len, "buffer must match planned shape");
        let mut re_s: Vec<T> = Vec::new();
        let mut im_s: Vec<T> = Vec::new();
        let mut work: Vec<T> = Vec::new();
        for axis in 0..self.dims.len() {
            if self.dims[axis] == 1 {
                continue;
            }
            self.process_axis_serial(axis, data, dir, &mut re_s, &mut im_s, &mut work);
        }
    }

    /// One serial cache-blocked panel pass along `axis`. Shared by
    /// [`Self::process`] and the per-axis serial fallback of
    /// [`Self::process_with`], so both produce identical floating-point
    /// operation sequences.
    fn process_axis_serial(
        &self,
        axis: usize,
        data: &mut [Complex<T>],
        dir: Direction,
        re_s: &mut Vec<T>,
        im_s: &mut Vec<T>,
        work: &mut Vec<T>,
    ) {
        let d = self.dims[axis];
        let plan = &self.plans[axis];
        let panels = self.panels_for_axis(axis);
        let _span = axis_span(axis, d, panels.len());
        let max_lines = panels.iter().map(|p| p.lines).max().unwrap_or(0);
        re_s.resize(max_lines * d, T::ZERO);
        im_s.resize(max_lines * d, T::ZERO);
        for p in &panels {
            if cancel::cancelled() {
                // Cooperative cancellation: stop between panels. `data` is
                // left partially transformed; the budget owner that tripped
                // the flag discards it (see `jigsaw_testkit::cancel`).
                return;
            }
            let re = &mut re_s[..p.lines * d];
            let im = &mut im_s[..p.lines * d];
            gather_panel(data, p, d, re, im);
            work.resize(plan.batch_scratch_len(p.lines), T::ZERO);
            plan.process_planes(re, im, p.lines, dir, work);
            scatter_panel(re, im, p, d, data);
        }
    }

    /// Transform `data` in place, running each axis pass's panel jobs on
    /// `exec`. Output is **bitwise identical** to [`Self::process`] for
    /// every executor and worker count (see the module docs for why).
    ///
    /// Each pass snapshots the array once (contiguous memcpy), ships
    /// `Arc`-shared panel jobs to the executor — every job gathers its
    /// panel from the snapshot into executor-recycled scratch
    /// ([`exec::PANEL_KEY`]) and runs the batched 1-D FFTs — then the
    /// caller scatters returned panels back with blocked writes.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the planned shape.
    ///
    /// # Failure handling
    /// A panel job that panics on the executor is contained there (see
    /// [`Executor::execute`]); this method then re-runs the affected axis
    /// pass serially on the calling thread — output stays bitwise
    /// identical — and counts the retry in the `engine.fallbacks`
    /// telemetry metric. Use [`Self::try_process_with`] to surface the
    /// failure instead of degrading.
    pub fn process_with(&self, exec: &dyn Executor, data: &mut [Complex<T>], dir: Direction) {
        // Infallible by construction: every ExecError takes the serial
        // fallback branch, which cannot fail.
        let _ = self.run_with(exec, data, dir, true);
    }

    /// Strict variant of [`Self::process_with`]: a contained panel-job
    /// failure is returned as an [`ExecError`] instead of triggering the
    /// serial fallback. On `Err`, axes before the failing one have
    /// already been transformed in place, so `data` must be treated as
    /// corrupted and rebuilt by the caller.
    pub fn try_process_with(
        &self,
        exec: &dyn Executor,
        data: &mut [Complex<T>],
        dir: Direction,
    ) -> Result<(), ExecError> {
        self.run_with(exec, data, dir, false)
    }

    fn run_with(
        &self,
        exec: &dyn Executor,
        data: &mut [Complex<T>],
        dir: Direction,
        fallback: bool,
    ) -> Result<(), ExecError> {
        assert_eq!(data.len(), self.len, "buffer must match planned shape");
        if exec.concurrency() <= 1 {
            // Same results; skip the snapshot/boxing overhead entirely.
            self.process(data, dir);
            return Ok(());
        }
        let mut snapshot: Vec<Complex<T>> = Vec::with_capacity(self.len);
        let (mut re_s, mut im_s, mut work) = (Vec::new(), Vec::new(), Vec::new());
        for axis in 0..self.dims.len() {
            let d = self.dims[axis];
            if d == 1 {
                continue;
            }
            if cancel::cancelled() {
                // Cancelled between axis passes: skip the remaining work.
                // `data` stays partially transformed and is discarded by
                // whoever tripped the budget flag.
                return Ok(());
            }
            let panels = self.panels_for_axis(axis);
            let span = axis_span(axis, d, panels.len());
            // One contiguous copy; jobs gather from the shared snapshot in
            // parallel while the caller owns `data` for the scatter phase.
            snapshot.clear();
            snapshot.extend_from_slice(data);
            let src: Arc<Vec<Complex<T>>> = Arc::new(std::mem::take(&mut snapshot));
            let plan = Arc::clone(&self.plans[axis]);
            let (tx, rx) = channel::<(usize, Vec<T>)>();
            let jobs: Vec<exec::Job> = panels
                .iter()
                .enumerate()
                .map(|(j, &p)| {
                    let src = Arc::clone(&src);
                    let plan = Arc::clone(&plan);
                    let tx = tx.clone();
                    let job: exec::Job = Box::new(move |arena| {
                        let _pspan = telemetry::span!("fft.panel", {
                            axis: axis,
                            lines: p.lines
                        });
                        faultpoint!(FAULT_PANEL);
                        // One recycled buffer holds both planes: re in the
                        // first half, im in the second.
                        let mut panel =
                            exec::take_vec::<T>(arena, exec::PANEL_KEY, 2 * p.lines * d, T::ZERO);
                        if cancel::cancelled() {
                            // Cancelled: skip the gather + batched FFTs, but
                            // still report the (stale-content) panel so the
                            // caller's completion accounting holds. The
                            // scattered garbage is discarded with the job.
                            let _ = tx.send((j, panel));
                            return;
                        }
                        let (re, im) = panel.split_at_mut(p.lines * d);
                        gather_panel(&src, &p, d, re, im);
                        let wl = plan.batch_scratch_len(p.lines);
                        if wl == 0 {
                            plan.process_planes(re, im, p.lines, dir, &mut []);
                        } else {
                            // Bluestein convolution scratch cycles through
                            // the worker's arena, never leaving the job.
                            let mut work = exec::take_vec::<T>(arena, exec::WORK_KEY, wl, T::ZERO);
                            plan.process_planes(re, im, p.lines, dir, &mut work);
                            exec::give_vec(arena, exec::WORK_KEY, work);
                        }
                        let _ = tx.send((j, panel));
                    });
                    job
                })
                .collect();
            drop(tx);
            if let Err(e) = exec.execute(jobs) {
                if !fallback {
                    return Err(e);
                }
                // Discard whatever the surviving jobs sent — `data` is
                // untouched for this axis (scatter happens only below) —
                // and redo the whole pass serially: bitwise-identical
                // output, counted so operators can see the degradation.
                telemetry::record_counter("engine.fallbacks", 1);
                telemetry::flight::record(
                    telemetry::FlightKind::FallbackTaken,
                    telemetry::current_request_id(),
                    axis as u64,
                    "fft.axis_pass",
                );
                drop(rx);
                drop(span);
                self.process_axis_serial(axis, data, dir, &mut re_s, &mut im_s, &mut work);
                snapshot = Arc::try_unwrap(src).unwrap_or_default();
                continue;
            }
            let mut received = 0usize;
            while let Ok((j, panel)) = rx.recv() {
                let p = &panels[j];
                let (re, im) = panel.split_at(p.lines * d);
                scatter_panel(re, im, p, d, data);
                exec::restore_vec(exec, j, exec::PANEL_KEY, panel);
                received += 1;
            }
            assert_eq!(received, panels.len(), "a panel job failed to report");
            // Reclaim the snapshot allocation for the next axis pass.
            snapshot = Arc::try_unwrap(src).unwrap_or_default();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SerialExecutor;
    use jigsaw_num::C64;

    /// Direct 2-D DFT oracle.
    fn dft2(input: &[C64], rows: usize, cols: usize, dir: Direction) -> Vec<C64> {
        let sign = if dir == Direction::Forward { -1.0 } else { 1.0 };
        let mut out = vec![C64::zeroed(); rows * cols];
        for kr in 0..rows {
            for kc in 0..cols {
                let mut acc = C64::zeroed();
                for jr in 0..rows {
                    for jc in 0..cols {
                        let theta = sign
                            * 2.0
                            * core::f64::consts::PI
                            * (jr as f64 * kr as f64 / rows as f64
                                + jc as f64 * kc as f64 / cols as f64);
                        acc += input[jr * cols + jc] * C64::cis(theta);
                    }
                }
                if dir == Direction::Inverse {
                    acc = acc.unscale((rows * cols) as f64);
                }
                out[kr * cols + kc] = acc;
            }
        }
        out
    }

    fn signal(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new((i as f64 * 0.17).sin(), (i as f64 * 0.31).cos()))
            .collect()
    }

    #[test]
    fn matches_2d_dft() {
        for (r, c) in [(4usize, 4usize), (8, 4), (3, 5), (8, 6)] {
            let x = signal(r * c);
            let want = dft2(&x, r, c, Direction::Forward);
            let plan = FftNd::new(&[r, c]);
            let mut got = x.clone();
            plan.process(&mut got, Direction::Forward);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).abs() < 1e-9, "{r}x{c}");
            }
        }
    }

    #[test]
    fn roundtrip_2d() {
        let (r, c) = (32, 64);
        let x = signal(r * c);
        let plan = FftNd::new(&[r, c]);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-11);
        }
    }

    #[test]
    fn roundtrip_3d() {
        let dims = [8usize, 4, 16];
        let n: usize = dims.iter().product();
        let x = signal(n);
        let plan = FftNd::new(&dims);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-11);
        }
    }

    #[test]
    fn separable_impulse_2d() {
        // An impulse at the origin transforms to an all-ones grid.
        let (r, c) = (8, 8);
        let mut x = vec![C64::zeroed(); r * c];
        x[0] = C64::one();
        FftNd::new(&[r, c]).process(&mut x, Direction::Forward);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn one_dimensional_degenerate() {
        let x = signal(16);
        let plan_nd = FftNd::new(&[16]);
        let plan_1d = Fft1d::new(16);
        let mut a = x.clone();
        let mut b = x.clone();
        plan_nd.process(&mut a, Direction::Forward);
        plan_1d.process(&mut b, Direction::Forward);
        for (p, q) in a.iter().zip(&b) {
            assert!((*p - *q).abs() < 1e-13);
        }
    }

    #[test]
    fn unit_dims_are_skipped() {
        let x = signal(8);
        let plan = FftNd::new(&[1, 8, 1]);
        let mut a = x.clone();
        plan.process(&mut a, Direction::Forward);
        let mut b = x.clone();
        Fft1d::new(8).process(&mut b, Direction::Forward);
        for (p, q) in a.iter().zip(&b) {
            assert!((*p - *q).abs() < 1e-13);
        }
    }

    #[test]
    #[should_panic(expected = "buffer must match")]
    fn shape_mismatch_panics() {
        let plan = FftNd::<f64>::new(&[4, 4]);
        let mut data = vec![C64::zeroed(); 8];
        plan.process(&mut data, Direction::Forward);
    }

    #[test]
    fn is_empty_tracks_len() {
        let plan = FftNd::<f64>::new(&[4, 4]);
        assert_eq!(plan.len(), 16);
        assert!(!plan.is_empty());
    }

    #[test]
    fn panels_cover_every_line_once() {
        // Every (line) element index must be visited exactly once per axis.
        let plan = FftNd::<f64>::new(&[6, 48, 5]);
        for axis in 0..3 {
            let d = plan.dims[axis];
            let panels = plan.panels_for_axis(axis);
            let mut seen = vec![0u32; plan.len()];
            for p in &panels {
                for l in 0..p.lines {
                    for k in 0..d {
                        seen[p.start + l * p.line_step + k * p.elem_step] += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "axis {axis} coverage");
        }
    }

    #[test]
    fn serial_executor_path_is_bitwise_process() {
        // process_with(&SerialExecutor) must agree bit-for-bit with process
        // on a shape exercising panels on both contiguous and strided axes,
        // including a Bluestein axis length.
        for dims in [vec![48usize, 40], vec![33, 8, 5]] {
            let n: usize = dims.iter().product();
            let x = signal(n);
            let plan = FftNd::new(&dims);
            let mut a = x.clone();
            let mut b = x;
            plan.process(&mut a, Direction::Forward);
            plan.process_with(&SerialExecutor::new(), &mut b, Direction::Forward);
            for (p, q) in a.iter().zip(&b) {
                assert_eq!(p.re.to_bits(), q.re.to_bits());
                assert_eq!(p.im.to_bits(), q.im.to_bits());
            }
        }
    }

    #[test]
    fn blocked_strided_pass_matches_column_dft() {
        // Golden strided-axis check at a width that forces multiple panels
        // (stride 48 > PANEL_LINES): transform axis 0 of a [8, 48] array
        // and compare every column against the 1-D oracle.
        let (r, c) = (8usize, 48usize);
        let x = signal(r * c);
        let plan = FftNd::new(&[r, 1, c]); // unit dim: axis1 skipped
        let mut got = x.clone();
        // Only transform along axis 0 by comparing against per-column DFTs
        // after undoing the axis-2 pass is fiddly; instead check the full
        // 2-D result against the separable oracle.
        plan.process(&mut got, Direction::Forward);
        let want = dft2(&x, r, c, Direction::Forward);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-9);
        }
    }
}
