//! Multi-dimensional FFTs via the row-column method.
//!
//! An N-dimensional transform factorizes into 1-D transforms along each
//! axis. Data is stored flat in row-major order (`dims = [d0, d1, ...]`,
//! with the *last* dimension contiguous), matching the grid layout used by
//! the gridding engines in `jigsaw-core`.

use crate::{Direction, Fft1d};
use jigsaw_num::{Complex, Float};

/// A planned multi-dimensional FFT.
///
/// One [`Fft1d`] plan is created per distinct axis length, so a square 2-D
/// plan stores a single 1-D plan.
pub struct FftNd<T> {
    dims: Vec<usize>,
    plans: Vec<Fft1d<T>>, // parallel to dims
    len: usize,
}

impl<T: Float> FftNd<T> {
    /// Plan a transform over a row-major array of shape `dims`.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any dimension is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        let plans = dims.iter().map(|&d| Fft1d::new(d)).collect();
        let len = dims.iter().product();
        Self {
            dims: dims.to_vec(),
            plans,
            len,
        }
    }

    /// The shape this plan transforms.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transform `data` (row-major, shape [`Self::dims`]) in place.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the planned shape.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        assert_eq!(data.len(), self.len, "buffer must match planned shape");
        let nd = self.dims.len();
        // Stride of axis a in row-major layout: product of dims after a.
        for axis in 0..nd {
            let d = self.dims[axis];
            if d == 1 {
                continue;
            }
            let stride: usize = self.dims[axis + 1..].iter().product();
            let plan = &self.plans[axis];
            let mut scratch = vec![Complex::<T>::zeroed(); d];
            // Iterate over all 1-D lines along `axis`: the set of base
            // offsets is every index whose coordinate on `axis` is zero.
            let outer: usize = self.dims[..axis].iter().product();
            for o in 0..outer {
                for i in 0..stride {
                    let base = o * d * stride + i;
                    if stride == 1 {
                        // Contiguous line: transform in place.
                        plan.process(&mut data[base..base + d], dir);
                    } else {
                        for (k, s) in scratch.iter_mut().enumerate() {
                            *s = data[base + k * stride];
                        }
                        plan.process(&mut scratch, dir);
                        for (k, s) in scratch.iter().enumerate() {
                            data[base + k * stride] = *s;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_num::C64;

    /// Direct 2-D DFT oracle.
    fn dft2(input: &[C64], rows: usize, cols: usize, dir: Direction) -> Vec<C64> {
        let sign = if dir == Direction::Forward { -1.0 } else { 1.0 };
        let mut out = vec![C64::zeroed(); rows * cols];
        for kr in 0..rows {
            for kc in 0..cols {
                let mut acc = C64::zeroed();
                for jr in 0..rows {
                    for jc in 0..cols {
                        let theta = sign
                            * 2.0
                            * core::f64::consts::PI
                            * (jr as f64 * kr as f64 / rows as f64
                                + jc as f64 * kc as f64 / cols as f64);
                        acc += input[jr * cols + jc] * C64::cis(theta);
                    }
                }
                if dir == Direction::Inverse {
                    acc = acc.unscale((rows * cols) as f64);
                }
                out[kr * cols + kc] = acc;
            }
        }
        out
    }

    fn signal(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new((i as f64 * 0.17).sin(), (i as f64 * 0.31).cos()))
            .collect()
    }

    #[test]
    fn matches_2d_dft() {
        for (r, c) in [(4usize, 4usize), (8, 4), (3, 5), (8, 6)] {
            let x = signal(r * c);
            let want = dft2(&x, r, c, Direction::Forward);
            let plan = FftNd::new(&[r, c]);
            let mut got = x.clone();
            plan.process(&mut got, Direction::Forward);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).abs() < 1e-9, "{r}x{c}");
            }
        }
    }

    #[test]
    fn roundtrip_2d() {
        let (r, c) = (32, 64);
        let x = signal(r * c);
        let plan = FftNd::new(&[r, c]);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-11);
        }
    }

    #[test]
    fn roundtrip_3d() {
        let dims = [8usize, 4, 16];
        let n: usize = dims.iter().product();
        let x = signal(n);
        let plan = FftNd::new(&dims);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-11);
        }
    }

    #[test]
    fn separable_impulse_2d() {
        // An impulse at the origin transforms to an all-ones grid.
        let (r, c) = (8, 8);
        let mut x = vec![C64::zeroed(); r * c];
        x[0] = C64::one();
        FftNd::new(&[r, c]).process(&mut x, Direction::Forward);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn one_dimensional_degenerate() {
        let x = signal(16);
        let plan_nd = FftNd::new(&[16]);
        let plan_1d = Fft1d::new(16);
        let mut a = x.clone();
        let mut b = x.clone();
        plan_nd.process(&mut a, Direction::Forward);
        plan_1d.process(&mut b, Direction::Forward);
        for (p, q) in a.iter().zip(&b) {
            assert!((*p - *q).abs() < 1e-13);
        }
    }

    #[test]
    fn unit_dims_are_skipped() {
        let x = signal(8);
        let plan = FftNd::new(&[1, 8, 1]);
        let mut a = x.clone();
        plan.process(&mut a, Direction::Forward);
        let mut b = x.clone();
        Fft1d::new(8).process(&mut b, Direction::Forward);
        for (p, q) in a.iter().zip(&b) {
            assert!((*p - *q).abs() < 1e-13);
        }
    }

    #[test]
    #[should_panic(expected = "buffer must match")]
    fn shape_mismatch_panics() {
        let plan = FftNd::<f64>::new(&[4, 4]);
        let mut data = vec![C64::zeroed(); 8];
        plan.process(&mut data, Direction::Forward);
    }
}
