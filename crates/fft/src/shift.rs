//! `fftshift`/`ifftshift`: move the zero-frequency bin to the array center.
//!
//! MRI reconstructions conventionally display images with DC centered;
//! the gridding output and FFT use origin-at-index-0 (torus) layout, so
//! the examples and quality experiments shift between the two.

use jigsaw_num::{Complex, Float};

fn shift_axis<T: Copy>(data: &mut [T], dims: &[usize], axis: usize, amount: usize) {
    let d = dims[axis];
    if d <= 1 || amount == 0 {
        return;
    }
    let stride: usize = dims[axis + 1..].iter().product();
    let outer: usize = dims[..axis].iter().product();
    let mut line: Vec<T> = Vec::with_capacity(d);
    for o in 0..outer {
        for i in 0..stride {
            let base = o * d * stride + i;
            line.clear();
            line.extend((0..d).map(|k| data[base + k * stride]));
            for k in 0..d {
                data[base + ((k + amount) % d) * stride] = line[k];
            }
        }
    }
}

/// Circularly shift so the zero-frequency element moves to the center:
/// element `0` goes to index `⌈d/2⌉`-rotated position (`d/2` for even `d`).
pub fn fftshift<T: Float>(data: &mut [Complex<T>], dims: &[usize]) {
    assert_eq!(data.len(), dims.iter().product::<usize>());
    for axis in 0..dims.len() {
        shift_axis(data, dims, axis, dims[axis] / 2);
    }
}

/// Inverse of [`fftshift`] (they differ for odd lengths).
pub fn ifftshift<T: Float>(data: &mut [Complex<T>], dims: &[usize]) {
    assert_eq!(data.len(), dims.iter().product::<usize>());
    for axis in 0..dims.len() {
        let d = dims[axis];
        shift_axis(data, dims, axis, d - d / 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_num::C64;

    fn seq(n: usize) -> Vec<C64> {
        (0..n).map(|i| C64::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn shift_1d_even() {
        let mut v = seq(4);
        fftshift(&mut v, &[4]);
        let got: Vec<i64> = v.iter().map(|z| z.re as i64).collect();
        assert_eq!(got, vec![2, 3, 0, 1]);
    }

    #[test]
    fn shift_1d_odd_roundtrip() {
        let orig = seq(5);
        let mut v = orig.clone();
        fftshift(&mut v, &[5]);
        ifftshift(&mut v, &[5]);
        assert_eq!(
            v.iter().map(|z| z.re as i64).collect::<Vec<_>>(),
            orig.iter().map(|z| z.re as i64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shift_2d_moves_origin_to_center() {
        let dims = [4usize, 4];
        let mut v = vec![C64::zeroed(); 16];
        v[0] = C64::one();
        fftshift(&mut v, &dims);
        // Origin should now be at (2, 2).
        assert_eq!(v[2 * 4 + 2], C64::one());
        assert_eq!(v.iter().filter(|z| z.re != 0.0).count(), 1);
    }

    #[test]
    fn roundtrip_3d_odd_dims() {
        let dims = [3usize, 5, 4];
        let orig = seq(60);
        let mut v = orig.clone();
        fftshift(&mut v, &dims);
        ifftshift(&mut v, &dims);
        for (a, b) in v.iter().zip(&orig) {
            assert_eq!(a.re, b.re);
        }
    }
}
