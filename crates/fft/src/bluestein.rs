//! Bluestein's chirp-z algorithm: FFTs of arbitrary length.
//!
//! Rewrites the DFT as a circular convolution with a "chirp" sequence,
//! which is evaluated by power-of-two FFTs:
//!
//! ```text
//! X_k = conj(c_k) · Σ_j (x_j · conj(c_j)) · c_{k-j},   c_k = e^{iπk²/n}
//! ```
//!
//! Planning precomputes the chirp and the forward transform of its
//! zero-padded, wrapped extension; each `process` call then costs three
//! power-of-two FFTs of length `m = next_pow2(2n−1)`.

use crate::{radix::Radix2, Direction};
use jigsaw_num::{Complex, Float};

/// Planned Bluestein transform of arbitrary length `n ≥ 2`.
pub struct Bluestein<T> {
    n: usize,
    m: usize,
    inner: Radix2<T>,
    /// `chirp[k] = e^{-iπk²/n}` for `k < n` (forward-direction chirp).
    chirp: Vec<Complex<T>>,
    /// Forward FFT of the wrapped conjugate chirp, length `m`.
    chirp_spectrum: Vec<Complex<T>>,
}

impl<T: Float> Bluestein<T> {
    /// Plan a transform of length `n` (any value ≥ 2).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "Bluestein needs n ≥ 2");
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2::new(m);
        // Compute the quadratic phase mod 2n to avoid k² overflow/precision
        // loss for large n: k² mod 2n determines e^{-iπk²/n} exactly.
        let chirp: Vec<Complex<T>> = (0..n)
            .map(|k| {
                let q = (k * k) % (2 * n);
                let theta = -core::f64::consts::PI * q as f64 / n as f64;
                Complex::from_c64(Complex::cis(theta))
            })
            .collect();
        // b_j = conj(chirp[|j|]) wrapped onto [0, m): indices j and m-j.
        let mut b = vec![Complex::<T>::zeroed(); m];
        for (j, &c) in chirp.iter().enumerate() {
            b[j] = c.conj();
            if j != 0 {
                b[m - j] = c.conj();
            }
        }
        inner.process(&mut b, Direction::Forward);
        Self {
            n,
            m,
            inner,
            chirp,
            chirp_spectrum: b,
        }
    }

    /// In-place transform (no inverse scaling; the caller handles it).
    ///
    /// The inverse direction is computed via the conjugation identity
    /// `idft(x) · n = conj(dft(conj(x)))`.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        debug_assert_eq!(data.len(), self.n);
        if dir == Direction::Inverse {
            for z in data.iter_mut() {
                *z = z.conj();
            }
        }
        self.forward(data);
        if dir == Direction::Inverse {
            for z in data.iter_mut() {
                *z = z.conj();
            }
        }
    }

    fn forward(&self, data: &mut [Complex<T>]) {
        let mut a = vec![Complex::<T>::zeroed(); self.m];
        for (j, (&x, &c)) in data.iter().zip(&self.chirp).enumerate() {
            a[j] = x * c;
        }
        self.inner.process(&mut a, Direction::Forward);
        for (av, &bv) in a.iter_mut().zip(&self.chirp_spectrum) {
            *av *= bv;
        }
        self.inner.process(&mut a, Direction::Inverse);
        let scale = T::ONE / T::from_usize(self.m);
        for (k, out) in data.iter_mut().enumerate() {
            *out = a[k].scale(scale) * self.chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;
    use jigsaw_num::C64;

    #[test]
    fn prime_length_matches_dft() {
        let n = 13;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let want = dft(&x, Direction::Forward);
        let plan = Bluestein::new(n);
        let mut got = x.clone();
        plan.process(&mut got, Direction::Forward);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-11);
        }
    }

    #[test]
    fn large_prime_roundtrip() {
        let n = 997;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new(i as f64 % 7.0, -(i as f64 % 3.0)))
            .collect();
        let plan = Bluestein::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            // process() does not apply the 1/n inverse scale (Fft1d does),
            // so compare against n·x.
            assert!((*b - a.scale(n as f64)).abs() < 1e-7);
        }
    }

    #[test]
    fn quadratic_phase_mod_identity() {
        // e^{-iπk²/n} computed with k² mod 2n must equal the direct value.
        let n = 1000usize;
        for k in [0usize, 1, 37, 999] {
            let direct = Complex::<f64>::cis(-core::f64::consts::PI * (k * k) as f64 / n as f64);
            let q = (k * k) % (2 * n);
            let modded = Complex::<f64>::cis(-core::f64::consts::PI * q as f64 / n as f64);
            assert!((direct - modded).abs() < 1e-9);
        }
    }
}
