//! Bluestein's chirp-z algorithm: FFTs of arbitrary length.
//!
//! Rewrites the DFT as a circular convolution with a "chirp" sequence,
//! which is evaluated by power-of-two FFTs:
//!
//! ```text
//! X_k = conj(c_k) · Σ_j (x_j · conj(c_j)) · c_{k-j},   c_k = e^{iπk²/n}
//! ```
//!
//! Planning precomputes the chirp and the forward transform of its
//! zero-padded, wrapped extension; each `process` call then costs three
//! power-of-two FFTs of length `m = next_pow2(2n−1)`.

use crate::{radix::Radix2, Direction};
use jigsaw_num::{Complex, Float};

/// Planned Bluestein transform of arbitrary length `n ≥ 2`.
pub struct Bluestein<T> {
    n: usize,
    m: usize,
    inner: Radix2<T>,
    /// `chirp[k] = e^{-iπk²/n}` for `k < n` (forward-direction chirp).
    chirp: Vec<Complex<T>>,
    /// Forward FFT of the wrapped conjugate chirp, length `m`.
    chirp_spectrum: Vec<Complex<T>>,
}

impl<T: Float> Bluestein<T> {
    /// Plan a transform of length `n` (any value ≥ 2).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "Bluestein needs n ≥ 2");
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2::new(m);
        // Compute the quadratic phase mod 2n to avoid k² overflow/precision
        // loss for large n: k² mod 2n determines e^{-iπk²/n} exactly.
        let chirp: Vec<Complex<T>> = (0..n)
            .map(|k| {
                let q = (k * k) % (2 * n);
                let theta = -core::f64::consts::PI * q as f64 / n as f64;
                Complex::from_c64(Complex::cis(theta))
            })
            .collect();
        // b_j = conj(chirp[|j|]) wrapped onto [0, m): indices j and m-j.
        let mut b = vec![Complex::<T>::zeroed(); m];
        for (j, &c) in chirp.iter().enumerate() {
            b[j] = c.conj();
            if j != 0 {
                b[m - j] = c.conj();
            }
        }
        inner.process(&mut b, Direction::Forward);
        Self {
            n,
            m,
            inner,
            chirp,
            chirp_spectrum: b,
        }
    }

    /// Length of the convolution scratch buffer [`Self::process_with_scratch`]
    /// requires: the padded power-of-two size `m = next_pow2(2n−1)`.
    pub fn work_len(&self) -> usize {
        self.m
    }

    /// In-place transform (no inverse scaling; the caller handles it).
    ///
    /// Allocates the length-`m` convolution scratch internally; batched
    /// callers should use [`Self::process_with_scratch`] to reuse one
    /// buffer across many rows.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        let mut work = vec![Complex::<T>::zeroed(); self.m];
        self.process_with_scratch(data, dir, &mut work);
    }

    /// In-place transform using caller-provided convolution scratch of
    /// length [`Self::work_len`]. The scratch contents on entry are
    /// irrelevant (it is fully overwritten), so one buffer can serve any
    /// number of rows; results are bitwise identical to [`Self::process`].
    ///
    /// The inverse direction is computed via the conjugation identity
    /// `idft(x) · n = conj(dft(conj(x)))`.
    ///
    /// # Panics
    /// Panics if `work.len() != self.work_len()`.
    pub fn process_with_scratch(
        &self,
        data: &mut [Complex<T>],
        dir: Direction,
        work: &mut [Complex<T>],
    ) {
        debug_assert_eq!(data.len(), self.n);
        assert_eq!(work.len(), self.m, "scratch must be work_len() long");
        if dir == Direction::Inverse {
            for z in data.iter_mut() {
                *z = z.conj();
            }
        }
        self.forward(data, work);
        if dir == Direction::Inverse {
            for z in data.iter_mut() {
                *z = z.conj();
            }
        }
    }

    /// Split-plane (SoA) batch variant of [`Self::process_with_scratch`]:
    /// transforms `lanes` signals with element `k` of lane `l` at
    /// `re[k * lanes + l]` / `im[k * lanes + l]`, using caller scratch of
    /// `2 * lanes *` [`Self::work_len`] scalars (the first half holds the
    /// convolution's real plane, the second its imaginary plane).
    ///
    /// Every step of the chirp-z pipeline (chirp modulation, the inner
    /// power-of-two convolution FFTs, spectrum multiply, final chirp
    /// demodulation) is elementwise across lanes, and each real/imaginary
    /// expression below mirrors the corresponding `Complex` operator
    /// (`mul`, `MulAssign`, `scale`, `conj`) term-for-term — so lane `l`
    /// receives exactly the scalar path's floating-point operations and
    /// per-lane results are bitwise identical to [`Self::process`].
    ///
    /// # Panics
    /// Panics if `work.len() != 2 * lanes * self.work_len()`.
    pub fn process_planes_with_scratch(
        &self,
        re: &mut [T],
        im: &mut [T],
        lanes: usize,
        dir: Direction,
        work: &mut [T],
    ) {
        debug_assert_eq!(re.len(), self.n * lanes);
        debug_assert_eq!(im.len(), self.n * lanes);
        assert_eq!(
            work.len(),
            2 * self.m * lanes,
            "scratch must be 2 * lanes * work_len() scalars long"
        );
        let (wre, wim) = work.split_at_mut(self.m * lanes);
        // conj = (re, −im): the inverse direction only touches the im plane.
        if dir == Direction::Inverse {
            for v in im.iter_mut() {
                *v = -*v;
            }
        }
        // a_j = x_j · c_j per lane (Complex::mul mirror), zero-padded to m.
        for (j, &c) in self.chirp.iter().enumerate() {
            let (cr, ci) = (c.re, c.im);
            let sr = &re[j * lanes..(j + 1) * lanes];
            let si = &im[j * lanes..(j + 1) * lanes];
            let dr = &mut wre[j * lanes..(j + 1) * lanes];
            let di = &mut wim[j * lanes..(j + 1) * lanes];
            for l in 0..lanes {
                dr[l] = sr[l] * cr - si[l] * ci;
                di[l] = sr[l] * ci + si[l] * cr;
            }
        }
        for v in wre[self.n * lanes..].iter_mut() {
            *v = T::ZERO;
        }
        for v in wim[self.n * lanes..].iter_mut() {
            *v = T::ZERO;
        }
        self.inner
            .process_planes(wre, wim, lanes, Direction::Forward);
        for (j, &bv) in self.chirp_spectrum.iter().enumerate() {
            let (br, bi) = (bv.re, bv.im);
            let ar = &mut wre[j * lanes..(j + 1) * lanes];
            let ai = &mut wim[j * lanes..(j + 1) * lanes];
            for l in 0..lanes {
                // *av *= bv, mirroring Complex::mul exactly.
                let xr = ar[l] * br - ai[l] * bi;
                let xi = ar[l] * bi + ai[l] * br;
                ar[l] = xr;
                ai[l] = xi;
            }
        }
        self.inner
            .process_planes(wre, wim, lanes, Direction::Inverse);
        let scale = T::ONE / T::from_usize(self.m);
        for (k, &c) in self.chirp.iter().enumerate() {
            let (cr, ci) = (c.re, c.im);
            let rr = &wre[k * lanes..(k + 1) * lanes];
            let ri = &wim[k * lanes..(k + 1) * lanes];
            let or = &mut re[k * lanes..(k + 1) * lanes];
            let oi = &mut im[k * lanes..(k + 1) * lanes];
            for l in 0..lanes {
                // row.scale(scale) * c, mirroring scale then mul.
                let sr = rr[l] * scale;
                let si = ri[l] * scale;
                or[l] = sr * cr - si * ci;
                oi[l] = sr * ci + si * cr;
            }
        }
        if dir == Direction::Inverse {
            for v in im.iter_mut() {
                *v = -*v;
            }
        }
    }

    fn forward(&self, data: &mut [Complex<T>], a: &mut [Complex<T>]) {
        for (j, (&x, &c)) in data.iter().zip(&self.chirp).enumerate() {
            a[j] = x * c;
        }
        // The convolution input must be zero-padded beyond n; the scratch
        // may hold a previous row's tail, so clear it explicitly.
        for z in a[self.n..].iter_mut() {
            *z = Complex::zeroed();
        }
        self.inner.process(a, Direction::Forward);
        for (av, &bv) in a.iter_mut().zip(&self.chirp_spectrum) {
            *av *= bv;
        }
        self.inner.process(a, Direction::Inverse);
        let scale = T::ONE / T::from_usize(self.m);
        for (k, out) in data.iter_mut().enumerate() {
            *out = a[k].scale(scale) * self.chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;
    use jigsaw_num::C64;

    #[test]
    fn prime_length_matches_dft() {
        let n = 13;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let want = dft(&x, Direction::Forward);
        let plan = Bluestein::new(n);
        let mut got = x.clone();
        plan.process(&mut got, Direction::Forward);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-11);
        }
    }

    #[test]
    fn large_prime_roundtrip() {
        let n = 997;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new(i as f64 % 7.0, -(i as f64 % 3.0)))
            .collect();
        let plan = Bluestein::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            // process() does not apply the 1/n inverse scale (Fft1d does),
            // so compare against n·x.
            assert!((*b - a.scale(n as f64)).abs() < 1e-7);
        }
    }

    #[test]
    fn quadratic_phase_mod_identity() {
        // e^{-iπk²/n} computed with k² mod 2n must equal the direct value.
        let n = 1000usize;
        for k in [0usize, 1, 37, 999] {
            let direct = Complex::<f64>::cis(-core::f64::consts::PI * (k * k) as f64 / n as f64);
            let q = (k * k) % (2 * n);
            let modded = Complex::<f64>::cis(-core::f64::consts::PI * q as f64 / n as f64);
            assert!((direct - modded).abs() < 1e-9);
        }
    }
}
