//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * `ablation_lut` — LUT weights vs on-the-fly kernel evaluation
//!   (reason #1 the paper gives for Slice-and-Dice GPU beating Impatient).
//! * `ablation_tile` — binning tile size (cache-fit trade-off, §II-C
//!   "good binning parameters are hardware and data-set dependent").
//! * `ablation_atomics` — block-atomic vs block-reduce vs column-owned
//!   accumulation in parallel Slice-and-Dice.
//! * `ablation_l_sweep` — table oversampling factor L vs gridding cost
//!   (accuracy side measured in `tests/quality.rs`).

use jigsaw_bench::harness::BenchGroup;
use jigsaw_bench::{eval_images, EvalImage, TrajKind};
use jigsaw_core::config::GridParams;
use jigsaw_core::gridding::{
    BinnedGridder, ExactGridder, Gridder, SerialGridder, SliceDiceGridder, SliceDiceMode,
};
use jigsaw_core::kernel::KernelKind;
use jigsaw_core::lut::KernelLut;
use jigsaw_num::C64;

fn problem(n: usize, m: usize) -> (GridParams, KernelLut, Vec<[f64; 2]>, Vec<C64>) {
    let img = EvalImage {
        name: "ablation",
        n,
        m,
        traj: TrajKind::Radial,
    };
    let g = img.grid();
    let params = GridParams {
        grid: g,
        width: 6,
        table_oversampling: 32,
        tile: 8,
        kernel: KernelKind::Auto.resolve(6, 2.0),
    };
    let lut = KernelLut::from_params(&params);
    let coords_cycles = img.trajectory();
    let values = img.kspace(&coords_cycles);
    let coords: Vec<[f64; 2]> = coords_cycles
        .iter()
        .map(|c| {
            [
                c[0].rem_euclid(1.0) * g as f64,
                c[1].rem_euclid(1.0) * g as f64,
            ]
        })
        .collect();
    (params, lut, coords, values)
}

fn ablation_lut() {
    let (params, lut, coords, values) = problem(128, 16_384);
    let g = params.grid;
    let mut group = BenchGroup::new("ablation_lut");
    group.sample_size(10);
    group.bench_function("lut_weights", || {
        let mut out = vec![C64::zeroed(); g * g];
        SerialGridder.grid(&params, &lut, &coords, &values, &mut out);
        out
    });
    group.bench_function("on_the_fly_weights", || {
        let mut out = vec![C64::zeroed(); g * g];
        ExactGridder.grid(&params, &lut, &coords, &values, &mut out);
        out
    });
    group.finish();
}

fn ablation_tile() {
    let (params, lut, coords, values) = problem(128, 16_384);
    let g = params.grid;
    let mut group = BenchGroup::new("ablation_bin_tile");
    group.sample_size(10);
    for bin_tile in [8usize, 16, 32, 64] {
        let binner = BinnedGridder {
            bin_tile,
            ..Default::default()
        };
        group.bench_function(&format!("tile{bin_tile}"), || {
            let mut out = vec![C64::zeroed(); g * g];
            binner.grid(&params, &lut, &coords, &values, &mut out);
            out
        });
    }
    group.finish();
}

fn ablation_atomics() {
    let (params, lut, coords, values) = problem(128, 16_384);
    let g = params.grid;
    let mut group = BenchGroup::new("ablation_accumulation");
    group.sample_size(10);
    for (name, mode) in [
        ("column_owned", SliceDiceMode::ColumnParallel),
        ("block_atomic", SliceDiceMode::BlockAtomic),
        ("block_reduce", SliceDiceMode::BlockReduce),
    ] {
        let engine = SliceDiceGridder::new(mode);
        group.bench_function(name, || {
            let mut out = vec![C64::zeroed(); g * g];
            engine.grid(&params, &lut, &coords, &values, &mut out);
            out
        });
    }
    group.finish();
}

fn ablation_l_sweep() {
    // Larger L grows the table but should not change gridding *time*
    // (same number of lookups) — the accuracy benefit is free at runtime.
    let img = eval_images()[0];
    let g = img.grid();
    let coords_cycles: Vec<[f64; 2]> = img.trajectory().into_iter().take(16_384).collect();
    let values = img.kspace(&coords_cycles);
    let coords: Vec<[f64; 2]> = coords_cycles
        .iter()
        .map(|c| {
            [
                c[0].rem_euclid(1.0) * g as f64,
                c[1].rem_euclid(1.0) * g as f64,
            ]
        })
        .collect();
    let mut group = BenchGroup::new("ablation_table_oversampling");
    group.sample_size(10);
    for l in [8usize, 32, 128, 1024] {
        let params = GridParams {
            grid: g,
            width: 6,
            table_oversampling: l,
            tile: 8,
            kernel: KernelKind::Auto.resolve(6, 2.0),
        };
        let lut = KernelLut::from_params(&params);
        group.bench_function(&format!("L{l}"), || {
            let mut out = vec![C64::zeroed(); g * g];
            SerialGridder.grid(&params, &lut, &coords, &values, &mut out);
            out
        });
    }
    group.finish();
}

fn ablation_zsort() {
    // §IV: unsorted 3-D streams re-process all M samples per slice
    // ((M+15)·Nz cycles); Z-sorting reduces it to ≈ (M+15)·Wz. Note the
    // simulator's wall-clock gap understates the modeled Nz/Wz cycle gap:
    // the software z-reject path costs far less than a broadcast hardware
    // cycle. The cycle counters (asserted in `three_d_cycle_laws`) are the
    // architecturally meaningful comparison; this bench tracks the
    // software cost of the two modes.
    use jigsaw_sim::{Jigsaw3dSlice, JigsawConfig};
    let g = 32usize;
    let coords = jigsaw_core::traj::stack_of_stars_3d(16, 32, g);
    let mapped: Vec<[f64; 3]> = coords
        .iter()
        .map(|c| {
            [
                c[0].rem_euclid(1.0) * g as f64,
                c[1].rem_euclid(1.0) * g as f64,
                c[2].rem_euclid(1.0) * g as f64,
            ]
        })
        .collect();
    let values = vec![jigsaw_num::C64::new(0.5, -0.25); mapped.len()];
    let mut hw = Jigsaw3dSlice::new(JigsawConfig {
        grid: g,
        ..JigsawConfig::paper_default()
    })
    .unwrap();
    let (stream, _) = hw.quantize_inputs(&mapped, &values).unwrap();
    let mut group = BenchGroup::new("ablation_zsort");
    group.sample_size(10);
    group.bench_function("unsorted", || hw.run(&stream, false).report);
    group.bench_function("z_sorted", || hw.run(&stream, true).report);
    group.finish();
}

fn ablation_beatty() {
    // Beatty trade-off: lower σ shrinks the FFT grid but needs a wider
    // kernel, pushing work back into gridding (§II-B).
    use jigsaw_core::gridding::SerialGridder as SG;
    use jigsaw_core::{NufftConfig, NufftPlan};
    let n = 128usize;
    let img = EvalImage {
        name: "beatty",
        n,
        m: 16_384,
        traj: TrajKind::Radial,
    };
    let coords = img.trajectory();
    let values = img.kspace(&coords);
    let mut group = BenchGroup::new("ablation_beatty");
    group.sample_size(10);
    for (sigma, width) in [(2.0, 6usize), (1.5, 7), (1.25, 8)] {
        let mut cfg = NufftConfig::with_n(n);
        cfg.sigma = sigma;
        cfg.width = width;
        let plan = NufftPlan::<f64, 2>::new(cfg).unwrap();
        group.bench_function(&format!("sigma{sigma}_w{width}"), || {
            plan.adjoint(&coords, &values, &SG).unwrap().image
        });
    }
    group.finish();
}

fn ablation_morton_presort() {
    // A Z-order presort buys the *serial* CPU gridder cache locality —
    // the same trade the paper's binning baselines make, and exactly the
    // pre-processing pass Slice-and-Dice/JIGSAW eliminate.
    let (params, lut, coords, values) = problem(256, 65_536);
    let g = params.grid;
    let perm = jigsaw_core::traj::morton_order_2d(
        &coords
            .iter()
            .map(|c| [c[0] / g as f64, c[1] / g as f64])
            .collect::<Vec<_>>(),
        g,
    );
    let sorted_coords = jigsaw_core::traj::apply_permutation(&coords, &perm);
    let sorted_values = jigsaw_core::traj::apply_permutation(&values, &perm);
    let mut group = BenchGroup::new("ablation_morton_presort");
    group.sample_size(10);
    group.bench_function("shuffled_stream", || {
        let mut out = vec![C64::zeroed(); g * g];
        SerialGridder.grid(&params, &lut, &coords, &values, &mut out);
        out
    });
    group.bench_function("morton_sorted_stream", || {
        let mut out = vec![C64::zeroed(); g * g];
        SerialGridder.grid(&params, &lut, &sorted_coords, &sorted_values, &mut out);
        out
    });
    group.finish();
}

fn main() {
    ablation_lut();
    ablation_tile();
    ablation_atomics();
    ablation_l_sweep();
    ablation_zsort();
    ablation_beatty();
    ablation_morton_presort();
}
