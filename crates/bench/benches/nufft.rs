//! Benchmarks of the end-to-end NuFFT (Fig. 7's measured substrate),
//! including the gridding/FFT time split, the planned multi-coil batch
//! path, and the JIGSAW functional simulator throughput.

use jigsaw_bench::eval_images;
use jigsaw_bench::harness::BenchGroup;
use jigsaw_core::gridding::{SerialGridder, SliceDiceGridder, SliceDiceMode};
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_fft::{Direction, FftNd};
use jigsaw_num::C64;
use jigsaw_sim::{Jigsaw2d, JigsawConfig};

fn bench_nufft_adjoint() {
    let img = eval_images()[1]; // N = 128
    let m = 32_768;
    let mut coords = img.trajectory();
    coords.truncate(m);
    let values = img.kspace(&coords);
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(img.n)).unwrap();

    let mut group = BenchGroup::new("nufft_adjoint");
    group.sample_size(10).throughput_elements(m as u64);
    group.bench_function("serial_engine", || {
        plan.adjoint(&coords, &values, &SerialGridder)
            .unwrap()
            .image
    });
    group.bench_function("slice_dice_engine", || {
        plan.adjoint(
            &coords,
            &values,
            &SliceDiceGridder::new(SliceDiceMode::ColumnParallel),
        )
        .unwrap()
        .image
    });
    let traj = plan.plan_trajectory(&coords).unwrap();
    group.bench_function("planned_single_coil", || {
        plan.adjoint_batch_planned(&traj, &[&values]).unwrap()
    });
    group.finish();
}

fn bench_fft_alone() {
    // The uniform FFT is a tiny fraction of the serial NuFFT — the
    // paper's 99.6 % motivation, measured directly.
    let mut group = BenchGroup::new("uniform_fft");
    group.sample_size(10);
    for g in [256usize, 512] {
        let plan = FftNd::<f64>::new(&[g, g]);
        let data: Vec<C64> = (0..g * g)
            .map(|i| C64::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        group.bench_function(&format!("{g}x{g}"), || {
            let mut buf = data.clone();
            plan.process(&mut buf, Direction::Forward);
            buf
        });
    }
    group.finish();
}

fn bench_jigsaw_sim() {
    let img = eval_images()[1];
    let m = 32_768;
    let g = img.grid();
    let mut coords = img.trajectory();
    coords.truncate(m);
    let values = img.kspace(&coords);
    let mapped: Vec<[f64; 2]> = coords
        .iter()
        .map(|c| {
            [
                c[0].rem_euclid(1.0) * g as f64,
                c[1].rem_euclid(1.0) * g as f64,
            ]
        })
        .collect();
    let mut hw = Jigsaw2d::new(JigsawConfig {
        grid: g,
        ..JigsawConfig::paper_default()
    })
    .unwrap();
    let (stream, _) = hw.quantize_inputs(&mapped, &values).unwrap();

    let mut group = BenchGroup::new("jigsaw_sim");
    group.sample_size(10).throughput_elements(m as u64);
    group.bench_function("functional_2d", || hw.run(&stream).report);
    group.finish();
}

fn main() {
    bench_nufft_adjoint();
    bench_fft_alone();
    bench_jigsaw_sim();
}
