//! Criterion microbenchmarks of the gridding engines (Fig. 6's measured
//! substrate): serial baseline vs binned vs Slice-and-Dice variants on a
//! fixed mid-size problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jigsaw_bench::{eval_images, EvalImage};
use jigsaw_core::config::GridParams;
use jigsaw_core::gridding::{
    BinnedGridder, Gridder, SerialGridder, SliceDiceGridder, SliceDiceMode,
};
use jigsaw_core::kernel::KernelKind;
use jigsaw_core::lut::KernelLut;
use jigsaw_num::C64;

fn problem(img: &EvalImage, m: usize) -> (GridParams, KernelLut, Vec<[f64; 2]>, Vec<C64>) {
    let g = img.grid();
    let params = GridParams {
        grid: g,
        width: 6,
        table_oversampling: 32,
        tile: 8,
        kernel: KernelKind::Auto.resolve(6, 2.0),
    };
    let lut = KernelLut::from_params(&params);
    let mut coords_cycles = img.trajectory();
    coords_cycles.truncate(m);
    let values = img.kspace(&coords_cycles);
    let coords: Vec<[f64; 2]> = coords_cycles
        .iter()
        .map(|c| [c[0].rem_euclid(1.0) * g as f64, c[1].rem_euclid(1.0) * g as f64])
        .collect();
    (params, lut, coords, values)
}

fn bench_engines(c: &mut Criterion) {
    let img = eval_images()[1]; // N = 128
    let m = 32_768;
    let (params, lut, coords, values) = problem(&img, m);
    let g = params.grid;

    let mut group = c.benchmark_group("gridding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(m as u64));

    let engines: Vec<(&str, Box<dyn Gridder<f64, 2>>)> = vec![
        ("serial", Box::new(SerialGridder)),
        ("binned", Box::new(BinnedGridder::default())),
        (
            "slice_dice_serial",
            Box::new(SliceDiceGridder::new(SliceDiceMode::Serial)),
        ),
        (
            "slice_dice_parallel",
            Box::new(SliceDiceGridder::new(SliceDiceMode::ColumnParallel)),
        ),
        (
            "slice_dice_atomic",
            Box::new(SliceDiceGridder::new(SliceDiceMode::BlockAtomic)),
        ),
    ];
    for (name, engine) in &engines {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut out = vec![C64::zeroed(); g * g];
                engine.grid(&params, &lut, &coords, &values, &mut out);
                out
            })
        });
    }
    group.finish();
}

fn bench_grid_size_scaling(c: &mut Criterion) {
    // Slice-and-Dice's check count is M·T², independent of grid size;
    // the naive model would scale with G². Sweep G at fixed M.
    let mut group = c.benchmark_group("grid_size_scaling");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let img = EvalImage {
            name: "sweep",
            n,
            m: 16_384,
            traj: jigsaw_bench::TrajKind::Radial,
        };
        let (params, lut, coords, values) = problem(&img, img.m);
        let g = params.grid;
        group.bench_with_input(BenchmarkId::new("slice_dice", n), &n, |b, _| {
            b.iter(|| {
                let mut out = vec![C64::zeroed(); g * g];
                SliceDiceGridder::new(SliceDiceMode::Serial)
                    .grid(&params, &lut, &coords, &values, &mut out);
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_grid_size_scaling);
criterion_main!(benches);
