//! Microbenchmarks of the gridding engines (Fig. 6's measured
//! substrate): serial baseline vs binned vs Slice-and-Dice variants on a
//! fixed mid-size problem, on both execution backends.

use jigsaw_bench::harness::BenchGroup;
use jigsaw_bench::{eval_images, EvalImage};
use jigsaw_core::config::GridParams;
use jigsaw_core::engine::ExecBackend;
use jigsaw_core::gridding::{
    BinnedGridder, Gridder, SerialGridder, SliceDiceGridder, SliceDiceMode,
};
use jigsaw_core::kernel::KernelKind;
use jigsaw_core::lut::KernelLut;
use jigsaw_num::C64;

fn problem(img: &EvalImage, m: usize) -> (GridParams, KernelLut, Vec<[f64; 2]>, Vec<C64>) {
    let g = img.grid();
    let params = GridParams {
        grid: g,
        width: 6,
        table_oversampling: 32,
        tile: 8,
        kernel: KernelKind::Auto.resolve(6, 2.0),
    };
    let lut = KernelLut::from_params(&params);
    let mut coords_cycles = img.trajectory();
    coords_cycles.truncate(m);
    let values = img.kspace(&coords_cycles);
    let coords: Vec<[f64; 2]> = coords_cycles
        .iter()
        .map(|c| {
            [
                c[0].rem_euclid(1.0) * g as f64,
                c[1].rem_euclid(1.0) * g as f64,
            ]
        })
        .collect();
    (params, lut, coords, values)
}

fn bench_engines() {
    let img = eval_images()[1]; // N = 128
    let m = 32_768;
    let (params, lut, coords, values) = problem(&img, m);
    let g = params.grid;

    let mut group = BenchGroup::new("gridding");
    group.sample_size(10).throughput_elements(m as u64);

    let mut engines: Vec<(String, Box<dyn Gridder<f64, 2>>)> =
        vec![("serial".into(), Box::new(SerialGridder))];
    for backend in [ExecBackend::Pooled, ExecBackend::Scoped] {
        let tag = match backend {
            ExecBackend::Pooled => "pooled",
            ExecBackend::Scoped => "scoped",
        };
        engines.push((
            format!("binned_{tag}"),
            Box::new(BinnedGridder {
                backend,
                ..Default::default()
            }),
        ));
        engines.push((
            format!("slice_dice_serial_{tag}"),
            Box::new(SliceDiceGridder::new(SliceDiceMode::Serial).with_backend(backend)),
        ));
        engines.push((
            format!("slice_dice_parallel_{tag}"),
            Box::new(SliceDiceGridder::new(SliceDiceMode::ColumnParallel).with_backend(backend)),
        ));
        engines.push((
            format!("slice_dice_atomic_{tag}"),
            Box::new(SliceDiceGridder::new(SliceDiceMode::BlockAtomic).with_backend(backend)),
        ));
    }
    for (name, engine) in &engines {
        group.bench_function(name, || {
            let mut out = vec![C64::zeroed(); g * g];
            engine.grid(&params, &lut, &coords, &values, &mut out);
            out
        });
    }
    group.finish();
}

fn bench_grid_size_scaling() {
    // Slice-and-Dice's check count is M·T², independent of grid size;
    // the naive model would scale with G². Sweep G at fixed M.
    let mut group = BenchGroup::new("grid_size_scaling");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let img = EvalImage {
            name: "sweep",
            n,
            m: 16_384,
            traj: jigsaw_bench::TrajKind::Radial,
        };
        let (params, lut, coords, values) = problem(&img, img.m);
        let g = params.grid;
        group.bench_function(&format!("slice_dice/{n}"), || {
            let mut out = vec![C64::zeroed(); g * g];
            SliceDiceGridder::new(SliceDiceMode::Serial)
                .grid(&params, &lut, &coords, &values, &mut out);
            out
        });
    }
    group.finish();
}

fn main() {
    bench_engines();
    bench_grid_size_scaling();
}
