//! Pooled vs scoped execution-engine comparison, plus the batched
//! multi-coil adjoint path.
//!
//! Two questions, answered with wall-clock numbers and recorded in
//! `BENCH_pooled_vs_scoped.json`:
//!
//! 1. **Engine dispatch** — does routing the parallel gridders through
//!    the persistent [`WorkerPool`](jigsaw_core::engine::WorkerPool)
//!    (`ExecBackend::Pooled`) keep up with (or beat) per-call
//!    `std::thread::scope` spawning (`ExecBackend::Scoped`)?
//! 2. **Multi-coil batching** — on a radial 256² problem with ≥ 8 coils,
//!    does `plan_trajectory` + `adjoint_batch_planned` (decompose once,
//!    stream every coil through the pool) beat a per-coil loop of
//!    scoped-spawn `adjoint` calls?
//!
//! Run with `cargo run --release -p jigsaw-bench --bin pooled_vs_scoped`
//! (append `--quick` to shrink M).

use jigsaw_bench::harness::{fmt_time, BenchGroup, Stats};
use jigsaw_bench::{EvalImage, HarnessArgs, TrajKind};
use jigsaw_core::engine::{ExecBackend, WorkerPool};
use jigsaw_core::gridding::{BinnedGridder, Gridder, SliceDiceGridder, SliceDiceMode};
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_num::C64;

const COILS: usize = 8;

struct JsonRecord {
    group: String,
    id: String,
    median_seconds: f64,
    min_seconds: f64,
}

fn record(records: &mut Vec<JsonRecord>, group: &str, id: &str, s: Stats) {
    records.push(JsonRecord {
        group: group.to_string(),
        id: id.to_string(),
        median_seconds: s.median,
        min_seconds: s.min,
    });
}

/// Pooled vs scoped dispatch for every parallel engine on one problem.
fn engine_dispatch(img: &EvalImage, records: &mut Vec<JsonRecord>) -> (f64, f64) {
    let g = img.grid();
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(img.n)).unwrap();
    let coords_cycles = img.trajectory();
    let values = img.kspace(&coords_cycles);
    let mapped = plan.map_coords(&coords_cycles);
    let params = plan.grid_params();
    let lut = plan.lut();

    let mut group = BenchGroup::new("engine_dispatch");
    group
        .sample_size(10)
        .throughput_elements(coords_cycles.len() as u64);
    let mut pooled_med = f64::INFINITY;
    let mut scoped_med = f64::INFINITY;
    for backend in [ExecBackend::Pooled, ExecBackend::Scoped] {
        let tag = match backend {
            ExecBackend::Pooled => "pooled",
            ExecBackend::Scoped => "scoped",
        };
        let engines: Vec<(String, Box<dyn Gridder<f64, 2>>)> = vec![
            (
                format!("binned_{tag}"),
                Box::new(BinnedGridder {
                    backend,
                    ..Default::default()
                }),
            ),
            (
                format!("slice_dice_parallel_{tag}"),
                Box::new(
                    SliceDiceGridder::new(SliceDiceMode::ColumnParallel).with_backend(backend),
                ),
            ),
            (
                format!("slice_dice_atomic_{tag}"),
                Box::new(SliceDiceGridder::new(SliceDiceMode::BlockAtomic).with_backend(backend)),
            ),
        ];
        for (name, engine) in &engines {
            let stats = group.bench_function(name, || {
                let mut out = vec![C64::zeroed(); g * g];
                engine.grid(params, lut, &mapped, &values, &mut out);
                out
            });
            record(records, "engine_dispatch", name, stats);
            if name.starts_with("slice_dice_parallel") {
                match backend {
                    ExecBackend::Pooled => pooled_med = stats.median,
                    ExecBackend::Scoped => scoped_med = stats.median,
                }
            }
        }
    }
    group.finish();
    (pooled_med, scoped_med)
}

/// Per-worker utilization of the global pool over one measured region:
/// `busy_ns_delta / wall_ns` for each worker, reduced to (max, min).
struct Utilization {
    max: f64,
    min: f64,
    jobs: u64,
}

fn measure_utilization<R>(mut f: impl FnMut() -> R) -> (R, Utilization) {
    let pool = WorkerPool::global();
    let busy_before = pool.worker_busy_ns();
    let jobs_before: u64 = pool.worker_job_counts().iter().sum();
    let t0 = std::time::Instant::now();
    let out = f();
    let wall_ns = t0.elapsed().as_nanos().max(1) as f64;
    let busy_after = pool.worker_busy_ns();
    let jobs_after: u64 = pool.worker_job_counts().iter().sum();
    let utils: Vec<f64> = busy_after
        .iter()
        .zip(&busy_before)
        .map(|(a, b)| (a - b) as f64 / wall_ns)
        .collect();
    let max = utils.iter().cloned().fold(0.0, f64::max);
    let min = utils.iter().cloned().fold(f64::INFINITY, f64::min);
    (
        out,
        Utilization {
            max,
            min: if min.is_finite() { min } else { 0.0 },
            jobs: jobs_after - jobs_before,
        },
    )
}

/// Batched planned multi-coil adjoint vs a per-coil scoped-spawn loop.
fn multi_coil(img: &EvalImage, records: &mut Vec<JsonRecord>) -> ((f64, f64), Utilization) {
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(img.n)).unwrap();
    let coords = img.trajectory();
    let base = img.kspace(&coords);
    // Synthetic coils: the same k-space under per-coil complex gains, the
    // shape `sense::acquire` produces for flat maps. Gridding cost is
    // identical for every coil, which is what we are measuring.
    let coils: Vec<Vec<C64>> = (0..COILS)
        .map(|c| {
            let phase = 0.7 * c as f64;
            let gain = C64::new(phase.cos(), phase.sin());
            base.iter().map(|&v| v * gain).collect()
        })
        .collect();
    let coil_refs: Vec<&[C64]> = coils.iter().map(|c| c.as_slice()).collect();
    let scoped_engine =
        SliceDiceGridder::new(SliceDiceMode::ColumnParallel).with_backend(ExecBackend::Scoped);

    let mut group = BenchGroup::new(&format!(
        "multi_coil_adjoint ({COILS} coils, radial {n}²)",
        n = img.n
    ));
    group.sample_size(5);
    let per_coil = group.bench_function("per_coil_scoped_adjoint", || {
        coils
            .iter()
            .map(|c| plan.adjoint(&coords, c, &scoped_engine).unwrap().image)
            .collect::<Vec<_>>()
    });
    let batched = group.bench_function("planned_batched_adjoint", || {
        // Planning is inside the timed region: the comparison is one full
        // reconstruction, cold trajectory, not an amortized replay.
        let traj = plan.plan_trajectory(&coords).unwrap();
        plan.adjoint_batch_planned(&traj, &coil_refs).unwrap()
    });
    let traj = plan.plan_trajectory(&coords).unwrap();
    // Warm replay doubles as the pool-imbalance probe: the always-on
    // per-worker busy counters give max/min utilization over the region.
    let (replay, util) = measure_utilization(|| {
        group.bench_function("planned_batched_adjoint_warm", || {
            plan.adjoint_batch_planned(&traj, &coil_refs).unwrap()
        })
    });
    group.finish();

    record(
        records,
        "multi_coil_adjoint",
        "per_coil_scoped_adjoint",
        per_coil,
    );
    record(
        records,
        "multi_coil_adjoint",
        "planned_batched_adjoint",
        batched,
    );
    record(
        records,
        "multi_coil_adjoint",
        "planned_batched_adjoint_warm",
        replay,
    );
    ((per_coil.median, batched.median), util)
}

fn write_json(
    path: &str,
    records: &[JsonRecord],
    img: &EvalImage,
    dispatch: (f64, f64),
    coil: (f64, f64),
    util: &Utilization,
) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"problem\": {{\"n\": {}, \"grid\": {}, \"m\": {}, \"trajectory\": \"radial\", \"coils\": {}}},\n",
        img.n,
        img.grid(),
        img.m,
        COILS
    ));
    s.push_str(&format!(
        "  \"threads\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"median_seconds\": {:.6e}, \"min_seconds\": {:.6e}}}{}\n",
            r.group,
            r.id,
            r.median_seconds,
            r.min_seconds,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"pooled_over_scoped_speedup\": {:.4},\n",
        dispatch.1 / dispatch.0
    ));
    s.push_str(&format!(
        "  \"batched_over_per_coil_speedup\": {:.4},\n",
        coil.0 / coil.1
    ));
    s.push_str(&format!(
        "  \"worker_utilization\": {{\"max\": {:.4}, \"min\": {:.4}, \"jobs\": {}}}\n}}\n",
        util.max, util.min, util.jobs
    ));
    std::fs::write(path, s)
}

fn main() {
    let args = HarnessArgs::parse();
    // "Radial 256²": base image N = 256 (grid 512 at σ = 2).
    let mut img = EvalImage {
        name: "radial256",
        n: 256,
        m: 131_072,
        traj: TrajKind::Radial,
    };
    if args.quick_divisor > 1 {
        println!("[quick mode: M divided by {}]", args.quick_divisor);
        img.m /= args.quick_divisor;
    }

    println!("=== Pooled vs scoped execution engines ===\n");
    let mut records = Vec::new();
    let dispatch = engine_dispatch(&img, &mut records);
    let (coil, util) = multi_coil(&img, &mut records);

    println!(
        "slice-dice parallel: pooled {} vs scoped {}  ({:.2}x)",
        fmt_time(dispatch.0),
        fmt_time(dispatch.1),
        dispatch.1 / dispatch.0
    );
    println!(
        "{COILS}-coil adjoint: batched {} vs per-coil {}  ({:.2}x)",
        fmt_time(coil.1),
        fmt_time(coil.0),
        coil.0 / coil.1
    );
    println!(
        "pool worker utilization over warm batch: max {:.1}%, min {:.1}% ({} jobs)",
        util.max * 100.0,
        util.min * 100.0,
        util.jobs
    );

    let path = "BENCH_pooled_vs_scoped.json";
    match write_json(path, &records, &img, dispatch, coil, &util) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
