//! Disabled-telemetry overhead check.
//!
//! The telemetry kill switch's contract is that a disabled run costs one
//! predicted branch per instrumentation site. This bench times the same
//! slice-and-dice gridding problem with telemetry enabled and disabled
//! (via `jigsaw_telemetry::set_enabled`) and records the ratio in
//! `BENCH_telemetry_overhead.json` — the disabled run must stay within a
//! few percent of the enabled one, and both within noise of the pre-
//! telemetry baseline.
//!
//! A second phase times the introspection *record path* added for live
//! serve stats — a [`WindowedHistogram`] record plus a flight-recorder
//! event per iteration, exactly the per-job sequence the serve engine
//! runs — against a bare baseline loop. The disarmed variant (telemetry
//! off, instrumentation present) is the acceptance gate: it must stay
//! within 1.05× of the baseline, i.e. one branch per site.
//!
//! Run with `cargo run --release -p jigsaw-bench --bin telemetry_overhead`
//! (append `--quick`, or set `JIGSAW_BENCH_SAMPLES`, to shrink the run).

use jigsaw_bench::harness::{fmt_time, BenchGroup};
use jigsaw_bench::{EvalImage, HarnessArgs, TrajKind};
use jigsaw_core::gridding::{Gridder, SliceDiceGridder};
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_num::C64;
use jigsaw_telemetry as telemetry;

fn main() {
    let args = HarnessArgs::parse();
    let mut img = EvalImage {
        name: "radial256",
        n: 256,
        m: 131_072,
        traj: TrajKind::Radial,
    };
    if args.quick_divisor > 1 {
        println!("[quick mode: M divided by {}]", args.quick_divisor);
        img.m /= args.quick_divisor;
    }

    let g = img.grid();
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(img.n)).unwrap();
    let coords_cycles = img.trajectory();
    let values = img.kspace(&coords_cycles);
    let mapped = plan.map_coords(&coords_cycles);
    let params = plan.grid_params();
    let lut = plan.lut();
    let engine = SliceDiceGridder::default();

    println!(
        "=== Telemetry overhead (slice-dice gridding, M = {}) ===\n",
        img.m
    );
    let mut group = BenchGroup::new("telemetry_overhead");
    group
        .sample_size(10)
        .throughput_elements(coords_cycles.len() as u64);

    let mut run = |id: &str, enabled: bool| {
        telemetry::set_enabled(enabled);
        let stats = group.bench_function(id, || {
            let mut out = vec![C64::zeroed(); g * g];
            engine.grid(params, lut, &mapped, &values, &mut out);
            out
        });
        // Don't let event buffers grow across configs.
        telemetry::drain_events();
        telemetry::reset();
        stats
    };
    let enabled = run("gridding_telemetry_on", true);
    let disabled = run("gridding_telemetry_off", false);
    telemetry::set_enabled(true);
    group.finish();

    let ratio = disabled.median / enabled.median;
    println!(
        "median: enabled {} vs disabled {}  (disabled/enabled = {:.4})",
        fmt_time(enabled.median),
        fmt_time(disabled.median),
        ratio
    );

    // ---- Phase 2: windowed-histogram + flight-recorder record path ----
    // Per iteration: one LCG step (the "work"), then the per-job record
    // sequence from `ServeEngine::execute_traced` — a windowed-histogram
    // sample gated on `enabled()` plus a flight event (internally gated).
    let iters = (2_000_000 / args.quick_divisor).max(100_000);
    println!("\n=== Introspection record path ({iters} records/sample) ===\n");
    let window = telemetry::WindowedHistogram::last_60s();
    let mut record_group = BenchGroup::new("record_path");
    record_group
        .sample_size(20)
        .throughput_elements(iters as u64);
    let lcg = |v: u64| {
        v.wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407)
    };
    let baseline = record_group.bench_function("record_baseline", || {
        let mut v = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..iters {
            v = lcg(v);
            std::hint::black_box(v >> 33);
        }
        v
    });
    let mut run_record = |id: &str, enabled: bool| {
        telemetry::set_enabled(enabled);
        let stats = record_group.bench_function(id, || {
            let mut v = 0x2545_f491_4f6c_dd1du64;
            for i in 0..iters {
                v = lcg(v);
                let sample = std::hint::black_box(v >> 33);
                if telemetry::enabled() {
                    window.record_at(i as u64 * 1_000, sample);
                }
                telemetry::flight::record(telemetry::FlightKind::JobFinished, i as u64, sample, "");
            }
            v
        });
        telemetry::flight::global().clear();
        stats
    };
    let record_disarmed = run_record("record_disarmed", false);
    let record_armed = run_record("record_armed", true);
    telemetry::set_enabled(true);
    record_group.finish();

    // The per-iteration work is ~1 ns, so the median is dominated by
    // scheduler jitter; min-of-samples is the noise-robust estimator for
    // a loop this tight and is what the 1.05× gate runs against.
    let record_disarmed_over_baseline = record_disarmed.min / baseline.min;
    let record_armed_over_baseline = record_armed.min / baseline.min;
    println!(
        "record path (min): baseline {} vs disarmed {} vs armed {}  \
         (disarmed/baseline = {record_disarmed_over_baseline:.4}, \
         armed/baseline = {record_armed_over_baseline:.4}, \
         armed ~{:.0} ns/record)",
        fmt_time(baseline.min),
        fmt_time(record_disarmed.min),
        fmt_time(record_armed.min),
        (record_armed.min - baseline.min) / iters as f64 * 1e9,
    );
    assert!(
        record_disarmed_over_baseline <= 1.05,
        "disarmed record path must cost <= 1.05x the bare loop, got {record_disarmed_over_baseline:.4}"
    );

    let json = format!(
        "{{\n  \"problem\": {{\"n\": {}, \"grid\": {}, \"m\": {}, \"trajectory\": \"radial\"}},\n  \
         \"enabled_median_seconds\": {:.6e},\n  \"enabled_min_seconds\": {:.6e},\n  \
         \"disabled_median_seconds\": {:.6e},\n  \"disabled_min_seconds\": {:.6e},\n  \
         \"disabled_over_enabled\": {:.4},\n  \
         \"record_path\": {{\n    \"iters\": {iters},\n    \
         \"baseline_min_seconds\": {:.6e},\n    \
         \"disarmed_min_seconds\": {:.6e},\n    \
         \"armed_min_seconds\": {:.6e},\n    \
         \"disarmed_over_baseline\": {record_disarmed_over_baseline:.4},\n    \
         \"armed_over_baseline\": {record_armed_over_baseline:.4},\n    \
         \"gate_disarmed_over_baseline_max\": 1.05\n  }}\n}}\n",
        img.n,
        g,
        img.m,
        enabled.median,
        enabled.min,
        disabled.median,
        disabled.min,
        ratio,
        baseline.min,
        record_disarmed.min,
        record_armed.min,
    );
    let path = "BENCH_telemetry_overhead.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
