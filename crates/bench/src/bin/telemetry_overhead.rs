//! Disabled-telemetry overhead check.
//!
//! The telemetry kill switch's contract is that a disabled run costs one
//! predicted branch per instrumentation site. This bench times the same
//! slice-and-dice gridding problem with telemetry enabled and disabled
//! (via `jigsaw_telemetry::set_enabled`) and records the ratio in
//! `BENCH_telemetry_overhead.json` — the disabled run must stay within a
//! few percent of the enabled one, and both within noise of the pre-
//! telemetry baseline.
//!
//! Run with `cargo run --release -p jigsaw-bench --bin telemetry_overhead`
//! (append `--quick`, or set `JIGSAW_BENCH_SAMPLES`, to shrink the run).

use jigsaw_bench::harness::{fmt_time, BenchGroup};
use jigsaw_bench::{EvalImage, HarnessArgs, TrajKind};
use jigsaw_core::gridding::{Gridder, SliceDiceGridder};
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_num::C64;
use jigsaw_telemetry as telemetry;

fn main() {
    let args = HarnessArgs::parse();
    let mut img = EvalImage {
        name: "radial256",
        n: 256,
        m: 131_072,
        traj: TrajKind::Radial,
    };
    if args.quick_divisor > 1 {
        println!("[quick mode: M divided by {}]", args.quick_divisor);
        img.m /= args.quick_divisor;
    }

    let g = img.grid();
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(img.n)).unwrap();
    let coords_cycles = img.trajectory();
    let values = img.kspace(&coords_cycles);
    let mapped = plan.map_coords(&coords_cycles);
    let params = plan.grid_params();
    let lut = plan.lut();
    let engine = SliceDiceGridder::default();

    println!(
        "=== Telemetry overhead (slice-dice gridding, M = {}) ===\n",
        img.m
    );
    let mut group = BenchGroup::new("telemetry_overhead");
    group
        .sample_size(10)
        .throughput_elements(coords_cycles.len() as u64);

    let mut run = |id: &str, enabled: bool| {
        telemetry::set_enabled(enabled);
        let stats = group.bench_function(id, || {
            let mut out = vec![C64::zeroed(); g * g];
            engine.grid(params, lut, &mapped, &values, &mut out);
            out
        });
        // Don't let event buffers grow across configs.
        telemetry::drain_events();
        telemetry::reset();
        stats
    };
    let enabled = run("gridding_telemetry_on", true);
    let disabled = run("gridding_telemetry_off", false);
    telemetry::set_enabled(true);
    group.finish();

    let ratio = disabled.median / enabled.median;
    println!(
        "median: enabled {} vs disabled {}  (disabled/enabled = {:.4})",
        fmt_time(enabled.median),
        fmt_time(disabled.median),
        ratio
    );

    let json = format!(
        "{{\n  \"problem\": {{\"n\": {}, \"grid\": {}, \"m\": {}, \"trajectory\": \"radial\"}},\n  \
         \"enabled_median_seconds\": {:.6e},\n  \"enabled_min_seconds\": {:.6e},\n  \
         \"disabled_median_seconds\": {:.6e},\n  \"disabled_min_seconds\": {:.6e},\n  \
         \"disabled_over_enabled\": {:.4}\n}}\n",
        img.n,
        g,
        img.m,
        enabled.median,
        enabled.min,
        disabled.median,
        disabled.min,
        ratio
    );
    let path = "BENCH_telemetry_overhead.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
