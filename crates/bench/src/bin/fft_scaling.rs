//! Uniform-FFT scaling: serial strided walk vs cache-blocked serial vs
//! pooled panel execution at 1/2/8 workers.
//!
//! The paper's point of attack is gridding (99.6 % of NuFFT time on CPU,
//! §I), but once gridding is parallel the *serial* uniform FFT becomes the
//! Amdahl wall of a single-coil reconstruction. This bench quantifies the
//! two layers of the fix and records them in `BENCH_fft_scaling.json`:
//!
//! 1. `serial_naive` — the pre-blocking baseline: per-line strided
//!    gather/scatter with one 1-D FFT call per line (what
//!    `FftNd::process` did before cache-blocked panels).
//! 2. `serial_blocked` — today's `FftNd::process`: gather `PANEL_LINES`
//!    lines at a time into contiguous scratch, batched 1-D FFTs, scatter.
//! 3. `pooled_{1,2,8}` — `FftNd::process_with` on a `WorkerPool` of that
//!    size: the same deterministic panel partition fanned out over
//!    persistent workers.
//!
//! Sizes cover every 1-D kernel class: 256² (radix-4), 320² (Bluestein,
//! even), 255² (Bluestein, odd). Every variant's output is asserted
//! **bitwise identical** to `serial_blocked` before timing is trusted.
//!
//! Run with `cargo run --release -p jigsaw-bench --bin fft_scaling`
//! (append `--quick` for smoke runs).

use jigsaw_bench::harness::{fmt_time, BenchGroup, Stats};
use jigsaw_bench::HarnessArgs;
use jigsaw_core::engine::WorkerPool;
use jigsaw_fft::{Direction, Fft1d, FftNd};
use jigsaw_num::C64;

/// The pre-PR serial N-D pass: per-line strided gather, one 1-D FFT call
/// per line, strided scatter. Kept here (not in the library) as the
/// honest baseline the blocked/pooled paths are measured against.
fn naive_nd_process(dims: &[usize], plans: &[Fft1d<f64>], data: &mut [C64], dir: Direction) {
    let rank = dims.len();
    // Same axis order as `FftNd::process` (0 → rank−1) so the per-line
    // transforms see identical inputs and the comparison is bitwise.
    for axis in 0..rank {
        let d = dims[axis];
        let stride: usize = dims[axis + 1..].iter().product();
        let outer: usize = dims[..axis].iter().product();
        let plan = &plans[axis];
        let mut line = vec![C64::zeroed(); d];
        for o in 0..outer {
            let base = o * d * stride;
            for i in 0..stride {
                for (k, slot) in line.iter_mut().enumerate() {
                    *slot = data[base + i + k * stride];
                }
                plan.process(&mut line, dir);
                for (k, &v) in line.iter().enumerate() {
                    data[base + i + k * stride] = v;
                }
            }
        }
    }
}

fn random_grid(len: usize, seed: u64) -> Vec<C64> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s as f64 / u64::MAX as f64 - 0.5
    };
    (0..len).map(|_| C64::new(next(), next())).collect()
}

fn assert_bitwise(a: &[C64], b: &[C64], ctx: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: output diverges from serial_blocked at {i}"
        );
    }
}

struct JsonRecord {
    size: usize,
    id: String,
    median_seconds: f64,
    min_seconds: f64,
}

struct SizeSummary {
    size: usize,
    kernel: &'static str,
    naive_median: f64,
    blocked_median: f64,
    pooled8_median: f64,
}

fn bench_size(
    size: usize,
    kernel: &'static str,
    pools: &[(usize, WorkerPool)],
    samples: usize,
    records: &mut Vec<JsonRecord>,
) -> SizeSummary {
    let dims = [size, size];
    let plan = FftNd::<f64>::new(&dims);
    let naive_plans: Vec<Fft1d<f64>> = dims.iter().map(|&d| Fft1d::new(d)).collect();
    let input = random_grid(plan.len(), 0x5EED ^ size as u64);

    // Reference output (and bitwise gate for every variant below).
    let mut reference = input.clone();
    plan.process(&mut reference, Direction::Forward);

    let mut group = BenchGroup::new(&format!("fft_scaling {size}x{size} ({kernel})"));
    group
        .sample_size(samples)
        .throughput_elements(plan.len() as u64);

    let push = |records: &mut Vec<JsonRecord>, id: &str, s: Stats| {
        records.push(JsonRecord {
            size,
            id: id.to_string(),
            median_seconds: s.median,
            min_seconds: s.min,
        });
    };

    let mut buf = input.clone();
    let naive = group.bench_function("serial_naive", || {
        buf.copy_from_slice(&input);
        naive_nd_process(&dims, &naive_plans, &mut buf, Direction::Forward);
    });
    assert_bitwise(&buf, &reference, "serial_naive");
    push(records, "serial_naive", naive);

    let blocked = group.bench_function("serial_blocked", || {
        buf.copy_from_slice(&input);
        plan.process(&mut buf, Direction::Forward);
    });
    assert_bitwise(&buf, &reference, "serial_blocked");
    push(records, "serial_blocked", blocked);

    let mut pooled8_median = f64::INFINITY;
    for (workers, pool) in pools {
        let id = format!("pooled_{workers}");
        let stats = group.bench_function(&id, || {
            buf.copy_from_slice(&input);
            plan.process_with(pool, &mut buf, Direction::Forward);
        });
        assert_bitwise(&buf, &reference, &id);
        push(records, &id, stats);
        if *workers == 8 {
            pooled8_median = stats.median;
        }
    }
    group.finish();

    SizeSummary {
        size,
        kernel,
        naive_median: naive.median,
        blocked_median: blocked.median,
        pooled8_median,
    }
}

fn write_json(
    path: &str,
    records: &[JsonRecord],
    summaries: &[SizeSummary],
) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"threads\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    s.push_str("  \"bitwise_identical\": true,\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"size\": {}, \"id\": \"{}\", \"median_seconds\": {:.6e}, \"min_seconds\": {:.6e}}}{}\n",
            r.size,
            r.id,
            r.median_seconds,
            r.min_seconds,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"speedups\": [\n");
    for (i, m) in summaries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"size\": {}, \"kernel\": \"{}\", \"blocked_over_naive\": {:.4}, \"pooled8_over_naive\": {:.4}, \"pooled8_over_blocked\": {:.4}}}{}\n",
            m.size,
            m.kernel,
            m.naive_median / m.blocked_median,
            m.naive_median / m.pooled8_median,
            m.blocked_median / m.pooled8_median,
            if i + 1 == summaries.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let args = HarnessArgs::parse();
    let samples = if args.quick_divisor > 1 { 3 } else { 10 };
    if args.quick_divisor > 1 {
        println!("[quick mode: {samples} samples per point]");
    }

    println!("=== Uniform-FFT scaling: serial vs blocked vs pooled ===\n");
    let pools: Vec<(usize, WorkerPool)> = [1usize, 2, 8]
        .into_iter()
        .map(|w| (w, WorkerPool::new(w)))
        .collect();

    let mut records = Vec::new();
    let mut summaries = Vec::new();
    for (size, kernel) in [
        (256usize, "radix"),
        (320, "bluestein_even"),
        (255, "bluestein_odd"),
    ] {
        summaries.push(bench_size(size, kernel, &pools, samples, &mut records));
    }

    for m in &summaries {
        println!(
            "{s}x{s} ({k}): naive {n} | blocked {b} ({bx:.2}x) | pooled-8 {p} ({px:.2}x vs naive, {pb:.2}x vs blocked)",
            s = m.size,
            k = m.kernel,
            n = fmt_time(m.naive_median),
            b = fmt_time(m.blocked_median),
            bx = m.naive_median / m.blocked_median,
            p = fmt_time(m.pooled8_median),
            px = m.naive_median / m.pooled8_median,
            pb = m.blocked_median / m.pooled8_median,
        );
    }

    let path = "BENCH_fft_scaling.json";
    match write_json(path, &records, &summaries) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
