//! Accuracy / cost sweep — the §II-B trade-off behind Beatty's rule.
//!
//! "While a smaller σ leads to faster FFT operations — by processing a
//! smaller grid — and lower memory requirements, a wider interpolation
//! kernel increases latency and causes the NuFFT to be even further
//! dominated by the interpolation operation."
//!
//! For a sweep of (σ, W, L) this harness prints the predicted aliasing
//! bound, the LUT quantization floor, the measured NuFFT-vs-NuDFT error,
//! the measured gridding/FFT split, and the gridding MAC count — showing
//! the crossover the paper describes.
//!
//! Run with `cargo run --release -p jigsaw-bench --bin sweep`.

use jigsaw_bench::{fmt_secs, Table};
use jigsaw_core::accuracy;
use jigsaw_core::gridding::SerialGridder;
use jigsaw_core::metrics::rel_l2;
use jigsaw_core::nudft::adjoint_nudft;
use jigsaw_core::traj;
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_num::C64;

fn main() {
    let n = 48usize; // small enough for the NuDFT oracle
    let m = 4000;
    let mut coords = traj::radial_2d(m / 96, 96, true);
    coords.truncate(m);
    traj::shuffle(&mut coords, 17);
    let mut s = 1u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s as f64 / u64::MAX as f64 - 0.5
    };
    let values: Vec<C64> = (0..coords.len())
        .map(|_| C64::new(next(), next()))
        .collect();
    let exact = adjoint_nudft(n, &coords, &values, None);

    println!("=== Beatty trade-off sweep (N = {n}, M = {m}) ===\n");
    let mut t = Table::new(&[
        "σ",
        "W",
        "L",
        "grid",
        "aliasing bound",
        "quant floor",
        "measured err",
        "gridding",
        "FFT",
        "MACs",
    ]);
    let sweep = [
        (2.0, 6, 32),
        (2.0, 6, 1024),
        (2.0, 4, 1024),
        (2.0, 2, 1024),
        (1.5, 7, 1024),
        (1.25, 8, 1024),
        (1.125, 8, 1024),
    ];
    for (sigma, width, l) in sweep {
        let mut cfg = NufftConfig::with_n(n);
        cfg.sigma = sigma;
        cfg.width = width;
        cfg.table_oversampling = l;
        let plan = match NufftPlan::<f64, 2>::new(cfg.clone()) {
            Ok(p) => p,
            Err(e) => {
                println!("σ={sigma} W={width}: {e}");
                continue;
            }
        };
        let out = plan.adjoint(&coords, &values, &SerialGridder).unwrap();
        let err = rel_l2(&out.image, &exact);
        t.row(vec![
            format!("{sigma}"),
            width.to_string(),
            l.to_string(),
            format!("{0}²", cfg.grid_size()),
            format!("{:.1e}", accuracy::aliasing_bound(&cfg)),
            format!("{:.1e}", accuracy::quantization_floor(&cfg)),
            format!("{err:.1e}"),
            fmt_secs(out.timings.interp_seconds),
            fmt_secs(out.timings.fft_seconds),
            out.grid_stats.kernel_accumulations.to_string(),
        ]);
    }
    t.print();
    println!("\nReading the table: shrinking σ shrinks the FFT grid but forces a");
    println!("wider W (more MACs, longer gridding) for the same accuracy — the");
    println!("paper's argument for why low-σ NuFFTs are *more* gridding-bound,");
    println!("and why accelerating gridding is the right lever.");
}
