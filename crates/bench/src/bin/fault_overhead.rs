//! Disarmed fault-injection overhead check.
//!
//! Every fault point compiles to one relaxed atomic load and a predicted
//! branch when disarmed — the production default. This bench pins that
//! contract two ways:
//!
//! 1. **Workload level**: the pooled slice-and-dice gridding problem from
//!    `pooled_vs_scoped` is timed with fault points disarmed (default)
//!    and with a plan armed at a site the workload never hits (the armed
//!    slow path taken on every evaluation, without ever firing). The
//!    armed/disarmed ratio bounds the cost of the kill-switch check from
//!    above; the disarmed median is directly comparable with the
//!    `slice_dice_parallel_pooled` row of `BENCH_pooled_vs_scoped.json`
//!    (the ≤2 % acceptance gate — both files are regenerated on the same
//!    machine).
//! 2. **Call level**: the raw per-call cost of a disarmed
//!    `should_fire`, amortized over ten million calls.
//!
//! Run with `cargo run --release -p jigsaw-bench --bin fault_overhead`
//! (append `--quick`, or set `JIGSAW_BENCH_SAMPLES`, to shrink the run).

use jigsaw_bench::harness::{fmt_time, BenchGroup};
use jigsaw_bench::{EvalImage, HarnessArgs, TrajKind};
use jigsaw_core::gridding::{Gridder, SliceDiceGridder};
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_num::C64;
use jigsaw_testkit::fault;
use std::hint::black_box;

fn main() {
    let args = HarnessArgs::parse();
    let mut img = EvalImage {
        name: "radial256",
        n: 256,
        m: 131_072,
        traj: TrajKind::Radial,
    };
    if args.quick_divisor > 1 {
        println!("[quick mode: M divided by {}]", args.quick_divisor);
        img.m /= args.quick_divisor;
    }

    let g = img.grid();
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(img.n)).unwrap();
    let coords = img.trajectory();
    let values = img.kspace(&coords);
    let mapped = plan.map_coords(&coords);
    let params = plan.grid_params();
    let lut = plan.lut();
    let engine = SliceDiceGridder::default();

    println!(
        "=== Fault-point overhead (pooled slice-dice gridding, M = {}) ===\n",
        img.m
    );
    let mut group = BenchGroup::new("fault_overhead");
    group
        .sample_size(10)
        .throughput_elements(coords.len() as u64);

    // Disarmed: the production default — one relaxed load + branch per
    // fault point.
    fault::disarm();
    let disarmed = group.bench_function("gridding_faults_disarmed", || {
        let mut out = vec![C64::zeroed(); g * g];
        engine.grid(params, lut, &mapped, &values, &mut out);
        out
    });

    // Armed at a site this workload never evaluates: every fault-point
    // hit takes the full armed path (state mutex + site filter) but
    // nothing fires — an upper bound on instrumentation cost.
    fault::arm(fault::FaultPlan::once_at("bench.nonexistent"));
    let armed_miss = group.bench_function("gridding_faults_armed_miss", || {
        let mut out = vec![C64::zeroed(); g * g];
        engine.grid(params, lut, &mapped, &values, &mut out);
        out
    });
    fault::disarm();
    group.finish();

    // Raw disarmed per-call cost.
    const CALLS: u64 = 10_000_000;
    let t0 = std::time::Instant::now();
    let mut hits = 0u64;
    for _ in 0..CALLS {
        if black_box(fault::should_fire(black_box("gridding.chunk"))) {
            hits += 1;
        }
    }
    let per_call_ns = t0.elapsed().as_secs_f64() * 1e9 / CALLS as f64;
    assert_eq!(hits, 0, "disarmed fault points must never fire");

    let ratio = armed_miss.median / disarmed.median;
    println!(
        "median: disarmed {} vs armed-miss {}  (armed/disarmed = {ratio:.4})",
        fmt_time(disarmed.median),
        fmt_time(armed_miss.median),
    );
    println!("disarmed should_fire: {per_call_ns:.2} ns/call over {CALLS} calls");

    let json = format!(
        "{{\n  \"problem\": {{\"n\": {}, \"grid\": {}, \"m\": {}, \"trajectory\": \"radial\"}},\n  \
         \"disarmed_median_seconds\": {:.6e},\n  \"disarmed_min_seconds\": {:.6e},\n  \
         \"armed_miss_median_seconds\": {:.6e},\n  \"armed_miss_min_seconds\": {:.6e},\n  \
         \"armed_over_disarmed\": {:.4},\n  \
         \"disarmed_should_fire_ns_per_call\": {:.3}\n}}\n",
        img.n,
        g,
        img.m,
        disarmed.median,
        disarmed.min,
        armed_miss.median,
        armed_miss.min,
        ratio,
        per_call_ns
    );
    let path = "BENCH_fault_overhead.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
