//! Table I — JIGSAW system parameters.
//!
//! Prints the supported parameter ranges and demonstrates that the
//! configuration validator accepts exactly those ranges (a sweep over
//! in-range and out-of-range values).
//!
//! Run with `cargo run -p jigsaw-bench --bin table1`.

use jigsaw_bench::Table;
use jigsaw_sim::JigsawConfig;

fn main() {
    println!("=== Table I: JIGSAW system parameters ===\n");
    let mut t = Table::new(&["Property", "Value"]);
    t.row(vec!["Target Grid Dimensions (N)".into(), "8–1024".into()]);
    t.row(vec!["Virtual Tile Dimensions (T)".into(), "8".into()]);
    t.row(vec![
        "Interpolation Window Dimensions (W)".into(),
        "1–8".into(),
    ]);
    t.row(vec!["Table Oversampling Factor (L)".into(), "1–64".into()]);
    t.row(vec!["Pipeline Bit Width".into(), "32-bit".into()]);
    t.row(vec![
        "Interpolation Weight Bit Width".into(),
        "16-bit".into(),
    ]);
    t.print();

    // Validation sweep.
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for grid_exp in 2..=11usize {
        let grid = 1 << grid_exp; // 4 .. 2048
        for width in 0..=9usize {
            for l_exp in 0..=7usize {
                let l = 1 << l_exp; // 1 .. 128
                let cfg = JigsawConfig {
                    grid,
                    width,
                    table_oversampling: l,
                    ..JigsawConfig::paper_default()
                };
                let in_range =
                    (8..=1024).contains(&grid) && (1..=8).contains(&width) && (1..=64).contains(&l);
                match (cfg.validate().is_ok(), in_range) {
                    (true, true) => accepted += 1,
                    (false, false) => rejected += 1,
                    (ok, _) => panic!(
                        "validator disagrees with Table I at N={grid} W={width} L={l}: ok={ok}"
                    ),
                }
            }
        }
    }
    println!("\nValidator sweep: {accepted} in-range configurations accepted,");
    println!("{rejected} out-of-range configurations rejected — Table I enforced exactly.");

    // Derived capacities.
    let cfg = JigsawConfig::paper_default();
    println!("\nDerived capacities at N = 1024, T = 8:");
    println!("  pipelines: {}", cfg.tile * cfg.tile);
    println!(
        "  accumulation SRAM: {} MiB (paper: ~8 MB)",
        cfg.total_accum_bits() / 8 / 1024 / 1024
    );
    println!(
        "  weight LUT entries at W=8, L=64: {} (256-word SRAM + zero edge)",
        JigsawConfig {
            width: 8,
            table_oversampling: 64,
            ..JigsawConfig::paper_default()
        }
        .lut_entries()
    );
}
