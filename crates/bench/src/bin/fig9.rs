//! Figure 9 — image quality: table oversampling and numeric precision.
//!
//! The paper reconstructs 2-D slices with a direct adjoint NuFFT and
//! compares (a) `L = 1024`, double precision against (b) `L = 32`,
//! 16-bit fixed-point JIGSAW hardware — visually indistinguishable, with
//! NRMSD 0.047 % for 32-bit *floating*-point and 0.012 % for the 32-bit
//! *fixed*-point pipeline ("1/4 the error while halving the ALU width").
//!
//! This harness reconstructs the Shepp-Logan phantom from golden-angle
//! radial k-space three ways — f64/L=1024 reference, f32/L=32 software,
//! and the JIGSAW fixed-point simulator (L=32, 16-bit weights) — prints
//! the NRMSDs, and writes PGM images for visual comparison.
//!
//! Run with `cargo run --release -p jigsaw-bench --bin fig9`.

use jigsaw_bench::*;
use jigsaw_core::gridding::{LerpGridder, SerialGridder};
use jigsaw_core::metrics::nrmsd_percent;
use jigsaw_core::phantom::Phantom2d;
use jigsaw_core::traj;
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_num::{C32, C64};
use jigsaw_sim::{Jigsaw2d, JigsawConfig};

fn main() {
    let n = 256usize;
    let phantom = Phantom2d::shepp_logan();
    // Fully-sampled golden-angle radial acquisition.
    let mut coords = traj::radial_2d(2 * n, 2 * n, true);
    traj::shuffle(&mut coords, 99);
    let values = phantom.kspace(n, &coords);
    // Radial density compensation (ramp |k|) so the direct adjoint
    // reconstruction is interpretable, as in the paper's Fig. 9 images.
    let weighted: Vec<C64> = coords
        .iter()
        .zip(&values)
        .map(|(c, v)| {
            let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
            v.scale(r.max(0.25 / (2.0 * n as f64)))
        })
        .collect();

    println!("=== Figure 9: direct NuFFT reconstructions ===");
    println!("N = {n}, radial spokes = {}, M = {}\n", 2 * n, coords.len());

    // (a) Reference: L = 1024, f64.
    let mut cfg_ref = NufftConfig::with_n(n);
    cfg_ref.table_oversampling = 1024;
    let plan_ref = NufftPlan::<f64, 2>::new(cfg_ref).unwrap();
    let reference = plan_ref
        .adjoint(&coords, &weighted, &SerialGridder)
        .unwrap()
        .image;

    // (b) L = 32, f32 software (the paper's "32-bit floating-point").
    let cfg32 = NufftConfig::with_n(n); // L = 32 default
    let plan32 = NufftPlan::<f32, 2>::new(cfg32.clone()).unwrap();
    let w32: Vec<C32> = weighted.iter().map(|v| C32::from_c64(*v)).collect();
    let img_f32 = plan32.adjoint(&coords, &w32, &SerialGridder).unwrap().image;
    let img_f32_64: Vec<C64> = img_f32.iter().map(|z| z.to_c64()).collect();

    // (c) L = 32, JIGSAW 16-bit fixed-point weights / 32-bit pipelines.
    let plan_host = NufftPlan::<f64, 2>::new(cfg32).unwrap();
    // (plan_host also serves the lerp-LUT reconstruction below.)
    let g = plan_host.grid_params().grid;
    let mapped = plan_host.map_coords(&coords);
    let mut hw = Jigsaw2d::new(JigsawConfig {
        grid: g,
        ..JigsawConfig::paper_default()
    })
    .unwrap();
    let (stream, scale) = hw.quantize_inputs(&mapped, &weighted).unwrap();
    let run = hw.run(&stream);
    let mut hwgrid = run.grid_c64(scale);
    let (img_fixed, _) = plan_host.finish_adjoint(&mut hwgrid).unwrap();

    // Same-L f64 reconstruction: isolates numeric-format error from the
    // (shared) L = 32 coordinate quantization.
    let plan64_l32 = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    let img_f64_l32 = plan64_l32
        .adjoint(&coords, &weighted, &SerialGridder)
        .unwrap()
        .image;

    // (d) L = 32 with linearly-interpolated LUT weights (software mode).
    let img_lerp = plan_host
        .adjoint(&coords, &weighted, &LerpGridder)
        .unwrap()
        .image;

    let nrmsd_f32 = nrmsd_percent(&img_f32_64, &reference);
    let nrmsd_fixed = nrmsd_percent(&img_fixed, &reference);
    let nrmsd_f32_samel = nrmsd_percent(&img_f32_64, &img_f64_l32);
    let nrmsd_fixed_samel = nrmsd_percent(&img_fixed, &img_f64_l32);

    let mut t = Table::new(&["Reconstruction", "NRMSD vs L=1024 f64", "paper"]);
    t.row(vec![
        "L=32, 32-bit float (f32)".into(),
        format!("{nrmsd_f32:.4} %"),
        "0.047 %".into(),
    ]);
    t.row(vec![
        "L=32, JIGSAW 32-bit fixed".into(),
        format!("{nrmsd_fixed:.4} %"),
        "0.012 %".into(),
    ]);
    t.row(vec![
        "L=32, f64 lerp-LUT (software)".into(),
        format!("{:.4} %", nrmsd_percent(&img_lerp, &reference)),
        "—".into(),
    ]);
    t.print();

    println!("\nNumeric-format error in isolation (vs the L=32 f64 reconstruction,");
    println!("removing the table-oversampling error the two formats share):\n");
    let mut t2 = Table::new(&["Format", "NRMSD vs L=32 f64", "ratio"]);
    t2.row(vec![
        "32-bit float (f32)".into(),
        format!("{nrmsd_f32_samel:.5} %"),
        "1.0".into(),
    ]);
    t2.row(vec![
        "JIGSAW 32-bit fixed".into(),
        format!("{nrmsd_fixed_samel:.5} %"),
        format!("{:.2}", nrmsd_fixed_samel / nrmsd_f32_samel.max(1e-30)),
    ]);
    t2.print();

    println!(
        "\nSaturations in the fixed-point run: {}",
        run.report.ops.saturations
    );
    println!("JIGSAW cycles: {} (= M + 12)", run.report.compute_cycles);

    for (path, img) in [
        ("out/fig9_reference_L1024_f64.pgm", &reference),
        ("out/fig9_L32_f32.pgm", &img_f32_64),
        ("out/fig9_L32_fixed16.pgm", &img_fixed),
    ] {
        match write_pgm(path, img, n) {
            Ok(p) => println!("wrote {p}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
    println!("\nThe three PGM images should be visually indistinguishable, matching");
    println!("the paper's Fig. 9 despite the 32× lower table oversampling and the");
    println!("16-bit weight / 32-bit fixed-point datapath.");
}
