//! Table II — JIGSAW synthesis results (power & area), regenerated from
//! the calibrated model.
//!
//! Also prints the model's *predictions* for configurations the paper did
//! not synthesize (smaller grids), where the SRAM term shrinks linearly.
//!
//! Run with `cargo run -p jigsaw-bench --bin table2`.

use jigsaw_bench::Table;
use jigsaw_sim::power::{PowerModel, Variant};
use jigsaw_sim::JigsawConfig;

fn main() {
    println!("=== Table II: JIGSAW synthesis results in 16 nm (modeled) ===\n");
    let model = PowerModel::calibrated();

    let paper = [
        (216.86, 12.20),
        (94.22, 0.42),
        (104.36, 12.42),
        (63.62, 0.64),
    ];
    let mut t = Table::new(&[
        "JIGSAW (1.0 GHz)",
        "Power (model)",
        "Power (paper)",
        "Area (model)",
        "Area (paper)",
    ]);
    for ((label, p_mw, a_mm2), (pp, pa)) in model.table_ii().into_iter().zip(paper) {
        t.row(vec![
            label.into(),
            format!("{p_mw:.2} mW"),
            format!("{pp:.2} mW"),
            format!("{a_mm2:.2} mm²"),
            format!("{pa:.2} mm²"),
        ]);
    }
    t.print();
    println!("\nModel constants are FITTED to the paper's four synthesis rows");
    println!("(SRAM-bit area, SRAM leakage, per-RMW energy, logic base power,");
    println!("per-MAC energy); see EXPERIMENTS.md. Predictions below are model");
    println!("extrapolations:\n");

    let mut pred = Table::new(&["Target grid", "2D power", "2D area", "SRAM share of area"]);
    for n in [128usize, 256, 512, 1024] {
        let cfg = JigsawConfig {
            grid: n,
            ..JigsawConfig::paper_default()
        };
        let act = (cfg.width * cfg.width) as f64;
        let p = model.power_mw(&cfg, Variant::TwoD, act, true);
        let a = model.area_mm2(&cfg, Variant::TwoD, true);
        let a_logic = model.area_mm2(&cfg, Variant::TwoD, false);
        pred.row(vec![
            format!("{n}²"),
            format!("{p:.2} mW"),
            format!("{a:.2} mm²"),
            format!("{:.1}%", 100.0 * (a - a_logic) / a),
        ]);
    }
    pred.print();
}
