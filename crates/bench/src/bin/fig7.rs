//! Figure 7 — end-to-end NuFFT speedups, normalized to MIRT.
//!
//! The full adjoint NuFFT (gridding + FFT + de-apodization) for each of
//! the five evaluation images, run with the serial baseline engine vs the
//! Slice-and-Dice engine, plus a JIGSAW-accelerated pipeline (simulator
//! gridding + host FFT). The paper's headline: on the CPU gridding is
//! ~99.6 % of total time; Slice-and-Dice GPU equalizes gridding and FFT;
//! on JIGSAW gridding drops to ~25 % — "the FFT being the bottleneck for
//! the first time".
//!
//! Run with `cargo run --release -p jigsaw-bench --bin fig7`.

use jigsaw_bench::*;
use jigsaw_core::gridding::{SerialGridder, SliceDiceGridder, SliceDiceMode};
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_num::C64;
use jigsaw_sim::device::{JigsawPlatform, Platform};
use jigsaw_sim::{Jigsaw2d, JigsawConfig};
use std::time::Instant;

fn main() {
    let args = HarnessArgs::parse();
    let mut images = eval_images();
    if args.quick_divisor > 1 {
        println!("[quick mode: M divided by {}]", args.quick_divisor);
        scale_images(&mut images, args.quick_divisor);
    }

    println!("=== Figure 7: end-to-end NuFFT speedups ===\n");
    let mut measured = Table::new(&[
        "Image",
        "engine",
        "gridding",
        "FFT",
        "apod",
        "total",
        "gridding %",
        "speedup vs serial",
    ]);

    for img in &images {
        let cfg = NufftConfig::with_n(img.n);
        let plan = NufftPlan::<f64, 2>::new(cfg).unwrap();
        let coords = img.trajectory();
        let values = img.kspace(&coords);

        let serial = plan.adjoint(&coords, &values, &SerialGridder).unwrap();
        let sd = plan
            .adjoint(
                &coords,
                &values,
                &SliceDiceGridder::new(SliceDiceMode::ColumnParallel),
            )
            .unwrap();

        // JIGSAW pipeline: simulator gridding + measured host FFT/apod.
        let g = img.grid();
        let mapped = plan.map_coords(&coords);
        let mut hw = Jigsaw2d::new(JigsawConfig {
            grid: g,
            ..JigsawConfig::paper_default()
        })
        .unwrap();
        let (stream, scale) = hw.quantize_inputs(&mapped, &values).unwrap();
        let sim = hw.run(&stream);
        let mut hwgrid: Vec<C64> = sim.grid_c64(scale);
        let t_host = Instant::now();
        let (_image, host_timings) = plan.finish_adjoint(&mut hwgrid).unwrap();
        let _ = t_host;
        let t_jig_grid = sim.report.total_seconds(); // includes readout
        let t_jig_total = t_jig_grid + host_timings.fft_seconds + host_timings.apod_seconds;

        let t_serial = serial.timings.total();
        for (label, tg, tf, ta, total) in [
            (
                "serial",
                serial.timings.interp_seconds,
                serial.timings.fft_seconds,
                serial.timings.apod_seconds,
                t_serial,
            ),
            (
                "slice-dice",
                sd.timings.interp_seconds,
                sd.timings.fft_seconds,
                sd.timings.apod_seconds,
                sd.timings.total(),
            ),
            (
                "JIGSAW sim + host FFT",
                t_jig_grid,
                host_timings.fft_seconds,
                host_timings.apod_seconds,
                t_jig_total,
            ),
        ] {
            measured.row(vec![
                img.name.into(),
                label.into(),
                fmt_secs(tg),
                fmt_secs(tf),
                fmt_secs(ta),
                fmt_secs(total),
                format!("{:.1}%", 100.0 * tg / total),
                fmt_speedup(t_serial / total),
            ]);
        }
    }
    measured.print();

    println!("\nModeled end-to-end speedups on the paper's testbed:\n");
    let mirt = Platform::mirt_cpu();
    let imp = Platform::impatient_gpu();
    let sd = Platform::slice_dice_gpu();
    let mut model = Table::new(&[
        "Image",
        "Impatient vs MIRT",
        "S&D GPU vs MIRT",
        "JIGSAW vs MIRT",
        "S&D vs Impatient",
    ]);
    for img in &images {
        let pts = img.grid() * img.grid();
        let jig = JigsawPlatform::new(JigsawConfig::paper_default());
        let t_mirt = mirt.nufft_seconds(img.m, 6, pts);
        let t_imp = imp.nufft_seconds(img.m, 6, pts);
        let t_sd = sd.nufft_seconds(img.m, 6, pts);
        let t_jig = jig.nufft_seconds(img.m, pts);
        model.row(vec![
            img.name.into(),
            fmt_speedup(t_mirt / t_imp),
            fmt_speedup(t_mirt / t_sd),
            fmt_speedup(t_mirt / t_jig),
            fmt_speedup(t_imp / t_sd),
        ]);
    }
    model.print();
    println!("\nPaper reference (averages): S&D GPU ≈ 118× MIRT and ≈ 8× Impatient;");
    println!("JIGSAW ≈ 258× MIRT; gridding ≈ 25% of JIGSAW end-to-end time (FFT-bound).");
}
