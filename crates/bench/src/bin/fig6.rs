//! Figure 6 — gridding speedups, normalized to MIRT.
//!
//! The paper reports, for five images, the gridding-only speedup of
//! Impatient (GPU), Slice-and-Dice (GPU), and JIGSAW (ASIC) over the MIRT
//! CPU baseline — averages ≈ 15×, ≈ 250×, and ≈ 1500× respectively.
//!
//! This harness regenerates the figure on our substrates:
//!
//! 1. **Measured** wall-clock of the Rust engines (serial baseline,
//!    binned, Slice-and-Dice) plus the JIGSAW simulator's cycle-law
//!    runtime — demonstrating the algorithmic ordering and the op-count
//!    model behind it.
//! 2. **Modeled** speedups from the calibrated device operating points
//!    (the paper's testbed we don't have), printed next to the paper's
//!    reference values.
//!
//! Run with `cargo run --release -p jigsaw-bench --bin fig6` (append
//! `--quick` to shrink M).

use jigsaw_bench::*;
use jigsaw_core::config::GridParams;
use jigsaw_core::gridding::{
    BinnedGridder, Gridder, SerialGridder, SliceDiceGridder, SliceDiceMode,
};
use jigsaw_core::kernel::KernelKind;
use jigsaw_core::lut::KernelLut;
use jigsaw_num::C64;
use jigsaw_sim::device::{JigsawPlatform, Platform};
use jigsaw_sim::{Jigsaw2d, JigsawConfig};

fn main() {
    let args = HarnessArgs::parse();
    let mut images = eval_images();
    if args.quick_divisor > 1 {
        println!("[quick mode: M divided by {}]", args.quick_divisor);
        scale_images(&mut images, args.quick_divisor);
    }

    println!("=== Figure 6: gridding speedups (normalized to the serial baseline) ===\n");
    println!(
        "Measured on this machine ({} hardware threads):\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut measured = Table::new(&[
        "Image",
        "N",
        "M",
        "serial (MIRT-style)",
        "binned (Impatient-style)",
        "slice-dice",
        "S&D speedup",
        "JIGSAW sim",
        "JIGSAW speedup",
    ]);
    let mut opcounts = Table::new(&[
        "Image",
        "engine",
        "presort",
        "processed/M",
        "boundary checks",
        "kernel MACs",
    ]);

    for img in &images {
        let g = img.grid();
        let params = GridParams {
            grid: g,
            width: 6,
            table_oversampling: 32,
            tile: 8,
            kernel: KernelKind::Auto.resolve(6, 2.0),
        };
        let lut = KernelLut::from_params(&params);
        let coords_cycles = img.trajectory();
        let values = img.kspace(&coords_cycles);
        // Map cycles → oversampled grid units.
        let coords: Vec<[f64; 2]> = coords_cycles
            .iter()
            .map(|c| {
                [
                    c[0].rem_euclid(1.0) * g as f64,
                    c[1].rem_euclid(1.0) * g as f64,
                ]
            })
            .collect();

        let run = |gr: &dyn Gridder<f64, 2>| {
            let mut out = vec![C64::zeroed(); g * g];
            gr.grid(&params, &lut, &coords, &values, &mut out)
        };
        let s_serial = run(&SerialGridder);
        let s_binned = run(&BinnedGridder::default());
        let s_sd = run(&SliceDiceGridder::new(SliceDiceMode::ColumnParallel));

        // JIGSAW functional sim (timing from the cycle law).
        let jig_cfg = JigsawConfig {
            grid: g.min(1024),
            ..JigsawConfig::paper_default()
        };
        let mut hw = Jigsaw2d::new(jig_cfg).unwrap();
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let sim = hw.run(&stream);
        let t_jig = sim.report.gridding_seconds();

        let t0 = s_serial.total_seconds();
        measured.row(vec![
            img.name.into(),
            format!("{0}x{0}", img.n),
            img.m.to_string(),
            fmt_secs(t0),
            fmt_secs(s_binned.total_seconds()),
            fmt_secs(s_sd.total_seconds()),
            fmt_speedup(t0 / s_sd.total_seconds()),
            fmt_secs(t_jig),
            fmt_speedup(t0 / t_jig),
        ]);

        for (label, st) in [
            ("serial", &s_serial),
            ("binned", &s_binned),
            ("slice-dice", &s_sd),
        ] {
            opcounts.row(vec![
                img.name.into(),
                label.into(),
                fmt_secs(st.presort_seconds),
                format!("{:.2}", st.duplication_factor()),
                st.boundary_checks.to_string(),
                st.kernel_accumulations.to_string(),
            ]);
        }
    }
    measured.print();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 2 {
        println!("\nNOTE: this host has {threads} hardware thread(s). Output-driven engines");
        println!("(binned, slice-and-dice) trade extra boundary checks for parallelism,");
        println!("so on a serial host the input-driven baseline wins wall-clock — exactly");
        println!("the paper's premise. The algorithmic advantage shows in the op-count");
        println!("table below and in the simulated/modeled parallel devices.");
    }

    println!("\nOperation counts (§III: binning duplicates straddling samples and adds a");
    println!("presort pass; Slice-and-Dice does exactly M·T² checks with neither):\n");
    opcounts.print();

    println!("\nModeled speedups on the paper's testbed (calibrated operating points),");
    println!("with the paper's reported averages for reference:\n");
    let mirt = Platform::mirt_cpu();
    let imp = Platform::impatient_gpu();
    let sd = Platform::slice_dice_gpu();
    let mut model = Table::new(&[
        "Image",
        "Impatient vs MIRT",
        "S&D GPU vs MIRT",
        "JIGSAW vs MIRT",
        "S&D vs Impatient",
        "JIGSAW vs S&D GPU",
    ]);
    for img in &images {
        let jig = JigsawPlatform::new(JigsawConfig::paper_default());
        let t_mirt = mirt.gridding_seconds(img.m, 6);
        let t_imp = imp.gridding_seconds(img.m, 6);
        let t_sd = sd.gridding_seconds(img.m, 6);
        let t_jig = jig.gridding_seconds(img.m);
        model.row(vec![
            img.name.into(),
            fmt_speedup(t_mirt / t_imp),
            fmt_speedup(t_mirt / t_sd),
            fmt_speedup(t_mirt / t_jig),
            fmt_speedup(t_imp / t_sd),
            fmt_speedup(t_sd / t_jig),
        ]);
    }
    model.print();
    println!("\nPaper reference (averages over its five images):");
    println!("  Slice-and-Dice GPU vs MIRT  ≈ 250×   (§VI-A)");
    println!("  Slice-and-Dice GPU vs Impatient ≈ 16×");
    println!("  JIGSAW vs MIRT ≈ 1500×; vs Impatient ≈ 95×; vs S&D GPU ≈ 6×");
}
