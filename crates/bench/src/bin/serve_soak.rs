//! Serving-daemon soak bench: the plan cache under thousands of
//! mixed-size jobs, the warm-vs-cold latency contract at radial 256²,
//! the disarmed fault-point overhead of the serve job path, bounded
//! admission under deliberate overload, and the cost of the
//! cooperative-cancellation checkpoints in the gridding hot loop.
//!
//! Six measurements, one JSON (`BENCH_serve_soak.json`):
//!
//! 1. **Soak** — thousands of jobs drawn from a pool of six
//!    trajectories across three image sizes, multiplexed onto one
//!    [`ServeEngine`] whose cache holds the whole pool. Reports p50/p99
//!    job latency and the cache hit rate (gate: ≥ 95 % on a
//!    repeated-trajectory workload, with the `serve.cache.hit`
//!    telemetry counter nonzero). Halfway through, a stats snapshot is
//!    scraped and round-tripped through the `StatsReply` wire encoding;
//!    the wire-reported cache hit rate and windowed p50 latency must
//!    agree with the harness's own independent measurements (relative
//!    gates: hit rate within 1 %, p50 within 2× — the window's log2
//!    buckets bound the quantile estimate's resolution).
//! 2. **Warm vs cold** — the acceptance contract: at radial 256²
//!    (M = 131 072) a warm-cache job must cost ≤ 0.75× a cold job that
//!    pays `plan_trajectory` first. Cold samples build a fresh engine
//!    per iteration; warm samples reuse one primed engine.
//! 3. **Fault overhead** — the soak loop re-timed with a fault plan
//!    armed at a site the serve path never hits, bounding the cost of
//!    the `serve.job`/`serve.cache` instrumentation from above.
//! 4. **Overload** — a full daemon (over a socketpair) with a tiny
//!    admission bound, hit with a 4×-oversubscribed pipelined burst.
//!    Gates: some jobs are shed (`serve.shed.depth` nonzero), every
//!    submit is answered exactly once, no accepted job's result
//!    arrives after its budget + 500 ms epsilon, and every refusal
//!    carries a sane `retry_after_ms` hint.
//! 5. **Cancel-checkpoint overhead** — one gridding-heavy adjoint
//!    timed bare (no cancel scope: the checkpoints take the
//!    one-atomic-load fast path) vs inside an armed-but-never-fired
//!    [`cancel::CancelScope`]. Gate (enforced in CI from the JSON):
//!    scoped/bare ≤ 1.05.
//! 6. **Restart** — the durable-lifecycle contract, at two levels.
//!    Engine level: a primed engine snapshots its plan cache; a fresh
//!    engine restored from that snapshot must serve the same radial
//!    256² job as a cache hit, with post-restart warm/cold latency
//!    ≤ 0.75 (gate enforced in CI from the JSON). Wire level: a full
//!    daemon lifetime is warmed and drained (`Drain` frame → snapshot
//!    on exit), then a second lifetime boots from the snapshot — every
//!    job in its first burst must report `cache_hit`.
//!
//! Run with `cargo run --release -p jigsaw-bench --bin serve_soak`
//! (append `--quick`, or set `JIGSAW_BENCH_SAMPLES`, to shrink the run).

use jigsaw_bench::harness::{fmt_time, BenchGroup};
use jigsaw_bench::{EvalImage, HarnessArgs, TrajKind};
use jigsaw_core::budget::RunBudget;
use jigsaw_core::gridding::SliceDiceGridder;
use jigsaw_core::serve::{
    protocol, serve_stream, Frame, JobRequest, Priority, ServeEngine, ServeOptions, StatsSnapshot,
};
use jigsaw_core::traj;
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_num::C64;
use jigsaw_telemetry as telemetry;
use jigsaw_testkit::{cancel, fault, Rng};
use std::time::Instant;

/// One reusable soak problem: a trajectory, its sample values, and the
/// image size it reconstructs to.
struct SoakProblem {
    n: u32,
    coords: Vec<[f64; 2]>,
    values: Vec<C64>,
}

impl SoakProblem {
    /// Golden-angle radial problem with contents varied by `seed` (the
    /// shuffle order is part of the trajectory hash, so distinct seeds
    /// give distinct cache keys even at equal shape).
    fn radial(n: u32, spokes: usize, seed: u64) -> Self {
        let mut coords = traj::radial_2d(spokes, 2 * n as usize, true);
        traj::shuffle(&mut coords, seed);
        let values = coords
            .iter()
            .enumerate()
            .map(|(i, c)| C64::new(c[0].cos() + i as f64 * 1e-4, c[1].sin()))
            .collect();
        Self { n, coords, values }
    }

    fn request(&self, tag: u64) -> JobRequest {
        JobRequest {
            tag,
            priority: Priority::Normal,
            n: self.n,
            budget_ms: 0,
            coords: self.coords.clone(),
            values: self.values.clone(),
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One soak run: sorted per-job latencies in seconds plus the number of
/// jobs whose result reported `cache_hit` — the harness's *independent*
/// hit count, cross-checked against the wire-scraped cache counters.
struct SoakRun {
    latencies: Vec<f64>,
    cache_hits: usize,
}

/// Run `jobs` soak iterations over `pool` on `engine`.
fn soak(engine: &ServeEngine, pool: &[SoakProblem], jobs: usize, seed: u64) -> SoakRun {
    let budget = RunBudget::unlimited();
    let mut rng = Rng::new(seed);
    let mut latencies = Vec::with_capacity(jobs);
    let mut cache_hits = 0;
    for tag in 0..jobs {
        let p = &pool[rng.usize_range(0, pool.len())];
        let req = p.request(tag as u64);
        let t0 = Instant::now();
        let res = engine
            .execute(&req, &budget)
            .unwrap_or_else(|e| panic!("soak job {tag} failed: {}", e.message));
        latencies.push(t0.elapsed().as_secs_f64());
        assert_eq!(res.n, p.n);
        cache_hits += res.cache_hit as usize;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    SoakRun {
        latencies,
        cache_hits,
    }
}

/// Scrape the engine's stats and round-trip them through the real
/// `StatsReply` wire encoding, so the numbers checked below are exactly
/// what a remote `jigsaw request --stats` client would see.
fn scrape_wire(engine: &ServeEngine) -> StatsSnapshot {
    let frame = Frame::StatsReply(Box::new(engine.stats_snapshot(0, 0)));
    let bytes = protocol::encode(&frame);
    match protocol::read_frame(&mut bytes.as_slice()).expect("stats reply must round-trip") {
        Frame::StatsReply(s) => *s,
        other => panic!("stats reply decoded as {other:?}"),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    telemetry::set_enabled(true);
    fault::disarm();

    // ---- Phase 1: mixed-size soak -------------------------------------
    // Six trajectories over three sizes; capacity 8 holds them all, so
    // after the six cold builds every job is a cache hit.
    let total_jobs = (3000 / args.quick_divisor).max(200);
    if args.quick_divisor > 1 {
        println!("[quick mode: job count divided by {}]", args.quick_divisor);
    }
    let pool: Vec<SoakProblem> = vec![
        SoakProblem::radial(32, 12, 101),
        SoakProblem::radial(32, 16, 203),
        SoakProblem::radial(48, 12, 307),
        SoakProblem::radial(48, 20, 409),
        SoakProblem::radial(64, 16, 511),
        SoakProblem::radial(64, 24, 613),
    ];
    let engine = ServeEngine::new(8);
    println!(
        "=== serve soak: {total_jobs} jobs over {} trajectories (n ∈ {{32, 48, 64}}) ===",
        pool.len()
    );
    let half = total_jobs / 2;
    let t0 = Instant::now();
    let first = soak(&engine, &pool, half, 77);
    // Mid-soak introspection scrape, round-tripped over the wire.
    let mid = scrape_wire(&engine);
    assert_eq!(
        mid.cache.hits + mid.cache.misses,
        half as u64,
        "mid-soak scrape must account for every job so far"
    );
    let second = soak(&engine, &pool, total_jobs - half, 78);
    let wall = t0.elapsed().as_secs_f64();
    let cache = engine.cache();
    let (hits, misses, evictions) = (cache.hits(), cache.misses(), cache.evictions());
    let hit_rate = hits as f64 / (hits + misses) as f64;
    let mut latencies: Vec<f64> = first
        .latencies
        .iter()
        .chain(second.latencies.iter())
        .copied()
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let telemetry_hits = telemetry::global()
        .snapshot()
        .counter("serve.cache.hit")
        .unwrap_or(0);
    println!(
        "{total_jobs} jobs in {}: p50 {} p99 {}  hit rate {:.4} ({hits} hits / {misses} misses, {evictions} evictions)",
        fmt_time(wall),
        fmt_time(p50),
        fmt_time(p99),
        hit_rate
    );
    assert!(telemetry_hits > 0, "serve.cache.hit must register");

    // ---- Wire stats vs harness cross-check ----------------------------
    // The final scrape's hit rate must agree with the hit flags the
    // harness saw on each job result, and its windowed p50 with the
    // harness-timed p50 — both through the real wire encoding.
    let fin = scrape_wire(&engine);
    let harness_hits = first.cache_hits + second.cache_hits;
    let harness_hit_rate = harness_hits as f64 / total_jobs as f64;
    let wire_hit_rate = fin.cache.hit_rate();
    let hit_rate_rel_err = (wire_hit_rate - harness_hit_rate).abs() / harness_hit_rate;
    // The 60 s latency window may have aged out early samples on a long
    // run, but the p50 of the surviving (recent, steady-state) samples
    // must still land within the log2-bucket resolution of the
    // harness's own p50.
    let wire_p50 = fin
        .window("serve.job_latency_ns.60s")
        .expect("latency window present in wire snapshot")
        .hist
        .quantile_estimate(0.5)
        / 1e9;
    let p50_ratio = wire_p50 / p50;
    println!(
        "wire stats: hit rate {wire_hit_rate:.4} vs harness {harness_hit_rate:.4} \
         (rel err {hit_rate_rel_err:.2e}); p50 {} vs harness {} (ratio {p50_ratio:.4})",
        fmt_time(wire_p50),
        fmt_time(p50),
    );
    assert!(
        hit_rate_rel_err <= 0.01,
        "wire hit rate must agree with harness within 1%, got rel err {hit_rate_rel_err:.4}"
    );
    assert!(
        (0.5..=2.0).contains(&p50_ratio),
        "wire p50 must agree with harness within 2x, got ratio {p50_ratio:.4}"
    );

    // ---- Phase 2: warm vs cold at radial 256² -------------------------
    let mut img = EvalImage {
        name: "radial256",
        n: 256,
        m: 131_072,
        traj: TrajKind::Radial,
    };
    if args.quick_divisor > 1 {
        img.m /= args.quick_divisor;
    }
    let coords = img.trajectory();
    let values = img.kspace(&coords);
    let big = JobRequest {
        tag: 1_000_000,
        priority: Priority::Normal,
        n: img.n as u32,
        budget_ms: 0,
        coords,
        values,
    };
    let budget = RunBudget::unlimited();

    let mut group = BenchGroup::new("serve_warm_vs_cold");
    group.sample_size(5).throughput_elements(img.m as u64);
    // Cold: a fresh engine per iteration pays plan_trajectory every time.
    let cold = group.bench_function("cold_plan_per_job", || {
        let fresh = ServeEngine::new(1);
        fresh.execute(&big, &budget).expect("cold job")
    });
    // Warm: one engine, primed before the harness runs, so the warm-up
    // call and every timed sample are cache hits.
    let warm_engine = ServeEngine::new(1);
    let primed = warm_engine.execute(&big, &budget).expect("priming job");
    assert!(!primed.cache_hit);
    let warm = group.bench_function("warm_cache_per_job", || {
        let res = warm_engine.execute(&big, &budget).expect("warm job");
        assert!(res.cache_hit, "warm samples must hit the cache");
        res
    });
    group.finish();
    let warm_over_cold = warm.median / cold.median;
    println!(
        "radial {0}²: cold {1} vs warm {2}  (warm/cold = {warm_over_cold:.4})",
        img.n,
        fmt_time(cold.median),
        fmt_time(warm.median),
    );

    // ---- Phase 3: disarmed vs armed-miss overhead ---------------------
    // The serve path crosses `serve.job` + `serve.cache` every job; time
    // a warm-job burst disarmed, then with a plan armed at a site the
    // path never evaluates (full armed slow path, nothing fires).
    let overhead_engine = ServeEngine::new(8);
    let burst = (total_jobs / 4).max(50);
    let mut overhead = BenchGroup::new("serve_fault_overhead");
    overhead.sample_size(5);
    fault::disarm();
    let disarmed = overhead.bench_function("soak_faults_disarmed", || {
        soak(&overhead_engine, &pool, burst, 19)
    });
    fault::arm(fault::FaultPlan::once_at("bench.nonexistent"));
    let armed_miss = overhead.bench_function("soak_faults_armed_miss", || {
        soak(&overhead_engine, &pool, burst, 19)
    });
    fault::disarm();
    overhead.finish();
    let armed_over_disarmed = armed_miss.median / disarmed.median;
    println!(
        "soak burst ({burst} jobs): disarmed {} vs armed-miss {}  (armed/disarmed = {armed_over_disarmed:.4})",
        fmt_time(disarmed.median),
        fmt_time(armed_miss.median),
    );

    // ---- Phase 4: bounded admission under 4× overload -----------------
    // A real daemon over a socketpair, tiny admission bound, pipelined
    // burst several times deeper than queue + executors. The daemon
    // must shed (not queue unboundedly), answer every submit exactly
    // once, and never deliver an accepted result past its budget plus
    // a scheduling epsilon.
    let overload_jobs = (64 / args.quick_divisor).max(16);
    let overload_budget_ms: u64 = 5_000;
    let shed_counter = |name: &str| telemetry::global().snapshot().counter(name).unwrap_or(0);
    let shed_depth_before = shed_counter("serve.shed.depth");
    let opts = ServeOptions {
        cache_capacity: 8,
        executors: 2,
        max_queue_depth: 4,
        ..Default::default()
    };
    let (client, server) = std::os::unix::net::UnixStream::pair().expect("socketpair");
    let server_reader = server.try_clone().expect("server clone");
    let daemon = std::thread::spawn(move || {
        serve_stream(server_reader, server, &opts).expect("overload daemon");
    });
    let mut submit_side = client.try_clone().expect("client clone");
    let collector = std::thread::spawn(move || {
        // Drain every daemon frame until EOF (daemon closes after the
        // shutdown drain), stamping arrival times.
        let mut reader = client;
        let mut replies = Vec::new();
        while let Ok(f) = protocol::read_frame(&mut reader) {
            replies.push((f, Instant::now()));
        }
        replies
    });
    let overload_pool = SoakProblem::radial(32, 12, 717);
    let tag_base = 2_000_000u64;
    let mut submit_at = Vec::with_capacity(overload_jobs);
    for i in 0..overload_jobs {
        let mut req = overload_pool.request(tag_base + i as u64);
        req.budget_ms = overload_budget_ms as u32;
        submit_at.push(Instant::now());
        protocol::write_frame(&mut submit_side, &Frame::Submit(req)).expect("submit");
    }
    protocol::write_frame(&mut submit_side, &Frame::Shutdown).expect("shutdown");
    drop(submit_side);
    let replies = collector.join().expect("collector");
    daemon.join().expect("daemon thread");
    let mut accepted_latencies = Vec::new();
    let mut shed = 0usize;
    let mut errors = 0usize;
    for (frame, at) in &replies {
        match frame {
            Frame::Result(r) if r.tag >= tag_base => {
                let i = (r.tag - tag_base) as usize;
                accepted_latencies.push(at.duration_since(submit_at[i]).as_secs_f64());
            }
            Frame::Overloaded(o) if o.tag >= tag_base => {
                assert!(
                    o.retry_after_ms >= 25,
                    "retry hint below the clamp floor: {}",
                    o.retry_after_ms
                );
                shed += 1;
            }
            Frame::Error(e) if e.tag >= tag_base => errors += 1,
            _ => {} // shutdown Pong
        }
    }
    let accepted = accepted_latencies.len();
    assert_eq!(
        accepted + shed + errors,
        overload_jobs,
        "every submit must be answered exactly once"
    );
    assert!(
        shed > 0,
        "4× oversubscription must shed, not queue unboundedly"
    );
    assert_eq!(errors, 0, "no accepted job may fail under overload");
    let shed_depth_after = shed_counter("serve.shed.depth");
    assert!(
        shed_depth_after > shed_depth_before,
        "serve.shed.depth must register the refusals"
    );
    accepted_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let accepted_p99 = percentile(&accepted_latencies, 0.99);
    let accepted_p99_max = overload_budget_ms as f64 / 1e3 + 0.5;
    assert!(
        accepted_p99 <= accepted_p99_max,
        "accepted p99 {accepted_p99:.3}s past budget+epsilon {accepted_p99_max:.3}s"
    );
    println!(
        "=== overload: {overload_jobs} pipelined jobs vs depth-4 queue + 2 executors ===\n\
         accepted {accepted} / shed {shed}  accepted p99 {} (bound {})",
        fmt_time(accepted_p99),
        fmt_time(accepted_p99_max),
    );

    // ---- Phase 5: cancel-checkpoint overhead --------------------------
    // The gridding hot loop polls `cancel::cancelled()` once per chunk.
    // Bare run: no scope, so the poll is one relaxed atomic load.
    // Scoped run: a live (never-fired) CancelScope arms the slow path.
    let ck_n = 96usize;
    let ck = SoakProblem::radial(ck_n as u32, 64, 901);
    let ck_plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(ck_n)).expect("checkpoint plan");
    let gridder = SliceDiceGridder::default();
    let mut ck_group = BenchGroup::new("cancel_checkpoint_overhead");
    ck_group
        .sample_size(7)
        .throughput_elements(ck.coords.len() as u64);
    let bare = ck_group.bench_function("gridding_no_scope", || {
        ck_plan
            .adjoint(&ck.coords, &ck.values, &gridder)
            .expect("bare adjoint")
    });
    let flag = cancel::CancelFlag::new();
    let scoped = {
        let _scope = cancel::CancelScope::enter(Some(flag.clone()));
        ck_group.bench_function("gridding_live_scope", || {
            ck_plan
                .adjoint(&ck.coords, &ck.values, &gridder)
                .expect("scoped adjoint")
        })
    };
    assert!(!flag.is_cancelled());
    ck_group.finish();
    let scoped_over_bare = scoped.median / bare.median;
    println!(
        "gridding n={ck_n} M={}: bare {} vs live-scope {}  (scoped/bare = {scoped_over_bare:.4})",
        ck.coords.len(),
        fmt_time(bare.median),
        fmt_time(scoped.median),
    );

    // ---- Phase 6: drain → snapshot → warm restart ---------------------
    // Engine level: a primed engine persists its plan cache; a fresh
    // engine restored from the snapshot must serve the same radial 256²
    // job as a cache hit, at warm (not cold) latency. The snapshot load
    // happens once, outside the timed region — it is boot cost, not
    // request cost; the gate is about post-restart *request* latency.
    let snap_path =
        std::env::temp_dir().join(format!("jigsaw-soak-restart-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&snap_path);
    let snapshot_entries = {
        let first_life = ServeEngine::new(1);
        first_life.execute(&big, &budget).expect("priming job");
        first_life
            .cache()
            .save_snapshot(&snap_path)
            .expect("save snapshot")
    };
    let restarted = ServeEngine::new(1);
    let (restored, restore_skipped) = restarted
        .cache()
        .load_snapshot(&snap_path, &jigsaw_core::gridding::SerialGridder)
        .expect("load snapshot");
    assert_eq!(restore_skipped, 0, "undamaged snapshot must restore fully");
    assert!(restored >= 1, "snapshot must carry the primed plan");
    let mut restart_group = BenchGroup::new("serve_restart");
    restart_group
        .sample_size(5)
        .throughput_elements(img.m as u64);
    let restart_warm = restart_group.bench_function("warm_restart_request", || {
        let res = restarted.execute(&big, &budget).expect("restarted job");
        assert!(res.cache_hit, "post-restart request must hit the cache");
        res
    });
    restart_group.finish();
    let restart_over_cold = restart_warm.median / cold.median;
    println!(
        "restart: {snapshot_entries}-entry snapshot, {restored} restored; \
         post-restart {} vs cold {}  (warm/cold = {restart_over_cold:.4})",
        fmt_time(restart_warm.median),
        fmt_time(cold.median),
    );

    // Wire level: lifetime 1 warms a real daemon with the soak pool and
    // drains it (snapshotting on exit); lifetime 2 boots from the
    // snapshot and replays the pool — its entire first burst must hit.
    let run_lifetime = |frames: Vec<Frame>, opts: &ServeOptions| -> Vec<Frame> {
        let (client, server) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        let server_reader = server.try_clone().expect("server clone");
        let opts = opts.clone();
        let daemon = std::thread::spawn(move || {
            serve_stream(server_reader, server, &opts).expect("restart daemon");
        });
        let mut submit_side = client.try_clone().expect("client clone");
        let collector = std::thread::spawn(move || {
            let mut reader = client;
            let mut replies = Vec::new();
            while let Ok(f) = protocol::read_frame(&mut reader) {
                replies.push(f);
            }
            replies
        });
        for f in &frames {
            protocol::write_frame(&mut submit_side, f).expect("lifetime frame");
        }
        // Half-close the submit direction so a Drain-terminated session sees
        // EOF: dropping this clone alone would not, because the collector
        // thread still holds another clone of the same socket.
        submit_side
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close submit side");
        drop(submit_side);
        let replies = collector.join().expect("collector");
        daemon.join().expect("daemon thread");
        replies
    };
    let wire_snap = std::env::temp_dir().join(format!(
        "jigsaw-soak-restart-wire-{}.snap",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wire_snap);
    let wire_opts = ServeOptions {
        snapshot_path: Some(wire_snap.clone()),
        ..Default::default()
    };
    let tag_base = 3_000_000u64;
    let warm_frames: Vec<Frame> = pool
        .iter()
        .enumerate()
        .map(|(i, p)| Frame::Submit(p.request(tag_base + i as u64)))
        .chain(std::iter::once(Frame::Drain))
        .collect();
    run_lifetime(warm_frames, &wire_opts);
    assert!(wire_snap.exists(), "drain must write the wire snapshot");
    let burst_frames: Vec<Frame> = pool
        .iter()
        .enumerate()
        .map(|(i, p)| Frame::Submit(p.request(tag_base + 100 + i as u64)))
        .chain(std::iter::once(Frame::Shutdown))
        .collect();
    let burst_replies = run_lifetime(burst_frames, &wire_opts);
    let first_burst_jobs = pool.len();
    let first_burst_hits = burst_replies
        .iter()
        .filter(|f| matches!(f, Frame::Result(r) if r.cache_hit))
        .count();
    let first_burst_hit_rate = first_burst_hits as f64 / first_burst_jobs as f64;
    assert_eq!(
        first_burst_hits, first_burst_jobs,
        "every first-burst job after a warm restart must be a cache hit"
    );
    println!(
        "wire restart: first burst {first_burst_hits}/{first_burst_jobs} cache hits \
         (rate {first_burst_hit_rate:.4})"
    );
    let _ = std::fs::remove_file(&snap_path);
    let _ = std::fs::remove_file(&wire_snap);

    let json = format!(
        "{{\n  \"soak\": {{\n    \"jobs\": {total_jobs},\n    \"sizes\": [32, 48, 64],\n    \
         \"trajectories\": {},\n    \"cache_capacity\": 8,\n    \"hits\": {hits},\n    \
         \"misses\": {misses},\n    \"evictions\": {evictions},\n    \"hit_rate\": {hit_rate:.6},\n    \
         \"telemetry_cache_hit_counter\": {telemetry_hits},\n    \
         \"p50_latency_seconds\": {p50:.6e},\n    \"p99_latency_seconds\": {p99:.6e},\n    \
         \"wall_seconds\": {wall:.6e}\n  }},\n  \
         \"stats_wire\": {{\n    \"mid_scrape_jobs\": {half},\n    \
         \"mid_hits\": {},\n    \"mid_misses\": {},\n    \
         \"wire_hit_rate\": {wire_hit_rate:.6},\n    \
         \"harness_hit_rate\": {harness_hit_rate:.6},\n    \
         \"hit_rate_rel_err\": {hit_rate_rel_err:.6e},\n    \
         \"gate_hit_rate_rel_err_max\": 0.01,\n    \
         \"wire_p50_seconds\": {wire_p50:.6e},\n    \
         \"harness_p50_seconds\": {p50:.6e},\n    \
         \"p50_ratio\": {p50_ratio:.4},\n    \
         \"gate_p50_ratio_range\": [0.5, 2.0]\n  }},\n  \
         \"warm_vs_cold\": {{\n    \"n\": {},\n    \"m\": {},\n    \"trajectory\": \"radial\",\n    \
         \"cold_plan_median_seconds\": {:.6e},\n    \"warm_cache_median_seconds\": {:.6e},\n    \
         \"warm_over_cold\": {warm_over_cold:.4}\n  }},\n  \
         \"fault_overhead\": {{\n    \"burst_jobs\": {burst},\n    \
         \"disarmed_median_seconds\": {:.6e},\n    \"armed_miss_median_seconds\": {:.6e},\n    \
         \"armed_over_disarmed\": {armed_over_disarmed:.4}\n  }},\n  \
         \"overload\": {{\n    \"jobs\": {overload_jobs},\n    \"max_queue_depth\": 4,\n    \
         \"executors\": 2,\n    \"budget_ms\": {overload_budget_ms},\n    \
         \"accepted\": {accepted},\n    \"shed\": {shed},\n    \
         \"shed_depth_counter_delta\": {},\n    \
         \"accepted_p99_seconds\": {accepted_p99:.6e},\n    \
         \"gate_accepted_p99_max_seconds\": {accepted_p99_max:.3}\n  }},\n  \
         \"cancel_overhead\": {{\n    \"n\": {ck_n},\n    \"m\": {},\n    \
         \"bare_median_seconds\": {:.6e},\n    \"scoped_median_seconds\": {:.6e},\n    \
         \"scoped_over_bare\": {scoped_over_bare:.4},\n    \
         \"gate_scoped_over_bare_max\": 1.05\n  }},\n  \
         \"restart\": {{\n    \"snapshot_entries\": {snapshot_entries},\n    \
         \"restored\": {restored},\n    \"restore_skipped\": {restore_skipped},\n    \
         \"cold_median_seconds\": {:.6e},\n    \
         \"warm_restart_median_seconds\": {:.6e},\n    \
         \"warm_over_cold\": {restart_over_cold:.4},\n    \
         \"gate_warm_over_cold_max\": 0.75,\n    \
         \"first_burst_jobs\": {first_burst_jobs},\n    \
         \"first_burst_hits\": {first_burst_hits},\n    \
         \"first_burst_hit_rate\": {first_burst_hit_rate:.4},\n    \
         \"gate_first_burst_hit_rate_min\": 1.0\n  }}\n}}\n",
        pool.len(),
        mid.cache.hits,
        mid.cache.misses,
        img.n,
        img.m,
        cold.median,
        warm.median,
        disarmed.median,
        armed_miss.median,
        shed_depth_after - shed_depth_before,
        ck.coords.len(),
        bare.median,
        scoped.median,
        cold.median,
        restart_warm.median,
    );
    let path = "BENCH_serve_soak.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
