//! Toeplitz fast path vs gridded CG-SENSE: per-iteration normal-operator
//! cost at the paper's working point (radial 256², 8 coils).
//!
//! Each gridded CG-SENSE iteration pays `2 × coils` gridding passes
//! (forward + adjoint per coil) over M ≈ 247k samples. The Toeplitz path
//! grids **once** at build time (a single adjoint at `2N`) and then each
//! iteration is two `2N` FFTs per coil on the pooled blocked-FFT engine —
//! zero gridding in the hot loop. This bench records both per-iteration
//! costs and their ratio in `BENCH_toeplitz_cg.json`; CI gates the ratio
//! at ≤ 0.6.
//!
//! Before any timing is trusted, the Toeplitz apply is asserted
//! **bitwise identical** across worker-pool sizes 1/2/8 (the FFT panel
//! partition depends only on the grid shape, never the executor), and
//! the full 20-iteration CG-SENSE images from both paths are compared by
//! relative L2.
//!
//! Run with `cargo run --release -p jigsaw-bench --bin toeplitz_cg`
//! (append `--quick` for smoke runs: same 256²/8-coil problem, fewer
//! timing samples and CG iterations).

use std::sync::Arc;

use jigsaw_bench::harness::{fmt_time, BenchGroup};
use jigsaw_bench::HarnessArgs;
use jigsaw_core::engine::WorkerPool;
use jigsaw_core::gridding::SliceDiceGridder;
use jigsaw_core::metrics::rel_l2;
use jigsaw_core::phantom::Phantom2d;
use jigsaw_core::recon::{CgOptions, NormalOpKind};
use jigsaw_core::sense::{acquire, cg_sense_with, CoilMaps};
use jigsaw_core::toeplitz::ToeplitzOperator;
use jigsaw_core::{traj, NufftConfig, NufftPlan};
use jigsaw_num::C64;

const N: usize = 256;
const COILS: usize = 8;

fn random_image(len: usize, seed: u64) -> Vec<C64> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s as f64 / u64::MAX as f64 - 0.5
    };
    (0..len).map(|_| C64::new(next(), next())).collect()
}

fn bits_eq(a: &[C64], b: &[C64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// One gridded normal-operator application over all coils: the exact
/// per-iteration work of the gridded CG-SENSE closure (forward NuFFT,
/// adjoint NuFFT, coil combine).
fn gridded_normal_all_coils(
    plan: &NufftPlan<f64, 2>,
    maps: &CoilMaps,
    coords: &[[f64; 2]],
    gridder: &SliceDiceGridder,
    x: &[C64],
) -> Vec<C64> {
    let n = maps.n();
    let mut acc = vec![C64::zeroed(); n * n];
    for c in 0..maps.coils() {
        let weighted: Vec<C64> = x.iter().zip(maps.map(c)).map(|(v, s)| *v * *s).collect();
        let samples = plan.forward(&weighted, coords).unwrap().samples;
        let back = plan.adjoint(coords, &samples, gridder).unwrap().image;
        for ((a, b), s) in acc.iter_mut().zip(&back).zip(maps.map(c)) {
            *a += *b * s.conj();
        }
    }
    acc
}

/// One Toeplitz normal-operator application over all coils: the exact
/// per-iteration work of the Toeplitz CG-SENSE closure (batched apply,
/// coil combine).
fn toeplitz_normal_all_coils(top: &ToeplitzOperator<2>, maps: &CoilMaps, x: &[C64]) -> Vec<C64> {
    let n = maps.n();
    let weighted: Vec<Vec<C64>> = (0..maps.coils())
        .map(|c| x.iter().zip(maps.map(c)).map(|(v, s)| *v * *s).collect())
        .collect();
    let refs: Vec<&[C64]> = weighted.iter().map(|w| w.as_slice()).collect();
    let back = top.apply_batch(&refs).unwrap();
    let mut acc = vec![C64::zeroed(); n * n];
    for (c, b) in back.iter().enumerate() {
        for ((a, v), s) in acc.iter_mut().zip(b).zip(maps.map(c)) {
            *a += *v * s.conj();
        }
    }
    acc
}

fn main() {
    let args = HarnessArgs::parse();
    let quick = args.quick_divisor > 1;
    let samples = if quick { 2 } else { 5 };
    let cg_iters = if quick { 4 } else { 20 };
    if quick {
        println!("[quick mode: {samples} samples per point, {cg_iters} CG iterations]");
    }

    println!("=== Toeplitz vs gridded CG-SENSE normal operator ===\n");
    let spokes = (1.2 * core::f64::consts::FRAC_PI_2 * N as f64) as usize;
    let coords = traj::radial_2d(spokes, 2 * N, true);
    let m = coords.len();
    println!("radial {N}x{N}, {spokes} spokes, M = {m}, {COILS} coils\n");

    let cfg = NufftConfig::with_n(N);
    let plan = NufftPlan::<f64, 2>::new(cfg.clone()).unwrap();
    let gridder = SliceDiceGridder::default();
    let maps = CoilMaps::synthetic(N, COILS);

    // One-time Toeplitz build (the single gridding pass at 2N).
    let t0 = std::time::Instant::now();
    let top = Arc::new(ToeplitzOperator::<2>::build(&cfg, &coords, &[], &gridder).unwrap());
    let build_seconds = t0.elapsed().as_secs_f64();
    println!(
        "toeplitz build (one 2N gridding pass): {}",
        fmt_time(build_seconds)
    );

    // Gate 1: bitwise stability across worker counts.
    let x = random_image(N * N, 0x70EB);
    let reference = top.apply(&x).unwrap();
    for workers in [1usize, 2, 8] {
        let pool = WorkerPool::new(workers);
        let y = top.apply_with(&pool, &x).unwrap();
        assert!(
            bits_eq(&reference, &y),
            "toeplitz apply must be bitwise stable at {workers} workers"
        );
    }
    println!("bitwise stable across 1/2/8-worker pools ✓\n");

    // Per-iteration normal-operator cost, both paths.
    let mut group = BenchGroup::new(&format!("cg_sense normal op {N}x{N}, {COILS} coils"));
    group.sample_size(samples).throughput_elements(m as u64);
    let gridded_stats = group.bench_function("gridded_per_iter", || {
        gridded_normal_all_coils(&plan, &maps, &coords, &gridder, &x)
    });
    let toeplitz_stats = group.bench_function("toeplitz_per_iter", || {
        toeplitz_normal_all_coils(&top, &maps, &x)
    });
    group.finish();
    let ratio = toeplitz_stats.median / gridded_stats.median;
    println!(
        "\nper-iteration: gridded {} | toeplitz {} | ratio {:.3}",
        fmt_time(gridded_stats.median),
        fmt_time(toeplitz_stats.median),
        ratio
    );

    // End-to-end CG-SENSE, both paths, on a phantom acquisition.
    let truth = Phantom2d::shepp_logan().rasterize_aa(N, 4);
    let data = acquire(&plan, &maps, &truth, &coords).unwrap();
    let opts = CgOptions {
        max_iterations: cg_iters,
        tolerance: 1e-10,
        lambda: 1e-4,
        ..Default::default()
    };
    let t1 = std::time::Instant::now();
    let gridded_cg = cg_sense_with(
        &plan,
        &maps,
        &data,
        &coords,
        &gridder,
        &opts,
        NormalOpKind::Gridded,
    )
    .unwrap();
    let gridded_cg_seconds = t1.elapsed().as_secs_f64();
    let t2 = std::time::Instant::now();
    let toeplitz_cg = cg_sense_with(
        &plan,
        &maps,
        &data,
        &coords,
        &gridder,
        &opts,
        NormalOpKind::Toeplitz,
    )
    .unwrap();
    let toeplitz_cg_seconds = t2.elapsed().as_secs_f64();
    let image_rel_l2 = rel_l2(&toeplitz_cg.image, &gridded_cg.image);
    println!(
        "end-to-end {cg_iters}-iteration CG-SENSE: gridded {} | toeplitz {} ({:.2}x) | image rel_l2 {:.2e}",
        fmt_time(gridded_cg_seconds),
        fmt_time(toeplitz_cg_seconds),
        gridded_cg_seconds / toeplitz_cg_seconds,
        image_rel_l2
    );

    let path = "BENCH_toeplitz_cg.json";
    let json = format!(
        "{{\n  \"threads\": {},\n  \"grid\": {N},\n  \"coils\": {COILS},\n  \"spokes\": {spokes},\n  \"m\": {m},\n  \"cg_iterations\": {cg_iters},\n  \"bitwise_stable_across_workers\": true,\n  \"toeplitz_build_seconds\": {build_seconds:.6e},\n  \"per_iteration\": {{\n    \"gridded_median_seconds\": {:.6e},\n    \"gridded_min_seconds\": {:.6e},\n    \"toeplitz_median_seconds\": {:.6e},\n    \"toeplitz_min_seconds\": {:.6e},\n    \"toeplitz_over_gridded\": {ratio:.4}\n  }},\n  \"end_to_end\": {{\n    \"gridded_cg_seconds\": {gridded_cg_seconds:.6e},\n    \"toeplitz_cg_seconds\": {toeplitz_cg_seconds:.6e},\n    \"image_rel_l2\": {image_rel_l2:.6e}\n  }}\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        gridded_stats.median,
        gridded_stats.min,
        toeplitz_stats.median,
        toeplitz_stats.min,
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
