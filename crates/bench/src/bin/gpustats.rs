//! §VI-A micro-architectural analysis panel: derive the paper's four
//! reasons for the Slice-and-Dice GPU win from an access-pattern replay.
//!
//! "This dramatic increase in performance relative to the prior work
//! arises for several reasons: (1) Slice-and-Dice GPU uses a lookup table
//! for interpolation weights, while Impatient calculates them during
//! processing, (2) Slice-and-Dice GPU achieves an L2 hit rate of ~98%
//! compared to Impatient's ~80%, (3) Slice-and-Dice achieves an occupancy
//! of ~80% compared to the ~47% for Impatient, and (4) Slice-and-Dice GPU
//! utilizes parallelism across both the non-uniform input array and the
//! output grid."
//!
//! Run with `cargo run --release -p jigsaw-bench --bin gpustats`.

use jigsaw_bench::{eval_images, HarnessArgs, Table};
use jigsaw_core::config::GridParams;
use jigsaw_core::kernel::KernelKind;
use jigsaw_gpu::{replay_impatient, replay_slice_dice, ReplayConfig};

fn main() {
    let args = HarnessArgs::parse();
    let img = eval_images()[2]; // N = 256 by default
    let m = (200_000 / args.quick_divisor).max(5_000);
    let g = 1024usize; // the paper's grid size (8 MB f32 grid > 3 MiB L2)
    println!("=== §VI-A GPU analysis (replayed access patterns) ===");
    println!(
        "workload: {m} samples of a {} trajectory onto a {g}² grid\n",
        img.name
    );

    let p = GridParams {
        grid: g,
        width: 6,
        table_oversampling: 32,
        tile: 8,
        kernel: KernelKind::Auto.resolve(6, 2.0),
    };
    let mut coords_cycles = img.trajectory();
    coords_cycles.truncate(m);
    let coords: Vec<[f64; 2]> = coords_cycles
        .iter()
        .map(|c| {
            [
                c[0].rem_euclid(1.0) * g as f64,
                c[1].rem_euclid(1.0) * g as f64,
            ]
        })
        .collect();

    let cfg = ReplayConfig::default();
    let sd = replay_slice_dice(&p, &coords, &cfg);
    let imp = replay_impatient(&p, &coords, &cfg);

    let mut t = Table::new(&[
        "metric",
        "Slice-and-Dice GPU",
        "Impatient-style",
        "paper (S&D / Imp)",
    ]);
    t.row(vec![
        "weight computation".into(),
        "LUT (0 FLOPs)".into(),
        format!("{:.1} MFLOP on-the-fly", imp.weight_flops as f64 / 1e6),
        "LUT / on-the-fly".into(),
    ]);
    t.row(vec![
        "L2 read hit rate".into(),
        format!("{:.1}%", 100.0 * sd.l2_hit_rate),
        format!("{:.1}%", 100.0 * imp.l2_hit_rate),
        "~98% / ~80%".into(),
    ]);
    t.row(vec![
        "occupancy".into(),
        format!("{:.1}%", 100.0 * sd.occupancy),
        format!("{:.1}%", 100.0 * imp.occupancy),
        "~80% / ~47%".into(),
    ]);
    t.row(vec![
        "SIMD lane efficiency".into(),
        format!("{:.1}%", 100.0 * sd.lane_efficiency),
        format!("{:.1}%", 100.0 * imp.lane_efficiency),
        "W²/T² vs \"T/W idle\"".into(),
    ]);
    t.row(vec![
        "memory-level parallelism".into(),
        format!("{:.1} lines/step", sd.mlp),
        format!("{:.1} lines/step", imp.mlp),
        "\"binning limits MLP\"".into(),
    ]);
    t.row(vec![
        "L2 transactions".into(),
        sd.l2_accesses.to_string(),
        imp.l2_accesses.to_string(),
        "—".into(),
    ]);
    t.row(vec![
        "atomic/write hit rate".into(),
        format!("{:.1}%", 100.0 * sd.write_hit_rate),
        format!("{:.1}%", 100.0 * imp.write_hit_rate),
        "—".into(),
    ]);
    t.print();

    println!("\nEverything above is derived: the replay streams the real sample data");
    println!(
        "through the real coordinate decomposition into a {} KiB, {}-way L2",
        cfg.cache.capacity_bytes / 1024,
        cfg.cache.ways
    );
    println!(
        "model with {} concurrently resident blocks; occupancy comes from the",
        cfg.concurrent_blocks
    );
    println!("CUDA occupancy formula applied to each kernel's resource footprint.");
}
