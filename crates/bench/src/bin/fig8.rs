//! Figure 8 — gridding energy requirements.
//!
//! The paper: "Impatient energy consumption averages 1.95 J, while
//! Slice-and-Dice GPU averages 108.27 mJ. In contrast, JIGSAW consumes
//! only 83.89 µJ — an energy reduction of over 23000× compared to
//! Impatient and nearly 1300× compared to Slice-and-Dice GPU" (§VI-B).
//!
//! Energy = device power × gridding time: the GPU platforms use the
//! calibrated operating points (Titan Xp ≈ 250 W), JIGSAW uses the
//! Table II power model and the `M + 12` cycle law.
//!
//! Run with `cargo run -p jigsaw-bench --bin fig8` (pure model — fast).

use jigsaw_bench::*;
use jigsaw_sim::device::{JigsawPlatform, Platform};
use jigsaw_sim::JigsawConfig;

fn main() {
    let images = eval_images();
    println!("=== Figure 8: gridding energy (modeled devices) ===\n");

    let imp = Platform::impatient_gpu();
    let sd = Platform::slice_dice_gpu();
    let mirt = Platform::mirt_cpu();
    let jig = JigsawPlatform::new(JigsawConfig::paper_default());

    let mut t = Table::new(&[
        "Image",
        "M",
        "MIRT (CPU)",
        "Impatient (GPU)",
        "S&D (GPU)",
        "JIGSAW (ASIC)",
        "Imp/JIGSAW",
        "S&D/JIGSAW",
    ]);
    let (mut sum_imp, mut sum_sd, mut sum_jig) = (0.0, 0.0, 0.0);
    for img in &images {
        let e_mirt = mirt.gridding_energy_joules(img.m, 6);
        let e_imp = imp.gridding_energy_joules(img.m, 6);
        let e_sd = sd.gridding_energy_joules(img.m, 6);
        let e_jig = jig.gridding_energy_joules(img.m);
        sum_imp += e_imp;
        sum_sd += e_sd;
        sum_jig += e_jig;
        t.row(vec![
            img.name.into(),
            img.m.to_string(),
            fmt_energy(e_mirt),
            fmt_energy(e_imp),
            fmt_energy(e_sd),
            fmt_energy(e_jig),
            fmt_speedup(e_imp / e_jig),
            fmt_speedup(e_sd / e_jig),
        ]);
    }
    t.print();

    let n = images.len() as f64;
    println!("\nAverages over the five images:");
    println!(
        "  Impatient        {}   (paper: 1.95 J)",
        fmt_energy(sum_imp / n)
    );
    println!(
        "  Slice-and-Dice   {}   (paper: 108.27 mJ)",
        fmt_energy(sum_sd / n)
    );
    println!(
        "  JIGSAW           {}   (paper: 83.89 µJ)",
        fmt_energy(sum_jig / n)
    );
    println!(
        "  Impatient/JIGSAW {}   (paper: >23000×)",
        fmt_speedup(sum_imp / sum_jig)
    );
    println!(
        "  S&D GPU/JIGSAW   {}   (paper: ~1300×)",
        fmt_speedup(sum_sd / sum_jig)
    );
    println!("\nAbsolute joules differ from the paper (our image sizes are");
    println!("representative, not identical), but the ordering and orders of");
    println!("magnitude — GPU binning ≫ GPU slice-and-dice ≫ ASIC — reproduce.");
}
