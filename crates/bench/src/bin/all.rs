//! Run every table/figure harness in sequence — the one-command
//! reproduction of the paper's evaluation section.
//!
//! `cargo run --release -p jigsaw-bench --bin all [--quick]`

use std::process::Command;

fn main() {
    let quick: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate harness directory");
    for bin in [
        "table1", "table2", "fig6", "fig7", "fig8", "fig9", "gpustats", "sweep",
    ] {
        println!("\n================ {bin} ================\n");
        let status = Command::new(exe_dir.join(bin))
            .args(&quick)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!("\nAll harnesses completed.");
}
