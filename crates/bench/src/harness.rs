//! Minimal microbenchmark harness — the workspace's criterion stand-in.
//!
//! The repo builds hermetically (no registry), so the bench targets use
//! this ~100-line harness instead of criterion: warm up once, time `n`
//! samples of a closure, report min/median/mean and optional per-element
//! throughput in an aligned table. `JIGSAW_BENCH_SAMPLES` overrides the
//! per-group sample count (set it to `1` for smoke runs).

use std::hint::black_box;
use std::time::Instant;

/// Timing statistics of one benchmark, in seconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// Mean of all samples.
    pub mean: f64,
}

/// A named group of benchmarks sharing a sample count, printed as one
/// table on [`BenchGroup::finish`].
pub struct BenchGroup {
    name: String,
    samples: usize,
    elements: Option<u64>,
    rows: Vec<(String, Stats)>,
}

impl BenchGroup {
    /// Start a group.
    pub fn new(name: &str) -> Self {
        let samples = std::env::var("JIGSAW_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10)
            .max(1);
        Self {
            name: name.to_string(),
            samples,
            elements: None,
            rows: Vec::new(),
        }
    }

    /// Set the per-benchmark sample count (env override still wins).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("JIGSAW_BENCH_SAMPLES").is_err() {
            self.samples = n.max(1);
        }
        self
    }

    /// Declare the number of logical elements processed per iteration so
    /// the table can report elements/second.
    pub fn throughput_elements(&mut self, m: u64) -> &mut Self {
        self.elements = Some(m);
        self
    }

    /// Time `f` (after one warm-up call) and record it under `id`.
    /// Returns the stats so callers can post-process (e.g. JSON output).
    pub fn bench_function<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> Stats {
        black_box(f()); // warm-up: page in buffers, populate pools
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let stats = Stats {
            min: times[0],
            median: times[times.len() / 2],
            mean: times.iter().sum::<f64>() / times.len() as f64,
        };
        self.rows.push((id.to_string(), stats));
        stats
    }

    /// Print the group's table.
    pub fn finish(self) {
        println!("\n== {} ({} samples) ==", self.name, self.samples);
        let wid = self
            .rows
            .iter()
            .map(|(id, _)| id.len())
            .max()
            .unwrap_or(4)
            .max(4);
        match self.elements {
            Some(m) => {
                println!(
                    "{:wid$}  {:>12} {:>12} {:>12} {:>14}",
                    "id", "min", "median", "mean", "Melem/s"
                );
                for (id, s) in &self.rows {
                    println!(
                        "{id:wid$}  {:>12} {:>12} {:>12} {:>14.2}",
                        fmt_time(s.min),
                        fmt_time(s.median),
                        fmt_time(s.mean),
                        m as f64 / s.median / 1e6
                    );
                }
            }
            None => {
                println!(
                    "{:wid$}  {:>12} {:>12} {:>12}",
                    "id", "min", "median", "mean"
                );
                for (id, s) in &self.rows {
                    println!(
                        "{id:wid$}  {:>12} {:>12} {:>12}",
                        fmt_time(s.min),
                        fmt_time(s.median),
                        fmt_time(s.mean)
                    );
                }
            }
        }
    }
}

/// Human-friendly duration (s/ms/µs/ns).
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered() {
        let mut g = BenchGroup::new("t");
        g.sample_size(5);
        let s = g.bench_function("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.min <= s.median && s.median >= 0.0 && s.mean > 0.0);
        g.finish();
    }

    #[test]
    fn fmt_time_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
