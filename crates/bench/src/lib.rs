//! Shared infrastructure for the Jigsaw benchmark harnesses.
//!
//! The paper evaluates on "five images of differing dimension and number
//! of non-uniform samples" (§VI-A); the exact dimensions are illegible in
//! the available scan, so we define five representative MRI problem sizes
//! spanning the same range (small 2-D slice to large high-resolution
//! acquisition), each paired with a realistic non-Cartesian trajectory
//! and synthetic k-space from the analytic Shepp-Logan phantom. Samples
//! are shuffled into random arrival order, the paper's stated worst case.

pub mod harness;

use jigsaw_core::phantom::Phantom2d;
use jigsaw_core::traj;
use jigsaw_num::C64;

/// Trajectory family of an evaluation image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajKind {
    /// Golden-angle radial.
    Radial,
    /// Interleaved Archimedean spiral.
    Spiral,
}

/// One evaluation problem ("image" in the paper's Figs. 6–8).
#[derive(Debug, Clone, Copy)]
pub struct EvalImage {
    /// Display name.
    pub name: &'static str,
    /// Base image size per dimension.
    pub n: usize,
    /// Number of non-uniform samples.
    pub m: usize,
    /// Trajectory family.
    pub traj: TrajKind,
}

impl EvalImage {
    /// Oversampled grid size at σ = 2.
    pub fn grid(&self) -> usize {
        2 * self.n
    }

    /// Generate the trajectory (cycles), shuffled to random order.
    pub fn trajectory(&self) -> Vec<[f64; 2]> {
        let mut coords = match self.traj {
            TrajKind::Radial => {
                // spokes × samples-per-spoke ≈ m with spoke length 2N.
                let per = (2 * self.n).min(self.m);
                let spokes = self.m.div_ceil(per);
                traj::radial_2d(spokes, per, true)
            }
            TrajKind::Spiral => {
                let arms = 16;
                let per = self.m.div_ceil(arms);
                traj::spiral_2d(arms, per, (self.n / 16) as f64)
            }
        };
        coords.truncate(self.m);
        traj::shuffle(&mut coords, 0x5eed + self.m as u64);
        coords
    }

    /// Synthetic k-space at the trajectory points (analytic phantom).
    pub fn kspace(&self, coords: &[[f64; 2]]) -> Vec<C64> {
        Phantom2d::shepp_logan().kspace(self.n, coords)
    }
}

/// The five evaluation images. Sizes are representative (see module docs).
pub fn eval_images() -> Vec<EvalImage> {
    vec![
        EvalImage {
            name: "Image1",
            n: 64,
            m: 65_536,
            traj: TrajKind::Spiral,
        },
        EvalImage {
            name: "Image2",
            n: 128,
            m: 262_144,
            traj: TrajKind::Radial,
        },
        EvalImage {
            name: "Image3",
            n: 256,
            m: 786_432,
            traj: TrajKind::Radial,
        },
        EvalImage {
            name: "Image4",
            n: 384,
            m: 1_179_648,
            traj: TrajKind::Spiral,
        },
        EvalImage {
            name: "Image5",
            n: 512,
            m: 2_097_152,
            traj: TrajKind::Radial,
        },
    ]
}

/// Scale factor applied when the harness runs unoptimized (debug) or when
/// `--quick` is passed: divides every `M` so the tables finish quickly.
pub fn scale_images(images: &mut [EvalImage], divisor: usize) {
    for img in images {
        img.m = (img.m / divisor).max(1024);
    }
}

/// Parse harness CLI flags shared by the `figN` binaries.
pub struct HarnessArgs {
    /// Divide M by this factor.
    pub quick_divisor: usize,
}

impl HarnessArgs {
    /// Parse from `std::env::args`. `--quick` divides M by 16; `--quick=N`
    /// divides by N; debug builds default to 16 even without the flag.
    pub fn parse() -> Self {
        let mut divisor = if cfg!(debug_assertions) { 16 } else { 1 };
        for a in std::env::args().skip(1) {
            if a == "--quick" {
                divisor = divisor.max(16);
            } else if let Some(v) = a.strip_prefix("--quick=") {
                divisor = v.parse().unwrap_or(16);
            }
        }
        Self {
            quick_divisor: divisor,
        }
    }
}

/// Fixed-width table printer for the harness outputs.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.chars().count());
            }
        }
        let line = |ws: &[usize]| {
            let mut s = String::from("+");
            for w in ws {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        println!("{}", line(&widths));
        let fmt_row = |cells: &[String], ws: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(ws) {
                let pad = w.saturating_sub(c.chars().count());
                s.push_str(&format!(" {}{c} |", " ".repeat(pad)));
            }
            s
        };
        println!("{}", fmt_row(&self.headers, &widths));
        println!("{}", line(&widths));
        for row in &self.rows {
            println!("{}", fmt_row(row, &widths));
        }
        println!("{}", line(&widths));
    }
}

/// Format seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{:.2} ns", s * 1e9)
    }
}

/// Format a speedup factor.
pub fn fmt_speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}×")
    } else if x >= 10.0 {
        format!("{x:.1}×")
    } else {
        format!("{x:.2}×")
    }
}

/// Format joules human-readably.
pub fn fmt_energy(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.2} J")
    } else if j >= 1e-3 {
        format!("{:.2} mJ", j * 1e3)
    } else if j >= 1e-6 {
        format!("{:.2} µJ", j * 1e6)
    } else {
        format!("{:.2} nJ", j * 1e9)
    }
}

/// Write a magnitude image as a binary 8-bit PGM (for the Fig. 9 visual
/// comparison). Returns the written path.
pub fn write_pgm(path: &str, image: &[C64], n: usize) -> std::io::Result<String> {
    use std::io::Write;
    assert_eq!(image.len(), n * n);
    let mags: Vec<f64> = image.iter().map(|z| z.abs()).collect();
    let hi = mags.iter().cloned().fold(0.0, f64::max).max(1e-30);
    let mut buf = Vec::with_capacity(n * n + 32);
    buf.extend_from_slice(format!("P5\n{n} {n}\n255\n").as_bytes());
    buf.extend(mags.iter().map(|m| (m / hi * 255.0).round() as u8));
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(&buf)?;
    Ok(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_images_with_growing_sizes() {
        let imgs = eval_images();
        assert_eq!(imgs.len(), 5);
        for w in imgs.windows(2) {
            assert!(w[1].n >= w[0].n);
            assert!(w[1].m > w[0].m);
        }
    }

    #[test]
    fn trajectory_has_exactly_m_samples() {
        for img in eval_images().iter().take(2) {
            let t = img.trajectory();
            assert_eq!(t.len(), img.m);
        }
    }

    #[test]
    fn scale_images_divides_m() {
        let mut imgs = eval_images();
        scale_images(&mut imgs, 16);
        assert_eq!(imgs[0].m, 65_536 / 16);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // smoke test: must not panic
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.0), "2.00 s");
        assert_eq!(fmt_secs(2e-3), "2.00 ms");
        assert_eq!(fmt_secs(3.5e-6), "3.50 µs");
        assert_eq!(fmt_speedup(250.4), "250×");
        assert_eq!(fmt_speedup(16.23), "16.2×");
        assert_eq!(fmt_energy(1.95), "1.95 J");
        assert_eq!(fmt_energy(83.89e-6), "83.89 µJ");
    }

    #[test]
    fn pgm_roundtrip_header() {
        let img = vec![C64::new(0.5, 0.0); 16];
        let path = "/tmp/jigsaw_test_pgm/test.pgm";
        write_pgm(path, &img, 4).unwrap();
        let data = std::fs::read(path).unwrap();
        assert!(data.starts_with(b"P5\n4 4\n255\n"));
        assert_eq!(data.len(), 11 + 16);
    }
}
