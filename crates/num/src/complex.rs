//! Complex arithmetic.
//!
//! A minimal, `#[repr(C)]`, `Copy` complex type. The layout guarantee means a
//! `&[Complex<T>]` can be viewed as interleaved re/im pairs, matching how the
//! JIGSAW hardware streams 32-bit complex words (16-bit re + 16-bit im) and
//! how FFT libraries lay out their buffers.

use crate::float::Float;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over a [`Float`] scalar.
#[derive(Copy, Clone, Default, PartialEq)]
#[repr(C)]
pub struct Complex<T> {
    /// Real component.
    pub re: T,
    /// Imaginary component.
    pub im: T,
}

impl<T: Float> Complex<T> {
    /// Create a complex number from real and imaginary parts.
    #[inline(always)]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// `0 + 0i`.
    #[inline(always)]
    pub fn zeroed() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    /// `1 + 0i`.
    #[inline(always)]
    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    /// `0 + 1i`.
    #[inline(always)]
    pub fn i() -> Self {
        Self::new(T::ZERO, T::ONE)
    }

    /// A purely real complex number.
    #[inline(always)]
    pub fn from_re(re: T) -> Self {
        Self::new(re, T::ZERO)
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    ///
    /// ```
    /// use jigsaw_num::C64;
    /// let z = C64::cis(core::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15 && (z.im - 1.0).abs() < 1e-15);
    /// ```
    #[inline(always)]
    pub fn cis(theta: T) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(c, s)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline(always)]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, k: T) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Divide by a real factor.
    #[inline(always)]
    pub fn unscale(self, k: T) -> Self {
        Self::new(self.re / k, self.im / k)
    }

    /// Multiply by `i` (90° rotation) without a full complex multiply.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Multiply by `-i` (−90° rotation).
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Self::new(self.im, -self.re)
    }

    /// Fused multiply-accumulate: `self + a*b`, using scalar FMAs.
    #[inline(always)]
    pub fn mul_acc(self, a: Self, b: Self) -> Self {
        Self::new(
            a.re.mul_add(b.re, a.im.mul_add(-b.im, self.re)),
            a.re.mul_add(b.im, a.im.mul_add(b.re, self.im)),
        )
    }

    /// Complex multiplication using Knuth's 3-multiply / 5-add scheme
    /// (The Art of Computer Programming, vol. 2), exactly as the JIGSAW
    /// weight-lookup and interpolation units implement it in hardware.
    ///
    /// `(a+bi)(c+di) = (ac − bd) + ((a+b)(c+d) − ac − bd) i`
    ///
    /// ```
    /// use jigsaw_num::C64;
    /// let a = C64::new(1.0, 2.0);
    /// let b = C64::new(3.0, -1.0);
    /// assert!((a.knuth_mul(b) - a * b).abs() < 1e-14);
    /// ```
    #[inline]
    pub fn knuth_mul(self, rhs: Self) -> Self {
        let ac = self.re * rhs.re;
        let bd = self.im * rhs.im;
        let abcd = (self.re + self.im) * (rhs.re + rhs.im);
        Self::new(ac - bd, abcd - ac - bd)
    }

    /// True when both components are finite.
    #[inline(always)]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Widen to `f64` precision.
    #[inline(always)]
    pub fn to_c64(self) -> Complex<f64> {
        Complex::new(self.re.to_f64(), self.im.to_f64())
    }

    /// Narrow from `f64` precision.
    #[inline(always)]
    pub fn from_c64(z: Complex<f64>) -> Self {
        Complex::new(T::from_f64(z.re), T::from_f64(z.im))
    }
}

impl<T: Float> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Float> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Float> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Float> Div for Complex<T> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl<T: Float> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Float> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Float> Div<T> for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: T) -> Self {
        self.unscale(rhs)
    }
}

impl<T: Float> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Float> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Float> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Float> DivAssign for Complex<T> {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<T: Float> MulAssign<T> for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: T) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl<T: Float> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zeroed(), |a, b| a + b)
    }
}

impl<T: Float> From<T> for Complex<T> {
    #[inline(always)]
    fn from(re: T) -> Self {
        Self::from_re(re)
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}+{:?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}i", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type C = Complex<f64>;

    #[test]
    fn basic_arithmetic() {
        let a = C::new(1.0, 2.0);
        let b = C::new(3.0, -1.0);
        assert_eq!(a + b, C::new(4.0, 1.0));
        assert_eq!(a - b, C::new(-2.0, 3.0));
        assert_eq!(a * b, C::new(5.0, 5.0));
        let q = (a / b) * b;
        assert!((q - a).abs() < 1e-14);
    }

    #[test]
    fn knuth_matches_schoolbook() {
        let a = C::new(0.3, -1.7);
        let b = C::new(-2.5, 0.9);
        let k = a.knuth_mul(b);
        let s = a * b;
        assert!((k - s).abs() < 1e-12);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..32 {
            let th = k as f64 * 0.2 - 3.0;
            let z = C::cis(th);
            assert!((z.abs() - 1.0).abs() < 1e-14);
            assert!((z.re - th.cos()).abs() < 1e-14);
        }
    }

    #[test]
    fn conj_and_norm() {
        let a = C::new(3.0, 4.0);
        assert_eq!(a.conj(), C::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!((a * a.conj()).re, 25.0);
    }

    #[test]
    fn mul_i_rotations() {
        let a = C::new(1.0, 2.0);
        assert_eq!(a.mul_i(), a * C::i());
        assert_eq!(a.mul_neg_i(), a * C::new(0.0, -1.0));
        assert_eq!(a.mul_i().mul_neg_i(), a);
    }

    #[test]
    fn mul_acc_is_fused_multiply_add() {
        let acc = C::new(0.5, -0.5);
        let a = C::new(1.25, 0.75);
        let b = C::new(-0.5, 2.0);
        let r = acc.mul_acc(a, b);
        let expect = acc + a * b;
        assert!((r - expect).abs() < 1e-14);
    }

    #[test]
    fn sum_of_cis_roots_is_zero() {
        // Sum of all n-th roots of unity is 0 for n > 1.
        let n = 16;
        let s: C = (0..n)
            .map(|k| C::cis(2.0 * core::f64::consts::PI * k as f64 / n as f64))
            .sum();
        assert!(s.abs() < 1e-13);
    }

    #[test]
    fn widen_narrow_roundtrip() {
        let a = Complex::<f32>::new(1.5, -2.25);
        let w = a.to_c64();
        assert_eq!(w, C::new(1.5, -2.25));
        assert_eq!(Complex::<f32>::from_c64(w), a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", C::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{:?}", C::new(1.0, 2.0)), "(1.0+2.0i)");
    }
}
